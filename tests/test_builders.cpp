// Tests: the executable lower-bound constructions.
//
//  - Section 4 / Theorem 1.2: build_oneshot_covering against both one-shot
//    algorithms must reach a configuration with many covered registers;
//    Case 2 can occur at most log2(n) times; all Lemma 2.1 branch tests and
//    Lemma 4.1 post-conditions must hold (they would fail on an incorrect
//    implementation).
//  - Section 3 / Theorem 1.1: build_longlived_covering against max-scan must
//    reach a (3, floor(n/2))-configuration covering >= floor(n/6) registers,
//    and find the Lemma 3.1 signature recurrence.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/longlived_builder.hpp"
#include "adversary/oneshot_builder.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "util/math.hpp"

namespace {

using namespace stamped;
using namespace stamped::adversary;

TEST(Lemma41, InitialApplicationPausesAllButOne) {
  const int n = 10;
  auto factory = core::sqrt_oneshot_factory(n);
  std::vector<int> all;
  for (int p = 0; p < n; ++p) all.push_back(p);
  auto out = apply_lemma41(factory, {}, {}, {}, {}, all, 200000);
  EXPECT_TRUE(out.branch_checks_ok);
  EXPECT_TRUE(out.postcondition_ok);
  // (d): together the halves hold |U| - 1 processes.
  EXPECT_EQ(out.sigma_participants.size() +
                out.sigma_prime_participants.size(),
            static_cast<std::size_t>(n - 1));
  // (e): sigma holds at least floor(|U|/2).
  EXPECT_GE(out.sigma_participants.size(), static_cast<std::size_t>(n / 2));
  // Participants are distinct.
  std::unordered_set<int> seen;
  for (int p : out.sigma_participants) EXPECT_TRUE(seen.insert(p).second);
  for (int p : out.sigma_prime_participants) EXPECT_TRUE(seen.insert(p).second);
}

TEST(Lemma41, WithRealBlockWritesOnSqrt) {
  // Reach a configuration with register 0 covered 9 times, then apply the
  // lemma with genuine non-empty block writes.
  const int n = 24;
  auto factory = core::sqrt_oneshot_factory(n);
  auto sys = factory();
  std::unordered_set<int> nothing;
  for (int p = 0; p < 9; ++p) {
    ASSERT_TRUE(
        runtime::run_solo_until_poised_outside(*sys, p, nothing, 200000));
  }
  runtime::Schedule base = sys->executed_schedule();
  std::vector<int> idle;
  for (int p = 9; p < n; ++p) idle.push_back(p);
  auto out = apply_lemma41(factory, base, {0, 1}, {2, 3}, {0}, idle, 200000);
  EXPECT_TRUE(out.branch_checks_ok);
  EXPECT_TRUE(out.postcondition_ok);
  EXPECT_EQ(out.sigma_participants.size() +
                out.sigma_prime_participants.size(),
            idle.size() - 1);
}

class OneShotBuilderSweep : public ::testing::TestWithParam<int> {};

TEST_P(OneShotBuilderSweep, SqrtAlgorithmReachesTheoremBound) {
  const int n = GetParam();
  auto result = build_oneshot_covering(core::sqrt_oneshot_factory(n), n);
  EXPECT_TRUE(result.all_checks_ok) << result.summary();
  EXPECT_LE(result.case2_count,
            static_cast<int>(std::ceil(std::log2(n))) + 1)
      << result.summary();
  // Theorem 1.2's conclusion: when the construction stops because
  // l - j <= 2, at least m - log n - 2 columns reached the diagonal.
  if (result.stop_reason == "l-j<=2") {
    const int floor_bound =
        result.m - static_cast<int>(std::ceil(std::log2(n))) - 2;
    EXPECT_GE(result.j_last, std::max(1, floor_bound)) << result.summary();
  }
  EXPECT_GE(result.registers_covered, result.j_last) << result.summary();
}

TEST_P(OneShotBuilderSweep, SimpleAlgorithmReachesTheoremBound) {
  const int n = GetParam();
  auto result = build_oneshot_covering(core::simple_oneshot_factory(n), n);
  EXPECT_TRUE(result.all_checks_ok) << result.summary();
  if (result.stop_reason == "l-j<=2") {
    const int floor_bound =
        result.m - static_cast<int>(std::ceil(std::log2(n))) - 2;
    EXPECT_GE(result.j_last, std::max(1, floor_bound)) << result.summary();
  }
  EXPECT_GE(result.registers_covered, result.j_last) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, OneShotBuilderSweep,
                         ::testing::Values(8, 18, 32, 50),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(OneShotBuilder, StepRecordsAreConsistent) {
  const int n = 32;
  auto result = build_oneshot_covering(core::sqrt_oneshot_factory(n), n);
  ASSERT_FALSE(result.steps.empty());
  int prev_j = 0;
  std::size_t prev_len = 0;
  for (const auto& step : result.steps) {
    EXPECT_GT(step.j_after, prev_j);       // j strictly grows
    EXPECT_GE(step.schedule_length, prev_len);
    EXPECT_GE(step.nu, 1);
    if (step.round > 0) {
      EXPECT_TRUE(step.case_kind == 1 || step.case_kind == 2);
      if (step.case_kind == 2) {
        EXPECT_EQ(step.nu, 1);
      }
    }
    prev_j = step.j_after;
    prev_len = step.schedule_length;
  }
  EXPECT_EQ(result.steps.back().j_after, result.j_last);
  // The final schedule replays to a configuration whose covered register
  // count matches the report.
  auto sys = runtime::replay(core::sqrt_oneshot_factory(n), result.schedule);
  EXPECT_EQ(static_cast<int>(std::count_if(
                result.final_ordered_sig.begin(),
                result.final_ordered_sig.end(), [](int s) { return s > 0; })),
            result.registers_covered);
}

TEST(LongLivedBuilder, MaxScanReachesThreeKConfiguration) {
  for (int n : {6, 12, 24, 48}) {
    const int target = n / 2;
    LongLivedBuilderOptions opts;
    opts.recurrence_rounds = 8;
    auto result = build_longlived_covering(
        core::maxscan_factory(n, opts.recurrence_rounds + 4), n, target, opts);
    EXPECT_EQ(result.k_reached, target) << result.summary();
    EXPECT_TRUE(result.is_3k) << result.summary();
    // Theorem 1.1's conclusion: at least floor(n/6) registers covered.
    EXPECT_GE(result.registers_covered, n / 6) << result.summary();
    // For SWMR max-scan every coverer has a distinct register.
    EXPECT_EQ(result.registers_covered, target) << result.summary();
  }
}

TEST(LongLivedBuilder, SignatureRecurrenceFound) {
  // Lemma 3.1: along repeated rounds the finite signature space forces a
  // repeat.
  const int n = 10;
  LongLivedBuilderOptions opts;
  opts.recurrence_rounds = 16;
  auto result = build_longlived_covering(core::maxscan_factory(n, 64), n,
                                         n / 2, opts);
  EXPECT_EQ(result.stop_reason, "signature-repeat") << result.summary();
  ASSERT_GE(result.repeat_second, 0);
  EXPECT_LT(result.repeat_first, result.repeat_second);
  EXPECT_EQ(result.signature_history[static_cast<std::size_t>(
                result.repeat_first)],
            result.signature_history[static_cast<std::size_t>(
                result.repeat_second)]);
}

}  // namespace
