// Tests: the logical-clock lineage (Lamport, vector, matrix clocks) and the
// message-passing event simulator.
#include <gtest/gtest.h>

#include "clocks/lamport_clock.hpp"
#include "clocks/matrix_clock.hpp"
#include "clocks/vector_clock.hpp"
#include "util/rng.hpp"

namespace {

using namespace stamped::clocks;

TEST(LamportClock, TickAndReceive) {
  LamportClock c;
  EXPECT_EQ(c.tick(), 1u);
  EXPECT_EQ(c.tick(), 2u);
  EXPECT_EQ(c.on_receive(10), 11u);
  EXPECT_EQ(c.tick(), 12u);
  EXPECT_EQ(c.on_receive(3), 13u);  // max(13-ish...) stays monotone
}

TEST(MessagePassing, LamportConditionHolds) {
  // Lamport's clock condition: e1 -> e2 implies C(e1) < C(e2).
  MessagePassingRun run(3);
  const int a = run.local(0);
  const int s = run.send(0, 1);
  const int b = run.local(1);
  const int r = run.receive(s);
  const int c = run.local(1);
  const int s2 = run.send(1, 2);
  const int r2 = run.receive(s2);
  const auto& ev = run.events();
  for (int x : {a, s, b, r, c, s2, r2}) {
    for (int y : {a, s, b, r, c, s2, r2}) {
      if (run.happens_before(x, y)) {
        EXPECT_LT(ev[static_cast<std::size_t>(x)].lamport,
                  ev[static_cast<std::size_t>(y)].lamport)
            << x << " -> " << y;
      }
    }
  }
}

TEST(MessagePassing, HappensBeforeBasics) {
  MessagePassingRun run(2);
  const int a = run.local(0);
  const int s = run.send(0, 1);
  const int b = run.local(1);  // concurrent with a and s
  const int r = run.receive(s);
  EXPECT_TRUE(run.happens_before(a, s));
  EXPECT_TRUE(run.happens_before(s, r));
  EXPECT_TRUE(run.happens_before(a, r));
  EXPECT_FALSE(run.happens_before(b, a));
  EXPECT_FALSE(run.happens_before(a, b));
  EXPECT_TRUE(run.happens_before(b, r));  // program order at process 1
  EXPECT_FALSE(run.happens_before(r, b));
}

TEST(VectorClock, CharacterizesHappensBefore) {
  // Vector clocks characterize ->: VC(e1) < VC(e2) iff e1 -> e2. Check on a
  // randomized run against the ground-truth relation.
  stamped::util::Rng rng(77);
  MessagePassingRun run(4);
  std::vector<int> sends;
  for (int step = 0; step < 200; ++step) {
    const auto choice = rng.next_below(3);
    const int pid = static_cast<int>(rng.next_below(4));
    if (choice == 0) {
      run.local(pid);
    } else if (choice == 1) {
      int dst = static_cast<int>(rng.next_below(4));
      if (dst == pid) dst = (dst + 1) % 4;
      sends.push_back(run.send(pid, dst));
    } else if (!sends.empty()) {
      const auto pick = rng.next_below(sends.size());
      run.receive(sends[static_cast<std::size_t>(pick)]);
      sends.erase(sends.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  const auto& ev = run.events();
  int checked = 0;
  for (std::size_t x = 0; x < ev.size(); ++x) {
    for (std::size_t y = 0; y < ev.size(); ++y) {
      if (x == y) continue;
      const VectorClock vx(ev[x].vector_time);
      const VectorClock vy(ev[y].vector_time);
      const bool hb = run.happens_before(static_cast<int>(x),
                                         static_cast<int>(y));
      EXPECT_EQ(VectorClock::before(vx, vy), hb)
          << "events " << x << "," << y;
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);
}

TEST(VectorClock, CompareCases) {
  VectorClock a({1, 2, 3});
  VectorClock b({2, 2, 3});
  VectorClock c({0, 5, 3});
  EXPECT_EQ(VectorClock::compare(a, b), Ordering::kBefore);
  EXPECT_EQ(VectorClock::compare(b, a), Ordering::kAfter);
  EXPECT_EQ(VectorClock::compare(a, c), Ordering::kConcurrent);
  EXPECT_EQ(VectorClock::compare(a, a), Ordering::kEqual);
  EXPECT_EQ(std::string(ordering_name(Ordering::kConcurrent)), "concurrent");
}

TEST(VectorClock, MergeAndTick) {
  VectorClock a(3);
  a.tick(0);
  a.tick(0);
  VectorClock b(3);
  b.tick(1);
  b.merge_and_tick(1, a);
  EXPECT_EQ(b.component(0), 2u);
  EXPECT_EQ(b.component(1), 2u);
  EXPECT_EQ(b.component(2), 0u);
  EXPECT_EQ(b.repr(), "[2 2 0]");
}

TEST(MatrixClock, WatermarkTracksGlobalKnowledge) {
  MatrixClock m0(2), m1(2);
  m0.tick(0);  // p0 event 1
  m0.tick(0);  // p0 event 2
  // p0 sends its matrix to p1.
  m1.merge_and_tick(1, 0, m0);
  EXPECT_EQ(m1.row(1).component(0), 2u);
  // p1's watermark still has row0 knowledge of p1 at 0.
  EXPECT_EQ(m1.watermark().component(1), 0u);
  // p1 replies; p0 learns that p1 knows p0's events.
  m0.merge_and_tick(0, 1, m1);
  EXPECT_EQ(m0.watermark().component(0), 2u);
}

TEST(MatrixClock, WatermarkIsMinOverRows) {
  MatrixClock m(3);
  m.tick(0);
  // Rows for 1 and 2 know nothing yet: watermark all-zero.
  const VectorClock w = m.watermark();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(w.component(i), 0u);
}

}  // namespace
