// The wedge differentials of the combiner-lease protocol (ISSUE 10
// acceptance): the same fault schedule that wedges the sharded service
// under the legacy no-steal semantics completes with clean histories under
// generation-stamped leases — pinned-seed deterministic on the simulator,
// and with real preempted threads (op-hook stall injection) on the native
// backend. Plus restart recovery through the drain-then-publish slot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "api/harness.hpp"
#include "api/registry.hpp"
#include "runtime/scheduler.hpp"
#include "shard/engines.hpp"
#include "shard/sharded_service.hpp"
#include "verify/at_most_once.hpp"

namespace {

using namespace stamped;

// The crash schedule both sides of the sim differential replay: two victims,
// dead within their first 10 own-steps — early enough that (at seed 11,
// deterministically) a victim dies while HOLDING a shard's combiner lease.
runtime::CrashPlan combiner_killer() {
  runtime::CrashPlan plan;
  plan.crashes = 2;
  plan.restart = false;
  plan.max_victim_steps = 10;
  return plan;
}

api::ScenarioSpec differential_spec() {
  api::ScenarioSpec spec;
  spec.n = 6;
  spec.calls_per_process = 3;
  spec.seed = 11;  // pinned: crash hits a lease holder mid-pass; >= 1 pass
                   // is later deposed AND loses claims (zombie coverage)
  spec.shard.shards = 2;
  spec.shard.steal_budget = 12;
  return spec;
}

TEST(ShardWedgeDifferential, CrashedCombinerWedgesWithoutStealing) {
  // Legacy bool-lock semantics (allow_steal = false): the crashed holder
  // keeps its lease forever, every waiter of that shard spins to the step
  // budget, and survivors never finish. Small harness budget so the test
  // demonstrates the wedge without burning 2^32 steps.
  api::ScenarioSpec spec = differential_spec();
  spec.shard.allow_steal = false;
  const auto rep = api::Harness{std::uint64_t{1} << 18}.run_scenario(
      api::family("maxscan"), spec,
      api::crash_restart(combiner_killer()));
  EXPECT_FALSE(rep.survivors_finished)
      << "no-steal config was expected to wedge: " << rep.summary();
  EXPECT_FALSE(rep.all_finished);
  EXPECT_EQ(rep.lease_steals, 0u);
  EXPECT_EQ(rep.steps, std::uint64_t{1} << 18)
      << "a wedged run spins out the whole step budget";
}

TEST(ShardWedgeDifferential, LeasesHealTheSameScheduleOnSim) {
  // Same spec, same seed, same crash plan — only allow_steal differs.
  // Waiters expire the dead holder's budget, steal the lease, and the run
  // completes with every history layer clean, including at-most-once
  // (applied by the harness; claim_losses > 0 proves a deposed pass really
  // interleaved and lost).
  const auto rep = api::Harness{std::uint64_t{1} << 18}.run_scenario(
      api::family("maxscan"), differential_spec(),
      api::crash_restart(combiner_killer()));
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(rep.survivors_finished) << rep.summary();
  EXPECT_GE(rep.lease_steals, 1u) << rep.summary();
  EXPECT_GE(rep.lease_expiries, 1u);
  EXPECT_GE(rep.claim_losses, 1u)
      << "pinned seed was chosen so a deposed pass loses claims: "
      << rep.summary();
}

// Builds a batched single-shard native maxscan instance and installs an op
// hook that parks the FIRST thread observed doing register ops while holding
// the shard's lease — a deterministic stand-in for OS preemption of a
// combiner mid-pass. The park ends when the lease word changes (it was
// stolen) or after a bounded number of yields (the no-steal fallback).
struct NativeStallRun {
  std::unique_ptr<shard::ShardedInstance> inst;
  std::atomic<bool> parked{false};

  explicit NativeStallRun(bool allow_steal) {
    api::ScenarioSpec spec;
    spec.n = 4;
    spec.calls_per_process = 6;
    spec.backend = api::Backend::kNative;
    spec.native_threads = 4;
    spec.shard.shards = 1;
    spec.shard.spin_budget = 4;
    spec.shard.steal_budget = 16;
    spec.shard.allow_steal = allow_steal;
    inst = shard::make_sharded<shard::MaxscanEngine>(spec);
    inst->set_native_op_hook([this](int pid, std::uint64_t) {
      // lease_owner == pid means THIS thread holds the lease (it cannot
      // release while stopped inside its own hook), so the check is stable.
      if (inst->lease_owner(0) != pid) return;
      bool expected = false;
      if (!parked.compare_exchange_strong(expected, true)) return;
      const std::uint64_t held = inst->lease_word(0);
      for (int i = 0; i < 200000 && inst->lease_word(0) == held; ++i) {
        std::this_thread::yield();
      }
    });
  }
};

TEST(ShardWedgeDifferential, NativePreemptedCombinerIsStolenFrom) {
  NativeStallRun run(/*allow_steal=*/true);
  const auto stats = run.inst->run_native(4);
  EXPECT_EQ(stats.calls, 24u);
  ASSERT_TRUE(run.parked.load()) << "hook never caught a lease holder";
  const auto shard_stats = run.inst->shard_stats();
  EXPECT_GE(shard_stats.lease_steals, 1u)
      << "parked combiner was expected to be deposed";
  // Post-hoc history checks: the zombie's late pass must not have
  // double-served or disordered anything.
  EXPECT_TRUE(run.inst->cross_shard_monotonicity().ok());
  const auto composed = run.inst->composed_calls();
  EXPECT_EQ(composed.size(), 24u);
  const auto once = verify::check_at_most_once_service(composed.records);
  EXPECT_TRUE(once.ok()) << once.to_string();
}

TEST(ShardWedgeDifferential, NativeNoStealFallsBackToBoundedPark) {
  // Same stall, stealing disabled: nobody may depose the parked holder, so
  // the lease word never moves and the park ends only through its yield
  // bound. The run still completes (bounded park, not a crash) with zero
  // steals — the differential's control arm on real threads.
  NativeStallRun run(/*allow_steal=*/false);
  const auto stats = run.inst->run_native(4);
  EXPECT_EQ(stats.calls, 24u);
  ASSERT_TRUE(run.parked.load()) << "hook never caught a lease holder";
  const auto shard_stats = run.inst->shard_stats();
  EXPECT_EQ(shard_stats.lease_steals, 0u);
  EXPECT_GE(shard_stats.lease_expiries, 1u)
      << "waiters should at least have counted the stuck holder";
  const auto once =
      verify::check_at_most_once_service(run.inst->composed_calls().records);
  EXPECT_TRUE(once.ok()) << once.to_string();
}

TEST(ShardFaultRecovery, RestartedClientsDrainOrphanedRequests) {
  // Crash WITH restart through the sharded path: a victim that dies between
  // publishing a request and taking its response leaves an orphan in its
  // slot; the restarted program must drain it (wait it out, discard the
  // stale-epoch response) before publishing fresh — adopting it would break
  // cross-shard monotonicity. maxscan only: restarting one-shot programs
  // violates their own-register discipline, same as the unsharded families.
  runtime::CrashPlan plan;
  plan.crashes = 4;
  plan.restart = true;
  plan.restart_delay = 6;
  for (const std::uint64_t seed : {11u, 17u, 29u}) {
    api::ScenarioSpec spec;
    spec.n = 6;
    spec.calls_per_process = 3;
    spec.seed = seed;
    spec.shard.shards = 2;
    spec.shard.steal_budget = 12;
    const auto rep = api::Harness{}.run_scenario(
        api::family("maxscan"), spec, api::crash_restart(plan));
    EXPECT_TRUE(rep.ok()) << "seed=" << seed << ": " << rep.summary();
    EXPECT_TRUE(rep.all_finished) << "seed=" << seed;
    EXPECT_EQ(rep.crashed_down, 0u);
    EXPECT_EQ(rep.restarts, rep.crashes);
  }
}

}  // namespace
