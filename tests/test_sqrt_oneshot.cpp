// Tests: Algorithm 4 (Section 6) — correctness, invariants, space bound,
// phase structure, wait-freedom, the bounded-M generalization, and the
// Section 7 growing variant.
#include <gtest/gtest.h>

#include <tuple>

#include "core/growing_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "util/math.hpp"
#include "verify/hb_checker.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace stamped;
using core::PairTimestamp;

TEST(SqrtOneShot, RegisterAllocationMatchesTheorem13) {
  EXPECT_EQ(core::sqrt_oneshot_registers(1), 2);
  EXPECT_EQ(core::sqrt_oneshot_registers(4), 4);
  EXPECT_EQ(core::sqrt_oneshot_registers(16), 8);
  EXPECT_EQ(core::sqrt_oneshot_registers(100), 20);
  auto sys = core::make_sqrt_oneshot_system(16, nullptr);
  EXPECT_EQ(sys->num_registers(), 8);
}

TEST(SqrtOneShot, SequentialExecutionFollowsPhaseSchema) {
  // Sequential calls: the phase-k starter returns (k, 0) and the j-th
  // invalidator after it returns (k, j) — Section 6.1's sequential analysis.
  const int n = 10;
  runtime::CallLog<PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(n, &log);
  for (int p = 0; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(static_cast<int>(records.size()), n);
  const std::vector<PairTimestamp> expected{
      {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1},
      {3, 2}, {4, 0}, {4, 1}, {4, 2}, {4, 3},
  };
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].ts.rnd,
              expected[static_cast<std::size_t>(i)].rnd) << "call " << i;
    EXPECT_EQ(records[static_cast<std::size_t>(i)].ts.turn,
              expected[static_cast<std::size_t>(i)].turn) << "call " << i;
  }
}

TEST(SqrtOneShot, SequentialSpaceIsSqrtTwoM) {
  // Sequential execution fills phases 1,2,...: after M calls about
  // sqrt(2M) registers are non-bottom — comfortably below ceil(2*sqrt(M)).
  const int n = 50;
  auto sys = core::make_sqrt_oneshot_system(n, nullptr);
  for (int p = 0; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  const int used = sys->registers_written();
  EXPECT_LE(used, core::sqrt_oneshot_registers(n) - 1);  // sentinel untouched
  EXPECT_GE(used, util::isqrt(2 * n) - 1);
}

// Property sweep over (n, seed): correctness + invariants + space bound under
// random schedules, with the invariant checker validating every single step.
class SqrtOneShotProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SqrtOneShotProperty, CorrectInvariantsAndSpace) {
  const auto [n, seed] = GetParam();
  runtime::CallLog<PairTimestamp> log;
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(n, &log, &stats);
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, 1 << 24);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  EXPECT_EQ(checker.steps_checked(), sys->steps_taken());

  // Correctness: the timestamp property.
  ASSERT_EQ(static_cast<int>(log.size()), n);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Space: at most ceil(2*sqrt(n)) registers, sentinel never written.
  EXPECT_LE(sys->registers_written(), core::sqrt_oneshot_registers(n) - 1);
  EXPECT_FALSE(sys->register_written(sys->num_registers() - 1));

  // Phase analysis: Phi < 2*sqrt(M), invalidations <= 2M, Claim 6.8.
  auto analysis = verify::analyze_phases(*sys, stats, n);
  EXPECT_TRUE(analysis.bounds_ok()) << analysis.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SqrtOneShotProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 9, 16, 25, 40, 64),
                       ::testing::Values(11u, 12u, 13u, 14u, 15u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SqrtOneShot, WaitFreeStepBound) {
  // Lemma 6.14: the while-loop <= m-1 iterations, the for-loop <= m-2, and
  // the scan's collects are bounded by interfering writes. We assert a
  // generous concrete bound: every call finishes within O(m * (m + M)) steps.
  for (int n : {8, 32, 64}) {
    core::SqrtStats stats;
    auto sys = core::make_sqrt_oneshot_system(n, nullptr, &stats);
    util::Rng rng(static_cast<std::uint64_t>(1000 + n));
    runtime::run_random(*sys, rng, 1 << 24);
    ASSERT_TRUE(sys->all_finished());
    const std::uint64_t m =
        static_cast<std::uint64_t>(core::sqrt_oneshot_registers(n));
    const std::uint64_t bound =
        4 * m * (m + static_cast<std::uint64_t>(n)) + 64;
    for (const auto& call : stats.calls()) {
      EXPECT_LE(call.steps, bound) << "call by " << call.id.repr();
    }
  }
}

TEST(SqrtOneShot, AdversarialStallersStillCorrect) {
  // Schedule half the processes to the brink of their first write, then let
  // the rest run, then release the stalled writers — exercising the stale
  // invalidation paths (lines 10-12).
  const int n = 16;
  runtime::CallLog<PairTimestamp> log;
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(n, &log, &stats);
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  std::unordered_set<int> nothing;
  for (int p = 0; p < n / 2; ++p) {
    runtime::run_solo_until_poised_outside(*sys, p, nothing, 100000);
  }
  for (int p = n / 2; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  for (int p = 0; p < n / 2; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  runtime::check_no_failures(*sys);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_LE(sys->registers_written(), core::sqrt_oneshot_registers(n) - 1);
}

TEST(SqrtOneShot, BoundedMGeneralization) {
  // M = n * calls per process; IDs are "p.k"; the register budget follows M.
  const int n = 6;
  const int calls = 4;
  runtime::CallLog<PairTimestamp> log;
  core::SqrtStats stats;
  auto sys = core::make_sqrt_bounded_system(n, calls, &log, &stats);
  EXPECT_EQ(sys->num_registers(), core::sqrt_oneshot_registers(n * calls));
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  util::Rng rng(77);
  runtime::run_random(*sys, rng, 1 << 24);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  ASSERT_EQ(static_cast<int>(log.size()), n * calls);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto mono = verify::check_per_process_monotonicity(log.snapshot(),
                                                     core::Compare{});
  EXPECT_TRUE(mono.ok()) << mono.to_string();
  auto analysis = verify::analyze_phases(*sys, stats, n * calls);
  EXPECT_TRUE(analysis.bounds_ok()) << analysis.to_string();
}

TEST(SqrtOneShot, GrowingVariantUnboundedPool) {
  // Section 7: same algorithm, register pool sized by actual invocations.
  const int n = 12;
  runtime::CallLog<PairTimestamp> log;
  auto sys = core::make_growing_oneshot_system(n, &log);
  EXPECT_EQ(sys->num_registers(), core::growing_pool_registers(n));
  util::Rng rng(5);
  runtime::run_random(*sys, rng, 1 << 24);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The pool is larger, but usage stays within the Lemma 6.5 bound.
  EXPECT_LE(sys->registers_written(), core::sqrt_oneshot_registers(n));
}

TEST(SqrtOneShot, AlwaysOverwriteAblationStillCorrect) {
  const int n = 20;
  runtime::CallLog<PairTimestamp> log;
  core::SqrtStats stats;
  // Give the ablated variant a generous register pool: it may exceed the
  // paper's space bound (that is the point of the ablation).
  auto sys = core::make_sqrt_oneshot_system(
      n, &log, &stats, core::growing_pool_registers(n),
      core::SqrtVariant::kAlwaysOverwrite);
  util::Rng rng(123);
  runtime::run_random(*sys, rng, 1 << 24);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SqrtOneShot, ScanCollectCountsRecorded) {
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(8, nullptr, &stats);
  util::Rng rng(9);
  runtime::run_random(*sys, rng, 1 << 22);
  ASSERT_TRUE(sys->all_finished());
  ASSERT_FALSE(stats.scans().empty());
  for (const auto& scan : stats.scans()) {
    EXPECT_GE(scan.collects, 2u);  // a successful double collect needs two
  }
}

}  // namespace
