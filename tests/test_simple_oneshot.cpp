// Tests: the Section 5 simple one-shot algorithm (ceil(n/2) registers).
#include <gtest/gtest.h>

#include <tuple>

#include "core/simple_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

TEST(SimpleOneShot, RegisterCountIsCeilHalfN) {
  EXPECT_EQ(core::simple_oneshot_registers(1), 1);
  EXPECT_EQ(core::simple_oneshot_registers(2), 1);
  EXPECT_EQ(core::simple_oneshot_registers(5), 3);
  EXPECT_EQ(core::simple_oneshot_registers(8), 4);
  auto sys = core::make_simple_oneshot_system(9, nullptr);
  EXPECT_EQ(sys->num_registers(), 5);
}

TEST(SimpleOneShot, PartnersShareARegister) {
  EXPECT_EQ(core::simple_own_register(0), 0);
  EXPECT_EQ(core::simple_own_register(1), 0);
  EXPECT_EQ(core::simple_own_register(2), 1);
  EXPECT_EQ(core::simple_own_register(7), 3);
}

TEST(SimpleOneShot, EveryCallTakesExactlyMPlusTwoSteps) {
  const int n = 6;
  auto sys = core::make_simple_oneshot_system(n, nullptr);
  for (int p = 0; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 1000));
    EXPECT_EQ(sys->steps_taken_by(p),
              static_cast<std::uint64_t>(core::simple_oneshot_registers(n)) + 2)
        << "p=" << p;
  }
}

TEST(SimpleOneShot, SequentialTimestampsStrictlyIncrease) {
  for (int n : {1, 2, 3, 7, 16}) {
    runtime::CallLog<std::int64_t> log;
    auto sys = core::make_simple_oneshot_system(n, &log);
    for (int p = 0; p < n; ++p) {
      ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 1000));
    }
    auto records = log.snapshot();
    ASSERT_EQ(static_cast<int>(records.size()), n);
    for (int i = 1; i < n; ++i) {
      EXPECT_LT(records[static_cast<std::size_t>(i - 1)].ts,
                records[static_cast<std::size_t>(i)].ts)
          << "n=" << n;
    }
    // Sequential execution: the i-th caller reads all previous increments,
    // so timestamps are exactly 1..n.
    EXPECT_EQ(records.back().ts, n);
  }
}

TEST(SimpleOneShot, RegisterValuesStayInZeroOneTwo) {
  const int n = 10;
  auto sys = core::make_simple_oneshot_system(n, nullptr);
  bool ok = true;
  sys->set_observer([&](const runtime::System<std::int64_t>& s,
                        const runtime::TraceEntry<std::int64_t>&) {
    for (int r = 0; r < s.num_registers(); ++r) {
      ok = ok && s.reg_value(r) >= 0 && s.reg_value(r) <= 2;
    }
  });
  util::Rng rng(3);
  runtime::run_random(*sys, rng, 1 << 20);
  EXPECT_TRUE(sys->all_finished());
  EXPECT_TRUE(ok);
}

TEST(SimpleOneShot, TimestampRangeIsBounded) {
  // Every timestamp is a sum of ceil(n/2) registers each in {0,1,2} and
  // includes the caller's own increment, so 1 <= ts <= 2*ceil(n/2).
  const int n = 9;
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_simple_oneshot_system(n, &log);
  util::Rng rng(4);
  runtime::run_random(*sys, rng, 1 << 20);
  ASSERT_TRUE(sys->all_finished());
  for (const auto& r : log.snapshot()) {
    EXPECT_GE(r.ts, 1);
    EXPECT_LE(r.ts, 2 * core::simple_oneshot_registers(n));
  }
}

// NOTE: the (n, seed) property sweep that used to live here is now part of
// the registry-wide conformance suite (test_api_conformance.cpp), which runs
// the same check for every family under every schedule source.

TEST(SimpleOneShot, OnlyAllocatedRegistersAreTouched) {
  for (int n : {2, 5, 12, 33}) {
    auto sys = core::make_simple_oneshot_system(n, nullptr);
    util::Rng rng(static_cast<std::uint64_t>(n));
    runtime::run_random(*sys, rng, 1 << 22);
    ASSERT_TRUE(sys->all_finished());
    EXPECT_EQ(sys->registers_written(), core::simple_oneshot_registers(n));
  }
}

}  // namespace
