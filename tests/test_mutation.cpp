// Mutation test: the paper's Section 6.1 discussion, executed.
//
// "A more serious potential problem due to concurrency occurs when [scan and
// write are not atomic]. ... getTS(b) beginning after getTS(a) completes
// would invalidate R[1] and return timestamp (k, 1), which is incorrect
// because it is less than getTS(a)'s timestamp. This problem is eliminated
// by ensuring that when getTS(a) determines that a register R[i] is invalid,
// it will remain invalid for the duration of the phase [the line 10-11
// overwrite when rnd < myrnd]."
//
// We run the paper's exact interleaving against
//   (a) the kNeverOverwrite mutant — the violation must appear;
//   (b) the real algorithm — the same orchestration must stay correct.
// Notably, 24,000 random-schedule runs of the mutant found no violation
// (measured during development): this interleaving is genuinely surgical,
// which is why the invariant matters.
//
// Cast (n = 8, phase numbers are the paper's 1-based rounds):
//   P0  starts phase 1: writes R1 = <(P0), 1>, returns (1,0)
//   P1  starts phase 2: writes R2 = <(P0,P1), 2>, returns (2,0)
//   P2  "old writer" C: myrnd=2, sees R1 valid, STALLS poised to write
//       R1 = <(C), 2> (the stale line-8 write)
//   P3  D: invalidates R1 = <(D), 2>, returns (2,1)
//   P4  p: slow phase-3 starter; scans BEFORE C's stale write lands
//   P5  q: second phase-3 starter; scans AFTER C's stale write lands
//   P6  a: must return (3,2) — R1 looks invalid to it (mutant: not re-asserted)
//   P7  b: after q's R3 write re-validates R1, returns (3,1) < (3,2) although
//       a completed before b began. VIOLATION (mutant only).
#include <gtest/gtest.h>

#include "core/growing_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;
using core::PairTimestamp;
using core::SqrtVariant;

struct ScenarioResult {
  std::vector<runtime::CallRecord<PairTimestamp>> records;
  bool orchestration_ok = true;
};

// Runs a process solo until its (first) pending write targets register
// `reg` (0-based). The write is not executed.
bool pause_before_write_to(runtime::ISystem& sys, int pid, int reg) {
  std::unordered_set<int> covered;
  for (int r = 0; r < sys.num_registers(); ++r) {
    if (r != reg) covered.insert(r);
  }
  return runtime::run_solo_until_poised_outside(sys, pid, covered, 100000);
}

ScenarioResult run_scenario(SqrtVariant variant) {
  ScenarioResult out;
  const int n = 8;
  runtime::CallLog<PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(
      n, &log, nullptr, core::growing_pool_registers(n), variant);
  auto complete = [&](int pid) {
    // A preceding step() may have resumed the process through to completion
    // (one-shot programs finish right after their last write).
    if (sys->finished(pid)) return;
    out.orchestration_ok &=
        runtime::run_solo_until_calls_complete(*sys, pid, 1, 100000);
  };

  complete(0);                                     // phase 1: R1 written
  complete(1);                                     // phase 2: R2 written
  out.orchestration_ok &= pause_before_write_to(*sys, 2, 0);  // C stalls at R1
  complete(3);                                     // D invalidates R1, (2,1)
  out.orchestration_ok &= pause_before_write_to(*sys, 4, 2);  // p scanned, at R3
  sys->step(2);                                    // C's stale write lands
  complete(2);                                     // C returns (2,1)
  out.orchestration_ok &= pause_before_write_to(*sys, 5, 2);  // q scanned, at R3
  sys->step(4);                                    // p writes R3
  complete(4);                                     // p returns (3,0)
  complete(6);                                     // a — the key witness
  sys->step(5);                                    // q's late R3 write
  complete(5);                                     // q returns (3,0)
  complete(7);                                     // b — the second witness
  runtime::check_no_failures(*sys);
  out.records = log.snapshot();
  return out;
}

PairTimestamp ts_of(const ScenarioResult& r, int pid) {
  for (const auto& rec : r.records) {
    if (rec.pid == pid) return rec.ts;
  }
  ADD_FAILURE() << "no record for pid " << pid;
  return {};
}

TEST(Mutation, NeverOverwriteMutantViolatesExactlyAsThePaperPredicts) {
  auto result = run_scenario(SqrtVariant::kNeverOverwrite);
  ASSERT_TRUE(result.orchestration_ok);
  ASSERT_EQ(result.records.size(), 8u);

  // The witnesses receive the paper's predicted timestamps.
  EXPECT_EQ(ts_of(result, 6), (PairTimestamp{3, 2}));  // a
  EXPECT_EQ(ts_of(result, 7), (PairTimestamp{3, 1}));  // b — too small!

  auto report =
      verify::check_timestamp_property(result.records, core::Compare{});
  EXPECT_FALSE(report.ok())
      << "the mutant should violate the timestamp property";
}

TEST(Mutation, PaperAlgorithmSurvivesTheSameInterleaving) {
  auto result = run_scenario(SqrtVariant::kPaper);
  ASSERT_TRUE(result.orchestration_ok);
  ASSERT_EQ(result.records.size(), 8u);

  // With the line 10-11 re-assertion, a still gets (3,2) but b is pushed to
  // the next round.
  EXPECT_EQ(ts_of(result, 6), (PairTimestamp{3, 2}));  // a
  EXPECT_EQ(ts_of(result, 7), (PairTimestamp{4, 0}));  // b

  auto report =
      verify::check_timestamp_property(result.records, core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Mutation, AlwaysOverwriteSurvivesTheSameInterleaving) {
  auto result = run_scenario(SqrtVariant::kAlwaysOverwrite);
  ASSERT_TRUE(result.orchestration_ok);
  auto report =
      verify::check_timestamp_property(result.records, core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
