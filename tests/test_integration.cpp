// Cross-module integration tests: whole-system scenarios combining the
// algorithms, the adversary machinery, the verification stack, and the
// diagnostics.
#include <gtest/gtest.h>

#include "adversary/covering.hpp"
#include "adversary/oneshot_builder.hpp"
#include "core/growing_oneshot.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace_dump.hpp"
#include "util/grid.hpp"
#include "util/math.hpp"
#include "verify/hb_checker.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace stamped;

TEST(Integration, AdversarialPrefixThenFreeRunStaysCorrect) {
  // Drive the Section 4 adversary for its full construction, then release
  // every paused process under a random schedule; the combined execution
  // must still satisfy the timestamp property and the space bound.
  const int n = 32;
  auto result =
      adversary::build_oneshot_covering(core::sqrt_oneshot_factory(n), n);
  ASSERT_TRUE(result.all_checks_ok) << result.summary();

  // Rebuild with a live log, replay the adversarial schedule, then run free.
  runtime::CallLog<core::PairTimestamp> log;
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(n, &log, &stats);
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  runtime::run_script(*sys, result.schedule);
  util::Rng rng(17);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);

  ASSERT_EQ(static_cast<int>(log.size()), n);
  auto report =
      verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_LE(sys->registers_written(), core::sqrt_oneshot_registers(n) - 1);
  auto analysis = verify::analyze_phases(*sys, stats, n);
  EXPECT_TRUE(analysis.bounds_ok()) << analysis.to_string();
}

TEST(Integration, GrowingVariantManyCallsPerProcess) {
  // Section 7 extension at scale: 8 processes x 16 calls = 128 calls, the
  // register pool grows well past the one-shot allocation but usage stays
  // within ceil(2*sqrt(M)).
  const int n = 8;
  const int calls = 16;
  runtime::CallLog<core::PairTimestamp> log;
  core::SqrtStats stats;
  auto sys = core::make_growing_bounded_system(n, calls, &log, &stats);
  util::Rng rng(5);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 28);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  ASSERT_EQ(static_cast<int>(log.size()), n * calls);
  auto report =
      verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_LE(sys->registers_written(),
            static_cast<int>(core::sqrt_oneshot_registers(n * calls)));
  auto analysis = verify::analyze_phases(*sys, stats, n * calls);
  EXPECT_TRUE(analysis.bounds_ok()) << analysis.to_string();
}

TEST(Integration, TraceDumpRendersExecutions) {
  auto sys = core::make_sqrt_oneshot_system(4, nullptr);
  runtime::run_solo_until_calls_complete(*sys, 0, 1, 100000);
  const std::string trace = runtime::dump_trace(*sys);
  EXPECT_NE(trace.find("p0 read R[0]"), std::string::npos);
  EXPECT_NE(trace.find(":= <[p0.0],1>"), std::string::npos);
  const std::string regs = runtime::dump_registers(*sys);
  EXPECT_NE(regs.find("R[0] = <[p0.0],1>"), std::string::npos);
  const std::string procs = runtime::dump_processes(*sys);
  EXPECT_NE(procs.find("p0: steps="), std::string::npos);
  EXPECT_NE(procs.find("finished"), std::string::npos);
  EXPECT_NE(procs.find("pending=read@R[0]"), std::string::npos);
}

TEST(Integration, TraceDumpTruncatesLongTraces) {
  auto sys = core::make_sqrt_oneshot_system(8, nullptr);
  util::Rng rng(2);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 22);
  const std::string trace = runtime::dump_trace(*sys, 10);
  EXPECT_NE(trace.find("earlier steps"), std::string::npos);
}

TEST(Integration, CoveringDumpShowsPoisedWriters) {
  auto sys = core::make_sqrt_oneshot_system(6, nullptr);
  std::unordered_set<int> nothing;
  ASSERT_TRUE(runtime::run_solo_until_poised_outside(*sys, 0, nothing,
                                                     100000));
  ASSERT_TRUE(runtime::run_solo_until_poised_outside(*sys, 1, nothing,
                                                     100000));
  const std::string regs = runtime::dump_registers(*sys);
  EXPECT_NE(regs.find("covered by {p0 p1}"), std::string::npos);
}

TEST(Integration, GridRendersBuilderSignature) {
  const int n = 24;
  auto result =
      adversary::build_oneshot_covering(core::simple_oneshot_factory(n), n);
  const std::string grid = util::render_covering_grid(
      result.final_ordered_sig, result.l_last, result.j_last - 1);
  EXPECT_NE(grid.find('#'), std::string::npos);
  EXPECT_NE(grid.find("columns = registers"), std::string::npos);
}

TEST(Integration, SequentialThenConcurrentMixedPhases) {
  // Half the processes run sequentially (driving phases deep), then the
  // other half storms in concurrently; bounds and correctness must hold.
  const int n = 24;
  runtime::CallLog<core::PairTimestamp> log;
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(n, &log, &stats);
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  for (int p = 0; p < n / 2; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  util::Rng rng(9);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  auto report =
      verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto analysis = verify::analyze_phases(*sys, stats, n);
  EXPECT_TRUE(analysis.bounds_ok()) << analysis.to_string();
  // The sequential prefix drove at least sqrt(n)-ish phases.
  EXPECT_GE(analysis.phases_started, util::isqrt(n) - 1);
}

}  // namespace
