// Tests: covering vocabulary (signatures, predicates), block writes, and the
// empirical Lemma 2.1 — the core machinery of both lower-bound proofs.
#include <gtest/gtest.h>

#include "adversary/block_write.hpp"
#include "adversary/covering.hpp"
#include "adversary/lemma21.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace stamped;
using namespace stamped::adversary;

// Drives the first `k` processes of a sqrt-oneshot system to their first
// write (they all pile up poised on register 0).
std::unique_ptr<runtime::ISystem> sqrt_with_poised(int n, int k) {
  auto sys = core::sqrt_oneshot_factory(n)();
  std::unordered_set<int> nothing;
  for (int p = 0; p < k; ++p) {
    EXPECT_TRUE(runtime::run_solo_until_poised_outside(*sys, p, nothing,
                                                       100000));
  }
  return sys;
}

TEST(Covering, SignatureCountsPoisedWriters) {
  auto sys = sqrt_with_poised(8, 5);
  const auto sig = signature(*sys);
  // All five paused processes are poised on register 0 (the first phase
  // starter write).
  EXPECT_EQ(sig[0], 5);
  for (std::size_t r = 1; r < sig.size(); ++r) EXPECT_EQ(sig[r], 0);
  EXPECT_EQ(ordered_signature(*sys)[0], 5);
  EXPECT_EQ(covering_pids(*sys, 0), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Covering, R3AndPoisedSets) {
  auto sys = sqrt_with_poised(8, 4);
  EXPECT_EQ(r3_registers(*sys), (std::vector<int>{0}));
  std::unordered_set<int> r0{0};
  EXPECT_EQ(poised_pids(*sys, r0).size(), 4u);
  EXPECT_TRUE(poised_outside(*sys, r0).empty());
  EXPECT_EQ(idle_pids(*sys).size(), 4u);
}

TEST(Covering, ThreeKConfiguration) {
  auto sys = sqrt_with_poised(8, 3);
  EXPECT_TRUE(is_3k_configuration(*sys, 3));
  EXPECT_FALSE(is_3k_configuration(*sys, 2));
  auto sys2 = sqrt_with_poised(8, 4);  // 4 on one register: not a (3,k)
  EXPECT_FALSE(is_3k_configuration(*sys2, 4));
}

TEST(Covering, ConstraintAndFullPredicates) {
  // ordSig (3,2,0): l=4 means allowed heights (3,2,1,0).
  EXPECT_TRUE(is_l_constrained({3, 2, 0}, 4));
  EXPECT_FALSE(is_l_constrained({4, 2, 0}, 4));
  EXPECT_TRUE(is_jk_full({3, 2, 0}, 2, 2));
  EXPECT_FALSE(is_jk_full({3, 2, 0}, 2, 3));
  EXPECT_FALSE(is_jk_full({3, 2, 0}, 0, 1));  // j must be >= 1
  // Diagonal: l=4, sig (3,2,0): j=1 needs s1>=3 (yes), j=2 needs s2>=2 (yes),
  // j=3 needs s3>=1 (no) -> largest is 2.
  EXPECT_EQ(diagonal_column({3, 2, 0}, 4), 2);
  EXPECT_EQ(diagonal_column({0, 0}, 4), 0);
}

TEST(Covering, OrderSignatureSorts) {
  EXPECT_EQ(order_signature({1, 3, 0, 2}), (std::vector<int>{3, 2, 1, 0}));
}

TEST(BlockWrite, ExecutesOneStepEachInPidOrder) {
  auto sys = sqrt_with_poised(8, 3);
  const auto sched = block_write(*sys, {2, 0, 1});
  EXPECT_EQ(sched, (std::vector<int>{0, 1, 2}));
  // After the block write register 0 is non-bottom and the writers moved on.
  EXPECT_TRUE(sys->register_written(0));
  EXPECT_EQ(sys->writes_to(0), 3u);
}

TEST(BlockWrite, RejectsNonPoisedProcess) {
  auto sys = sqrt_with_poised(8, 2);
  // Process 5 is idle; its first pending op is a read, not a write.
  EXPECT_THROW(block_write(*sys, {5}), stamped::invariant_error);
}

TEST(BlockWrite, CoversAllAndDisjointSets) {
  auto sys = sqrt_with_poised(12, 9);
  EXPECT_TRUE(covers_all(*sys, {0, 3, 7}, {0}));
  auto sets = choose_disjoint_covering_sets(*sys, {0}, 3);
  ASSERT_TRUE(sets.has_value());
  EXPECT_EQ(sets->size(), 3u);
  // Disjointness.
  std::unordered_set<int> all;
  for (const auto& s : *sets) {
    for (int pid : s) EXPECT_TRUE(all.insert(pid).second);
  }
  // Too many sets for the coverage must fail.
  auto sys2 = sqrt_with_poised(8, 2);
  EXPECT_FALSE(choose_disjoint_covering_sets(*sys2, {0}, 3).has_value());
}

TEST(Lemma21, HoldsForSqrtAlgorithmFromInitialCovering) {
  // C: processes 0..8 poised on register 0 (after a prefix schedule); B0, B1,
  // B2 three disjoint covering triples; q0 = 9, q1 = 10 idle.
  const int n = 12;
  auto factory = core::sqrt_oneshot_factory(n);
  auto sys = factory();
  std::unordered_set<int> nothing;
  for (int p = 0; p < 9; ++p) {
    ASSERT_TRUE(
        runtime::run_solo_until_poised_outside(*sys, p, nothing, 100000));
  }
  const runtime::Schedule prefix = sys->executed_schedule();
  const std::unordered_set<int> covered{0};
  auto result = test_lemma21(factory, prefix, {0, 1}, {2, 3},
                             covered, 9, 10, 200000);
  EXPECT_TRUE(result.lemma_holds());
  EXPECT_TRUE(result.completed[0]);
  EXPECT_TRUE(result.completed[1]);
}

TEST(Lemma21, HoldsForSimpleAlgorithm) {
  // For the simple algorithm, pause processes 0..5 poised on their own
  // registers (regs 0..2 covered by 2 each); R = {0,1,2}; B sets are built
  // from those writers (each covers all of R? No — each covers only its own
  // register, so B sets must include one writer per register).
  const int n = 16;
  auto factory = core::simple_oneshot_factory(n);
  auto sys = factory();
  std::unordered_set<int> nothing;
  for (int p = 0; p < 6; ++p) {
    ASSERT_TRUE(
        runtime::run_solo_until_poised_outside(*sys, p, nothing, 100000));
  }
  const runtime::Schedule prefix = sys->executed_schedule();
  const std::unordered_set<int> covered{0, 1, 2};
  // B0 = {0, 2, 4} covers regs {0,1,2}; B1 = {1, 3, 5} likewise.
  auto result = test_lemma21(factory, prefix, {0, 2, 4}, {1, 3, 5},
                             covered, 6, 7, 200000);
  EXPECT_TRUE(result.lemma_holds());
}

TEST(Lemma21, SwapObjectsAlsoCount) {
  // Section 7: the one-shot argument extends to historyless objects. The
  // covering machinery treats a pending swap as covering; exercise that path
  // with a toy swap-based program.
  using Sys = runtime::System<std::int64_t>;
  std::vector<Sys::Program> programs;
  for (int p = 0; p < 2; ++p) {
    programs.push_back([](Sys::Ctx& c) -> runtime::ProcessTask {
      (void)co_await c.read(0);
      (void)co_await c.swap(0, c.pid() + 1);
      c.note_call_complete();
    });
  }
  Sys sys(1, 0, std::move(programs));
  sys.step(0);  // read
  EXPECT_TRUE(sys.pending(0).covers(0));
  EXPECT_EQ(sys.pending(0).kind, runtime::OpKind::kSwap);
  EXPECT_EQ(signature(sys)[0], 1);
}

}  // namespace
