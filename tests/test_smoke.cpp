// Smoke test: the full core stack — simulator, schedulers, all three
// timestamp algorithms — on small systems.
#include <gtest/gtest.h>

#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace stamped;

TEST(Smoke, SimpleOneShotSequential) {
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_simple_oneshot_system(4, &log);
  // Run processes to completion one after another (sequential execution).
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 1000));
  }
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Sequential calls must return strictly increasing timestamps.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_TRUE(core::compare(records[i - 1].ts, records[i].ts))
        << records[i - 1].ts << " !< " << records[i].ts;
  }
}

TEST(Smoke, SqrtOneShotSequential) {
  runtime::CallLog<core::PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(6, &log);
  for (int p = 0; p < 6; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 10000));
  }
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 6u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_TRUE(core::compare(records[i - 1].ts, records[i].ts));
    EXPECT_FALSE(core::compare(records[i].ts, records[i - 1].ts));
  }
}

TEST(Smoke, SqrtOneShotRoundRobin) {
  runtime::CallLog<core::PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(8, &log);
  runtime::run_round_robin(*sys, 1'000'000);
  EXPECT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  EXPECT_EQ(log.size(), 8u);
}

TEST(Smoke, MaxScanLongLived) {
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(3, 5, &log);
  util::Rng rng(42);
  runtime::run_random(*sys, rng, 1'000'000);
  EXPECT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  EXPECT_EQ(log.size(), 15u);
}

TEST(Smoke, PendingExposesCovering) {
  auto sys = core::make_simple_oneshot_system(2, nullptr);
  // Process 0 reads R[0] first; after that read it writes R[0].
  auto op0 = sys->pending(0);
  EXPECT_EQ(op0.kind, runtime::OpKind::kRead);
  EXPECT_EQ(op0.reg, 0);
  sys->step(0);
  auto op1 = sys->pending(0);
  EXPECT_EQ(op1.kind, runtime::OpKind::kWrite);
  EXPECT_TRUE(op1.covers(0));
}

}  // namespace
