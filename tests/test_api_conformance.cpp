// The single value-parameterized conformance suite: every family registered
// in api::registry() satisfies the weak timestamp property (paper, Section 2)
// under every schedule source, checked through the family's own comparator
// and pair filter. This replaces the per-family property sweeps that used to
// be hand-wired in test_maxscan / test_simple_oneshot / test_bounded.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/footprint.hpp"
#include "api/harness.hpp"
#include "api/registry.hpp"
#include "util/rng.hpp"
#include "verify/race_detector.hpp"

namespace {

using namespace stamped;

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const auto& fam : api::registry()) names.push_back(fam.name);
  return names;
}

class FamilyConformance : public ::testing::TestWithParam<std::string> {
 protected:
  const api::TimestampFamily& fam() const { return api::family(GetParam()); }

  /// Scenario sizes: one-shot families run one call per process; long-lived
  /// families also run multi-call scenarios. The ranges cover (and slightly
  /// exceed) the per-family sweeps this suite replaced: n up to 64 and 6
  /// calls per process.
  std::vector<api::ScenarioSpec> specs() const {
    std::vector<api::ScenarioSpec> result;
    for (int n : {2, 3, 5, 8, 16, 32, 64}) {
      for (int calls : {1, 3, 6}) {
        api::ScenarioSpec spec;
        spec.n = n;
        spec.calls_per_process = calls;
        if (fam().supports(spec)) result.push_back(spec);
      }
    }
    return result;
  }
};

TEST_P(FamilyConformance, TimestampPropertyUnderDeterministicSchedules) {
  const api::Harness harness;
  for (api::ScenarioSpec spec : specs()) {
    for (const api::ScheduleSource& source :
         {api::round_robin(), api::sequential(), api::staggered(2),
          api::covering_adversary()}) {
      const auto report = harness.run_scenario(fam(), spec, source);
      EXPECT_TRUE(report.ok()) << report.summary();
      EXPECT_TRUE(report.all_finished) << report.summary();
      EXPECT_EQ(report.calls,
                static_cast<std::uint64_t>(spec.total_calls()))
          << report.summary();
    }
  }
}

TEST_P(FamilyConformance, TimestampPropertyUnderRandomSchedules) {
  const api::Harness harness;
  for (api::ScenarioSpec spec : specs()) {
    for (std::uint64_t seed : {101u, 202u, 303u}) {
      spec.seed = seed;
      const auto report =
          harness.run_scenario(fam(), spec, api::seeded_random());
      EXPECT_TRUE(report.ok()) << report.summary();
      EXPECT_TRUE(report.all_finished) << report.summary();
      EXPECT_EQ(report.calls,
                static_cast<std::uint64_t>(spec.total_calls()))
          << report.summary();
    }
  }
}

TEST_P(FamilyConformance, SpaceStaysWithinDeclaredBound) {
  const api::Harness harness;
  for (api::ScenarioSpec spec : specs()) {
    const auto report = harness.run_scenario(fam(), spec,
                                             api::seeded_random(),
                                             api::Checkers::none());
    EXPECT_LE(report.registers_written, report.registers_allocated)
        << report.summary();
  }
}

TEST_P(FamilyConformance, TimestampPropertyInExploredInterleavings) {
  // Model check of the smallest scenario. For the integer-register families
  // the schedule tree fits the budget, so the property is certified in
  // EVERY interleaving (asserted via budget_exhausted); the record-register
  // families (Algorithm 4 variants) have deeper trees and are checked on a
  // budget-capped prefix here — their dedicated exhaustive runs live in
  // test_explorer.cpp / test_bounded.cpp.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  verify::ExploreOptions opts;
  opts.max_executions = 1u << 16;
  const auto report = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.all_finished) << "depth budget hit: "
                                   << report.summary();
  EXPECT_GT(report.executions, 0u);
  const bool record_registers =
      fam().name == "sqrt-oneshot" || fam().name == "growing-oneshot";
  if (!record_registers) {
    EXPECT_FALSE(report.budget_exhausted)
        << "tree no longer fits the budget: " << report.summary();
  }
}

TEST_P(FamilyConformance, PorExplorerVisitsFewerNodesAndAgrees) {
  // The sleep-set reduced tree must certify the same n=2 model check as the
  // full DFS — identical (empty) violation set — while visiting strictly
  // fewer interior nodes. Exception: fetchadd serializes every step through
  // its single counter register, so all transitions are pairwise dependent
  // and no reduction exists; the reduced tree may only match the full one.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  verify::ExploreOptions opts;
  opts.max_executions = 1u << 17;
  const auto full = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));
  opts.por = true;
  const auto reduced = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));

  EXPECT_TRUE(full.ok()) << full.summary();
  EXPECT_TRUE(reduced.ok()) << reduced.summary();
  // The reduced tree must fit comfortably; the full tree may hit the budget
  // on the record-register families (growing-oneshot's pool makes its raw
  // n=2 tree exceed 2^17 executions) — its node count is then a lower bound,
  // which only strengthens the strict comparison below.
  if (fam().name != "growing-oneshot") {
    EXPECT_FALSE(full.budget_exhausted) << full.summary();
  }
  EXPECT_FALSE(reduced.budget_exhausted) << reduced.summary();
  EXPECT_EQ(full.violations, reduced.violations);
  EXPECT_GT(reduced.executions, 0u);
  EXPECT_LE(reduced.executions, full.executions);
  if (fam().name == "fetchadd") {
    EXPECT_EQ(reduced.nodes, full.nodes) << reduced.summary();
  } else {
    EXPECT_LT(reduced.nodes, full.nodes)
        << "POR found no reduction: " << reduced.summary() << " vs "
        << full.summary();
    EXPECT_GT(reduced.sleep_pruned, 0u) << reduced.summary();
  }
}

TEST_P(FamilyConformance, ParallelExplorerMatchesSerial) {
  // The work-stealing parallel DFS must certify exactly the serial result on
  // the n=2 model check of every family: same merged (empty) violation set,
  // same execution and node counts. Run reduced (sleep + persistent sets) so
  // even the record-register families' trees complete within the budget.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  verify::ExploreOptions opts;
  opts.max_executions = 1u << 17;
  opts.por = true;
  opts.persistent = true;
  const auto serial = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));
  spec.explore_threads = 4;  // surfaced through the spec, not the source
  const auto parallel = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));

  EXPECT_TRUE(serial.ok()) << serial.summary();
  EXPECT_TRUE(parallel.ok()) << parallel.summary();
  EXPECT_FALSE(serial.budget_exhausted) << serial.summary();
  EXPECT_FALSE(parallel.budget_exhausted) << parallel.summary();
  EXPECT_EQ(serial.explore_workers, 1) << serial.summary();
  EXPECT_EQ(parallel.explore_workers, 4) << parallel.summary();
  EXPECT_EQ(parallel.executions, serial.executions)
      << parallel.summary() << " vs " << serial.summary();
  EXPECT_EQ(parallel.nodes, serial.nodes)
      << parallel.summary() << " vs " << serial.summary();
  EXPECT_EQ(parallel.sleep_pruned, serial.sleep_pruned);
  EXPECT_EQ(parallel.persistent_deferred, serial.persistent_deferred);
  EXPECT_EQ(parallel.violations, serial.violations);
}

TEST_P(FamilyConformance, PersistentSetsExploreNoMoreNodesAndAgree) {
  // Layering persistent sets on the sleep sets must never grow the tree, and
  // must certify the identical (empty) violation set. fetchadd serializes
  // every step through its single counter register — all pending ops
  // conflict, so the persistent closure is the full candidate set and the
  // trees coincide; every other family must defer at least one branch.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  verify::ExploreOptions opts;
  opts.max_executions = 1u << 17;
  opts.por = true;
  const auto sleep_only = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));
  opts.persistent = true;
  const auto layered = api::Harness{}.run_scenario(
      fam(), spec, api::exhaustive_explorer(opts));

  EXPECT_TRUE(sleep_only.ok()) << sleep_only.summary();
  EXPECT_TRUE(layered.ok()) << layered.summary();
  EXPECT_FALSE(layered.budget_exhausted) << layered.summary();
  EXPECT_EQ(layered.violations, sleep_only.violations);
  EXPECT_LE(layered.nodes, sleep_only.nodes)
      << layered.summary() << " vs " << sleep_only.summary();
  EXPECT_LE(layered.executions, sleep_only.executions);
  if (fam().name == "fetchadd") {
    EXPECT_EQ(layered.nodes, sleep_only.nodes) << layered.summary();
    EXPECT_EQ(layered.persistent_deferred, 0u) << layered.summary();
  } else {
    EXPECT_LT(layered.nodes, sleep_only.nodes)
        << "persistent sets found no reduction: " << layered.summary()
        << " vs " << sleep_only.summary();
    EXPECT_GT(layered.persistent_deferred, 0u) << layered.summary();
  }
}

TEST_P(FamilyConformance, FootprintLintPasses) {
  // Every family declares its register-ownership discipline
  // (api::FootprintSpec); the lint diffs it against observed executions and
  // must come back clean at the sizes the issue pins (n in {2,3,4}).
  for (int n : {2, 3, 4}) {
    for (int calls : {1, 2}) {
      api::ScenarioSpec spec;
      spec.n = n;
      spec.calls_per_process = calls;
      if (!fam().supports(spec)) continue;
      const analysis::LintReport report =
          analysis::lint_footprints(fam(), spec);
      EXPECT_TRUE(report.ok()) << report.to_string();
      EXPECT_GT(report.observed.complete_runs, 0u);
    }
  }
}

TEST_P(FamilyConformance, RaceDetectorCleanOnRecordedTraces) {
  // Every write of a registry family lands inside its declared writer mask,
  // so the ownership race detector must flag nothing on any recorded trace
  // — deterministic or random.
  for (api::ScenarioSpec spec : specs()) {
    if (spec.n > 16) continue;  // keep the battery fast; kinds don't change
    const runtime::SystemFactory make = fam().factory(spec);
    const auto fp = analysis::write_footprints(fam(), spec);

    const auto expect_clean = [&](runtime::ISystem& sys) {
      const verify::RaceCheckResult rc = verify::detect_races(sys, fp.get());
      EXPECT_TRUE(rc.ok())
          << fam().name << " n=" << spec.n
          << " calls=" << spec.calls_per_process << ": "
          << rc.races.front().to_string();
    };

    {
      auto sys = make();
      runtime::run_round_robin(*sys, 1u << 22);
      expect_clean(*sys);
    }
    for (std::uint64_t seed : {1u, 7u, 41u}) {
      auto sys = make();
      util::Rng rng(spec.seed ^ seed);
      runtime::run_random(*sys, rng, 1u << 22);
      expect_clean(*sys);
    }
  }
}

TEST_P(FamilyConformance, ExactFootprintsExploreNoMoreNodesAndAgree) {
  // ExploreOptions::exact_footprints swaps the pending-op persistent-set
  // closure for min(static write-map closure, pending-op closure), so the
  // footprint-driven tree can never branch wider at any node — globally it
  // must visit no more nodes than the heuristic tree, find the identical
  // (empty) violation set, and pass the full-vs-reduced cross-check.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  verify::ExploreOptions opts;
  opts.max_executions = 1u << 17;
  opts.por = true;
  opts.persistent = true;
  const api::Harness harness;
  const auto heuristic =
      harness.run_scenario(fam(), spec, api::exhaustive_explorer(opts));
  opts.exact_footprints = true;
  const auto exact =
      harness.run_scenario(fam(), spec, api::exhaustive_explorer(opts));

  EXPECT_TRUE(heuristic.ok()) << heuristic.summary();
  EXPECT_TRUE(exact.ok()) << exact.summary();
  EXPECT_FALSE(exact.budget_exhausted) << exact.summary();
  EXPECT_EQ(exact.violations, heuristic.violations);
  EXPECT_LE(exact.nodes, heuristic.nodes)
      << exact.summary() << " vs " << heuristic.summary();

  const verify::PorCrossCheck cc = harness.crosscheck_por(
      fam(), spec, api::exhaustive_explorer(opts));
  EXPECT_TRUE(cc.agree())
      << "only_full=" << cc.only_full.size()
      << " only_reduced=" << cc.only_reduced.size();
}

TEST_P(FamilyConformance, TimestampPropertyUnderCrashRestart) {
  // The crash/restart adversary kills processes mid-call; crashed calls
  // never complete, so they never enter the history — the property must hold
  // among the completed calls, and every survivor (never crashed, or
  // restarted) must finish: the wait-freedom obligation. Restart is enabled
  // only for long-lived families: a restarted one-shot process re-runs its
  // call against a register pool sized for the original call count.
  const api::Harness harness;
  runtime::CrashPlan plan;
  plan.crashes = 2;
  plan.restart = fam().lifetime == api::Lifetime::kLongLived;
  std::uint64_t crashes_seen = 0;
  for (api::ScenarioSpec spec : specs()) {
    if (plan.restart && fam().name == "bounded") {
      // Restart re-runs the victim's whole program, so one process can
      // perform up to (crashes+1)*calls_per_process calls — beyond the
      // recycling window the auto modulus K = 2*calls+1 is sized for, where
      // the unconditional property legitimately fails. Size the universe for
      // the inflated count; the recycling regime under crashes is covered by
      // CrashRestartConformance.BoundedLabelRecyclingSurvivesCrashes below.
      spec.universe_bound =
          2 * (plan.crashes + 1) * spec.calls_per_process + 1;
    }
    for (std::uint64_t seed : {41u, 42u}) {
      spec.seed = seed;
      const auto report =
          harness.run_scenario(fam(), spec, api::crash_restart(plan));
      EXPECT_TRUE(report.ok()) << report.summary();
      EXPECT_TRUE(report.survivors_finished) << report.summary();
      EXPECT_EQ(report.all_finished, report.crashed_down == 0)
          << report.summary();
      if (plan.restart) {
        EXPECT_EQ(report.restarts, report.crashes) << report.summary();
      }
      crashes_seen += report.crashes;
    }
  }
  // Wait-freedom may outrun individual crash events (victims finish first),
  // but across the whole grid the adversary must actually have killed.
  EXPECT_GT(crashes_seen, 0u);
}

TEST_P(FamilyConformance, TimestampPropertyUnderJitter) {
  // Stall windows only reorder steps, so every verdict of the clean sources
  // must survive: property holds, everybody finishes, every call completes.
  const api::Harness harness;
  std::uint64_t stalls_seen = 0;
  for (api::ScenarioSpec spec : specs()) {
    const auto report = harness.run_scenario(fam(), spec, api::jittered());
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.all_finished) << report.summary();
    EXPECT_EQ(report.calls,
              static_cast<std::uint64_t>(spec.total_calls()))
        << report.summary();
    EXPECT_GE(report.ticks, report.steps) << report.summary();
    stalls_seen += report.stalls;
  }
  // Small scenarios may dodge every Bernoulli stall; the grid must not.
  EXPECT_GT(stalls_seen, 0u);
}

TEST_P(FamilyConformance, TimestampPropertyUnderCoverageFuzzer) {
  // Every fuzzed execution is a legal schedule, so every execution must pass
  // the checkers; the search must reach interleaving signatures and retain
  // mutation parents.
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = fam().max_calls_per_process == 0 ? 2 : 1;
  const auto report = api::Harness{}.run_scenario(
      fam(), spec, api::coverage_fuzzer(/*seed=*/7, /*budget=*/24));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.all_finished) << report.summary();
  EXPECT_EQ(report.executions, 24u);
  EXPECT_GT(report.coverage_signatures, 0u) << report.summary();
  EXPECT_GE(report.corpus_size, 1u) << report.summary();
  EXPECT_EQ(report.calls, 24u * static_cast<std::uint64_t>(
                                    spec.total_calls()))
      << report.summary();
}

TEST_P(FamilyConformance, NativeBackendSatisfiesProperty) {
  // The native backend is a first-class peer of the simulator: the same
  // scenario grid, run on real OS threads over AtomicMemory, with the
  // recorded history checked by the identical property checkers. Interleaving
  // comes from the OS scheduler, so repeat each spec a few times; n is capped
  // (real threads per run are bounded by native_threads anyway, and the
  // property/checker machinery is size-agnostic).
  const api::Harness harness;
  for (api::ScenarioSpec spec : specs()) {
    if (spec.n > 16) continue;  // keep the battery fast; kinds don't change
    spec.backend = api::Backend::kNative;
    spec.native_threads = 4;
    for (int trial = 0; trial < 3; ++trial) {
      const auto report = harness.run_scenario(fam(), spec, api::native_os());
      EXPECT_TRUE(report.ok()) << fam().name << ": " << report.summary();
      EXPECT_TRUE(report.all_finished) << report.summary();
      EXPECT_EQ(report.calls,
                static_cast<std::uint64_t>(spec.total_calls()))
          << report.summary();
      EXPECT_EQ(report.native_threads, std::min(4, spec.n))
          << report.summary();
      std::uint64_t thread_sum = 0;
      for (const std::uint64_t c : report.native_thread_calls) {
        thread_sum += c;
      }
      EXPECT_EQ(thread_sum, report.calls) << report.summary();
      EXPECT_EQ(report.retired_nodes, 0u) << report.summary();
    }
  }
}

TEST(CrashRestartConformance, BoundedLabelRecyclingSurvivesCrashes) {
  // The bounded family's mod-K label recycling under the crash/restart
  // adversary: a deliberately small universe keeps the run in the recycling
  // regime (wraps fire, the windowed pair filter engages) while victims die
  // mid-call and return with fresh local state. The windowed property must
  // hold across crash, wrap and restart combined.
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 8;
  spec.universe_bound = 3;
  runtime::CrashPlan plan;
  plan.crashes = 2;
  plan.restart = true;
  plan.max_victim_steps = 12;
  std::uint64_t restarts = 0;
  std::int64_t wraps = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    spec.seed = seed;
    const auto report = api::Harness{}.run_scenario(
        api::family("bounded"), spec, api::crash_restart(plan));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.survivors_finished) << report.summary();
    restarts += report.restarts;
    for (const auto& [key, value] : report.metrics) {
      if (key == "wraps") wraps += value;
    }
  }
  EXPECT_GT(restarts, 0u) << "no victim ever restarted across the seeds";
  EXPECT_GT(wraps, 0) << "no execution ever recycled a label";
}

TEST_P(FamilyConformance, ReplayFactoryIsDeterministic) {
  // The registry factory must clone configurations by replay: two systems
  // stepped through the same schedule report identical register files.
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = fam().max_calls_per_process == 0 ? 2 : 1;
  const runtime::SystemFactory factory = fam().factory(spec);
  auto a = factory();
  auto b = factory();
  util::Rng rng(9);
  runtime::run_random(*a, rng, 1u << 16);
  runtime::run_script(*b, a->executed_schedule());
  ASSERT_EQ(a->num_registers(), b->num_registers());
  for (int r = 0; r < a->num_registers(); ++r) {
    EXPECT_EQ(a->register_repr(r), b->register_repr(r)) << "register " << r;
  }
}

TEST(BoundedWindowedConformance, RecyclingRegimeEngagesThePairFilter) {
  // A deliberately small universe (K = 3 < 2*calls + 1) puts the bounded
  // family in the recycling regime: labels wrap, and the registry must wire
  // the windowed pair filter into the erased log so ordered pairs outside
  // the window are released from their obligation (mirrors the typed test
  // BoundedRecycling.LongRunWrapsAndSatisfiesWindowedProperty).
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 8;
  spec.universe_bound = 3;
  const auto report = api::Harness{}.run_scenario(
      api::family("bounded"), spec, api::round_robin());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.all_finished) << report.summary();
  EXPECT_GT(report.filtered_pairs, 0u)
      << "the windowed pair filter never fired: " << report.summary();
  std::int64_t wraps = 0;
  for (const auto& [key, value] : report.metrics) {
    if (key == "wraps") wraps = value;
  }
  EXPECT_GT(wraps, 0) << "execution never recycled a label: "
                      << report.summary();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyConformance,
                         ::testing::ValuesIn(family_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
