// Tests: Harness::run_scenario_sweep — the parallel scenario grid runner.
//
// Replay determinism is the property that makes the sweep safe: every worker
// owns its own System, so the per-spec reports must be byte-identical to a
// serial loop of run_scenario calls, whatever the worker interleaving.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/harness.hpp"
#include "api/registry.hpp"

namespace {

using namespace stamped;

std::vector<api::ScenarioSpec> maxscan_grid() {
  std::vector<api::ScenarioSpec> grid;
  for (int n : {2, 3, 5, 8}) {
    for (int calls : {1, 3}) {
      for (std::uint64_t seed : {11u, 22u}) {
        api::ScenarioSpec spec;
        spec.n = n;
        spec.calls_per_process = calls;
        spec.seed = seed;
        grid.push_back(spec);
      }
    }
  }
  return grid;
}

TEST(ScenarioSweep, MatchesSerialRunsExactly) {
  const api::Harness harness;
  const auto grid = maxscan_grid();
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::seeded_random(), {}, 4);
  ASSERT_EQ(sweep.reports.size(), grid.size());
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  EXPECT_EQ(sweep.workers, 4);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto serial = harness.run_scenario(api::family("maxscan"), grid[i],
                                             api::seeded_random());
    EXPECT_EQ(sweep.reports[i].summary(), serial.summary()) << i;
    EXPECT_EQ(sweep.reports[i].steps, serial.steps) << i;
    EXPECT_EQ(sweep.reports[i].registers_written, serial.registers_written)
        << i;
  }
}

TEST(ScenarioSweep, AggregatesTotals) {
  const api::Harness harness;
  const auto grid = maxscan_grid();
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::round_robin(), {}, 3);
  std::uint64_t steps = 0;
  std::uint64_t calls = 0;
  for (const auto& rep : sweep.reports) {
    steps += rep.steps;
    calls += rep.calls;
  }
  EXPECT_EQ(sweep.total_steps, steps);
  EXPECT_EQ(sweep.total_calls, calls);
  EXPECT_EQ(sweep.scenarios_failed, 0u);
  EXPECT_GT(sweep.total_calls, 0u);
}

TEST(ScenarioSweep, WorkerCountDefaultsAndClamps) {
  const api::Harness harness;
  std::vector<api::ScenarioSpec> grid(2);
  grid[0].n = 2;
  grid[1].n = 3;
  // More workers than specs: clamped to the grid size.
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::round_robin(), {}, 16);
  EXPECT_EQ(sweep.workers, 2);
  EXPECT_TRUE(sweep.ok());
  // Empty grid: no workers, empty report.
  const auto empty = harness.run_scenario_sweep(
      api::family("maxscan"), {}, api::round_robin());
  EXPECT_TRUE(empty.reports.empty());
  EXPECT_TRUE(empty.ok());
}

TEST(ScenarioSweep, CountsOnlyRecordingKeepsCheckersWorking) {
  // kCountsOnly skips the System's per-step bookkeeping but the CallLog is
  // program-level, so the history checkers still see every call.
  const api::Harness harness;
  std::vector<api::ScenarioSpec> grid;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    api::ScenarioSpec spec;
    spec.n = 4;
    spec.calls_per_process = 3;
    spec.seed = seed;
    spec.recording = runtime::RecordingMode::kCountsOnly;
    grid.push_back(spec);
  }
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::seeded_random(), {}, 2);
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  for (const auto& rep : sweep.reports) {
    EXPECT_TRUE(rep.all_finished) << rep.summary();
    EXPECT_GT(rep.ordered_pairs, 0u) << rep.summary();
  }
}

TEST(ScenarioSweep, ExhaustiveSourceRejectsCountsOnlyRecording) {
  // The explorer needs full recording (prefix replay, views); the conflict
  // must be rejected loudly, not silently run in kFull.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.recording = runtime::RecordingMode::kCountsOnly;
  EXPECT_THROW(static_cast<void>(api::Harness{}.run_scenario(
                   api::family("simple-oneshot"), spec,
                   api::exhaustive_explorer())),
               invariant_error);
}

TEST(ScenarioSweep, ExhaustiveSourceSweepsInParallel) {
  // The explorer source also fans out: each worker runs its own exploration.
  const api::Harness harness;
  std::vector<api::ScenarioSpec> grid;
  for (int n : {2, 2, 2}) {
    api::ScenarioSpec spec;
    spec.n = n;
    grid.push_back(spec);
  }
  verify::ExploreOptions opts;
  opts.por = true;
  const auto sweep = harness.run_scenario_sweep(
      api::family("simple-oneshot"), grid, api::exhaustive_explorer(opts), {},
      3);
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  for (const auto& rep : sweep.reports) {
    EXPECT_GT(rep.executions, 0u);
    EXPECT_GT(rep.nodes, 0u);
  }
}

}  // namespace
