// Tests: Harness::run_scenario_sweep — the parallel scenario grid runner.
//
// Replay determinism is the property that makes the sweep safe: every worker
// owns its own System, so the per-spec reports must be byte-identical to a
// serial loop of run_scenario calls, whatever the worker interleaving.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/harness.hpp"
#include "api/registry.hpp"

namespace {

using namespace stamped;

std::vector<api::ScenarioSpec> maxscan_grid() {
  std::vector<api::ScenarioSpec> grid;
  for (int n : {2, 3, 5, 8}) {
    for (int calls : {1, 3}) {
      for (std::uint64_t seed : {11u, 22u}) {
        api::ScenarioSpec spec;
        spec.n = n;
        spec.calls_per_process = calls;
        spec.seed = seed;
        grid.push_back(spec);
      }
    }
  }
  return grid;
}

TEST(ScenarioSweep, MatchesSerialRunsExactly) {
  const api::Harness harness;
  const auto grid = maxscan_grid();
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::seeded_random(), {}, 4);
  ASSERT_EQ(sweep.reports.size(), grid.size());
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  EXPECT_EQ(sweep.workers, 4);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto serial = harness.run_scenario(api::family("maxscan"), grid[i],
                                             api::seeded_random());
    EXPECT_EQ(sweep.reports[i].summary(), serial.summary()) << i;
    EXPECT_EQ(sweep.reports[i].steps, serial.steps) << i;
    EXPECT_EQ(sweep.reports[i].registers_written, serial.registers_written)
        << i;
  }
}

TEST(ScenarioSweep, AggregatesTotals) {
  const api::Harness harness;
  const auto grid = maxscan_grid();
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::round_robin(), {}, 3);
  std::uint64_t steps = 0;
  std::uint64_t calls = 0;
  for (const auto& rep : sweep.reports) {
    steps += rep.steps;
    calls += rep.calls;
  }
  EXPECT_EQ(sweep.total_steps, steps);
  EXPECT_EQ(sweep.total_calls, calls);
  EXPECT_EQ(sweep.scenarios_failed, 0u);
  EXPECT_GT(sweep.total_calls, 0u);
}

TEST(ScenarioSweep, WorkerCountDefaultsAndClamps) {
  const api::Harness harness;
  std::vector<api::ScenarioSpec> grid(2);
  grid[0].n = 2;
  grid[1].n = 3;
  // More workers than specs: clamped to the grid size.
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::round_robin(), {}, 16);
  EXPECT_EQ(sweep.workers, 2);
  EXPECT_TRUE(sweep.ok());
  // Empty grid: no workers, empty report.
  const auto empty = harness.run_scenario_sweep(
      api::family("maxscan"), {}, api::round_robin());
  EXPECT_TRUE(empty.reports.empty());
  EXPECT_TRUE(empty.ok());
}

TEST(ScenarioSweep, CountsOnlyRecordingKeepsCheckersWorking) {
  // kCountsOnly skips the System's per-step bookkeeping but the CallLog is
  // program-level, so the history checkers still see every call.
  const api::Harness harness;
  std::vector<api::ScenarioSpec> grid;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    api::ScenarioSpec spec;
    spec.n = 4;
    spec.calls_per_process = 3;
    spec.seed = seed;
    spec.recording = runtime::RecordingMode::kCountsOnly;
    grid.push_back(spec);
  }
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::seeded_random(), {}, 2);
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  for (const auto& rep : sweep.reports) {
    EXPECT_TRUE(rep.all_finished) << rep.summary();
    EXPECT_GT(rep.ordered_pairs, 0u) << rep.summary();
  }
}

TEST(ScenarioSweep, ExhaustiveSourceRejectsCountsOnlyRecording) {
  // The explorer needs full recording (prefix replay, views); the conflict
  // must be rejected loudly, not silently run in kFull.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.recording = runtime::RecordingMode::kCountsOnly;
  EXPECT_THROW(static_cast<void>(api::Harness{}.run_scenario(
                   api::family("simple-oneshot"), spec,
                   api::exhaustive_explorer())),
               invariant_error);
}

/// Field-by-field equality of two ScenarioReports — "byte-identical" spelled
/// out so a mismatch names the drifting field instead of dumping structs.
void expect_identical_reports(const api::ScenarioReport& a,
                              const api::ScenarioReport& b) {
  EXPECT_EQ(a.family, b.family);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.all_finished, b.all_finished);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.registers_allocated, b.registers_allocated);
  EXPECT_EQ(a.registers_written, b.registers_written);
  EXPECT_EQ(a.ordered_pairs, b.ordered_pairs);
  EXPECT_EQ(a.concurrent_pairs, b.concurrent_pairs);
  EXPECT_EQ(a.filtered_pairs, b.filtered_pairs);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.crashed_down, b.crashed_down);
  EXPECT_EQ(a.survivors_finished, b.survivors_finished);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.coverage_signatures, b.coverage_signatures);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.sleep_pruned, b.sleep_pruned);
  EXPECT_EQ(a.persistent_deferred, b.persistent_deferred);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(AdversaryDeterminism, SameSpecAndSeedSameReportBytes) {
  // The adversarial sources' contract: same ScenarioSpec + seed => identical
  // ScenarioReport, for every family and all three new sources. All their
  // randomness flows through the single seeded rng, so two runs must agree
  // in every field (explore_workers excluded: it is an explorer-only field
  // and stays 0 here).
  const api::Harness harness;
  runtime::CrashPlan plan;
  plan.crashes = 2;
  const std::vector<api::ScheduleSource> sources = {
      api::crash_restart(plan), api::jittered(),
      api::coverage_fuzzer(/*seed=*/3, /*budget=*/12)};
  for (const auto& fam : api::registry()) {
    api::ScenarioSpec spec;
    spec.n = 4;
    spec.calls_per_process = fam.max_calls_per_process == 0 ? 3 : 1;
    spec.seed = 99;
    for (const auto& source : sources) {
      const auto first = harness.run_scenario(fam, spec, source);
      const auto second = harness.run_scenario(fam, spec, source);
      SCOPED_TRACE(fam.name + " x " + source.name);
      expect_identical_reports(first, second);
    }
  }
}

TEST(AdversaryDeterminism, CrashRestartDeterministicWithRestarts) {
  // Restart resets coroutine-local state; the report must still be a pure
  // function of (spec, seed, plan) — fresh frames may not leak any
  // run-to-run nondeterminism.
  runtime::CrashPlan plan;
  plan.crashes = 3;
  plan.restart = true;
  plan.restart_delay = 5;
  api::ScenarioSpec spec;
  spec.n = 5;
  spec.calls_per_process = 4;
  spec.seed = 1234;
  const auto first = api::Harness{}.run_scenario(
      api::family("maxscan"), spec, api::crash_restart(plan));
  const auto second = api::Harness{}.run_scenario(
      api::family("maxscan"), spec, api::crash_restart(plan));
  expect_identical_reports(first, second);
  EXPECT_GT(first.crashes, 0u) << first.summary();
}

TEST(AdversaryDeterminism, ExhaustiveReportInvariantAcrossExploreThreads) {
  // The parallel explorer merges per-worker results into set-derived counts,
  // so the report must not depend on the worker count (explore_workers, the
  // pool-size field itself, is the only legitimate difference).
  verify::ExploreOptions opts;
  opts.por = true;
  opts.persistent = true;
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  api::ScenarioReport baseline;
  bool have_baseline = false;
  for (int threads : {1, 2, 4}) {
    spec.explore_threads = threads;
    auto report = api::Harness{}.run_scenario(
        api::family("maxscan"), spec, api::exhaustive_explorer(opts));
    EXPECT_EQ(report.explore_workers, threads);
    report.explore_workers = 0;  // normalize the pool-size field
    if (!have_baseline) {
      baseline = report;
      have_baseline = true;
      continue;
    }
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical_reports(baseline, report);
  }
}

TEST(PorCrossCheckSource, ExhaustiveSourceCertifies) {
  // The harness-level cross-check runs the full and reduced trees from the
  // family's own factory and they must agree on the (empty) violation set.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  verify::ExploreOptions opts;
  opts.persistent = true;
  const auto cross = api::Harness{}.crosscheck_por(
      api::family("maxscan"), spec, api::exhaustive_explorer(opts));
  EXPECT_TRUE(cross.agree());
  EXPECT_TRUE(cross.full.ok());
  EXPECT_TRUE(cross.reduced.ok());
  EXPECT_GT(cross.full.executions, 0u);
}

TEST(PorCrossCheckSource, AdversarialSourcesRejectedLoudly) {
  // crosscheck_por certifies the exhaustive tree; handing it any adversarial
  // or driver source must throw, not silently "pass" a check that never ran.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  const api::Harness harness;
  for (const api::ScheduleSource& source :
       {api::crash_restart(), api::jittered(), api::coverage_fuzzer(1, 4),
        api::round_robin(), api::seeded_random()}) {
    SCOPED_TRACE(source.name);
    EXPECT_THROW(static_cast<void>(harness.crosscheck_por(
                     api::family("maxscan"), spec, source)),
                 invariant_error);
  }
}

TEST(ScenarioSweep, AdversarialSourcesSweepInParallel) {
  // The new sources compose with the parallel grid runner like any other:
  // per-spec reports identical to serial runs, in any worker interleaving.
  const api::Harness harness;
  const auto grid = maxscan_grid();
  runtime::CrashPlan plan;
  plan.crashes = 1;
  plan.restart = true;
  const auto sweep = harness.run_scenario_sweep(
      api::family("maxscan"), grid, api::crash_restart(plan), {}, 4);
  ASSERT_EQ(sweep.reports.size(), grid.size());
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto serial = harness.run_scenario(api::family("maxscan"), grid[i],
                                             api::crash_restart(plan));
    EXPECT_EQ(sweep.reports[i].summary(), serial.summary()) << i;
  }
}

TEST(ScenarioSweep, FuzzerSourceRejectsCountsOnlyRecording) {
  // Coverage signatures come from the step-info log, which kCountsOnly
  // discards; the conflict must be rejected loudly.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.recording = runtime::RecordingMode::kCountsOnly;
  EXPECT_THROW(static_cast<void>(api::Harness{}.run_scenario(
                   api::family("simple-oneshot"), spec,
                   api::coverage_fuzzer(1, 4))),
               invariant_error);
}

TEST(ScenarioSweep, ExhaustiveSourceSweepsInParallel) {
  // The explorer source also fans out: each worker runs its own exploration.
  const api::Harness harness;
  std::vector<api::ScenarioSpec> grid;
  for (int n : {2, 2, 2}) {
    api::ScenarioSpec spec;
    spec.n = n;
    grid.push_back(spec);
  }
  verify::ExploreOptions opts;
  opts.por = true;
  const auto sweep = harness.run_scenario_sweep(
      api::family("simple-oneshot"), grid, api::exhaustive_explorer(opts), {},
      3);
  EXPECT_TRUE(sweep.ok()) << sweep.summary();
  for (const auto& rep : sweep.reports) {
    EXPECT_GT(rep.executions, 0u);
    EXPECT_GT(rep.nodes, 0u);
  }
}

}  // namespace
