// Unit tests: call logs, the happens-before relation, and the timestamp
// property checker (including that it *detects* violations).
#include <gtest/gtest.h>

#include "core/timestamp.hpp"
#include "runtime/history.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;
using runtime::CallRecord;

CallRecord<std::int64_t> rec(int pid, int call, std::int64_t ts,
                             std::uint64_t inv, std::uint64_t resp) {
  return {pid, call, ts, inv, resp};
}

TEST(History, HappensBeforeIsResponseBeforeInvocation) {
  auto a = rec(0, 0, 1, 1, 5);
  auto b = rec(1, 0, 2, 6, 9);
  auto c = rec(2, 0, 3, 4, 8);  // overlaps a
  EXPECT_TRUE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
  EXPECT_FALSE(a.happens_before(c));
  EXPECT_FALSE(c.happens_before(a));
}

TEST(History, CallLogRecordsAndSnapshots) {
  runtime::CallLog<std::int64_t> log;
  log.record(rec(0, 0, 7, 1, 2));
  log.record(rec(1, 0, 8, 3, 4));
  EXPECT_EQ(log.size(), 2u);
  auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[1].ts, 8);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(History, CallLogRejectsEmptyInterval) {
  runtime::CallLog<std::int64_t> log;
  EXPECT_THROW(log.record(rec(0, 0, 1, 5, 5)), stamped::invariant_error);
}

TEST(HbChecker, AcceptsCorrectHistory) {
  std::vector<CallRecord<std::int64_t>> records{
      rec(0, 0, 1, 1, 2), rec(1, 0, 2, 3, 4), rec(2, 0, 3, 5, 6),
      rec(3, 0, 3, 5, 7),  // concurrent with the previous, equal ts is fine
  };
  auto report = verify::check_timestamp_property(records, core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.ordered_pairs_checked, 0u);
  EXPECT_GT(report.concurrent_pairs, 0u);
}

TEST(HbChecker, DetectsOrderViolation) {
  // b happens after a but got a smaller timestamp.
  std::vector<CallRecord<std::int64_t>> records{rec(0, 0, 5, 1, 2),
                                                rec(1, 0, 4, 3, 4)};
  auto report = verify::check_timestamp_property(records, core::Compare{});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 2u);  // !compare(t1,t2) and compare(t2,t1)
}

TEST(HbChecker, DetectsEqualTimestampsOnOrderedPair) {
  std::vector<CallRecord<std::int64_t>> records{rec(0, 0, 5, 1, 2),
                                                rec(1, 0, 5, 3, 4)};
  auto report = verify::check_timestamp_property(records, core::Compare{});
  EXPECT_FALSE(report.ok());
}

TEST(HbChecker, PairTimestampLexicographic) {
  using core::PairTimestamp;
  std::vector<CallRecord<PairTimestamp>> records{
      {0, 0, PairTimestamp{1, 0}, 1, 2},
      {1, 0, PairTimestamp{1, 1}, 3, 4},
      {2, 0, PairTimestamp{2, 0}, 5, 6},
  };
  auto report = verify::check_timestamp_property(records, core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(HbChecker, PerProcessMonotonicity) {
  std::vector<CallRecord<std::int64_t>> good{rec(0, 0, 1, 1, 2),
                                             rec(0, 1, 2, 3, 4)};
  EXPECT_TRUE(
      verify::check_per_process_monotonicity(good, core::Compare{}).ok());
  std::vector<CallRecord<std::int64_t>> bad{rec(0, 0, 2, 1, 2),
                                            rec(0, 1, 1, 3, 4)};
  EXPECT_FALSE(
      verify::check_per_process_monotonicity(bad, core::Compare{}).ok());
}

TEST(HbChecker, MonotonicityCollectsAllViolationsWithValues) {
  // Process 0 decreases twice (3 -> 2 -> 1): three violating index pairs
  // (0,1), (0,2), (1,2). Process 1 is fine and contributes none.
  std::vector<CallRecord<std::int64_t>> records{
      rec(0, 0, 3, 1, 2), rec(0, 1, 2, 3, 4), rec(0, 2, 1, 5, 6),
      rec(1, 0, 1, 1, 2), rec(1, 1, 2, 3, 4),
  };
  auto report =
      verify::check_per_process_monotonicity(records, core::Compare{});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 3u);
  // Every message names both offending timestamps.
  EXPECT_NE(report.violations[0].find("!compare(3, 2)"), std::string::npos)
      << report.violations[0];
  EXPECT_NE(report.violations[2].find("!compare(2, 1)"), std::string::npos)
      << report.violations[2];
}

TEST(HbChecker, PropertyViolationMessagesIncludeTimestamps) {
  std::vector<CallRecord<std::int64_t>> records{rec(0, 0, 5, 1, 2),
                                                rec(1, 0, 4, 3, 4)};
  auto report = verify::check_timestamp_property(records, core::Compare{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find(")=5"), std::string::npos)
      << report.violations[0];
  EXPECT_NE(report.violations[0].find(")=4"), std::string::npos)
      << report.violations[0];
}

TEST(HbChecker, FilteredPairsCarryNoObligation) {
  // Same decreasing pair as DetectsOrderViolation, but the filter releases
  // every ordered pair — the report stays clean and counts the release.
  std::vector<CallRecord<std::int64_t>> records{rec(0, 0, 5, 1, 2),
                                                rec(1, 0, 4, 3, 4)};
  auto release_all = [](const CallRecord<std::int64_t>&,
                        const CallRecord<std::int64_t>&) { return false; };
  auto report = verify::check_timestamp_property_filtered(
      records, core::Compare{}, release_all);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.ordered_pairs_checked, 0u);
  EXPECT_EQ(report.filtered_pairs, 1u);
}

TEST(Schedule, ToStringAndParseRoundTrip) {
  const std::vector<int> sched{0, 3, 1, 1, 2};
  const std::string text = runtime::schedule_to_string(sched);
  EXPECT_EQ(runtime::parse_schedule(text), sched);
}

TEST(Schedule, ToStringTruncatesLongSchedules) {
  std::vector<int> sched(100, 1);
  const std::string text = runtime::schedule_to_string(sched, 10);
  EXPECT_NE(text.find("+90"), std::string::npos);
}

TEST(Schedule, ParseRejectsGarbage) {
  EXPECT_THROW(runtime::parse_schedule("1 2 x"), stamped::invariant_error);
  EXPECT_THROW(runtime::parse_schedule("-4"), stamped::invariant_error);
}

TEST(Timestamp, ReprFormats) {
  EXPECT_EQ((core::TsId{3, 2}).repr(), "p3.2");
  EXPECT_EQ((core::PairTimestamp{4, 1}).repr(), "(4,1)");
  EXPECT_EQ(core::TsRecord::bottom().repr(), "⊥");
  auto rec2 = core::TsRecord::make({{1, 0}, {2, 0}}, 2);
  EXPECT_EQ(rec2.repr(), "<[p1.0 p2.0],2>");
  EXPECT_EQ(rec2.last(), (core::TsId{2, 0}));
}

TEST(Timestamp, CompareAlgorithm3) {
  using core::PairTimestamp;
  EXPECT_TRUE(core::compare(PairTimestamp{1, 5}, PairTimestamp{2, 0}));
  EXPECT_TRUE(core::compare(PairTimestamp{2, 0}, PairTimestamp{2, 1}));
  EXPECT_FALSE(core::compare(PairTimestamp{2, 1}, PairTimestamp{2, 1}));
  EXPECT_FALSE(core::compare(PairTimestamp{2, 1}, PairTimestamp{2, 0}));
  EXPECT_FALSE(core::compare(PairTimestamp{3, 0}, PairTimestamp{2, 9}));
}

}  // namespace
