// The coverage-guided schedule fuzzer: unit tests for the op-pair coverage
// map, plus the seeded-bug differential — a test-local bounded variant with a
// planted label-recycling bug that fair schedules never trip, which the
// fuzzer must find within a fixed budget. A same-budget seeded-random sweep
// runs for comparison but carries no obligation to find it: that asymmetry
// is the point of coverage guidance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/harness.hpp"
#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/system.hpp"
#include "verify/coverage.hpp"

namespace {

using namespace stamped;

runtime::StepInfo step(int pid, runtime::OpKind kind, int reg) {
  return {pid, kind, reg};
}

TEST(CoverageMap, SignatureDistinguishesOpKindRegisterAndAliasing) {
  const auto rd = [](int pid, int reg) {
    return step(pid, runtime::OpKind::kRead, reg);
  };
  const auto wr = [](int pid, int reg) {
    return step(pid, runtime::OpKind::kWrite, reg);
  };
  // Orientation matters: who steps first is part of the interleaving.
  EXPECT_NE(verify::CoverageMap::signature(rd(0, 0), wr(1, 1)),
            verify::CoverageMap::signature(wr(1, 1), rd(0, 0)));
  // Op kind matters.
  EXPECT_NE(verify::CoverageMap::signature(rd(0, 0), rd(1, 1)),
            verify::CoverageMap::signature(rd(0, 0), wr(1, 1)));
  // Register matters.
  EXPECT_NE(verify::CoverageMap::signature(rd(0, 0), wr(1, 1)),
            verify::CoverageMap::signature(rd(0, 0), wr(1, 2)));
  // The low bit is the same-register (conflict) flag.
  EXPECT_EQ(verify::CoverageMap::signature(rd(0, 3), wr(1, 3)) & 1u, 1u);
  EXPECT_EQ(verify::CoverageMap::signature(rd(0, 3), wr(1, 4)) & 1u, 0u);
  // The signature ignores pids — only the op shapes and their aliasing
  // matter, so coverage transfers across symmetric processes.
  EXPECT_EQ(verify::CoverageMap::signature(rd(0, 2), wr(1, 2)),
            verify::CoverageMap::signature(rd(2, 2), wr(0, 2)));
}

TEST(CoverageMap, AddExecutionCountsFreshCrossProcessPairsOnly) {
  verify::CoverageMap cov;
  const std::vector<runtime::StepInfo> steps = {
      step(0, runtime::OpKind::kRead, 0),   // p0,p0: same pid — no signature
      step(0, runtime::OpKind::kWrite, 0),  //
      step(1, runtime::OpKind::kRead, 1),   // p0->p1 boundary: 1 signature
      step(0, runtime::OpKind::kRead, 0),   // p1->p0 boundary: 1 signature
  };
  EXPECT_EQ(cov.add_execution(steps), 2u);
  EXPECT_EQ(cov.size(), 2u);
  // Replaying the same execution visits nothing new.
  EXPECT_EQ(cov.add_execution(steps), 0u);
  EXPECT_EQ(cov.size(), 2u);
  EXPECT_EQ(cov.add_execution({}), 0u);
}

// ---- the seeded bug -------------------------------------------------------
//
// A bounded-universe variant: labels live in Z_K (collect/max+1 over n label
// registers), and when the label space is exhausted the caller recycles —
// clears every label register and opens the next epoch by bumping register n.
// Timestamps are epoch*K + label, compared as integers.
//
// The planted bug is in the recycling path: the epoch it writes is derived
// from the value read at the START of the call. If two other wraps complete
// between that read and the wrap write, the stale write REGRESSES the epoch
// register, and a later call returns a timestamp at or below one that already
// completed — a timestamp-property violation. Fair schedules (sequential,
// round-robin) never stall a caller across two full wraps, so the bug is
// invisible to them; only an adversarial stall between the epoch read and the
// wrap write exposes it.

constexpr std::int64_t kBuggyModulus = 4;

using BuggySys = runtime::System<std::int64_t>;

runtime::SubTask<std::int64_t> buggy_getts(
    BuggySys::Ctx& ctx, int pid, int n, int call_index,
    runtime::CallLog<std::int64_t>* log) {
  const std::uint64_t invoked = ctx.stamp();
  const std::int64_t e = co_await ctx.read(n);  // epoch, read once (the bug)
  std::int64_t mx = 0;
  for (int i = 0; i < n; ++i) {
    mx = std::max(mx, co_await ctx.read(i));
  }
  std::int64_t label = mx + 1;
  std::int64_t epoch = e;
  if (label >= kBuggyModulus) {
    // Recycle: clear the exhausted labels and open the next epoch. `e` is
    // stale by now if other wraps completed since the call started — the
    // write below can move the epoch register backwards.
    label = 0;
    epoch = e + 1;
    for (int i = 0; i < n; ++i) co_await ctx.write(i, 0);
    co_await ctx.write(n, epoch);
  } else {
    co_await ctx.write(pid, label);
  }
  const std::int64_t ts = epoch * kBuggyModulus + label;
  if (log != nullptr) log->record({pid, call_index, ts, invoked, ctx.stamp()});
  ctx.note_call_complete();
  co_return ts;
}

runtime::ProcessTask buggy_program(BuggySys::Ctx& ctx, int pid, int n,
                                   int num_calls,
                                   runtime::CallLog<std::int64_t>* log) {
  for (int k = 0; k < num_calls; ++k) {
    co_await buggy_getts(ctx, pid, n, k, log);
  }
}

api::TimestampFamily buggy_bounded_family() {
  api::TimestampFamily fam;
  fam.name = "buggy-bounded";
  fam.summary = "test-local bounded variant with a stale-epoch recycling bug";
  fam.paper_ref = "none (seeded bug for the fuzzer differential)";
  fam.lifetime = api::Lifetime::kLongLived;
  fam.universe = "epoch*K + label, compared as integers";
  fam.max_calls_per_process = 0;
  fam.registers_allocated = [](const api::ScenarioSpec& spec) {
    return static_cast<std::int64_t>(spec.n) + 1;
  };
  fam.writes_full_allocation = true;
  fam.make =
      [](const api::ScenarioSpec& spec) -> std::unique_ptr<api::FamilyInstance> {
    auto inst = std::make_unique<api::TypedFamilyInstance<
        std::int64_t, std::int64_t, std::less<std::int64_t>>>();
    std::vector<BuggySys::Program> programs;
    for (int p = 0; p < spec.n; ++p) {
      programs.push_back(
          [p, n = spec.n, calls = spec.calls_per_process,
           log = &inst->log()](BuggySys::Ctx& ctx) {
            return buggy_program(ctx, p, n, calls, log);
          });
    }
    inst->adopt(std::make_unique<BuggySys>(spec.n + 1, std::int64_t{0},
                                           std::move(programs)));
    return inst;
  };
  return fam;
}

api::ScenarioSpec buggy_spec() {
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 8;
  spec.seed = 5;
  return spec;
}

constexpr std::uint64_t kFuzzSeed = 11;
constexpr std::uint64_t kFuzzBudget = 64;

TEST(SeededBug, FairSchedulesDoNotTripTheBug) {
  // The differential's baseline: the bug is schedule-dependent, not a plain
  // logic error — sequential and round-robin runs are clean.
  const auto fam = buggy_bounded_family();
  for (const auto& source : {api::sequential(), api::round_robin()}) {
    const auto report = api::Harness{}.run_scenario(fam, buggy_spec(), source);
    EXPECT_TRUE(report.ok()) << source.name << ": " << report.summary();
    EXPECT_TRUE(report.all_finished);
  }
}

TEST(SeededBug, CoverageFuzzerFindsTheViolationWithinBudget) {
  const auto fam = buggy_bounded_family();
  const auto report = api::Harness{}.run_scenario(
      fam, buggy_spec(), api::coverage_fuzzer(kFuzzSeed, kFuzzBudget));
  EXPECT_FALSE(report.ok())
      << "planted recycling bug not found in " << kFuzzBudget
      << " executions: " << report.summary();
  EXPECT_GT(report.coverage_signatures, 0u);
  EXPECT_GE(report.corpus_size, 1u);
  EXPECT_EQ(report.executions, kFuzzBudget);
}

TEST(SeededBug, RandomAtEqualBudgetCarriesNoObligation) {
  // The same budget of independent seeded-random executions. Whether it
  // stumbles onto the bug is seed luck — the differential asserts nothing
  // about it beyond well-formedness, and reports the count for the curious.
  const auto fam = buggy_bounded_family();
  std::uint64_t found = 0;
  for (std::uint64_t e = 0; e < kFuzzBudget; ++e) {
    auto spec = buggy_spec();
    spec.seed = kFuzzSeed + e;
    const auto report =
        api::Harness{}.run_scenario(fam, spec, api::seeded_random());
    EXPECT_TRUE(report.all_finished);
    if (!report.ok()) ++found;
  }
  RecordProperty("random_violations_found", static_cast<int>(found));
}

}  // namespace
