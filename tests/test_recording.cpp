// Tests: RecordingMode (kFull vs kCountsOnly), versioned reads, and the
// version-clock double collect — the hot-path runtime refactor.
//
// The contract under test: kCountsOnly runs the identical computation (same
// register contents, same counters, same call history) while retaining no
// per-step trace, views or schedule; versioned_read costs one step and its
// version equals the register's write count; the version-clock scan agrees
// with the value-comparing scan wherever writes change values.
#include <gtest/gtest.h>

#include <memory>

#include "atomicmem/atomic_memory.hpp"
#include "core/bounded_longlived.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/timestamp.hpp"
#include "runtime/scheduler.hpp"
#include "snapshot/double_collect.hpp"
#include "snapshot/versioned_collect.hpp"
#include "util/rng.hpp"

namespace {

using namespace stamped;
using IntSys = runtime::System<std::int64_t>;
using runtime::RecordingMode;

TEST(RecordingModes, CountsOnlyMatchesFullOnEveryCounter) {
  // The same schedule in both modes must produce identical register files,
  // step/call counters, write counts and versions — only the per-step
  // bookkeeping (trace, views, executed schedule) may differ.
  auto full = core::make_maxscan_system(4, 3, nullptr);
  util::Rng rng(1234);
  runtime::run_random(*full, rng, 1u << 20);
  ASSERT_TRUE(full->all_finished());

  auto counts = core::make_maxscan_system(4, 3, nullptr);
  counts->set_recording_mode(RecordingMode::kCountsOnly);
  EXPECT_EQ(counts->recording_mode(), RecordingMode::kCountsOnly);
  runtime::run_script(*counts, full->executed_schedule());
  ASSERT_TRUE(counts->all_finished());

  EXPECT_EQ(counts->steps_taken(), full->steps_taken());
  EXPECT_EQ(counts->calls_completed_total(), full->calls_completed_total());
  EXPECT_EQ(counts->registers_written(), full->registers_written());
  for (int p = 0; p < full->num_processes(); ++p) {
    EXPECT_EQ(counts->steps_taken_by(p), full->steps_taken_by(p)) << p;
    EXPECT_EQ(counts->calls_completed(p), full->calls_completed(p)) << p;
  }
  for (int r = 0; r < full->num_registers(); ++r) {
    EXPECT_EQ(counts->register_repr(r), full->register_repr(r)) << r;
    EXPECT_EQ(counts->writes_to(r), full->writes_to(r)) << r;
    EXPECT_EQ(counts->register_version(r), full->register_version(r)) << r;
  }

  // kFull retains the per-step bookkeeping; kCountsOnly retains none.
  EXPECT_EQ(full->trace().size(), full->steps_taken());
  EXPECT_FALSE(full->process_view(0).empty());
  EXPECT_NE(full->process_view(0).find("done#"), std::string::npos);
  EXPECT_TRUE(counts->trace().empty());
  EXPECT_TRUE(counts->executed_schedule().empty());
  EXPECT_TRUE(counts->step_infos().empty());
  for (int p = 0; p < counts->num_processes(); ++p) {
    EXPECT_TRUE(counts->process_view(p).empty()) << p;
  }
}

TEST(RecordingModes, ConstructorParameterSelectsMode) {
  std::vector<IntSys::Program> programs;
  programs.push_back([](IntSys::Ctx& ctx) -> runtime::ProcessTask {
    co_await ctx.write(0, 1);
  });
  IntSys sys(1, 0, std::move(programs), RecordingMode::kCountsOnly);
  EXPECT_EQ(sys.recording_mode(), RecordingMode::kCountsOnly);
  runtime::run_round_robin(sys, 100);
  EXPECT_TRUE(sys.trace().empty());
  EXPECT_EQ(sys.register_repr(0), "1");
}

TEST(RecordingModes, ModeSwitchRejectedAfterFirstStep) {
  auto sys = core::make_maxscan_system(2, 1, nullptr);
  sys->step(0);
  EXPECT_THROW(sys->set_recording_mode(RecordingMode::kCountsOnly),
               invariant_error);
}

TEST(RecordingModes, ObserverAndCountsOnlyAreMutuallyExclusive) {
  {
    auto sys = core::make_maxscan_system(2, 1, nullptr);
    sys->set_observer([](const runtime::System<std::int64_t>&,
                         const runtime::TraceEntry<std::int64_t>&) {});
    EXPECT_THROW(sys->set_recording_mode(RecordingMode::kCountsOnly),
                 invariant_error);
  }
  {
    auto sys = core::make_maxscan_system(2, 1, nullptr);
    sys->set_recording_mode(RecordingMode::kCountsOnly);
    EXPECT_THROW(
        sys->set_observer([](const runtime::System<std::int64_t>&,
                             const runtime::TraceEntry<std::int64_t>&) {}),
        invariant_error);
  }
}

// -- versioned reads ---------------------------------------------------------

runtime::ProcessTask versioned_probe_program(
    IntSys::Ctx& ctx, std::vector<runtime::Versioned<std::int64_t>>* out) {
  out->push_back(co_await ctx.versioned_read(0));
  co_await ctx.write(0, 5);
  out->push_back(co_await ctx.versioned_read(0));
  co_await ctx.write(0, 7);
  out->push_back(co_await ctx.versioned_read(0));
}

TEST(VersionedRead, VersionIsTheWriteCountAndMonotonePerWrite) {
  std::vector<runtime::Versioned<std::int64_t>> seen;
  std::vector<IntSys::Program> programs;
  programs.push_back([&seen](IntSys::Ctx& ctx) {
    return versioned_probe_program(ctx, &seen);
  });
  IntSys sys(1, 0, std::move(programs));
  runtime::run_round_robin(sys, 100);
  ASSERT_TRUE(sys.all_finished());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (runtime::Versioned<std::int64_t>{0, 0}));
  EXPECT_EQ(seen[1], (runtime::Versioned<std::int64_t>{5, 1}));
  EXPECT_EQ(seen[2], (runtime::Versioned<std::int64_t>{7, 2}));
  // Each versioned read is one step, like a plain read: 3 reads + 2 writes.
  EXPECT_EQ(sys.steps_taken(), 5u);
  // ISystem surfaces the same clock.
  EXPECT_EQ(sys.register_version(0), 2u);
  EXPECT_EQ(sys.register_version(0), sys.writes_to(0));
  // The trace records versioned reads as plain reads (same footprint).
  EXPECT_EQ(sys.trace().size(), 5u);
  EXPECT_EQ(sys.trace()[0].kind, runtime::OpKind::kRead);
}

TEST(VersionedRead, DirectCtxMatchesSimulatorSemantics) {
  // Inline (seqlock) cell: int64 registers.
  atomicmem::AtomicMemory<std::int64_t> mem(2, 0);
  EXPECT_EQ(mem.versioned_read(0),
            (runtime::Versioned<std::int64_t>{0, 0}));
  mem.write(0, 42);
  EXPECT_EQ(mem.versioned_read(0),
            (runtime::Versioned<std::int64_t>{42, 1}));
  (void)mem.swap(0, 43);
  EXPECT_EQ(mem.versioned_read(0),
            (runtime::Versioned<std::int64_t>{43, 2}));
  EXPECT_EQ(mem.versioned_read(1).version, 0u);

  // Pointer-swap cell: TsRecord registers carry node-unique versions.
  atomicmem::AtomicMemory<core::TsRecord> rmem(1, core::TsRecord::bottom());
  const auto v0 = rmem.versioned_read(0);
  EXPECT_TRUE(v0.value.is_bottom);
  rmem.write(0, core::TsRecord::make({core::TsId{0, 0}}, 1));
  const auto v1 = rmem.versioned_read(0);
  EXPECT_FALSE(v1.value.is_bottom);
  EXPECT_NE(v1.version, v0.version);
}

// -- the version-clock scan --------------------------------------------------

runtime::ProcessTask versioned_scan_program(
    IntSys::Ctx& ctx, int count, snapshot::ScanResult<std::int64_t>* out) {
  *out = co_await snapshot::versioned_double_collect_scan(ctx, count);
  ctx.note_call_complete();
}

runtime::ProcessTask one_write_program(IntSys::Ctx& ctx, int reg,
                                       std::int64_t value) {
  co_await ctx.write(reg, value);
}

TEST(VersionedScan, CleanScanMatchesValueScan) {
  snapshot::ScanResult<std::int64_t> result;
  std::vector<IntSys::Program> programs;
  programs.push_back([&result](IntSys::Ctx& c) {
    return versioned_scan_program(c, 3, &result);
  });
  IntSys sys(3, 7, std::move(programs));
  runtime::run_round_robin(sys, 100);
  ASSERT_TRUE(sys.all_finished());
  EXPECT_EQ(result.view, (std::vector<std::int64_t>{7, 7, 7}));
  EXPECT_EQ(result.collects, 2u);
  // Same step cost as the value scan: two collects of 3 reads each.
  EXPECT_EQ(sys.steps_taken(), 6u);
  // Untouched registers report version 0.
  EXPECT_EQ(result.versions, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(VersionedScan, InterferenceForcesRetryExactlyLikeValueScan) {
  // Mirror of DoubleCollect.InterferenceForcesThirdCollect: a write between
  // the first two collects bumps r1's version, so the version vectors differ
  // and a third collect is required.
  snapshot::ScanResult<std::int64_t> result;
  std::vector<IntSys::Program> programs;
  programs.push_back([&result](IntSys::Ctx& c) {
    return versioned_scan_program(c, 2, &result);
  });
  programs.push_back(
      [](IntSys::Ctx& c) { return one_write_program(c, 1, 101); });
  IntSys sys(2, 0, std::move(programs));
  runtime::run_script(sys, std::vector<int>{0, 0, 1});
  runtime::run_round_robin(sys, 100);
  ASSERT_TRUE(sys.all_finished());
  EXPECT_GE(result.collects, 3u);
  EXPECT_EQ(result.view, (std::vector<std::int64_t>{0, 101}));
  EXPECT_EQ(result.versions, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(result.linearize_step, 5u);
}

TEST(VersionedScan, CatchesAbaThatFoolsTheValueScan) {
  // The strengthening over the value scan: writes that restore a previous
  // value (A->B->A) between two collects are invisible to value comparison
  // but bump the version clock, forcing a retry. The final view is the
  // memory state at a single point either way, but only the version scan
  // proves it without the writes-always-change-values side condition.
  snapshot::ScanResult<std::int64_t> result;
  std::vector<IntSys::Program> programs;
  programs.push_back([&result](IntSys::Ctx& c) {
    return versioned_scan_program(c, 2, &result);
  });
  programs.push_back([](IntSys::Ctx& c) -> runtime::ProcessTask {
    co_await c.write(1, 1);  // A -> B
    co_await c.write(1, 0);  // B -> A (restores the initial value)
  });
  IntSys sys(2, 0, std::move(programs));
  // Scanner collect 1 reads {r0, r1}, then BOTH writes land, then collect 2
  // reads the same values — versions 0 vs 2 for r1 force a third collect.
  runtime::run_script(sys, std::vector<int>{0, 0, 1, 1});
  runtime::run_round_robin(sys, 100);
  ASSERT_TRUE(sys.all_finished());
  EXPECT_GE(result.collects, 3u);
  EXPECT_EQ(result.view, (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(result.versions, (std::vector<std::uint64_t>{0, 2}));
}

TEST(VersionedScan, BoundedFamilyScanStepCostUnchanged) {
  // The bounded family opted into the version-clock scan; a solo getTS must
  // still cost one double collect (2n reads) plus one write.
  const int n = 3;
  runtime::CallLog<core::BoundedTimestamp> log;
  auto sys = core::make_bounded_system(n, 1, 0, &log);
  ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, 0, 1, 1000));
  EXPECT_EQ(sys->steps_taken(), static_cast<std::uint64_t>(2 * n + 1));
}

}  // namespace
