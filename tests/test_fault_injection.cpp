// Fault injection: wait-freedom means every process finishes its getTS in a
// bounded number of ITS OWN steps, regardless of what other processes do —
// including crashing (never being scheduled again) at arbitrary points,
// possibly while covering registers.
//
// The crash schedules come from the public api::crash_restart source (the
// crash/restart ScheduleSource built on runtime::run_crash_restart), so every
// suite here is a consumer of the same adversary the conformance tests run —
// no ad-hoc crash loops. The checkers hold survivors to the full timestamp
// property; crashed calls never completed, never entered the history, and
// carry no obligation.
#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "api/harness.hpp"
#include "api/registry.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "snapshot/wait_free_snapshot.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

runtime::CrashPlan crash_plan(int crashes, std::uint64_t max_victim_steps) {
  runtime::CrashPlan plan;
  plan.crashes = crashes;
  plan.restart = false;
  plan.max_victim_steps = max_victim_steps;
  return plan;
}

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(FaultSweep, SqrtOneShotSurvivesCrashes) {
  const auto [n, crashes, seed] = GetParam();
  api::ScenarioSpec spec;
  spec.n = n;
  spec.calls_per_process = 1;
  spec.seed = seed;
  const auto report = api::Harness{}.run_scenario(
      api::family("sqrt-oneshot"), spec, api::crash_restart(crash_plan(crashes, 16)));
  // Survivors' calls satisfy the property; crashed calls never completed.
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.survivors_finished) << report.summary();
  EXPECT_EQ(report.all_finished, report.crashed_down == 0);
  // Space bound still holds (crashed processes may cover but not write more).
  EXPECT_LE(report.registers_written, core::sqrt_oneshot_registers(n) - 1);
  EXPECT_EQ(report.registers_allocated, core::sqrt_oneshot_registers(n));
}

TEST_P(FaultSweep, SimpleOneShotSurvivesCrashes) {
  const auto [n, crashes, seed] = GetParam();
  api::ScenarioSpec spec;
  spec.n = n;
  spec.calls_per_process = 1;
  spec.seed = seed ^ 0xabcdef;
  const auto report = api::Harness{}.run_scenario(
      api::family("simple-oneshot"), spec, api::crash_restart(crash_plan(crashes, 8)));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.survivors_finished) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweep,
    ::testing::Combine(::testing::Values(6, 12, 24), ::testing::Values(1, 3, 8),
                       ::testing::Values(61u, 62u, 63u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FaultInjection, MaxScanSurvivesCrashes) {
  // Long-lived family, crashes without restart: survivors keep taking
  // timestamps through the dead processes' covered registers. Monotonicity
  // runs through the default checkers.
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = 3;
  spec.seed = 7;
  const auto report = api::Harness{}.run_scenario(
      api::family("maxscan"), spec, api::crash_restart(crash_plan(3, 12)));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.survivors_finished) << report.summary();
}

TEST(FaultInjection, MaxScanRestartedVictimsFinishEverything) {
  // With restart, every victim comes back with fresh local state and re-runs
  // its whole program — so the run ends with nobody down and all_finished.
  runtime::CrashPlan plan;
  plan.crashes = 4;
  plan.restart = true;
  plan.restart_delay = 6;
  api::ScenarioSpec spec;
  spec.n = 6;
  spec.calls_per_process = 3;
  spec.seed = 17;
  const auto report = api::Harness{}.run_scenario(api::family("maxscan"), spec,
                                                  api::crash_restart(plan));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.all_finished);
  EXPECT_EQ(report.crashed_down, 0u);
  EXPECT_EQ(report.restarts, report.crashes);
}

TEST(FaultInjection, CrashedCoverersDoNotBlockAlgorithm4Scans) {
  // Crash processes exactly when they are poised to write (covering) — the
  // scan's double collect must still succeed because a poised write is never
  // executed. This placement is more surgical than the random adversary, so
  // it stays on the raw runtime API.
  const int n = 12;
  runtime::CallLog<core::PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(n, &log);
  std::unordered_set<int> nothing;
  for (int v : {0, 1, 2}) {
    ASSERT_TRUE(
        runtime::run_solo_until_poised_outside(*sys, v, nothing, 100000));
    // v is now covering its first write target; never scheduled again.
  }
  for (int p = 3; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(n - 3));
  auto report = verify::check_timestamp_property(log.snapshot(),
                                                 core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

class ShardedFaultSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ShardedFaultSweep, CombinerVictimCrashesLeaveCleanHistories) {
  // The tentpole's sweep: batched sharded service under the crash adversary
  // for every family x shards {1, 2, 4}. Crash thresholds land anywhere in
  // a victim's own step stream — including mid-combining-pass while it
  // HOLDS a shard's lease. Survivors must steal through, finish, and leave
  // composed/per-shard/cross-shard/at-most-once histories clean.
  const auto [name, shards] = GetParam();
  const auto& fam = api::family(name);
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = fam.max_calls_per_process == 1 ? 1 : 3;
  spec.universe_bound = 64;  // bounded family: window covers every call
  spec.shard.shards = shards;
  spec.shard.steal_budget = 12;  // tight budget: steals fire inside max_steps
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    spec.seed = seed;
    const auto report = api::Harness{}.run_scenario(
        fam, spec, api::crash_restart(crash_plan(3, 16)));
    EXPECT_TRUE(report.ok())
        << name << " shards=" << shards << " seed=" << seed << ": "
        << report.summary();
    EXPECT_TRUE(report.survivors_finished)
        << name << " shards=" << shards << " seed=" << seed
        << ": a crashed combiner wedged its shard — " << report.summary();
    EXPECT_EQ(report.all_finished, report.crashed_down == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ShardedFaultSweep,
    ::testing::Combine(::testing::Values("maxscan", "fetchadd",
                                         "simple-oneshot", "sqrt-oneshot",
                                         "growing-oneshot", "bounded"),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      std::string fam = std::get<0>(info.param);
      for (char& c : fam) {
        if (c == '-') c = '_';
      }
      return fam + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(FaultInjection, ShardedServiceSurvivesJitterStalls) {
  // The jitter adversary stalls processes for whole windows — a combiner
  // stalled while holding its lease is the sim-side version of native
  // preemption. Waiters must steal and the histories stay clean.
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = 3;
  spec.seed = 11;
  spec.shard.shards = 2;
  spec.shard.steal_budget = 12;
  runtime::JitterSpec jitter;
  jitter.stall_period = 4;
  jitter.max_stall = 48;
  const auto report = api::Harness{}.run_scenario(api::family("maxscan"),
                                                  spec, api::jittered(jitter));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.all_finished) << report.summary();
  EXPECT_GT(report.stalls, 0u);
}

TEST(FaultInjection, SnapshotScanWaitFreeDespiteCrashedWriters) {
  // The snapshot object is not a timestamp family, so it takes the runtime
  // crash driver directly rather than going through the harness.
  const int n = 4;
  snapshot::ScanLog log;
  auto sys = snapshot::make_snapshot_system(n, 2, &log);
  util::Rng rng(3);
  const auto stats = runtime::run_crash_restart(
      *sys, rng, crash_plan(2, 10), std::uint64_t{1} << 24);
  EXPECT_TRUE(stats.survivors_finished);
  EXPECT_GT(stats.crashes, 0u);
  runtime::check_no_failures(*sys);
}

}  // namespace
