// Fault injection: wait-freedom means every process finishes its getTS in a
// bounded number of ITS OWN steps, regardless of what other processes do —
// including crashing (never being scheduled again) at arbitrary points,
// possibly while covering registers.
//
// These tests crash random subsets of processes at random depths and verify
// that (a) all surviving processes complete, (b) the timestamp property holds
// among completed calls, and (c) for Algorithm 4 the space bound still holds.
#include <gtest/gtest.h>

#include <tuple>

#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "snapshot/wait_free_snapshot.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

/// Crashes each process of `victims` after a random number of its steps,
/// then runs the survivors to completion under a random schedule. Returns
/// true if every survivor finished.
bool crash_and_survive(runtime::ISystem& sys,
                       const std::vector<int>& victims, util::Rng& rng,
                       std::uint64_t per_victim_steps) {
  // Phase 1: advance victims a random distance (they then stop forever).
  for (int v : victims) {
    const std::uint64_t steps = rng.next_below(per_victim_steps + 1);
    for (std::uint64_t s = 0; s < steps && !sys.finished(v); ++s) {
      sys.step(v);
    }
  }
  // Phase 2: random schedule over survivors only.
  std::vector<int> survivors;
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (std::find(victims.begin(), victims.end(), p) == victims.end()) {
      survivors.push_back(p);
    }
  }
  std::uint64_t guard = 0;
  for (;;) {
    std::vector<int> live;
    for (int p : survivors) {
      if (!sys.finished(p)) live.push_back(p);
    }
    if (live.empty()) return true;
    if (++guard > (std::uint64_t{1} << 24)) return false;
    sys.step(live[static_cast<std::size_t>(rng.next_below(live.size()))]);
  }
}

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(FaultSweep, SqrtOneShotSurvivesCrashes) {
  const auto [n, crashes, seed] = GetParam();
  util::Rng rng(seed);
  runtime::CallLog<core::PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(n, &log);
  std::vector<int> victims;
  for (int i = 0; i < crashes; ++i) {
    victims.push_back(static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n))));
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  ASSERT_TRUE(crash_and_survive(*sys, victims, rng, 16));
  runtime::check_no_failures(*sys);
  // Survivors' calls satisfy the property; crashed calls never completed.
  auto report = verify::check_timestamp_property(log.snapshot(),
                                                 core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Space bound still holds (crashed processes may cover but not write more).
  EXPECT_LE(sys->registers_written(), core::sqrt_oneshot_registers(n) - 1);
}

TEST_P(FaultSweep, SimpleOneShotSurvivesCrashes) {
  const auto [n, crashes, seed] = GetParam();
  util::Rng rng(seed ^ 0xabcdef);
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_simple_oneshot_system(n, &log);
  std::vector<int> victims;
  for (int i = 0; i < crashes; ++i) {
    victims.push_back(static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n))));
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  ASSERT_TRUE(crash_and_survive(*sys, victims, rng, 8));
  auto report = verify::check_timestamp_property(log.snapshot(),
                                                 core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweep,
    ::testing::Combine(::testing::Values(6, 12, 24), ::testing::Values(1, 3, 8),
                       ::testing::Values(61u, 62u, 63u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FaultInjection, MaxScanSurvivesCrashes) {
  const int n = 8;
  util::Rng rng(7);
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(n, 3, &log);
  ASSERT_TRUE(crash_and_survive(*sys, {0, 3, 5}, rng, 12));
  auto report = verify::check_timestamp_property(log.snapshot(),
                                                 core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto mono = verify::check_per_process_monotonicity(log.snapshot(),
                                                     core::Compare{});
  EXPECT_TRUE(mono.ok()) << mono.to_string();
}

TEST(FaultInjection, CrashedCoverersDoNotBlockAlgorithm4Scans) {
  // Crash processes exactly when they are poised to write (covering) — the
  // scan's double collect must still succeed because a poised write is never
  // executed.
  const int n = 12;
  runtime::CallLog<core::PairTimestamp> log;
  auto sys = core::make_sqrt_oneshot_system(n, &log);
  std::unordered_set<int> nothing;
  for (int v : {0, 1, 2}) {
    ASSERT_TRUE(
        runtime::run_solo_until_poised_outside(*sys, v, nothing, 100000));
    // v is now covering its first write target; never scheduled again.
  }
  for (int p = 3; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(n - 3));
  auto report = verify::check_timestamp_property(log.snapshot(),
                                                 core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultInjection, SnapshotScanWaitFreeDespiteCrashedWriters) {
  const int n = 4;
  snapshot::ScanLog log;
  auto sys = snapshot::make_snapshot_system(n, 2, &log);
  util::Rng rng(3);
  // Crash writers 0 and 1 mid-flight; writers 2,3 must finish all rounds.
  ASSERT_TRUE(crash_and_survive(*sys, {0, 1}, rng, 10));
  runtime::check_no_failures(*sys);
}

}  // namespace
