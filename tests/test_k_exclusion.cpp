// Tests: FIFO k-exclusion built on the timestamp object (src/apps/).
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/longlived_builder.hpp"
#include "apps/k_exclusion.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace stamped;

class KExclusionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(KExclusionSweep, AtMostKOccupantsUnderRandomSchedules) {
  const auto [n, k, seed] = GetParam();
  apps::BakeryLog log;
  auto sys = apps::make_kexclusion_system(n, k, 2, &log);
  apps::attach_kexclusion_checker(*sys, n, k);  // throws on >k occupancy
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished()) << "no progress under a fair schedule?";
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(n * 2));
  const std::string verdict = apps::check_k_overlap(records, k);
  EXPECT_TRUE(verdict.empty()) << verdict;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KExclusionSweep,
    ::testing::Combine(::testing::Values(3, 5, 8), ::testing::Values(1, 2, 3),
                       ::testing::Values(81u, 82u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(KExclusion, KEqualOneIsMutualExclusion) {
  apps::BakeryLog log;
  auto sys = apps::make_kexclusion_system(4, 1, 2, &log);
  apps::attach_kexclusion_checker(*sys, 4, 1);
  util::Rng rng(5);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  EXPECT_TRUE(apps::check_cs_disjoint(log.snapshot()).empty());
}

TEST(KExclusion, LargeKNeverBlocks) {
  // k >= n: everyone may enter immediately; still safe and live.
  apps::BakeryLog log;
  auto sys = apps::make_kexclusion_system(4, 8, 3, &log);
  apps::attach_kexclusion_checker(*sys, 4, 8);
  util::Rng rng(6);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  EXPECT_EQ(log.snapshot().size(), 12u);
}

TEST(KExclusion, CheckerDetectsOverflow) {
  // Three fully-overlapping sections violate k = 2.
  std::vector<apps::BakeryAcquisition> fake;
  for (int p = 0; p < 3; ++p) {
    apps::BakeryAcquisition a;
    a.pid = p;
    a.cs_enter = 10;
    a.cs_exit = 20;
    fake.push_back(a);
  }
  EXPECT_FALSE(apps::check_k_overlap(fake, 2).empty());
  EXPECT_TRUE(apps::check_k_overlap(fake, 3).empty());
}

TEST(LongLivedBuilder, WorksAgainstBoundedAlgorithm4) {
  // The Section 3 machinery applied to a *multi-writer* long-lived object:
  // Algorithm 4 in its bounded-M form, each process performing several
  // calls. Multiple processes can cover the same register here, so the
  // builder's <=3-per-register constraint is actually exercised.
  const int n = 12;
  const int calls = 6;
  auto factory = [n, calls]() -> std::unique_ptr<runtime::ISystem> {
    return core::make_sqrt_bounded_system(n, calls, nullptr, nullptr);
  };
  adversary::LongLivedBuilderOptions opts;
  opts.recurrence_rounds = 12;
  auto result = adversary::build_longlived_covering(factory, n, n / 2, opts);
  EXPECT_GE(result.k_reached, 1) << result.summary();
  EXPECT_TRUE(result.is_3k) << result.summary();
  // Some register must be covered by 2+ processes at some point across the
  // recorded signatures (multi-writer coverage), unlike the SWMR max-scan.
  bool multi_cover_seen = false;
  for (const auto& sig : result.signature_history) {
    for (int s : sig) multi_cover_seen |= s >= 2;
  }
  EXPECT_TRUE(multi_cover_seen) << result.summary();
}

}  // namespace
