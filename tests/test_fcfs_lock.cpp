// Tests: the bakery-style FCFS lock built on the timestamp object
// (src/apps/fcfs_lock.hpp) — mutual exclusion, FCFS fairness, progress, and
// the same under real threads.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/fcfs_lock.hpp"
#include "atomicmem/atomic_memory.hpp"
#include "native/native_system.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace stamped;
using apps::BakeryLayout;

TEST(FcfsLock, LayoutArithmetic) {
  BakeryLayout layout{4};
  EXPECT_EQ(BakeryLayout::registers(4), 16);
  EXPECT_EQ(layout.ts_reg(2), 2);
  EXPECT_EQ(layout.choosing_reg(2), 6);
  EXPECT_EQ(layout.number_reg(2), 10);
  EXPECT_EQ(layout.cs_reg(2), 14);
}

TEST(FcfsLock, SequentialCyclesAreFifo) {
  apps::BakeryLog log;
  auto sys = apps::make_bakery_system(3, 2, &log);
  apps::attach_mutex_checker(*sys, 3);
  // Strictly sequential: each process completes its cycles alone.
  runtime::run_round_robin(*sys, 1 << 22);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_TRUE(apps::check_fcfs(records).empty());
  EXPECT_TRUE(apps::check_cs_disjoint(records).empty());
}

class FcfsLockSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(FcfsLockSweep, MutualExclusionAndFcfsUnderRandomSchedules) {
  const auto [n, rounds, seed] = GetParam();
  apps::BakeryLog log;
  auto sys = apps::make_bakery_system(n, rounds, &log);
  apps::attach_mutex_checker(*sys, n);  // throws on any ME violation
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished()) << "no progress under a fair schedule?";
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(n * rounds));
  const std::string fcfs = apps::check_fcfs(records);
  EXPECT_TRUE(fcfs.empty()) << fcfs;
  const std::string disjoint = apps::check_cs_disjoint(records);
  EXPECT_TRUE(disjoint.empty()) << disjoint;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FcfsLockSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6), ::testing::Values(1, 3),
                       ::testing::Values(51u, 52u, 53u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FcfsLock, HeavyContentionSingleRegisterOfTruth) {
  // 8 processes pounding the lock; the mutex observer checks every step.
  apps::BakeryLog log;
  auto sys = apps::make_bakery_system(8, 2, &log);
  apps::attach_mutex_checker(*sys, 8);
  util::Rng rng(99);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  EXPECT_TRUE(apps::check_cs_disjoint(log.snapshot()).empty());
}

TEST(FcfsLock, WorksUnderRealThreads) {
  const int n = 4;
  const int rounds = 25;
  for (int trial = 0; trial < 5; ++trial) {
    apps::BakeryLog log;
    std::vector<native::NativeSystem<std::int64_t>::Program> programs;
    const BakeryLayout layout{n};
    for (int p = 0; p < n; ++p) {
      programs.push_back(
          [layout, p, rounds, &log](atomicmem::DirectCtx<std::int64_t>& ctx) {
            return apps::bakery_worker_program(ctx, layout, p, rounds, &log,
                                               nullptr);
          });
    }
    native::NativeSystem<std::int64_t> sys(BakeryLayout::registers(n), 0,
                                           std::move(programs));
    (void)sys.run(n);
    auto records = log.snapshot();
    ASSERT_EQ(records.size(), static_cast<std::size_t>(n * rounds));
    const std::string disjoint = apps::check_cs_disjoint(records);
    EXPECT_TRUE(disjoint.empty()) << disjoint;
    const std::string fcfs = apps::check_fcfs(records);
    EXPECT_TRUE(fcfs.empty()) << fcfs;
  }
}

TEST(FcfsLock, TicketsComeFromTheTimestampObject) {
  runtime::CallLog<std::int64_t> ts_log;
  apps::BakeryLog log;
  auto sys = apps::make_bakery_system(3, 2, &log, &ts_log);
  util::Rng rng(7);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  // Every acquisition consumed one getTS.
  EXPECT_EQ(ts_log.size(), log.snapshot().size());
}

}  // namespace
