// Tests: the double-collect scan and the wait-free snapshot of Afek et al.,
// including linearizability checks against the simulator's ground truth.
#include <gtest/gtest.h>

#include "core/maxscan_longlived.hpp"
#include "runtime/scheduler.hpp"
#include "snapshot/double_collect.hpp"
#include "snapshot/wait_free_snapshot.hpp"
#include "verify/snapshot_checker.hpp"

namespace {

using namespace stamped;
using snapshot::SnapCell;

// -- double collect over plain int64 registers ------------------------------

using IntSys = runtime::System<std::int64_t>;

runtime::ProcessTask scanning_program(IntSys::Ctx& ctx, int count,
                                      std::vector<std::int64_t>* out) {
  auto result = co_await snapshot::double_collect_scan(ctx, count);
  *out = std::move(result.view);
  ctx.note_call_complete();
}

runtime::ProcessTask writer_program(IntSys::Ctx& ctx, int reg, int writes) {
  for (int k = 1; k <= writes; ++k) {
    co_await ctx.write(reg, ctx.pid() * 100 + k);
  }
}

TEST(DoubleCollect, CleanScanReturnsCurrentValues) {
  std::vector<std::int64_t> view;
  std::vector<IntSys::Program> programs;
  programs.push_back(
      [&view](IntSys::Ctx& c) { return scanning_program(c, 3, &view); });
  IntSys sys(3, 7, std::move(programs));
  runtime::run_round_robin(*&sys, 100);
  ASSERT_TRUE(sys.all_finished());
  EXPECT_EQ(view, (std::vector<std::int64_t>{7, 7, 7}));
  // Two collects of 3 reads each.
  EXPECT_EQ(sys.steps_taken(), 6u);
}

TEST(DoubleCollect, RetriesUntilStable) {
  // A writer invalidates the scanner's first collect; the scan must retry
  // and eventually return a consistent view.
  std::vector<std::int64_t> view;
  std::vector<IntSys::Program> programs;
  programs.push_back(
      [&view](IntSys::Ctx& c) { return scanning_program(c, 2, &view); });
  programs.push_back([](IntSys::Ctx& c) { return writer_program(c, 1, 1); });
  IntSys sys(2, 0, std::move(programs));
  // Scanner reads r0, r1 (collect 1), then the writer writes r1, then the
  // scanner's second collect differs -> third and fourth collects agree.
  runtime::run_script(*&sys, std::vector<int>{0, 0, 1});
  runtime::run_round_robin(*&sys, 100);
  ASSERT_TRUE(sys.all_finished());
  EXPECT_EQ(view, (std::vector<std::int64_t>{0, 101}));
}

runtime::ProcessTask full_scan_program(IntSys::Ctx& ctx, int count,
                                       snapshot::ScanResult<std::int64_t>* out) {
  *out = co_await snapshot::double_collect_scan(ctx, count);
  ctx.note_call_complete();
}

TEST(DoubleCollect, InterferenceForcesThirdCollect) {
  // The interference path: a write lands between the scanner's first two
  // collects, so they differ and a third collect is required before two
  // consecutive collects agree.
  snapshot::ScanResult<std::int64_t> result;
  std::vector<IntSys::Program> programs;
  programs.push_back(
      [&result](IntSys::Ctx& c) { return full_scan_program(c, 2, &result); });
  programs.push_back([](IntSys::Ctx& c) { return writer_program(c, 1, 1); });
  IntSys sys(2, 0, std::move(programs));
  // Scanner completes collect 1 (reads r0, r1 = {0, 0}), then the writer
  // writes 101 to r1, invalidating it.
  runtime::run_script(*&sys, std::vector<int>{0, 0, 1});
  runtime::run_round_robin(*&sys, 100);
  ASSERT_TRUE(sys.all_finished());
  EXPECT_GE(result.collects, 3u);  // exactly one forced retry in this schedule
  // The final view is consistent: it contains the written value.
  EXPECT_EQ(result.view, (std::vector<std::int64_t>{0, 101}));
  // The canonical linearization point is the start of the final collect:
  // after 2 + 1 + 2 steps (collect 1, the write, collect 2).
  EXPECT_EQ(result.linearize_step, 5u);
}

// -- wait-free snapshot ------------------------------------------------------

TEST(WaitFreeSnapshot, SequentialScanSeesUpdates) {
  snapshot::ScanLog log;
  auto sys = snapshot::make_snapshot_system(3, 1, &log);
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 2, 10000));
  }
  runtime::check_no_failures(*sys);
  auto scans = log.snapshot();
  ASSERT_FALSE(scans.empty());
  // The last recorded scan is by process 2 after all updates completed;
  // component p holds p*1000 + 1 after round 1.
  EXPECT_EQ(scans.back().view, (std::vector<std::int64_t>{1, 1001, 2001}));
}

TEST(WaitFreeSnapshot, AllScansLinearizableUnderRandomSchedules) {
  for (std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    for (int n : {2, 3, 5}) {
      snapshot::ScanLog log;
      auto sys = snapshot::make_snapshot_system(n, 3, &log);
      util::Rng rng(seed);
      runtime::run_random(*sys, rng, 1 << 24);
      ASSERT_TRUE(sys->all_finished());
      runtime::check_no_failures(*sys);
      auto verdict = verify::check_scans_linearizable(*sys, log.snapshot());
      EXPECT_FALSE(verdict.has_value()) << *verdict << " (n=" << n
                                        << " seed=" << seed << ")";
    }
  }
}

using SnapSys = runtime::System<SnapCell>;

runtime::ProcessTask pure_scanner_program(SnapSys::Ctx& ctx, int n,
                                          snapshot::ScanLog* log) {
  auto view = co_await snapshot::snap_scan(ctx, n, log);
  (void)view;
  ctx.note_call_complete();
}

runtime::ProcessTask triple_updater_program(SnapSys::Ctx& ctx, int pid, int n) {
  for (int k = 1; k <= 3; ++k) {
    co_await snapshot::snap_update(ctx, pid, n, 10 + k, k, nullptr);
    ctx.note_call_complete();
  }
}

TEST(WaitFreeSnapshot, EmbeddedViewPathIsExercisedAndLinearizable) {
  // Force the moved-twice path: the scanner collects, then the writer runs
  // two *complete* updates between the scanner's collects, so the scanner
  // observes two sequence changes and must borrow the embedded view.
  snapshot::ScanLog log;
  std::vector<SnapSys::Program> programs;
  programs.push_back(
      [&log](SnapSys::Ctx& c) { return pure_scanner_program(c, 2, &log); });
  programs.push_back(
      [](SnapSys::Ctx& c) { return triple_updater_program(c, 1, 2); });
  SnapSys sys(2, SnapCell{}, std::move(programs));
  sys.step(0);  // scanner: collect 1, read r0
  sys.step(0);  // scanner: collect 1, read r1
  ASSERT_TRUE(runtime::run_solo_until_calls_complete(sys, 1, 1, 1000));
  sys.step(0);  // scanner: collect 2, read r0
  sys.step(0);  // scanner: collect 2, read r1 — differs, moved[1] = 1
  ASSERT_TRUE(runtime::run_solo_until_calls_complete(sys, 1, 1, 1000));
  while (!sys.finished(0)) sys.step(0);  // collect 3 — moved[1] = 2
  runtime::check_no_failures(sys);
  auto scans = log.snapshot();
  ASSERT_EQ(scans.size(), 1u);
  EXPECT_TRUE(scans[0].used_embedded);
  // The embedded view comes from the writer's second update: it saw its own
  // first value (11) and an empty component 0.
  EXPECT_EQ(scans[0].view, (std::vector<std::int64_t>{0, 11}));
  auto verdict = verify::check_scans_linearizable(sys, scans);
  EXPECT_FALSE(verdict.has_value()) << *verdict;
}

TEST(WaitFreeSnapshot, ScanIsWaitFreeBounded) {
  // A scan needs at most n+2 collects: each repeat is caused by a moved
  // writer, and after a writer moved twice the scan returns.
  const int n = 4;
  snapshot::ScanLog log;
  auto sys = snapshot::make_snapshot_system(n, 4, &log);
  util::Rng rng(55);
  runtime::run_random(*sys, rng, 1 << 24);
  ASSERT_TRUE(sys->all_finished());
  for (const auto& scan : log.snapshot()) {
    const std::uint64_t reads = scan.end_step >= scan.start_step
                                    ? scan.end_step - scan.start_step
                                    : 0;
    // Steps *by all processes* bound the scan's own reads; its own reads are
    // at most (2n+2) * n (collects are n reads each, one extra for slack).
    EXPECT_LE(reads, static_cast<std::uint64_t>(1) << 16);
  }
  runtime::check_no_failures(*sys);
}

TEST(SnapCell, ReprAndEquality) {
  SnapCell a{5, 2, {1, 2}};
  SnapCell b{5, 2, {1, 2}};
  SnapCell c{5, 3, {1, 2}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.repr(), "{5#2,[1 2]}");
}

}  // namespace
