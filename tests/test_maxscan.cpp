// Tests: the long-lived max-scan comparator (n SWMR registers).
#include <gtest/gtest.h>

#include <tuple>

#include "core/maxscan_longlived.hpp"
#include "runtime/scheduler.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

TEST(MaxScan, UsesExactlyNRegisters) {
  const int n = 7;
  auto sys = core::make_maxscan_system(n, 2, nullptr);
  EXPECT_EQ(sys->num_registers(), n);
  util::Rng rng(1);
  runtime::run_random(*sys, rng, 1 << 22);
  ASSERT_TRUE(sys->all_finished());
  EXPECT_EQ(sys->registers_written(), n);
}

TEST(MaxScan, EveryCallTakesNPlusOneSteps) {
  const int n = 5;
  auto sys = core::make_maxscan_system(n, 3, nullptr);
  ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, 2, 3, 1000));
  EXPECT_EQ(sys->steps_taken_by(2), static_cast<std::uint64_t>(3 * (n + 1)));
}

TEST(MaxScan, SequentialTimestampsAreOneToM) {
  const int n = 4;
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(n, 2, &log);
  for (int round = 0; round < 2; ++round) {
    for (int p = 0; p < n; ++p) {
      ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 1000));
    }
  }
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ts, static_cast<std::int64_t>(i + 1));
  }
}

class MaxScanProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MaxScanProperty, HappensBeforeRespected) {
  const auto [n, calls, seed] = GetParam();
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(n, calls, &log);
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, 1 << 24);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  ASSERT_EQ(static_cast<int>(log.size()), n * calls);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto mono =
      verify::check_per_process_monotonicity(log.snapshot(), core::Compare{});
  EXPECT_TRUE(mono.ok()) << mono.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxScanProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(1, 3, 6),
                       ::testing::Values(21u, 22u, 23u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(MaxScan, ConcurrentCallsMayShareTimestamps) {
  // Two processes that both collect before either writes will compute the
  // same max — permitted by the weak timestamp specification. This pins down
  // that the checker treats equal timestamps on concurrent calls as legal.
  const int n = 2;
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(n, 1, &log);
  // Interleave: both collect everything, then both write.
  runtime::run_script(*sys, std::vector<int>{0, 0, 1, 1, 0, 1});
  ASSERT_TRUE(sys->all_finished());
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].ts, records[1].ts);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
