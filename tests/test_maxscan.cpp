// Tests: the long-lived max-scan comparator (n SWMR registers).
#include <gtest/gtest.h>

#include <tuple>

#include "core/maxscan_longlived.hpp"
#include "runtime/scheduler.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

TEST(MaxScan, UsesExactlyNRegisters) {
  const int n = 7;
  auto sys = core::make_maxscan_system(n, 2, nullptr);
  EXPECT_EQ(sys->num_registers(), n);
  util::Rng rng(1);
  runtime::run_random(*sys, rng, 1 << 22);
  ASSERT_TRUE(sys->all_finished());
  EXPECT_EQ(sys->registers_written(), n);
}

TEST(MaxScan, EveryCallTakesNPlusOneSteps) {
  const int n = 5;
  auto sys = core::make_maxscan_system(n, 3, nullptr);
  ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, 2, 3, 1000));
  EXPECT_EQ(sys->steps_taken_by(2), static_cast<std::uint64_t>(3 * (n + 1)));
}

TEST(MaxScan, SequentialTimestampsAreOneToM) {
  const int n = 4;
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(n, 2, &log);
  for (int round = 0; round < 2; ++round) {
    for (int p = 0; p < n; ++p) {
      ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 1000));
    }
  }
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ts, static_cast<std::int64_t>(i + 1));
  }
}

// NOTE: the (n, calls, seed) property sweep that used to live here is now
// part of the registry-wide conformance suite (test_api_conformance.cpp),
// which runs the same check for every family under every schedule source.

TEST(MaxScan, ConcurrentCallsMayShareTimestamps) {
  // Two processes that both collect before either writes will compute the
  // same max — permitted by the weak timestamp specification. This pins down
  // that the checker treats equal timestamps on concurrent calls as legal.
  const int n = 2;
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(n, 1, &log);
  // Interleave: both collect everything, then both write.
  runtime::run_script(*sys, std::vector<int>{0, 0, 1, 1, 0, 1});
  ASSERT_TRUE(sys->all_finished());
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].ts, records[1].ts);
  auto report = verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
