// Tests: the bounded-universe long-lived timestamp object
// (core/bounded_longlived.hpp, Haldar–Vitányi style).
//
// Coverage mirrors the unbounded objects' suites: compare sanity on the whole
// finite universe, space accounting, the timestamp property under sequential
// / random / exhaustively-explored schedules (within the recycling window),
// per-process monotonicity, and — the part no unbounded object has — long
// runs that wrap the label universe, checked against the windowed property.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/bounded_longlived.hpp"
#include "runtime/scheduler.hpp"
#include "verify/explorer.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;
using core::BoundedCompare;
using core::BoundedTimestamp;

BoundedTimestamp ts(std::int32_t modulus, std::vector<std::int32_t> comps) {
  return {modulus, std::move(comps)};
}

// -- compare on the finite universe -----------------------------------------

TEST(BoundedCompare, IrreflexiveAndAsymmetricOnWholeUniverse) {
  // K = 5, n = 2: all 25 labels. Irreflexivity and asymmetry must hold
  // globally, not just within a window.
  const std::int32_t k = 5;
  std::vector<BoundedTimestamp> universe;
  for (std::int32_t a = 0; a < k; ++a) {
    for (std::int32_t b = 0; b < k; ++b) {
      universe.push_back(ts(k, {a, b}));
    }
  }
  for (const auto& a : universe) {
    EXPECT_FALSE(bounded_before(a, a)) << a.repr();
    for (const auto& b : universe) {
      EXPECT_FALSE(bounded_before(a, b) && bounded_before(b, a))
          << a.repr() << " vs " << b.repr();
    }
  }
}

TEST(BoundedCompare, StrictPartialOrderOnWindowCoherentSets) {
  // Transitivity within the window: whenever a < b, b < c, and (a, c) are
  // window-coherent (every forward difference <= W), a < c must hold. This is
  // the sense in which compare is a strict partial order on labels
  // simultaneously in circulation.
  const std::int32_t k = 5;
  const std::int32_t w = core::bounded_window(k);  // 2
  std::vector<BoundedTimestamp> universe;
  for (std::int32_t a = 0; a < k; ++a) {
    for (std::int32_t b = 0; b < k; ++b) {
      universe.push_back(ts(k, {a, b}));
    }
  }
  auto coherent = [&](const BoundedTimestamp& a, const BoundedTimestamp& b) {
    for (std::size_t i = 0; i < a.comps.size(); ++i) {
      if (((b.comps[i] - a.comps[i]) % k + k) % k > w) return false;
    }
    return true;
  };
  int triples_checked = 0;
  for (const auto& a : universe) {
    for (const auto& b : universe) {
      if (!bounded_before(a, b)) continue;
      for (const auto& c : universe) {
        if (!bounded_before(b, c) || !coherent(a, c)) continue;
        EXPECT_TRUE(bounded_before(a, c))
            << a.repr() << " < " << b.repr() << " < " << c.repr();
        ++triples_checked;
      }
    }
  }
  EXPECT_GT(triples_checked, 100);
}

TEST(BoundedCompare, RecyclingWrapsForward) {
  // Value K-1 recycles to 0: with K = 5, W = 2, the wrapped label still
  // dominates within the window.
  const std::int32_t k = 5;
  EXPECT_TRUE(bounded_before(ts(k, {4, 4}), ts(k, {0, 0})));   // +1, +1 (wrap)
  EXPECT_FALSE(bounded_before(ts(k, {0, 0}), ts(k, {4, 4})));  // reverse
  EXPECT_TRUE(bounded_before(ts(k, {3, 4}), ts(k, {0, 1})));   // +2, +2
  // Outside the window: incomparable in both directions is allowed — but
  // never comparable both ways.
  EXPECT_FALSE(bounded_before(ts(k, {0, 0}), ts(k, {3, 0})));  // diff 3 > W
}

TEST(BoundedCompare, MismatchedShapesIncomparable) {
  EXPECT_FALSE(bounded_before(ts(5, {1, 1}), ts(7, {2, 2})));
  EXPECT_FALSE(bounded_before(ts(5, {1, 1}), ts(5, {2, 2, 2})));
}

TEST(BoundedCompare, ModulusAndBitsHelpers) {
  EXPECT_EQ(core::bounded_modulus_for(1), 3);
  EXPECT_EQ(core::bounded_modulus_for(3), 7);
  EXPECT_EQ(core::bounded_window(5), 2);
  EXPECT_EQ(core::bounded_window(7), 3);
  // K = 5: 3 bits for val (0..4) + 3 bits for gen (0..5).
  EXPECT_EQ(core::bounded_bits_per_register(5), 6);
  // K = 3: 2 + 2.
  EXPECT_EQ(core::bounded_bits_per_register(3), 4);
}

// -- the simulated object ----------------------------------------------------

TEST(Bounded, UsesExactlyNRegistersAndBoundedValues) {
  const int n = 6;
  const int calls = 3;
  runtime::CallLog<BoundedTimestamp> log;
  auto sys = core::make_bounded_system(n, calls, 0, &log);
  EXPECT_EQ(sys->num_registers(), n);
  util::Rng rng(11);
  runtime::run_random(*sys, rng, 1 << 22);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  EXPECT_EQ(sys->registers_written(), n);
  const std::int32_t k = core::bounded_modulus_for(calls);
  for (const auto& rec : log.snapshot()) {
    EXPECT_EQ(rec.ts.modulus, k);
    ASSERT_EQ(static_cast<int>(rec.ts.comps.size()), n);
    for (std::int32_t c : rec.ts.comps) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, k);
    }
  }
}

TEST(Bounded, SequentialCallsAreStrictlyOrdered) {
  const int n = 4;
  const int calls = 2;
  runtime::CallLog<BoundedTimestamp> log;
  auto sys = core::make_bounded_system(n, calls, 0, &log);
  for (int round = 0; round < calls; ++round) {
    for (int p = 0; p < n; ++p) {
      ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 1000));
    }
  }
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(n * calls));
  // In a fully sequential run every pair of calls is ordered; compare must
  // agree with the execution order over the whole history.
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_TRUE(bounded_before(records[i].ts, records[i + 1].ts))
        << records[i].ts.repr() << " -> " << records[i + 1].ts.repr();
  }
}

// NOTE: the (n, calls, seed) property sweep that used to live here is now
// part of the registry-wide conformance suite (test_api_conformance.cpp),
// which runs the same check for every family under every schedule source
// (the bounded family's windowed obligation is applied via its pair filter).

TEST(Bounded, ConcurrentCallsMayShareTimestamps) {
  // Both processes scan before either writes: identical vectors except the
  // own component — concurrent, and legal under the weak specification.
  const int n = 2;
  runtime::CallLog<BoundedTimestamp> log;
  auto sys = core::make_bounded_system(n, 1, 0, &log);
  // Each getTS: 2 collects x 2 reads, then 1 write = 5 steps.
  runtime::run_script(*sys, std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1, 0, 1});
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  auto records = log.snapshot();
  ASSERT_EQ(records.size(), 2u);
  auto report = verify::check_timestamp_property(log.snapshot(),
                                                 BoundedCompare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// -- exhaustive exploration (model checking) ---------------------------------

verify::ExplorationInstance bounded_instance(int n, int calls) {
  auto log = std::make_shared<runtime::CallLog<BoundedTimestamp>>();
  verify::ExplorationInstance inst;
  inst.sys = core::make_bounded_system(n, calls, 0, log.get());
  inst.check = [log, n, calls]() -> std::optional<std::string> {
    if (static_cast<int>(log->size()) != n * calls) {
      return "expected " + std::to_string(n * calls) + " calls, saw " +
             std::to_string(log->size());
    }
    auto report =
        verify::check_timestamp_property(log->snapshot(), BoundedCompare{});
    if (!report.ok()) return report.to_string();
    auto mono = verify::check_per_process_monotonicity(log->snapshot(),
                                                       BoundedCompare{});
    if (!mono.ok()) return mono.to_string();
    return std::nullopt;
  };
  return inst;
}

TEST(BoundedExplorer, ExhaustiveN2C1) {
  // EVERY interleaving of two one-call processes satisfies the property
  // (scan retries make the tree irregular, like Algorithm 4's).
  auto result =
      verify::explore_all_executions([]() { return bounded_instance(2, 1); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_FALSE(result.depth_exceeded);
  EXPECT_GT(result.executions, 100u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(BoundedExplorer, BudgetedN2C2AndN3C1) {
  // Larger systems are budget-capped prefixes of the schedule tree.
  for (auto [n, calls] : {std::pair{2, 2}, std::pair{3, 1}}) {
    verify::ExploreOptions opts;
    opts.max_executions = 20000;
    auto result = verify::explore_all_executions(
        [n = n, calls = calls]() { return bounded_instance(n, calls); }, opts);
    EXPECT_FALSE(result.depth_exceeded);
    EXPECT_GT(result.executions, 1000u);
    EXPECT_TRUE(result.ok()) << result.violations.front();
  }
}

// -- label recycling beyond the window ---------------------------------------

TEST(BoundedRecycling, LongRunWrapsAndSatisfiesWindowedProperty) {
  // K = 5 but 12 calls per process: own components wrap the universe at
  // least twice. The windowed property must hold: every ordered pair whose
  // interim activity fits the window is correctly ordered; pairs separated
  // by more than W generations carry no obligation (and are counted).
  const int n = 3;
  const int calls = 12;
  const std::int32_t k = 5;
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    runtime::CallLog<BoundedTimestamp> log;
    core::BoundedStats stats;
    auto sys = core::make_bounded_system(n, calls, k, &log, &stats);
    util::Rng rng(seed);
    runtime::run_random(*sys, rng, 1 << 24);
    ASSERT_TRUE(sys->all_finished());
    runtime::check_no_failures(*sys);
    ASSERT_EQ(static_cast<int>(log.size()), n * calls);
    EXPECT_GT(stats.wraps(), 0u);  // labels actually recycled
    auto records = log.snapshot();
    auto filter = [&records, k](const runtime::CallRecord<BoundedTimestamp>& a,
                                const runtime::CallRecord<BoundedTimestamp>& b) {
      return core::bounded_pair_within_window(records, a, b, k);
    };
    auto report = verify::check_timestamp_property_filtered(
        records, BoundedCompare{}, filter);
    EXPECT_TRUE(report.ok()) << "seed=" << seed << " " << report.to_string();
    EXPECT_GT(report.ordered_pairs_checked, 0u);
    EXPECT_GT(report.filtered_pairs, 0u);  // the window bit: some released
    auto mono = verify::check_per_process_monotonicity_filtered(
        records, BoundedCompare{}, filter);
    EXPECT_TRUE(mono.ok()) << "seed=" << seed << " " << mono.to_string();
  }
}

TEST(BoundedRecycling, StatsCountCallsAndCollects) {
  const int n = 3;
  const int calls = 4;
  core::BoundedStats stats;
  auto sys = core::make_bounded_system(n, calls, 0, nullptr, &stats);
  util::Rng rng(3);
  runtime::run_random(*sys, rng, 1 << 22);
  ASSERT_TRUE(sys->all_finished());
  EXPECT_EQ(stats.calls(), static_cast<std::uint64_t>(n * calls));
  // Every scan performs at least two collects.
  EXPECT_GE(stats.collects(), 2 * stats.calls());
}

TEST(Bounded, FactoryIsDeterministic) {
  auto factory = core::bounded_factory(3, 2);
  auto a = factory();
  auto b = factory();
  const std::vector<int> script{0, 1, 2, 0, 1, 2, 0, 0, 1, 2};
  runtime::run_script(*a, script);
  runtime::run_script(*b, script);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(a->register_repr(r), b->register_repr(r));
  }
}

TEST(Bounded, ReprFormsAreInjectiveOnSmallUniverse) {
  std::set<std::string> reprs;
  for (std::int32_t v = 0; v < 5; ++v) {
    for (std::int32_t g = 0; g < 6; ++g) {
      reprs.insert(core::BoundedLabel{v, g}.repr());
    }
  }
  EXPECT_EQ(reprs.size(), 30u);
  EXPECT_EQ(ts(5, {1, 0, 4}).repr(), "<1 0 4>%5");
}

}  // namespace
