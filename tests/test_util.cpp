// Unit tests: util module (math, bounds, rng, table, grid).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "util/bounds.hpp"
#include "util/grid.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped::util;

TEST(Math, IsqrtExhaustiveSmall) {
  for (std::int64_t x = 0; x <= 10000; ++x) {
    const std::int64_t s = isqrt(x);
    EXPECT_LE(s * s, x);
    EXPECT_GT((s + 1) * (s + 1), x);
  }
}

TEST(Math, IsqrtCeil) {
  for (std::int64_t x = 1; x <= 10000; ++x) {
    const std::int64_t s = isqrt_ceil(x);
    EXPECT_GE(s * s, x);
    EXPECT_LT((s - 1) * (s - 1), x);
  }
}

TEST(Math, IsqrtFullInt64Range) {
  // These inputs signed-overflowed the pre-hardening implementation (UB);
  // now they must give the exact floor/ceiling square roots.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(isqrt(max), 3037000499);
  EXPECT_EQ(isqrt(std::int64_t{9223372030926249001}), 3037000499);  // exact sq
  EXPECT_EQ(isqrt(std::int64_t{9223372030926249000}), 3037000498);
  EXPECT_EQ(isqrt_ceil(max), 3037000500);
  EXPECT_EQ(isqrt_ceil(std::int64_t{9223372030926249001}), 3037000499);
  EXPECT_EQ(isqrt(std::int64_t{1} << 62), std::int64_t{1} << 31);
  EXPECT_EQ(isqrt((std::int64_t{1} << 62) - 1), (std::int64_t{1} << 31) - 1);
  EXPECT_EQ(isqrt(-5), 0);
}

TEST(Bounds, OneShotUpperSqrtFullInt64Range) {
  // ceil(2*sqrt(M)) without forming 4M: the old `isqrt_ceil(4 * m_calls)`
  // overflowed for M > INT64_MAX/4.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(bounds::oneshot_upper_sqrt(max), 6074001000);
  // s^2 and s^2 + s straddle the 2s / 2s+1 / 2s+2 cases at the top.
  EXPECT_EQ(bounds::oneshot_upper_sqrt(std::int64_t{9223372030926249001}),
            2 * 3037000499);  // exact square -> 2s
  EXPECT_EQ(bounds::oneshot_upper_sqrt(std::int64_t{9223372033963249500}),
            2 * 3037000499 + 1);  // M = s^2 + s -> 2s+1
  EXPECT_EQ(bounds::oneshot_upper_sqrt(std::int64_t{9223372033963249501}),
            2 * 3037000499 + 2);  // M = s^2 + s + 1 -> 2s+2
  EXPECT_EQ(bounds::oneshot_upper_sqrt(0), 0);
  // Agreement with the naive formula everywhere it is safe.
  for (std::int64_t m = 1; m <= 5000; ++m) {
    EXPECT_EQ(bounds::oneshot_upper_sqrt(m), isqrt_ceil(4 * m)) << m;
  }
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 2), 5);
}

TEST(Math, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(1023), 10);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bounds, MatchPaperFormulas) {
  // Theorem 1.3 / Lemma 6.5: ceil(2*sqrt(M)).
  EXPECT_EQ(bounds::oneshot_upper_sqrt(1), 2);
  EXPECT_EQ(bounds::oneshot_upper_sqrt(4), 4);
  EXPECT_EQ(bounds::oneshot_upper_sqrt(5), 5);  // 2*sqrt(5) = 4.47 -> 5
  EXPECT_EQ(bounds::oneshot_upper_sqrt(100), 20);
  // Section 5: ceil(n/2).
  EXPECT_EQ(bounds::oneshot_upper_simple(7), 4);
  EXPECT_EQ(bounds::oneshot_upper_simple(8), 4);
  // Section 4: m = floor(sqrt(2n)).
  EXPECT_EQ(bounds::oneshot_grid_m(8), 4);
  EXPECT_EQ(bounds::oneshot_grid_m(50), 10);
  // Theorem 1.1.
  EXPECT_DOUBLE_EQ(bounds::longlived_lower(60), 9.0);
  EXPECT_EQ(bounds::longlived_upper_efr(60), 59);
  EXPECT_EQ(bounds::longlived_upper_maxscan(60), 60);
}

TEST(Bounds, UpperDominatesLowerOneShot) {
  for (std::int64_t n = 2; n <= 1 << 14; n *= 2) {
    EXPECT_GE(static_cast<double>(bounds::oneshot_upper_sqrt(n)),
              bounds::oneshot_lower(n))
        << "n=" << n;
  }
}

TEST(Bounds, GapGrowsAsSqrtN) {
  // The headline separation: long-lived/one-shot ratio ~ sqrt(n)/2.
  const double r1 = static_cast<double>(bounds::longlived_upper_maxscan(64)) /
                    static_cast<double>(bounds::oneshot_upper_sqrt(64));
  const double r2 = static_cast<double>(bounds::longlived_upper_maxscan(4096)) /
                    static_cast<double>(bounds::oneshot_upper_sqrt(4096));
  EXPECT_GT(r2, r1 * 4);  // sqrt(4096/64) = 8, allow slack
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 50);
  }
}

TEST(Rng, NextInInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Table, RendersAlignedRows) {
  Table t("demo", {"n", "value"});
  t.add_row({"8", "3.14"});
  t.add_row_values({16, 2.5});
  const std::string s = t.render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RendersJson) {
  Table t("T2a: \"one-shot\" space", {"n", "regs"});
  t.add_row({"8", "6"});
  t.add_row({"64", "16"});
  EXPECT_EQ(t.render_json(),
            "{\"title\":\"T2a: \\\"one-shot\\\" space\","
            "\"headers\":[\"n\",\"regs\"],"
            "\"rows\":[[\"8\",\"6\"],[\"64\",\"16\"]]}");
}

TEST(Table, RejectsWrongWidth) {
  Table t("x", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), stamped::invariant_error);
}

TEST(Grid, RendersShading) {
  const std::string g = render_covering_grid({3, 2, 0}, 4, 1);
  EXPECT_NE(g.find('#'), std::string::npos);
  EXPECT_NE(g.find('\\'), std::string::npos);  // the stepped diagonal
  EXPECT_NE(g.find('<'), std::string::npos);   // highlight marker
}

TEST(Grid, SummarizeSignature) {
  EXPECT_EQ(summarize_signature({2, 0, 1}), "sig=(2,0,1) covered=2 total=3");
}

}  // namespace
