// Tests: exhaustive execution exploration (model checking).
//
// The crown jewels: EVERY interleaving of the simple algorithm (n = 2, 3)
// and of Algorithm 4 (n = 2) satisfies the timestamp property — statements
// that random testing cannot certify.
#include <gtest/gtest.h>

#include <memory>

#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "verify/explorer.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

// Builds an exploration instance for the simple algorithm: fresh system +
// a check of the timestamp property on its own call log.
verify::ExplorationInstance simple_instance(int n) {
  auto log = std::make_shared<runtime::CallLog<std::int64_t>>();
  verify::ExplorationInstance inst;
  inst.sys = core::make_simple_oneshot_system(n, log.get());
  inst.check = [log, n]() -> std::optional<std::string> {
    if (static_cast<int>(log->size()) != n) {
      return "expected " + std::to_string(n) + " calls, saw " +
             std::to_string(log->size());
    }
    auto report = verify::check_timestamp_property(log->snapshot(),
                                                   core::Compare{});
    if (!report.ok()) return report.to_string();
    return std::nullopt;
  };
  return inst;
}

verify::ExplorationInstance sqrt_instance(int n) {
  auto log = std::make_shared<runtime::CallLog<core::PairTimestamp>>();
  verify::ExplorationInstance inst;
  inst.sys = core::make_sqrt_oneshot_system(n, log.get());
  inst.check = [log, n]() -> std::optional<std::string> {
    if (static_cast<int>(log->size()) != n) {
      return "expected " + std::to_string(n) + " calls, saw " +
             std::to_string(log->size());
    }
    auto report = verify::check_timestamp_property(log->snapshot(),
                                                   core::Compare{});
    if (!report.ok()) return report.to_string();
    return std::nullopt;
  };
  return inst;
}

TEST(Explorer, CountsInterleavingsOfIndependentPrograms) {
  // Two processes with 3 steps each (simple algorithm, n=2 has m=1 register:
  // read + write + read): C(6,3) = 20 interleavings.
  auto result = verify::explore_all_executions(
      []() { return simple_instance(2); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 20u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_EQ(result.max_depth_seen, 6u);
}

TEST(Explorer, SimpleAlgorithmExhaustiveN3) {
  // n=3: m=2 registers, 4 steps per process: 12!/(4!4!4!) = 34650.
  auto result = verify::explore_all_executions(
      []() { return simple_instance(3); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 34650u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(Explorer, SqrtAlgorithmExhaustiveN2) {
  // Algorithm 4, two processes: every interleaving (scan retries make the
  // tree irregular — the explorer handles variable-length branches).
  auto result = verify::explore_all_executions(
      []() { return sqrt_instance(2); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.executions, 100u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(Explorer, SqrtAlgorithmBudgetedN3) {
  // n=3 is too large to exhaust; a budgeted prefix of the tree still checks
  // tens of thousands of complete executions.
  verify::ExploreOptions opts;
  opts.max_executions = 20000;
  auto result = verify::explore_all_executions(
      []() { return sqrt_instance(3); }, opts);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 20000u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

using BrokenSys = runtime::System<std::int64_t>;

// A broken "timestamp object" call: returns the constant 0. A free-function
// coroutine (parameters live in the frame; capturing coroutine lambdas are
// unsafe — see the note in core/sqrt_oneshot.hpp).
runtime::ProcessTask broken_constant_program(
    BrokenSys::Ctx& ctx, int pid,
    std::shared_ptr<runtime::CallLog<std::int64_t>> log) {
  const auto inv = ctx.stamp();
  (void)co_await ctx.read(0);
  log->record({pid, 0, 0, inv, ctx.stamp()});  // constant timestamp
  ctx.note_call_complete();
}

TEST(Explorer, DetectsInjectedViolation) {
  // The explorer must find schedules where one call strictly precedes the
  // other and flag the constant timestamps.
  using Sys = BrokenSys;
  auto factory = []() {
    auto log = std::make_shared<runtime::CallLog<std::int64_t>>();
    std::vector<Sys::Program> programs;
    for (int p = 0; p < 2; ++p) {
      programs.push_back([p, log](Sys::Ctx& ctx) {
        return broken_constant_program(ctx, p, log);
      });
    }
    verify::ExplorationInstance inst;
    inst.sys = std::make_unique<Sys>(1, std::int64_t{0}, std::move(programs));
    inst.check = [log]() -> std::optional<std::string> {
      auto report = verify::check_timestamp_property(log->snapshot(),
                                                     core::Compare{});
      if (!report.ok()) return report.to_string();
      return std::nullopt;
    };
    return inst;
  };
  auto result = verify::explore_all_executions(factory);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.executions, 2u);  // two interleavings of 1 step each
  // At least one interleaving orders the calls (response before invocation)
  // and must be flagged. (Invocation stamps are taken when a coroutine first
  // runs, so interleavings in which both processes were inspected before
  // stepping have overlapping calls and carry no obligation.)
  EXPECT_GE(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("[schedule:"), std::string::npos);
}

// A program that never terminates: writes register 0 forever.
runtime::ProcessTask endless_writer_program(BrokenSys::Ctx& ctx) {
  std::int64_t v = 0;
  for (;;) {
    co_await ctx.write(0, ++v);
  }
}

TEST(Explorer, DepthGuardStopsNonTerminatingPrograms) {
  // Before the guard became a runtime check this looped until the assertion
  // threw (or forever, had assertions been compiled out). Now the explorer
  // must stop at max_depth, record a violation, and report depth_exceeded.
  auto factory = []() {
    std::vector<BrokenSys::Program> programs;
    programs.push_back(
        [](BrokenSys::Ctx& ctx) { return endless_writer_program(ctx); });
    verify::ExplorationInstance inst;
    inst.sys =
        std::make_unique<BrokenSys>(1, std::int64_t{0}, std::move(programs));
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };
  verify::ExploreOptions opts;
  opts.max_depth = 50;
  auto result = verify::explore_all_executions(factory, opts);
  EXPECT_TRUE(result.depth_exceeded);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.executions, 0u);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.max_depth_seen, 50u);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("max_depth 50"), std::string::npos)
      << result.violations[0];
}

TEST(Explorer, RespectsExecutionBudget) {
  verify::ExploreOptions opts;
  opts.max_executions = 5;
  auto result = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 5u);
}

}  // namespace
