// Tests: exhaustive execution exploration (model checking).
//
// The crown jewels: EVERY interleaving of the simple algorithm (n = 2, 3)
// and of Algorithm 4 (n = 2) satisfies the timestamp property — statements
// that random testing cannot certify.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "verify/explorer.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

// Builds an exploration instance for the simple algorithm: fresh system +
// a check of the timestamp property on its own call log.
verify::ExplorationInstance simple_instance(int n) {
  auto log = std::make_shared<runtime::CallLog<std::int64_t>>();
  verify::ExplorationInstance inst;
  inst.sys = core::make_simple_oneshot_system(n, log.get());
  inst.check = [log, n]() -> std::optional<std::string> {
    if (static_cast<int>(log->size()) != n) {
      return "expected " + std::to_string(n) + " calls, saw " +
             std::to_string(log->size());
    }
    auto report = verify::check_timestamp_property(log->snapshot(),
                                                   core::Compare{});
    if (!report.ok()) return report.to_string();
    return std::nullopt;
  };
  return inst;
}

verify::ExplorationInstance sqrt_instance(int n) {
  auto log = std::make_shared<runtime::CallLog<core::PairTimestamp>>();
  verify::ExplorationInstance inst;
  inst.sys = core::make_sqrt_oneshot_system(n, log.get());
  inst.check = [log, n]() -> std::optional<std::string> {
    if (static_cast<int>(log->size()) != n) {
      return "expected " + std::to_string(n) + " calls, saw " +
             std::to_string(log->size());
    }
    auto report = verify::check_timestamp_property(log->snapshot(),
                                                   core::Compare{});
    if (!report.ok()) return report.to_string();
    return std::nullopt;
  };
  return inst;
}

TEST(Explorer, CountsInterleavingsOfIndependentPrograms) {
  // Two processes with 3 steps each (simple algorithm, n=2 has m=1 register:
  // read + write + read): C(6,3) = 20 interleavings.
  auto result = verify::explore_all_executions(
      []() { return simple_instance(2); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 20u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_EQ(result.max_depth_seen, 6u);
}

TEST(Explorer, SimpleAlgorithmExhaustiveN3) {
  // n=3: m=2 registers, 4 steps per process: 12!/(4!4!4!) = 34650.
  auto result = verify::explore_all_executions(
      []() { return simple_instance(3); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 34650u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(Explorer, SqrtAlgorithmExhaustiveN2) {
  // Algorithm 4, two processes: every interleaving (scan retries make the
  // tree irregular — the explorer handles variable-length branches).
  auto result = verify::explore_all_executions(
      []() { return sqrt_instance(2); });
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.executions, 100u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(Explorer, SqrtAlgorithmBudgetedN3) {
  // n=3 is too large to exhaust; a budgeted prefix of the tree still checks
  // tens of thousands of complete executions.
  verify::ExploreOptions opts;
  opts.max_executions = 20000;
  auto result = verify::explore_all_executions(
      []() { return sqrt_instance(3); }, opts);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 20000u);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

using BrokenSys = runtime::System<std::int64_t>;

// A broken "timestamp object" call: returns the constant 0. A free-function
// coroutine (parameters live in the frame; capturing coroutine lambdas are
// unsafe — see the note in core/sqrt_oneshot.hpp).
runtime::ProcessTask broken_constant_program(
    BrokenSys::Ctx& ctx, int pid,
    std::shared_ptr<runtime::CallLog<std::int64_t>> log) {
  const auto inv = ctx.stamp();
  (void)co_await ctx.read(0);
  log->record({pid, 0, 0, inv, ctx.stamp()});  // constant timestamp
  ctx.note_call_complete();
}

TEST(Explorer, DetectsInjectedViolation) {
  // The explorer must find schedules where one call strictly precedes the
  // other and flag the constant timestamps.
  using Sys = BrokenSys;
  auto factory = []() {
    auto log = std::make_shared<runtime::CallLog<std::int64_t>>();
    std::vector<Sys::Program> programs;
    for (int p = 0; p < 2; ++p) {
      programs.push_back([p, log](Sys::Ctx& ctx) {
        return broken_constant_program(ctx, p, log);
      });
    }
    verify::ExplorationInstance inst;
    inst.sys = std::make_unique<Sys>(1, std::int64_t{0}, std::move(programs));
    inst.check = [log]() -> std::optional<std::string> {
      auto report = verify::check_timestamp_property(log->snapshot(),
                                                     core::Compare{});
      if (!report.ok()) return report.to_string();
      return std::nullopt;
    };
    return inst;
  };
  auto result = verify::explore_all_executions(factory);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.executions, 2u);  // two interleavings of 1 step each
  // At least one interleaving orders the calls (response before invocation)
  // and must be flagged. (Invocation stamps are taken when a coroutine first
  // runs, so interleavings in which both processes were inspected before
  // stepping have overlapping calls and carry no obligation.)
  EXPECT_GE(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("[schedule:"), std::string::npos);
}

// A program that never terminates: writes register 0 forever.
runtime::ProcessTask endless_writer_program(BrokenSys::Ctx& ctx) {
  std::int64_t v = 0;
  for (;;) {
    co_await ctx.write(0, ++v);
  }
}

TEST(Explorer, DepthGuardStopsNonTerminatingPrograms) {
  // Before the guard became a runtime check this looped until the assertion
  // threw (or forever, had assertions been compiled out). Now the explorer
  // must stop at max_depth, record a violation, and report depth_exceeded.
  auto factory = []() {
    std::vector<BrokenSys::Program> programs;
    programs.push_back(
        [](BrokenSys::Ctx& ctx) { return endless_writer_program(ctx); });
    verify::ExplorationInstance inst;
    inst.sys =
        std::make_unique<BrokenSys>(1, std::int64_t{0}, std::move(programs));
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };
  verify::ExploreOptions opts;
  opts.max_depth = 50;
  auto result = verify::explore_all_executions(factory, opts);
  EXPECT_TRUE(result.depth_exceeded);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.executions, 0u);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.max_depth_seen, 50u);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("max_depth 50"), std::string::npos)
      << result.violations[0];
  // The message names the worker that hit the guard and the length of the
  // prefix it owned — one line is enough to diagnose a hang even when the
  // cutoff fires on a parallel exploration.
  EXPECT_NE(result.violations[0].find("[worker 0, prefix 50]"),
            std::string::npos)
      << result.violations[0];
  // The message names the processes that were still live at the cutoff, not
  // just the schedule prefix.
  EXPECT_NE(result.violations[0].find("[live pids: 0]"), std::string::npos)
      << result.violations[0];
}

TEST(Explorer, RespectsExecutionBudget) {
  verify::ExploreOptions opts;
  opts.max_executions = 5;
  auto result = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 5u);
}

// -- partial-order reduction -------------------------------------------------

TEST(Por, ReducesSimpleAlgorithmTreeAndStaysClean) {
  verify::ExploreOptions opts;
  opts.por = true;
  const auto full = verify::explore_all_executions(
      []() { return simple_instance(3); });
  const auto reduced = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  EXPECT_TRUE(full.ok());
  EXPECT_TRUE(reduced.ok()) << reduced.violations.front();
  EXPECT_LT(reduced.nodes, full.nodes);
  EXPECT_LT(reduced.executions, full.executions);
  EXPECT_GT(reduced.sleep_pruned, 0u);
  EXPECT_EQ(full.sleep_pruned, 0u);  // full DFS never prunes
}

TEST(Por, ReducesSqrtAlgorithmTreeAndStaysClean) {
  verify::ExploreOptions opts;
  opts.por = true;
  const auto full = verify::explore_all_executions(
      []() { return sqrt_instance(2); });
  const auto reduced = verify::explore_all_executions(
      []() { return sqrt_instance(2); }, opts);
  EXPECT_TRUE(full.ok());
  EXPECT_TRUE(reduced.ok()) << reduced.violations.front();
  EXPECT_FALSE(reduced.budget_exhausted);
  EXPECT_LT(reduced.nodes, full.nodes);
}

// A seeded-buggy "timestamp object": each process reads the shared counter
// and writes back +1, returning what it wrote — two processes that read
// before either writes return the SAME timestamp. The check is derived from
// register values only (no happens-before stamps), so its verdict — and its
// message — is a function of the schedule alone, which is what makes the
// full-vs-reduced violation sets comparable modulo schedule suffix.
runtime::ProcessTask racy_increment_program(
    BrokenSys::Ctx& ctx, int pid,
    std::shared_ptr<std::vector<std::int64_t>> returned) {
  const std::int64_t seen = co_await ctx.read(0);
  co_await ctx.write(0, seen + 1);
  (*returned)[static_cast<std::size_t>(pid)] = seen + 1;
  ctx.note_call_complete();
}

verify::InstanceFactory racy_increment_factory() {
  return []() {
    auto returned = std::make_shared<std::vector<std::int64_t>>(2, -1);
    std::vector<BrokenSys::Program> programs;
    for (int p = 0; p < 2; ++p) {
      programs.push_back([p, returned](BrokenSys::Ctx& ctx) {
        return racy_increment_program(ctx, p, returned);
      });
    }
    verify::ExplorationInstance inst;
    inst.sys =
        std::make_unique<BrokenSys>(1, std::int64_t{0}, std::move(programs));
    inst.check = [returned]() -> std::optional<std::string> {
      if ((*returned)[0] == (*returned)[1]) {
        return "duplicate timestamp " + std::to_string((*returned)[0]);
      }
      return std::nullopt;
    };
    return inst;
  };
}

TEST(Por, CrossCheckFindsIdenticalViolationSetOnSeededBuggyInstance) {
  const auto cc = verify::crosscheck_por(racy_increment_factory());
  // Both trees must convict the instance, with the same canonical set.
  EXPECT_FALSE(cc.full.ok());
  EXPECT_FALSE(cc.reduced.ok());
  EXPECT_TRUE(cc.agree())
      << "only_full=" << (cc.only_full.empty() ? "" : cc.only_full.front())
      << " only_reduced="
      << (cc.only_reduced.empty() ? "" : cc.only_reduced.front());
  // The reduced tree proves the same verdict on strictly less work: the full
  // tree sees the duplicate in 4 of its 6 interleavings, the reduced tree in
  // at least one representative of that equivalence class.
  EXPECT_LT(cc.reduced.nodes, cc.full.nodes);
  EXPECT_EQ(cc.full.executions, 6u);
  EXPECT_GE(cc.reduced.violations.size(), 1u);
  EXPECT_NE(cc.reduced.violations[0].find("duplicate timestamp 1"),
            std::string::npos)
      << cc.reduced.violations[0];
}

TEST(Por, CrossCheckAgreesOnCleanInstances) {
  const auto cc = verify::crosscheck_por([]() { return simple_instance(2); });
  EXPECT_TRUE(cc.full.ok());
  EXPECT_TRUE(cc.reduced.ok());
  EXPECT_TRUE(cc.agree());
  EXPECT_EQ(cc.full.executions, 20u);
  EXPECT_LT(cc.reduced.nodes, cc.full.nodes);
}

TEST(Por, StripScheduleSuffix) {
  EXPECT_EQ(verify::strip_schedule_suffix("boom [schedule: 0 1 1]"), "boom");
  EXPECT_EQ(verify::strip_schedule_suffix("no suffix here"),
            "no suffix here");
}

// -- persistent sets ---------------------------------------------------------

TEST(Persistent, ReducesNodesBeyondSleepSetsAndStaysClean) {
  // Sleep sets prune equivalent subtrees after the siblings branched; the
  // persistent set stops read-read-independent siblings from branching at
  // all. The layered reduction must certify the same (clean) verdict on
  // strictly fewer nodes, and report the deferred branches.
  verify::ExploreOptions opts;
  opts.por = true;
  const auto sleep_only = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  opts.persistent = true;
  const auto layered = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  EXPECT_TRUE(sleep_only.ok());
  EXPECT_TRUE(layered.ok()) << layered.violations.front();
  EXPECT_LT(layered.nodes, sleep_only.nodes);
  EXPECT_LE(layered.executions, sleep_only.executions);
  EXPECT_GT(layered.persistent_deferred, 0u);
  EXPECT_EQ(sleep_only.persistent_deferred, 0u);
}

TEST(Persistent, CrossCheckFindsIdenticalViolationSetOnSeededBuggyInstance) {
  // Same certification bar as the sleep-set cross-check: the persistent-set
  // tree must convict the seeded-buggy instance with the identical canonical
  // violation set, on less work than the sleep-set-only tree.
  verify::ExploreOptions opts;
  opts.persistent = true;
  const auto cc = verify::crosscheck_por(racy_increment_factory(), opts);
  EXPECT_FALSE(cc.full.ok());
  EXPECT_FALSE(cc.reduced.ok());
  EXPECT_TRUE(cc.agree())
      << "only_full=" << (cc.only_full.empty() ? "" : cc.only_full.front())
      << " only_reduced="
      << (cc.only_reduced.empty() ? "" : cc.only_reduced.front());
  EXPECT_LT(cc.reduced.nodes, cc.full.nodes);
  EXPECT_EQ(cc.full.executions, 6u);
}

TEST(Persistent, RequiresPor) {
  verify::ExploreOptions opts;
  opts.persistent = true;  // without por
  EXPECT_THROW(verify::explore_all_executions(
                   []() { return simple_instance(2); }, opts),
               stamped::invariant_error);
}

// -- parallel work-stealing DFS ----------------------------------------------

TEST(Parallel, MatchesSerialOnCleanFullTree) {
  // The work-stealing exploration visits the same tree as the serial DFS:
  // node, execution, prune and depth counters are set-derived, so a complete
  // parallel run must report exactly the serial numbers.
  const auto serial = verify::explore_all_executions(
      []() { return simple_instance(3); });
  verify::ExploreOptions opts;
  opts.threads = 4;
  const auto parallel = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(parallel.ok()) << parallel.violations.front();
  EXPECT_EQ(parallel.executions, serial.executions);
  EXPECT_EQ(parallel.nodes, serial.nodes);
  EXPECT_EQ(parallel.max_depth_seen, serial.max_depth_seen);
  EXPECT_EQ(parallel.workers, 4);
  EXPECT_EQ(serial.workers, 1);
  EXPECT_FALSE(parallel.budget_exhausted);
}

TEST(Parallel, MatchesSerialUnderLayeredReduction) {
  // Reduction decisions (sleep sets, persistent sets) are functions of the
  // node alone, so the reduced tree is also identical under stealing.
  verify::ExploreOptions opts;
  opts.por = true;
  opts.persistent = true;
  const auto serial = verify::explore_all_executions(
      []() { return sqrt_instance(2); }, opts);
  opts.threads = 4;
  const auto parallel = verify::explore_all_executions(
      []() { return sqrt_instance(2); }, opts);
  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(parallel.ok()) << parallel.violations.front();
  EXPECT_EQ(parallel.executions, serial.executions);
  EXPECT_EQ(parallel.nodes, serial.nodes);
  EXPECT_EQ(parallel.sleep_pruned, serial.sleep_pruned);
  EXPECT_EQ(parallel.persistent_deferred, serial.persistent_deferred);
}

TEST(Parallel, FindsInjectedViolationSetEqualToSerial) {
  // Violation MERGE determinism: the parallel run reports its violations
  // sorted; the serial run reports DFS order. As sets they must coincide.
  const auto serial =
      verify::explore_all_executions(racy_increment_factory());
  verify::ExploreOptions opts;
  opts.threads = 4;
  const auto parallel =
      verify::explore_all_executions(racy_increment_factory(), opts);
  EXPECT_FALSE(serial.ok());
  EXPECT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.executions, serial.executions);
  EXPECT_EQ(parallel.nodes, serial.nodes);
  std::vector<std::string> serial_sorted = serial.violations;
  std::sort(serial_sorted.begin(), serial_sorted.end());
  EXPECT_EQ(parallel.violations, serial_sorted);
}

TEST(Parallel, RespectsExecutionBudgetExactly) {
  // The budget is an atomic claim: the merged execution count lands exactly
  // on the cap even with four workers racing for the last claims.
  verify::ExploreOptions opts;
  opts.max_executions = 500;
  opts.threads = 4;
  const auto result = verify::explore_all_executions(
      []() { return simple_instance(3); }, opts);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 500u);
}

TEST(Parallel, DepthGuardStopsAllWorkersAndNamesOne) {
  auto factory = []() {
    std::vector<BrokenSys::Program> programs;
    programs.push_back(
        [](BrokenSys::Ctx& ctx) { return endless_writer_program(ctx); });
    verify::ExplorationInstance inst;
    inst.sys =
        std::make_unique<BrokenSys>(1, std::int64_t{0}, std::move(programs));
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };
  verify::ExploreOptions opts;
  opts.max_depth = 64;
  opts.threads = 4;
  const auto result = verify::explore_all_executions(factory, opts);
  EXPECT_TRUE(result.depth_exceeded);
  ASSERT_GE(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("max_depth 64"), std::string::npos)
      << result.violations[0];
  EXPECT_NE(result.violations[0].find("[worker "), std::string::npos)
      << result.violations[0];
  EXPECT_NE(result.violations[0].find("prefix 64"), std::string::npos)
      << result.violations[0];
}

TEST(Parallel, CrossCheckSerialFullVersusParallelReduced) {
  // The acceptance-grade cross-check: the serial full DFS as the reference
  // tree against the parallel, sleep+persistent-reduced tree — identical
  // canonical violation sets on a seeded-buggy instance.
  verify::ExploreOptions opts;
  opts.persistent = true;
  opts.threads = 4;
  const auto cc = verify::crosscheck_por(racy_increment_factory(), opts);
  EXPECT_FALSE(cc.full.ok());
  EXPECT_FALSE(cc.reduced.ok());
  EXPECT_TRUE(cc.agree())
      << "only_full=" << (cc.only_full.empty() ? "" : cc.only_full.front())
      << " only_reduced="
      << (cc.only_reduced.empty() ? "" : cc.only_reduced.front());
  EXPECT_EQ(cc.full.workers, 1);
  EXPECT_EQ(cc.reduced.workers, 4);
  EXPECT_LT(cc.reduced.nodes, cc.full.nodes);
}

}  // namespace
