// Tests: the native multicore backend — the lock-free history recorder, the
// NativeSystem thread pool, and the harness integration that checks recorded
// native histories with the same property checkers as simulated runs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "api/harness.hpp"
#include "api/registry.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/timestamp.hpp"
#include "native/native_instance.hpp"
#include "native/native_system.hpp"
#include "native/recorder.hpp"
#include "util/assert.hpp"

namespace {

using namespace stamped;
using native::CallArena;
using native::HistoryRecorder;
using native::NativeSystem;

TEST(Recorder, ArenaCrossesBlockBoundaries) {
  CallArena<std::int64_t> arena;
  const std::size_t total = 3 * CallArena<std::int64_t>::kBlockRecords + 17;
  for (std::size_t k = 0; k < total; ++k) {
    arena.record({0, static_cast<int>(k), static_cast<std::int64_t>(k),
                  2 * k + 1, 2 * k + 2});
  }
  EXPECT_EQ(arena.size(), total);
  EXPECT_EQ(arena.bytes() % sizeof(runtime::CallRecord<std::int64_t>), 0u);
  EXPECT_GT(arena.bytes(), 0u);
  std::vector<runtime::CallRecord<std::int64_t>> out;
  arena.append_to(out);
  ASSERT_EQ(out.size(), total);
  for (std::size_t k = 0; k < total; ++k) {
    EXPECT_EQ(out[k].ts, static_cast<std::int64_t>(k));
  }
}

TEST(Recorder, MergeSortsByCompletionStamp) {
  // Two arenas with interleaved completion stamps; merged() must produce the
  // stamp-sorted total order regardless of arena boundaries.
  HistoryRecorder<std::int64_t> rec(2);
  rec.arena(0).record({0, 0, 10, 1, 4});
  rec.arena(0).record({0, 1, 11, 5, 8});
  rec.arena(1).record({1, 0, 20, 2, 3});
  rec.arena(1).record({1, 1, 21, 6, 7});
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].responded_at, merged[i].responded_at);
  }
  EXPECT_EQ(merged[0].ts, 20);
  EXPECT_EQ(merged[1].ts, 10);
  EXPECT_EQ(merged[2].ts, 21);
  EXPECT_EQ(merged[3].ts, 11);
  EXPECT_EQ(rec.size(), 4u);
  const auto counts = rec.per_arena_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(NativeSystem, FewerThreadsThanProcesses) {
  // 8 programs on 3 workers: the pool serializes some programs per worker;
  // every program still runs and per_thread_calls accounts for all of them.
  const int n = 8;
  const int calls = 5;
  HistoryRecorder<std::int64_t> rec(n);
  std::vector<NativeSystem<std::int64_t>::Program> programs;
  for (int p = 0; p < n; ++p) {
    auto* arena = &rec.arena(p);
    programs.push_back(
        [p, n, calls, arena](atomicmem::DirectCtx<std::int64_t>& ctx) {
          return core::maxscan_program(ctx, p, n, calls, arena);
        });
  }
  NativeSystem<std::int64_t> sys(n, 0, std::move(programs));
  const auto stats = sys.run(3);
  EXPECT_EQ(stats.threads, 3);
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(n) * calls);
  ASSERT_EQ(stats.per_thread_calls.size(), 3u);
  const std::uint64_t sum = std::accumulate(stats.per_thread_calls.begin(),
                                            stats.per_thread_calls.end(),
                                            std::uint64_t{0});
  EXPECT_EQ(sum, stats.calls);
  EXPECT_EQ(rec.size(), static_cast<std::size_t>(n) * calls);
}

TEST(NativeSystem, RateMathStaysFiniteOnDegenerateRuns) {
  // A one-program one-call run can finish inside a steady_clock tick;
  // elapsed_seconds is clamped so ops/sec never goes inf or garbage.
  std::vector<NativeSystem<std::int64_t>::Program> programs;
  programs.push_back([](atomicmem::DirectCtx<std::int64_t>& ctx) {
    return core::maxscan_program(
        ctx, 0, 1, 1, static_cast<runtime::CallLog<std::int64_t>*>(nullptr));
  });
  NativeSystem<std::int64_t> sys(1, 0, std::move(programs));
  const auto stats = sys.run(1);
  EXPECT_GE(stats.elapsed_seconds, native::kMinElapsedSeconds);
  EXPECT_TRUE(std::isfinite(stats.ops_per_sec()));
  EXPECT_TRUE(std::isfinite(stats.calls_per_sec()));

  // The rate helpers clamp even a hand-built zero-elapsed RunStats, so
  // consumers that fill the struct themselves get the same guarantee.
  native::RunStats zero;
  zero.ops = 1000;
  zero.calls = 10;
  zero.elapsed_seconds = 0.0;
  EXPECT_TRUE(std::isfinite(zero.ops_per_sec()));
  EXPECT_TRUE(std::isfinite(zero.calls_per_sec()));
  EXPECT_DOUBLE_EQ(zero.ops_per_sec(), 1000.0 / native::kMinElapsedSeconds);
}

TEST(NativeSystem, RunIsSingleUse) {
  std::vector<NativeSystem<std::int64_t>::Program> programs;
  programs.push_back([](atomicmem::DirectCtx<std::int64_t>& ctx) {
    return core::maxscan_program(
        ctx, 0, 1, 1, static_cast<runtime::CallLog<std::int64_t>*>(nullptr));
  });
  NativeSystem<std::int64_t> sys(1, 0, std::move(programs));
  (void)sys.run(1);
  EXPECT_THROW((void)sys.run(1), stamped::invariant_error);
}

TEST(Harness, BackendAndSourceMustAgree) {
  const auto& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 2;
  // Native spec under a simulator source.
  spec.backend = api::Backend::kNative;
  EXPECT_THROW((void)api::Harness{}.run_scenario(fam, spec, api::round_robin()),
               stamped::invariant_error);
  // Simulator spec under the native source.
  spec.backend = api::Backend::kSim;
  EXPECT_THROW((void)api::Harness{}.run_scenario(fam, spec, api::native_os()),
               stamped::invariant_error);
}

TEST(Harness, NativeReportCarriesRunStats) {
  const auto& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = 10;
  spec.backend = api::Backend::kNative;
  spec.native_threads = 4;
  const auto rep =
      api::Harness{}.run_scenario(fam, spec, api::native_os());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(rep.all_finished);
  EXPECT_EQ(rep.schedule, "native-os");
  EXPECT_EQ(rep.calls, static_cast<std::uint64_t>(spec.total_calls()));
  EXPECT_EQ(rep.native_threads, 4);
  // Max-scan is scan-free: n reads + 1 write + n registers => deterministic
  // op count n*calls*(n+1) regardless of the interleaving.
  EXPECT_EQ(rep.steps, static_cast<std::uint64_t>(spec.n) *
                           spec.calls_per_process * (spec.n + 1));
  ASSERT_EQ(rep.native_thread_calls.size(), 4u);
  EXPECT_EQ(std::accumulate(rep.native_thread_calls.begin(),
                            rep.native_thread_calls.end(), std::uint64_t{0}),
            rep.calls);
  EXPECT_GT(rep.recorder_arena_bytes, 0u);
  EXPECT_EQ(rep.retired_nodes, 0u);  // int64 registers: inline cells
  EXPECT_GE(rep.native_elapsed_seconds, 0.0);
  EXPECT_FALSE(rep.summary().empty());
}

TEST(Harness, EveryFamilyRunsNativeAndPassesCheckers) {
  // The acceptance bar in one test: all six families on >= 4 real threads,
  // recorded histories through the same checkers as simulated runs.
  for (const auto& fam : api::registry()) {
    ASSERT_NE(fam.make_native, nullptr) << fam.name;
    api::ScenarioSpec spec;
    spec.n = 8;
    spec.calls_per_process = fam.max_calls_per_process == 1 ? 1 : 6;
    spec.backend = api::Backend::kNative;
    spec.native_threads = 4;
    const auto rep =
        api::Harness{}.run_scenario(fam, spec, api::native_os());
    EXPECT_TRUE(rep.ok()) << fam.name << ": " << rep.summary();
    EXPECT_TRUE(rep.all_finished) << fam.name;
    EXPECT_EQ(rep.calls, static_cast<std::uint64_t>(spec.total_calls()))
        << fam.name;
    EXPECT_EQ(rep.native_threads, 4) << fam.name;
    EXPECT_EQ(rep.retired_nodes, 0u) << fam.name;  // clean quiesce
  }
}

}  // namespace
