// Tests: the MWMR-from-SWMR register construction (src/registers/).
#include <gtest/gtest.h>

#include <tuple>

#include "atomicmem/atomic_memory.hpp"
#include "native/native_system.hpp"
#include "registers/mwmr_register.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace stamped;
using registers::MwmrEvent;
using registers::TaggedValue;

TEST(TaggedValue, TagOrderAndRepr) {
  TaggedValue a{10, 3, 1};
  TaggedValue b{20, 3, 2};
  TaggedValue c{30, 4, 0};
  EXPECT_TRUE(a.tag_less(b));   // same ts, higher writer wins
  EXPECT_TRUE(b.tag_less(c));   // higher ts wins
  EXPECT_FALSE(c.tag_less(a));
  EXPECT_EQ(a.repr(), "{10@3w1}");
}

TEST(MwmrRegister, SequentialReadsSeeLatestWrite) {
  registers::MwmrLog log;
  auto sys = registers::make_mwmr_system(3, 2, &log);
  // Run each worker's full program sequentially.
  for (int p = 0; p < 3; ++p) {
    while (!sys->finished(p)) sys->step(p);
  }
  runtime::check_no_failures(*sys);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 12u);  // 3 procs x 2 rounds x (write + read)
  // Each read immediately follows its own write and must return it (no
  // concurrent writers in a sequential run).
  for (std::size_t i = 0; i + 1 < events.size(); i += 2) {
    EXPECT_EQ(events[i].kind, MwmrEvent::Kind::kWrite);
    EXPECT_EQ(events[i + 1].kind, MwmrEvent::Kind::kRead);
    EXPECT_EQ(events[i + 1].tagged, events[i].tagged);
  }
  EXPECT_TRUE(registers::check_mwmr_history(events).empty());
}

TEST(MwmrRegister, InitialValueReadable) {
  registers::MwmrLog log;
  auto sys = registers::make_mwmr_system(2, 1, &log);
  // Steps only the reader part? Workers write first, so craft a pure read:
  // run process 0 up to (but not past) its first write, then it cannot have
  // published anything; instead check the tag-0 path via the checker on an
  // empty history.
  EXPECT_TRUE(registers::check_mwmr_history({}).empty());
  (void)sys;
}

class MwmrSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MwmrSweep, HistoryValidUnderRandomSchedules) {
  const auto [n, rounds, seed] = GetParam();
  registers::MwmrLog log;
  auto sys = registers::make_mwmr_system(n, rounds, &log);
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 26);
  ASSERT_TRUE(sys->all_finished());
  runtime::check_no_failures(*sys);
  const std::string verdict = registers::check_mwmr_history(log.snapshot());
  EXPECT_TRUE(verdict.empty()) << verdict;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MwmrSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8), ::testing::Values(1, 4),
                       ::testing::Values(71u, 72u, 73u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(MwmrRegister, CheckerDetectsStaleRead) {
  // Write completes, then a later read returns a smaller tag: violation.
  std::vector<MwmrEvent> events;
  events.push_back({MwmrEvent::Kind::kWrite, 0, {100, 5, 0}, 1, 2});
  events.push_back({MwmrEvent::Kind::kRead, 1, {0, 0, -1}, 3, 4});
  EXPECT_FALSE(registers::check_mwmr_history(events).empty());
}

TEST(MwmrRegister, CheckerDetectsNewOldInversion) {
  std::vector<MwmrEvent> events;
  events.push_back({MwmrEvent::Kind::kWrite, 0, {100, 5, 0}, 1, 2});
  events.push_back({MwmrEvent::Kind::kWrite, 1, {200, 6, 1}, 1, 2});
  events.push_back({MwmrEvent::Kind::kRead, 2, {200, 6, 1}, 3, 4});
  events.push_back({MwmrEvent::Kind::kRead, 2, {100, 5, 0}, 5, 6});
  EXPECT_FALSE(registers::check_mwmr_history(events).empty());
}

TEST(MwmrRegister, CheckerDetectsPhantomValue) {
  std::vector<MwmrEvent> events;
  events.push_back({MwmrEvent::Kind::kRead, 0, {42, 7, 3}, 1, 2});
  EXPECT_FALSE(registers::check_mwmr_history(events).empty());
}

TEST(MwmrRegister, WorksUnderRealThreads) {
  const int n = 4;
  const int rounds = 50;
  for (int trial = 0; trial < 5; ++trial) {
    registers::MwmrLog log;
    std::vector<native::NativeSystem<TaggedValue>::Program> programs;
    for (int p = 0; p < n; ++p) {
      programs.push_back(
          [p, n, rounds, &log](atomicmem::DirectCtx<TaggedValue>& ctx) {
            return registers::mwmr_worker_program(ctx, p, n, rounds, &log);
          });
    }
    native::NativeSystem<TaggedValue> sys(n, TaggedValue{},
                                          std::move(programs));
    (void)sys.run(n);
    const std::string verdict = registers::check_mwmr_history(log.snapshot());
    EXPECT_TRUE(verdict.empty()) << verdict;
  }
}

}  // namespace
