// Tests: the sharded timestamp service (src/shard/) — routing layout,
// composed-timestamp comparison, the flat-combining batcher, harness
// integration on both backends, and the cross-shard monotonicity checker
// (including the planted epoch-dropping mis-composition it must catch).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "api/harness.hpp"
#include "api/registry.hpp"
#include "core/timestamp.hpp"
#include "shard/compose.hpp"
#include "shard/sharded_instance.hpp"
#include "util/assert.hpp"
#include "verify/cross_shard.hpp"

namespace {

using namespace stamped;

TEST(ShardLayout, StaticRoutingPartitionsClients) {
  const auto layout = shard::ShardLayout::make(
      /*clients=*/10, /*shards=*/4, /*rehash_calls=*/false,
      [](int w) { return w; });
  EXPECT_EQ(layout.shards, 4);
  EXPECT_EQ(layout.clients, 10);
  // Every client sits in exactly one shard, with a dense local pid.
  std::vector<int> seen_per_shard(4, 0);
  for (int c = 0; c < 10; ++c) {
    const int s = layout.shard_of[static_cast<std::size_t>(c)];
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(layout.local_pid[static_cast<std::size_t>(c)],
              seen_per_shard[static_cast<std::size_t>(s)]);
    ++seen_per_shard[static_cast<std::size_t>(s)];
    EXPECT_EQ(layout.route(c, 0), s);
    EXPECT_EQ(layout.route(c, 7), s);  // static routing ignores call index
  }
  int members_total = 0;
  std::int64_t regs_total = 0;
  for (int s = 0; s < 4; ++s) {
    members_total +=
        static_cast<int>(layout.members[static_cast<std::size_t>(s)].size());
    EXPECT_EQ(layout.width[static_cast<std::size_t>(s)],
              seen_per_shard[static_cast<std::size_t>(s)]);
    regs_total += layout.regs[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(members_total, 10);
  EXPECT_EQ(layout.total_regs, regs_total);
}

TEST(ShardLayout, RehashRoutingSpreadsCallsOfOneClient) {
  const auto layout = shard::ShardLayout::make(
      /*clients=*/4, /*shards=*/4, /*rehash_calls=*/true,
      [](int w) { return w; });
  // Rehash mode seats every client in every shard under its own global id.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(layout.width[static_cast<std::size_t>(s)], 4);
    EXPECT_EQ(layout.members[static_cast<std::size_t>(s)].size(), 4u);
  }
  // Some client's consecutive calls must land on different shards (that is
  // the point of per-call rehashing).
  bool hopped = false;
  for (int c = 0; c < 4 && !hopped; ++c) {
    for (int k = 1; k < 8; ++k) {
      if (layout.route(c, k) != layout.route(c, k - 1)) {
        hopped = true;
        break;
      }
    }
  }
  EXPECT_TRUE(hopped);
}

TEST(ComposedCompare, EpochDominatesThenShardThenLocal) {
  const shard::ComposedCompare<std::int64_t, core::Compare> cmp{{}};
  using C = shard::ComposedTs<std::int64_t>;
  // Different epochs: epoch order decides, local labels ignored.
  EXPECT_TRUE(cmp(C{1, 0, 99}, C{2, 0, 1}));
  EXPECT_FALSE(cmp(C{2, 0, 1}, C{1, 0, 99}));
  // Equal epoch, same shard: the family comparator on local labels.
  EXPECT_TRUE(cmp(C{3, 1, 4}, C{3, 1, 5}));
  EXPECT_FALSE(cmp(C{3, 1, 5}, C{3, 1, 4}));
  // Equal epoch, different shards: incomparable both ways (asymmetry holds
  // vacuously; such pairs are concurrent within one batch window).
  EXPECT_FALSE(cmp(C{3, 0, 1}, C{3, 1, 2}));
  EXPECT_FALSE(cmp(C{3, 1, 2}, C{3, 0, 1}));
  // Irreflexive.
  EXPECT_FALSE(cmp(C{3, 1, 4}, C{3, 1, 4}));
}

TEST(CrossShardChecker, CatchesDroppedEpoch) {
  // Hand-built history: client 0 calls on shard 0 (label 5), then — after
  // responding — on shard 1 (label 1). With epochs composed correctly the
  // hop is monotone; with the epoch dropped (both 0) the composed compare
  // falls back to "different shard => false both ways" and the hop breaks.
  using C = shard::ComposedTs<std::int64_t>;
  const shard::ComposedCompare<std::int64_t, core::Compare> cmp{{}};
  const auto shard_of = [](const runtime::CallRecord<C>& r) {
    return r.ts.shard;
  };
  std::vector<runtime::CallRecord<C>> good;
  good.push_back({0, 0, C{1, 0, 5}, 1, 2});
  good.push_back({0, 1, C{2, 1, 1}, 3, 4});
  const auto ok = verify::check_cross_shard_monotonicity(good, cmp, shard_of);
  EXPECT_TRUE(ok.ok()) << ok.to_string();
  EXPECT_EQ(ok.ordered_pairs_checked, 1u);

  std::vector<runtime::CallRecord<C>> dropped;
  dropped.push_back({0, 0, C{0, 0, 5}, 1, 2});
  dropped.push_back({0, 1, C{0, 1, 1}, 3, 4});
  const auto bad =
      verify::check_cross_shard_monotonicity(dropped, cmp, shard_of);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ordered_pairs_checked, 1u);

  // Same-shard hops carry no cross-shard obligation even when broken.
  std::vector<runtime::CallRecord<C>> same_shard;
  same_shard.push_back({0, 0, C{0, 0, 5}, 1, 2});
  same_shard.push_back({0, 1, C{0, 0, 1}, 3, 4});
  const auto skipped =
      verify::check_cross_shard_monotonicity(same_shard, cmp, shard_of);
  EXPECT_EQ(skipped.ordered_pairs_checked, 0u);
}

TEST(ShardedHarness, PlantedEpochDropIsCaughtAtPinnedSeed) {
  // The differential test the checker exists for: run the REAL service with
  // the planted drop_epoch mis-composition (every composed timestamp reports
  // epoch 0) under per-call rehash routing, and require the cross-shard
  // checker to produce violations. The per-shard histories are perfectly
  // valid — only the cross-shard view can see this bug.
  api::ScenarioSpec spec;
  spec.n = 6;
  spec.calls_per_process = 4;
  spec.seed = 7;  // pinned: the run is deterministic on the simulator
  spec.shard.shards = 4;
  spec.shard.rehash_calls = true;
  spec.shard.drop_epoch = true;
  const auto rep = api::Harness{}.run_scenario(
      api::family("maxscan"), spec, api::seeded_random());
  EXPECT_TRUE(rep.all_finished);
  EXPECT_FALSE(rep.ok()) << "planted epoch drop must be caught";
  bool cross_shard_violation = false;
  for (const std::string& v : rep.violations) {
    if (v.find("cross-shard") != std::string::npos) {
      cross_shard_violation = true;
    }
  }
  EXPECT_TRUE(cross_shard_violation)
      << "violations did not include a cross-shard finding: "
      << rep.summary();
}

TEST(ShardedHarness, AllFamiliesCleanOnSimAcrossShardCounts) {
  // The clean path: every registry family through the sharded service at
  // shards in {1, 2, 4}, batched and unbatched, static and rehash routing,
  // full checkers on. Simulator backend, so fully deterministic.
  for (const auto& fam : api::registry()) {
    ASSERT_NE(fam.make_sharded, nullptr) << fam.name;
    for (int shards : {1, 2, 4}) {
      for (const bool batched : {true, false}) {
        for (const bool rehash : {true, false}) {
          api::ScenarioSpec spec;
          spec.n = 6;
          spec.calls_per_process = fam.max_calls_per_process == 1 ? 1 : 3;
          spec.shard.shards = shards;
          spec.shard.batched = batched;
          spec.shard.rehash_calls = rehash;
          const auto rep = api::Harness{}.run_scenario(
              fam, spec, api::seeded_random());
          EXPECT_TRUE(rep.ok())
              << fam.name << " shards=" << shards << " batched=" << batched
              << " rehash=" << rehash << ": " << rep.summary();
          EXPECT_TRUE(rep.all_finished) << fam.name;
          EXPECT_EQ(rep.calls,
                    static_cast<std::uint64_t>(spec.total_calls()))
              << fam.name;
          EXPECT_EQ(rep.shards, shards);
          const std::uint64_t shard_sum = std::accumulate(
              rep.shard_calls.begin(), rep.shard_calls.end(),
              std::uint64_t{0});
          EXPECT_EQ(shard_sum, rep.calls) << fam.name;
          if (!batched) {
            EXPECT_EQ(rep.combiner_passes, 0u) << fam.name;
          }
        }
      }
    }
  }
}

TEST(ShardedHarness, BatcherActuallyBatchesUnderConcurrentSchedules) {
  // Round-robin over 8 clients of one shard: while the first combiner holds
  // the lock mid-pass, everyone else publishes; the next pass serves them
  // all at once. The simulator makes this deterministic.
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = 4;
  spec.shard.shards = 1;
  const auto rep = api::Harness{}.run_scenario(api::family("maxscan"), spec,
                                               api::round_robin());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.combiner_passes, 0u);
  EXPECT_GT(rep.max_batch, 1u) << "no batch larger than 1 formed";
  EXPECT_EQ(rep.combined_calls,
            static_cast<std::uint64_t>(spec.total_calls()));
  EXPECT_GE(rep.avg_batch, 1.0);
}

TEST(ShardedHarness, NativeBackendRunsAndChecksClean) {
  // Spot check on real threads: batched maxscan and fetchadd, rehash
  // routing, full checkers on the recorded composed/per-shard histories.
  for (const char* name : {"maxscan", "fetchadd"}) {
    api::ScenarioSpec spec;
    spec.n = 8;
    spec.calls_per_process = 8;
    spec.backend = api::Backend::kNative;
    spec.native_threads = 4;
    spec.shard.shards = 4;
    spec.shard.rehash_calls = true;
    const auto rep = api::Harness{}.run_scenario(api::family(name), spec,
                                                 api::native_os());
    EXPECT_TRUE(rep.ok()) << name << ": " << rep.summary();
    EXPECT_TRUE(rep.all_finished) << name;
    EXPECT_EQ(rep.calls, static_cast<std::uint64_t>(spec.total_calls()))
        << name;
    EXPECT_EQ(rep.shards, 4) << name;
    EXPECT_GT(rep.cross_shard_pairs, 0u)
        << name << ": rehash routing should produce cross-shard hops";
  }
}

TEST(ShardedHarness, SoloBlockingSourceRejectedOnlyWithoutStealing) {
  // covering_adversary parks a client mid-combine while it holds the shard
  // lease. With allow_steal off that wedges the shard forever, so the
  // harness must reject the source up front rather than spin out the step
  // budget...
  api::ScenarioSpec spec;
  spec.n = 4;
  spec.calls_per_process = 2;
  spec.shard.shards = 2;
  spec.shard.allow_steal = false;
  EXPECT_THROW((void)api::Harness{}.run_scenario(
                   api::family("maxscan"), spec, api::covering_adversary()),
               stamped::invariant_error);

  // ...while the default lease semantics recover: a later solo process
  // exhausts its steal budget, steals the parked lease, and the run drains
  // to a clean, fully-checked completion.
  spec.shard.allow_steal = true;
  const auto rep = api::Harness{}.run_scenario(api::family("maxscan"), spec,
                                               api::covering_adversary());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(rep.all_finished) << rep.summary();
  EXPECT_EQ(rep.calls, static_cast<std::uint64_t>(spec.total_calls()));
}

TEST(ShardedHarness, ZeroSpinBudgetStillTerminates) {
  // Degenerate native budget: spin_budget = 0 yields on every probe. The
  // wait loop's self-combine arm never depends on another process, so the
  // run must still terminate and check clean.
  api::ScenarioSpec spec;
  spec.n = 6;
  spec.calls_per_process = 4;
  spec.backend = api::Backend::kNative;
  spec.native_threads = 4;
  spec.shard.shards = 2;
  spec.shard.spin_budget = 0;
  const auto rep = api::Harness{}.run_scenario(api::family("maxscan"), spec,
                                               api::native_os());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(rep.all_finished);
  EXPECT_EQ(rep.calls, static_cast<std::uint64_t>(spec.total_calls()));
}

TEST(ShardedHarness, SummaryCarriesShardLine) {
  api::ScenarioSpec spec;
  spec.n = 4;
  spec.calls_per_process = 2;
  spec.shard.shards = 2;
  const auto rep = api::Harness{}.run_scenario(api::family("maxscan"), spec,
                                               api::round_robin());
  EXPECT_NE(rep.summary().find("shards=2"), std::string::npos)
      << rep.summary();
}

}  // namespace
