// Tests for the family registry itself: enumeration, lookup, and the
// contract between each entry's declared space bound and what a solo
// sequential run actually writes.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "api/harness.hpp"
#include "api/registry.hpp"

namespace {

using namespace stamped;

TEST(Registry, EnumeratesAllSixFamilies) {
  const auto& families = api::registry();
  ASSERT_EQ(families.size(), 6u);
  const std::set<std::string> expected{"maxscan",  "simple-oneshot",
                                      "sqrt-oneshot", "growing-oneshot",
                                      "fetchadd", "bounded"};
  std::set<std::string> actual;
  for (const auto& fam : families) actual.insert(fam.name);
  EXPECT_EQ(actual, expected);
}

TEST(Registry, FamilyNamesAreUnique) {
  std::set<std::string> seen;
  for (const auto& fam : api::registry()) {
    EXPECT_TRUE(seen.insert(fam.name).second)
        << "duplicate family name: " << fam.name;
  }
}

TEST(Registry, EveryEntryIsFullyPopulated) {
  for (const auto& fam : api::registry()) {
    EXPECT_FALSE(fam.name.empty());
    EXPECT_FALSE(fam.summary.empty()) << fam.name;
    EXPECT_FALSE(fam.universe.empty()) << fam.name;
    EXPECT_TRUE(fam.registers_allocated != nullptr) << fam.name;
    EXPECT_TRUE(fam.make != nullptr) << fam.name;
    EXPECT_TRUE(fam.factory != nullptr) << fam.name;
  }
}

TEST(Registry, LookupFindsEveryFamilyAndRejectsUnknown) {
  for (const auto& fam : api::registry()) {
    const api::TimestampFamily* found = api::find_family(fam.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, fam.name);
    EXPECT_EQ(&api::family(fam.name), found);
  }
  EXPECT_EQ(api::find_family("no-such-family"), nullptr);
  EXPECT_THROW((void)api::family("no-such-family"), stamped::invariant_error);
}

TEST(Registry, OneShotFamiliesRejectMultiCallScenarios) {
  api::ScenarioSpec multi;
  multi.n = 4;
  multi.calls_per_process = 2;
  EXPECT_FALSE(api::family("simple-oneshot").supports(multi));
  EXPECT_TRUE(api::family("maxscan").supports(multi));
  EXPECT_TRUE(api::family("sqrt-oneshot").supports(multi))
      << "calls > 1 selects Algorithm 4's bounded-M generalization";
}

TEST(Registry, DeclaredSpaceBoundMatchesSoloSequentialRun) {
  // writes_full_allocation families (max-scan, simple, fetch&add, bounded)
  // write exactly the allocation in a solo sequential run; Algorithm 4
  // variants allocate a never-written sentinel and write at most the
  // allocation.
  const api::Harness harness;
  for (const auto& fam : api::registry()) {
    for (int n : {1, 2, 5, 9}) {
      api::ScenarioSpec spec;
      spec.n = n;
      const auto report = harness.run_scenario(fam, spec, api::sequential());
      EXPECT_TRUE(report.ok()) << report.summary();
      EXPECT_TRUE(report.all_finished) << report.summary();
      if (fam.writes_full_allocation) {
        EXPECT_EQ(report.registers_written, report.registers_allocated)
            << fam.name << " n=" << n;
      } else {
        EXPECT_LE(report.registers_written, report.registers_allocated)
            << fam.name << " n=" << n;
        EXPECT_GT(report.registers_written, 0) << fam.name << " n=" << n;
      }
    }
  }
}

TEST(Registry, MetricsSurfaceFamilySpecificCounters) {
  // The bounded family reports label recycles ("wraps"): with K = 3 every
  // third tick of a component wraps, so a long solo run must record some.
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 6;
  spec.universe_bound = 3;
  const auto report = api::Harness{}.run_scenario(
      api::family("bounded"), spec, api::round_robin(),
      api::Checkers::none());
  std::int64_t wraps = -1;
  for (const auto& [key, value] : report.metrics) {
    if (key == "wraps") wraps = value;
  }
  EXPECT_GT(wraps, 0) << report.summary();
}

}  // namespace
