// Negative tests: the Algorithm 4 invariant checker and phase analysis must
// DETECT violations, not just pass on correct runs.
#include <gtest/gtest.h>

#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace stamped;
using core::TsRecord;
using Sys = runtime::System<TsRecord>;

// Free-function coroutines for deliberately ill-behaved programs (parameters
// live in the coroutine frame).
runtime::ProcessTask write_arbitrary_program(Sys::Ctx& ctx, int reg,
                                             TsRecord rec) {
  co_await ctx.write(reg, std::move(rec));
}

std::unique_ptr<Sys> one_writer_system(int registers, int reg, TsRecord rec) {
  std::vector<Sys::Program> programs;
  programs.push_back([reg, rec](Sys::Ctx& ctx) {
    return write_arbitrary_program(ctx, reg, rec);
  });
  return std::make_unique<Sys>(registers, TsRecord::bottom(),
                               std::move(programs));
}

TEST(InvariantChecker, DetectsNonBottomBeyondFrontier) {
  // Writing register 2 while 0 and 1 are still ⊥ breaks the prefix property.
  auto sys = one_writer_system(4, 2, TsRecord::make({{0, 0}}, 1));
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  EXPECT_THROW(sys->step(0), stamped::invariant_error);
}

TEST(InvariantChecker, DetectsBadSequenceLength) {
  // A record of length 2 in register 0 (paper register 1 must hold length 1).
  auto sys = one_writer_system(4, 0, TsRecord::make({{0, 0}, {1, 0}}, 1));
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  EXPECT_THROW(sys->step(0), stamped::invariant_error);
}

TEST(InvariantChecker, DetectsSentinelWrite) {
  auto sys = one_writer_system(2, 1, TsRecord::make({{0, 0}}, 1));
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  EXPECT_THROW(sys->step(0), stamped::invariant_error);
}

runtime::ProcessTask duplicate_writer_program(Sys::Ctx& ctx) {
  TsRecord first = TsRecord::make({{0, 0}}, 1);
  TsRecord second = TsRecord::make({{0, 0}}, 1);
  co_await ctx.write(0, std::move(first));
  co_await ctx.write(0, std::move(second));
}

TEST(InvariantChecker, DetectsRepeatedLastId) {
  // Claim 6.1(b): two writes with the same last(seq) to one register.
  std::vector<Sys::Program> programs;
  programs.push_back(
      [](Sys::Ctx& ctx) { return duplicate_writer_program(ctx); });
  Sys sys(3, TsRecord::bottom(), std::move(programs));
  verify::SqrtInvariantChecker checker;
  checker.attach(sys);
  sys.step(0);  // first write fine
  EXPECT_THROW(sys.step(0), stamped::invariant_error);
}

TEST(InvariantChecker, CleanRunPasses) {
  auto sys = core::make_sqrt_oneshot_system(10, nullptr);
  verify::SqrtInvariantChecker checker;
  checker.attach(*sys);
  util::Rng rng(4);
  runtime::run_random(*sys, rng, 1 << 22);
  EXPECT_TRUE(sys->all_finished());
  EXPECT_GT(checker.steps_checked(), 0u);
}

TEST(PhaseAnalysis, EmptyExecution) {
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(4, nullptr, &stats);
  // No steps at all: no phases, no writes, bounds trivially hold.
  auto analysis = verify::analyze_phases(*sys, stats, 4);
  EXPECT_EQ(analysis.phases_started, 0);
  EXPECT_EQ(analysis.invalidation_writes, 0);
  EXPECT_TRUE(analysis.bounds_ok());
}

TEST(PhaseAnalysis, SequentialRunCountsExactInvalidations) {
  // Sequential execution of n calls: phase k is started by one call and
  // completed once phase k+1 starts; Claim 6.10 says a completed phase k has
  // exactly k invalidation writes. With n = 10 the phases are 1,2,3 complete
  // and 4 ongoing: 1+2+3 invalidations in completed phases, plus the ongoing
  // phase's first writes.
  const int n = 10;
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(n, nullptr, &stats);
  for (int p = 0; p < n; ++p) {
    ASSERT_TRUE(runtime::run_solo_until_calls_complete(*sys, p, 1, 100000));
  }
  auto analysis = verify::analyze_phases(*sys, stats, n);
  EXPECT_TRUE(analysis.bounds_ok()) << analysis.to_string();
  EXPECT_EQ(analysis.phases_started, 4);
  // Sequential: every call writes exactly once, and every write is the first
  // write to its register in its phase (an invalidation write).
  EXPECT_EQ(analysis.invalidation_writes, n);
  EXPECT_EQ(analysis.total_writes, n);
}

}  // namespace
