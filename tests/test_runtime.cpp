// Unit tests: the simulated shared-memory machine — coroutine stepping,
// pending-op (covering) inspection, determinism/replay, schedulers, views,
// failure capture, and the swap (historyless) operation.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"

namespace {

using namespace stamped;
using runtime::OpKind;
using runtime::ProcessTask;
using runtime::System;

using IntSys = System<std::int64_t>;
using Ctx = IntSys::Ctx;

// A tiny deterministic program: read r0, write pid+10 to r1, read r1,
// swap 99 into r0, done.
ProcessTask mini_program(Ctx& ctx) {
  (void)co_await ctx.read(0);
  co_await ctx.write(1, ctx.pid() + 10);
  (void)co_await ctx.read(1);
  (void)co_await ctx.swap(0, 99);
  ctx.note_call_complete();
}

ProcessTask throwing_program(Ctx& ctx) {
  (void)co_await ctx.read(0);
  throw std::runtime_error("deliberate failure");
}

ProcessTask no_op_program(Ctx&) { co_return; }

std::unique_ptr<IntSys> make_mini(int n) {
  std::vector<IntSys::Program> programs;
  for (int p = 0; p < n; ++p) {
    programs.push_back([](Ctx& c) { return mini_program(c); });
  }
  return std::make_unique<IntSys>(3, std::int64_t{0}, std::move(programs));
}

TEST(System, StepsThroughProgram) {
  auto sys = make_mini(1);
  EXPECT_TRUE(sys->idle(0));
  EXPECT_EQ(sys->pending(0).kind, OpKind::kRead);
  EXPECT_EQ(sys->pending(0).reg, 0);
  sys->step(0);  // read r0
  EXPECT_FALSE(sys->idle(0));
  EXPECT_EQ(sys->pending(0).kind, OpKind::kWrite);
  EXPECT_TRUE(sys->pending(0).covers(1));
  sys->step(0);  // write r1
  EXPECT_EQ(sys->reg_value(1), 10);
  sys->step(0);  // read r1
  EXPECT_EQ(sys->pending(0).kind, OpKind::kSwap);
  sys->step(0);  // swap r0
  EXPECT_EQ(sys->reg_value(0), 99);
  EXPECT_TRUE(sys->finished(0));
  EXPECT_EQ(sys->calls_completed(0), 1u);
  EXPECT_EQ(sys->steps_taken(), 4u);
  EXPECT_EQ(sys->steps_taken_by(0), 4u);
}

TEST(System, TraceAndStepInfosRecorded) {
  auto sys = make_mini(1);
  runtime::run_round_robin(*sys, 100);
  ASSERT_EQ(sys->trace().size(), 4u);
  ASSERT_EQ(sys->step_infos().size(), 4u);
  EXPECT_EQ(sys->trace()[1].kind, OpKind::kWrite);
  EXPECT_EQ(sys->trace()[1].written, 10);
  EXPECT_EQ(sys->trace()[3].kind, OpKind::kSwap);
  EXPECT_EQ(sys->trace()[3].observed, 0);  // swap returns old value
  EXPECT_TRUE(sys->step_infos()[3].is_write());
  EXPECT_EQ(sys->executed_schedule(), (std::vector<int>{0, 0, 0, 0}));
}

TEST(System, WriteCountsAndRegisterWritten) {
  auto sys = make_mini(2);
  runtime::run_round_robin(*sys, 100);
  EXPECT_TRUE(sys->register_written(0));  // swaps
  EXPECT_TRUE(sys->register_written(1));
  EXPECT_FALSE(sys->register_written(2));
  EXPECT_EQ(sys->writes_to(0), 2u);
  EXPECT_EQ(sys->writes_to(1), 2u);
  EXPECT_EQ(sys->registers_written(), 2);
}

TEST(System, ProcessViewCapturesObservations) {
  auto a = make_mini(1);
  auto b = make_mini(1);
  runtime::run_round_robin(*a, 100);
  runtime::run_round_robin(*b, 100);
  // Same schedule, same program => identical views (indistinguishability).
  EXPECT_EQ(a->process_view(0), b->process_view(0));
  EXPECT_NE(a->process_view(0).find("W[1]:=10"), std::string::npos);
}

TEST(System, FailureCaptured) {
  std::vector<IntSys::Program> programs;
  programs.push_back([](Ctx& c) { return throwing_program(c); });
  IntSys sys(1, 0, std::move(programs));
  EXPECT_FALSE(sys.failed(0));
  sys.step(0);  // executes the read; resume throws inside coroutine
  EXPECT_TRUE(sys.finished(0));
  EXPECT_TRUE(sys.failed(0));
  EXPECT_NE(sys.failure_message(0).find("deliberate"), std::string::npos);
  EXPECT_THROW(runtime::check_no_failures(sys), stamped::invariant_error);
}

TEST(System, NoOpProgramFinishesWithoutSteps) {
  std::vector<IntSys::Program> programs;
  programs.push_back([](Ctx& c) { return no_op_program(c); });
  IntSys sys(1, 0, std::move(programs));
  EXPECT_TRUE(sys.finished(0));
  EXPECT_EQ(sys.pending(0).kind, OpKind::kNone);
  EXPECT_EQ(sys.steps_taken(), 0u);
}

TEST(System, SteppingFinishedProcessThrows) {
  auto sys = make_mini(1);
  runtime::run_round_robin(*sys, 100);
  EXPECT_THROW(sys->step(0), stamped::invariant_error);
}

TEST(System, ObserverSeesEveryStep) {
  auto sys = make_mini(2);
  int observed = 0;
  sys->set_observer([&](const IntSys&, const runtime::TraceEntry<std::int64_t>&) {
    ++observed;
  });
  runtime::run_round_robin(*sys, 100);
  EXPECT_EQ(observed, 8);
}

TEST(Scheduler, ScriptFollowsExactOrder) {
  auto sys = make_mini(2);
  const std::vector<int> script{1, 0, 1, 0};
  runtime::run_script(*sys, script);
  EXPECT_EQ(sys->executed_schedule(), script);
}

TEST(Scheduler, ReplayReproducesConfiguration) {
  auto factory = []() -> std::unique_ptr<runtime::ISystem> {
    return make_mini(3);
  };
  // Drive an arbitrary interleaving, then replay it.
  auto sys = factory();
  util::Rng rng(17);
  runtime::run_random(*sys, rng, 7);
  auto copy = runtime::replay(factory, sys->executed_schedule());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sys->register_repr(r), copy->register_repr(r));
  }
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(sys->process_view(p), copy->process_view(p));
    EXPECT_EQ(sys->pending(p).kind, copy->pending(p).kind);
    EXPECT_EQ(sys->pending(p).reg, copy->pending(p).reg);
  }
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    auto sys = make_mini(4);
    util::Rng rng(seed);
    runtime::run_random(*sys, rng, 1000);
    return sys->executed_schedule();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Scheduler, SoloUntilCallsComplete) {
  auto sys = make_mini(2);
  EXPECT_TRUE(runtime::run_solo_until_calls_complete(*sys, 1, 1, 100));
  EXPECT_EQ(sys->calls_completed(1), 1u);
  EXPECT_EQ(sys->steps_taken_by(0), 0u);
  // Process 1 finished; asking for another call fails.
  EXPECT_FALSE(runtime::run_solo_until_calls_complete(*sys, 1, 1, 100));
}

TEST(Scheduler, SoloUntilPoisedOutside) {
  auto sys = make_mini(1);
  // Covered = {1}: the program's first write targets r1, so it must run until
  // the swap on r0 is pending.
  std::unordered_set<int> covered{1};
  EXPECT_TRUE(runtime::run_solo_until_poised_outside(*sys, 0, covered, 100));
  EXPECT_EQ(sys->pending(0).kind, OpKind::kSwap);
  EXPECT_EQ(sys->pending(0).reg, 0);
  // With everything covered, the process finishes without qualifying.
  auto sys2 = make_mini(1);
  std::unordered_set<int> all{0, 1, 2};
  EXPECT_FALSE(runtime::run_solo_until_poised_outside(*sys2, 0, all, 100));
  EXPECT_TRUE(sys2->finished(0));
}

TEST(Scheduler, RoundRobinHonorsMaxSteps) {
  auto sys = make_mini(4);
  EXPECT_EQ(runtime::run_round_robin(*sys, 5), 5u);
  EXPECT_EQ(sys->steps_taken(), 5u);
}

TEST(System, OutOfRangeRegisterAccessFails) {
  std::vector<IntSys::Program> programs;
  programs.push_back([](Ctx& c) -> ProcessTask {
    (void)co_await c.read(7);  // only 3 registers exist
  });
  IntSys sys(3, 0, std::move(programs));
  // The bad op is posted when the coroutine first runs (on inspection); the
  // invariant_error is rethrown at the co_await expression inside the
  // coroutine, so the process fails rather than the inspection call.
  EXPECT_EQ(sys.pending(0).kind, OpKind::kNone);
  EXPECT_TRUE(sys.failed(0));
  EXPECT_NE(sys.failure_message(0).find("register 7"), std::string::npos);
}

}  // namespace
