// The static-analysis layer: footprint extraction (typed AnalysisCtx
// dry-runs and the ISystem schedule battery), the ownership lint against
// deliberately broken families, lowering declared masks into the explorer's
// WriteFootprints, and the happens-before ownership race detector — clean on
// the real max-scan and catching a planted multi-writer variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/analysis_ctx.hpp"
#include "analysis/footprint.hpp"
#include "api/registry.hpp"
#include "core/maxscan_longlived.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"
#include "util/rng.hpp"
#include "verify/explorer.hpp"
#include "verify/race_detector.hpp"

namespace {

using namespace stamped;

constexpr std::uint64_t bit(int p) { return std::uint64_t{1} << p; }

// A buggy max-scan variant: each getTS writes the NEIGHBOR's register
// ((pid + 1) % n) instead of its own — a multi-writer violation of the
// declared SWMR footprint that the lint and the race detector must catch.
runtime::ProcessTask rogue_maxscan_program(
    runtime::System<std::int64_t>::Ctx& ctx, int pid, int n, int num_calls) {
  for (int k = 0; k < num_calls; ++k) {
    std::int64_t mx = 0;
    for (int i = 0; i < n; ++i) {
      mx = std::max(mx, co_await ctx.read(i));
    }
    co_await ctx.write((pid + 1) % n, mx + 1);
    ctx.note_call_complete();
  }
}

runtime::SystemFactory rogue_maxscan_factory(int n, int calls) {
  return [n, calls]() -> std::unique_ptr<runtime::ISystem> {
    using Sys = runtime::System<std::int64_t>;
    std::vector<Sys::Program> programs;
    for (int p = 0; p < n; ++p) {
      programs.push_back([p, n, calls](Sys::Ctx& ctx) {
        return rogue_maxscan_program(ctx, p, n, calls);
      });
    }
    return std::make_unique<Sys>(n, std::int64_t{0}, std::move(programs));
  };
}

TEST(AnalysisCtx, RecordsMaxscanSwmrFootprint) {
  // The typed entry point: the same templated program that runs on the
  // simulator and on real threads dry-runs under AnalysisCtx, and the
  // recorded map shows the paper's SWMR layout.
  const int n = 3;
  const int calls = 2;
  analysis::AnalysisMemory<std::int64_t> mem(n, n, 0);
  for (int p = 0; p < n; ++p) {
    analysis::run_to_completion(
        mem, p, [p, n, calls](analysis::AnalysisCtx<std::int64_t>& ctx) {
          return core::maxscan_program(
              ctx, p, n, calls,
              static_cast<runtime::CallLog<std::int64_t>*>(nullptr));
        });
  }
  const analysis::AccessMap& map = mem.map();
  ASSERT_EQ(map.num_registers(), n);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(map.reg(r).writer_mask, bit(r)) << "reg " << r;
    EXPECT_EQ(map.reg(r).reader_mask, bit(0) | bit(1) | bit(2));
    EXPECT_EQ(map.reg(r).writes, static_cast<std::uint64_t>(calls));
    EXPECT_EQ(map.reg(r).op_kinds,
              (1u << static_cast<unsigned>(runtime::OpKind::kRead)) |
                  (1u << static_cast<unsigned>(runtime::OpKind::kWrite)));
  }
}

TEST(AnalysisCtx, SwapAndFetchAddCountAsReadAndWrite) {
  analysis::AnalysisMemory<std::int64_t> mem(2, 2, 0);
  analysis::run_to_completion(
      mem, 1, [](analysis::AnalysisCtx<std::int64_t>& ctx)
                  -> runtime::ProcessTask {
        co_await ctx.write(0, 7);
        const std::int64_t old = co_await ctx.swap(1, 5);
        EXPECT_EQ(old, 0);
        const std::int64_t prev = co_await ctx.fetch_add(0, 2);
        EXPECT_EQ(prev, 7);
        EXPECT_EQ(co_await ctx.read(0), 9);
      });
  const analysis::AccessMap& map = mem.map();
  EXPECT_EQ(map.reg(1).writer_mask, bit(1));
  EXPECT_EQ(map.reg(1).reader_mask, bit(1));  // swap observes the old value
  EXPECT_EQ(map.reg(0).writes, 2u);           // write + fetch_add
  EXPECT_EQ(map.reg(0).reads, 2u);            // fetch_add + read
}

TEST(Footprint, SqrtSentinelObservedNeverWritten) {
  const api::TimestampFamily& fam = api::family("sqrt-oneshot");
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 1;
  const analysis::ObservedFootprint obs =
      analysis::observe_footprint(fam, spec);
  const int m = obs.map.num_registers();
  ASSERT_GE(m, 2);
  EXPECT_EQ(obs.map.reg(m - 1).writes, 0u)
      << "Algorithm 4's sentinel register was written";
  EXPECT_TRUE(obs.unwritten_in_complete_run[static_cast<std::size_t>(m - 1)]);
  EXPECT_GT(obs.map.reg(0).writes, 0u);
  EXPECT_GT(obs.complete_runs, 0u);
}

TEST(Footprint, GrowingPoolTailObservedNeverWritten) {
  const api::TimestampFamily& fam = api::family("growing-oneshot");
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 2;
  const analysis::ObservedFootprint obs =
      analysis::observe_footprint(fam, spec);
  for (int r = static_cast<int>(spec.total_calls());
       r < obs.map.num_registers(); ++r) {
    EXPECT_EQ(obs.map.reg(r).writes, 0u) << "pool tail reg " << r;
  }
}

TEST(Footprint, WriteFootprintsLowersDeclaredMasks) {
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 3;
  const auto fp = analysis::write_footprints(fam, spec);
  ASSERT_EQ(fp->reg_writers.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(fp->writers_of(r), bit(r));
  }
  // Outside the declared geometry: no information, everyone may write.
  EXPECT_EQ(fp->writers_of(17), ~std::uint64_t{0});
}

TEST(FootprintLint, CatchesPlantedUndeclaredWriter) {
  api::TimestampFamily rogue = api::family("maxscan");
  rogue.factory = [](const api::ScenarioSpec& spec) {
    return rogue_maxscan_factory(spec.n, spec.calls_per_process);
  };
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 1;
  const analysis::LintReport report = analysis::lint_footprints(rogue, spec);
  ASSERT_FALSE(report.ok());
  bool found_undeclared = false;
  for (const analysis::LintIssue& i : report.issues) {
    found_undeclared |= i.message.find("undeclared writer") !=
                        std::string::npos;
  }
  EXPECT_TRUE(found_undeclared) << report.to_string();
}

TEST(FootprintLint, ReportsMissingDeclaration) {
  api::TimestampFamily undeclared = api::family("maxscan");
  undeclared.footprint = {};
  api::ScenarioSpec spec;
  spec.n = 2;
  const analysis::LintReport report =
      analysis::lint_footprints(undeclared, spec);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues.front().message.find("declares no footprint"),
            std::string::npos);
}

TEST(FootprintLint, RejectsMultiWriterMaskInSwmrFamily) {
  api::TimestampFamily broken = api::family("maxscan");
  broken.footprint.writer_mask = [](const api::ScenarioSpec& spec, int reg) {
    // Over-declares: everyone may write everything — SWMR in name only.
    (void)reg;
    return (std::uint64_t{1} << spec.n) - 1;
  };
  api::ScenarioSpec spec;
  spec.n = 2;
  const analysis::LintReport report = analysis::lint_footprints(broken, spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("declared SWMR"), std::string::npos);
}

TEST(RaceDetector, CleanOnRealMaxscan) {
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 2;
  const auto fp = analysis::write_footprints(fam, spec);
  auto sys = fam.factory(spec)();
  runtime::run_round_robin(*sys, 1u << 20);
  const verify::RaceCheckResult rc = verify::detect_races(*sys, fp.get());
  EXPECT_TRUE(rc.ok());
  EXPECT_GT(rc.steps_analyzed, 0u);
}

TEST(RaceDetector, CatchesPlantedMultiWriterBugAtPinnedSeed) {
  // The differential test the issue pins: same declared footprint, one
  // rogue write per call, a fixed seed — the detector must flag the
  // neighbor's write as an undeclared-writer race.
  const int n = 3;
  const int calls = 2;
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = n;
  spec.calls_per_process = calls;
  const auto fp = analysis::write_footprints(fam, spec);

  {
    // Guaranteed witness: p1 collects reg 0 and reg 1 first, then p0 runs a
    // whole call — p0's rogue write to reg 1 is unordered with p1's earlier
    // read of it (p0 acquired nothing: every register it read was
    // unwritten), and p0 is not reg 1's declared writer.
    auto sys = rogue_maxscan_factory(n, calls)();
    const std::vector<int> schedule = {1, 1, 0, 0, 0, 0};
    runtime::run_script(*sys, schedule);
    const verify::RaceCheckResult rc = verify::detect_races(*sys, fp.get());
    ASSERT_FALSE(rc.ok());
    EXPECT_EQ(rc.races.front().reg, 1);
    EXPECT_EQ(rc.races.front().undeclared_mask, bit(0));
  }

  auto sys = rogue_maxscan_factory(n, calls)();
  util::Rng rng(42);  // pinned seed
  runtime::run_random(*sys, rng, 1u << 20);
  const verify::RaceCheckResult rc = verify::detect_races(*sys, fp.get());
  ASSERT_FALSE(rc.ok());
  for (const verify::RaceReport& r : rc.races) {
    EXPECT_NE(r.undeclared_mask, 0u) << r.to_string();
    // The undeclared writer really is outside the declared mask of the reg.
    EXPECT_EQ(r.undeclared_mask & fp->writers_of(r.reg), 0u)
        << r.to_string();
  }
}

TEST(RaceDetector, DegradesToPlainHbCheckWithoutFootprints) {
  // With no declared map every unordered conflicting pair is reported:
  // max-scan's blind write of register p after another process's collect
  // read of p is exactly such a pair.
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 2;
  spec.calls_per_process = 1;
  auto sys = fam.factory(spec)();
  runtime::run_round_robin(*sys, 1u << 20);
  const verify::RaceCheckResult rc = verify::detect_races(*sys, nullptr);
  EXPECT_FALSE(rc.ok());
}

TEST(ExactFootprints, NeverWidensThePersistentTree) {
  // Direct explorer-level check (the conformance suite runs the harness
  // path): with the static write map the persistent closure takes the
  // smaller of the two relations per seed, so node counts can only drop.
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 1;
  const runtime::SystemFactory make = fam.factory(spec);
  const verify::InstanceFactory factory = [&make]() {
    verify::ExplorationInstance inst;
    inst.sys = make();
    inst.check = []() { return std::nullopt; };
    return inst;
  };
  verify::ExploreOptions opts;
  opts.por = true;
  opts.persistent = true;
  const verify::ExploreResult heuristic =
      verify::explore_all_executions(factory, opts);
  opts.footprints = analysis::write_footprints(fam, spec);
  const verify::ExploreResult exact =
      verify::explore_all_executions(factory, opts);

  EXPECT_TRUE(exact.ok());
  EXPECT_LE(exact.nodes, heuristic.nodes);
  EXPECT_LT(exact.nodes, heuristic.nodes)
      << "static SWMR map found no extra reduction on maxscan n=3";

  const verify::PorCrossCheck cc = verify::crosscheck_por(factory, opts);
  EXPECT_TRUE(cc.agree());
  EXPECT_EQ(cc.full.violations.size(), 0u);
}

}  // namespace
