// Tests: the real-thread backend — atomic register cells (both storage
// strategies), DirectCtx immediate awaiters, and the same coroutine
// algorithms running under genuine hardware concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "atomicmem/atomic_memory.hpp"
#include "core/fetchadd_baseline.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "core/timestamp.hpp"
#include "native/native_system.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;
using atomicmem::AtomicMemory;
using atomicmem::DirectCtx;
using core::PairTimestamp;
using core::TsRecord;
using native::NativeSystem;

TEST(AtomicMemory, InlineCellBasics) {
  AtomicMemory<std::int64_t> mem(4, 7);
  EXPECT_EQ(mem.read(2), 7);
  mem.write(2, 42);
  EXPECT_EQ(mem.read(2), 42);
  EXPECT_EQ(mem.swap(2, 43), 42);
  EXPECT_EQ(mem.read(2), 43);
  EXPECT_EQ(mem.read(0), 7);  // other registers untouched
}

TEST(AtomicMemory, PointerCellBasics) {
  AtomicMemory<TsRecord> mem(3, TsRecord::bottom());
  EXPECT_TRUE(mem.read(1).is_bottom);
  auto rec = TsRecord::make({{1, 0}}, 1);
  mem.write(1, rec);
  EXPECT_EQ(mem.read(1), rec);
  auto rec2 = TsRecord::make({{2, 0}}, 2);
  EXPECT_EQ(mem.swap(1, rec2), rec);
  EXPECT_EQ(mem.read(1), rec2);
}

TEST(AtomicMemory, PointerCellConcurrentReadersAndWriters) {
  // Hammer one record register from multiple threads; readers must always
  // see a fully-formed record (no torn reads / UAF under ASAN-less builds,
  // validated structurally here).
  AtomicMemory<TsRecord> mem(1, TsRecord::bottom());
  std::atomic<bool> stop{false};
  std::atomic<int> malformed{0};
  {
    std::vector<std::jthread> threads;
    for (int w = 0; w < 2; ++w) {
      threads.emplace_back([&, w] {
        for (int k = 1; k <= 2000; ++k) {
          mem.write(0, TsRecord::make({{w, k}}, k));
        }
      });
    }
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const TsRecord rec = mem.read(0);
          if (!rec.is_bottom &&
              (rec.seq.empty() || rec.rnd < 1 || rec.seq.size() != 1)) {
            malformed.fetch_add(1);
          }
        }
      });
    }
    threads[0].join();
    threads[1].join();
    stop.store(true, std::memory_order_release);
  }
  EXPECT_EQ(malformed.load(), 0);
}

TEST(DirectCtx, ImmediateAwaitersRunSynchronously) {
  AtomicMemory<std::int64_t> mem(2, 0);
  std::atomic<std::uint64_t> clock{0};
  DirectCtx<std::int64_t> ctx(&mem, 0, &clock);
  // Run a coroutine program to completion on this thread.
  runtime::CallLog<std::int64_t> log;
  auto task = core::simple_getts_program(ctx, 0, 2, &log);
  task.handle().resume();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.snapshot()[0].ts, 1);
  EXPECT_EQ(ctx.calls_completed(), 1u);
  EXPECT_GT(ctx.my_steps(), 0u);
}

TEST(Threaded, SimpleOneShotPropertyUnderRealConcurrency) {
  const int n = 8;
  for (int trial = 0; trial < 20; ++trial) {
    runtime::CallLog<std::int64_t> log;
    std::vector<NativeSystem<std::int64_t>::Program> programs;
    for (int p = 0; p < n; ++p) {
      programs.push_back([p, n, &log](DirectCtx<std::int64_t>& ctx) {
        return core::simple_getts_program(ctx, p, n, &log);
      });
    }
    NativeSystem<std::int64_t> sys(core::simple_oneshot_registers(n), 0,
                                   std::move(programs));
    const auto stats = sys.run(n);
    EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(n));
    ASSERT_EQ(static_cast<int>(log.size()), n);
    auto report =
        verify::check_timestamp_property(log.snapshot(), core::Compare{});
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(Threaded, SqrtOneShotPropertyUnderRealConcurrency) {
  const int n = 8;
  for (int trial = 0; trial < 20; ++trial) {
    runtime::CallLog<PairTimestamp> log;
    core::SqrtStats stats;
    const int m = core::sqrt_oneshot_registers(n);
    std::vector<NativeSystem<TsRecord>::Program> programs;
    for (int p = 0; p < n; ++p) {
      programs.push_back([p, m, &log, &stats](DirectCtx<TsRecord>& ctx) {
        return core::sqrt_getts_program(ctx, core::TsId{p, 0}, m, &log,
                                        &stats);
      });
    }
    NativeSystem<TsRecord> sys(m, TsRecord::bottom(), std::move(programs));
    const auto run = sys.run(n);
    EXPECT_EQ(run.calls, static_cast<std::uint64_t>(n));
    EXPECT_EQ(run.retired_nodes, 0u);  // quiesce freed the whole backlog
    ASSERT_EQ(static_cast<int>(log.size()), n);
    auto report =
        verify::check_timestamp_property(log.snapshot(), core::Compare{});
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(Threaded, MaxScanLongLivedUnderRealConcurrency) {
  const int n = 4;
  const int calls = 16;
  runtime::CallLog<std::int64_t> log;
  std::vector<NativeSystem<std::int64_t>::Program> programs;
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, n, calls, &log](DirectCtx<std::int64_t>& ctx) {
      return core::maxscan_program(ctx, p, n, calls, &log);
    });
  }
  NativeSystem<std::int64_t> sys(n, 0, std::move(programs));
  const auto stats = sys.run(n);
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(n) * calls);
  EXPECT_GT(stats.ops, 0u);
  ASSERT_EQ(static_cast<int>(log.size()), n * calls);
  auto report =
      verify::check_timestamp_property(log.snapshot(), core::Compare{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto mono =
      verify::check_per_process_monotonicity(log.snapshot(), core::Compare{});
  EXPECT_TRUE(mono.ok()) << mono.to_string();
}

TEST(Reclamation, EpochTrimKeepsRetirementBoundedAcross10kWrites) {
  // Node cells retire the unlinked node on every write. Without trimming,
  // 10k writes would leave ~10k retirees; the epoch-counted trim must keep
  // the outstanding backlog near kTrimThreshold at every point (retirees of
  // the current epoch survive one round, hence the 2x + slack bound).
  AtomicMemory<TsRecord> mem(2, TsRecord::bottom());
  const std::uint64_t baseline = mem.arena_bytes();
  EXPECT_EQ(mem.retired_nodes(), 0u);
  const std::uint64_t bound = 2 * AtomicMemory<TsRecord>::kTrimThreshold + 64;
  std::uint64_t worst = 0;
  for (int k = 1; k <= 10000; ++k) {
    mem.write(k % 2, TsRecord::make({{0, k}}, k));
    worst = std::max(worst, mem.retired_nodes());
    ASSERT_LE(mem.retired_nodes(), bound) << "after write " << k;
  }
  // The trim actually fired: the backlog cannot have stayed trivially small
  // across 10k retirements without it, and the worst case stayed bounded.
  EXPECT_GE(worst, AtomicMemory<TsRecord>::kTrimThreshold / 2);
  mem.quiesce();
  EXPECT_EQ(mem.retired_nodes(), 0u);
  // Post-quiesce the heap is back to the live nodes alone (one per cell).
  EXPECT_EQ(mem.arena_bytes(), baseline);
}

TEST(Reclamation, InlineCellsReportZero) {
  AtomicMemory<std::int64_t> mem(4, 0);
  for (int k = 0; k < 1000; ++k) mem.write(k % 4, k);
  EXPECT_EQ(mem.retired_nodes(), 0u);
  EXPECT_EQ(mem.arena_bytes(), 0u);
}

TEST(Seqlock, LoadVersionedConsistentUnderConcurrentWriters) {
  // TSan target: 4 writers hammer one inline cell through the seqlock while
  // readers take versioned snapshots. Each writer w writes values encoding
  // (w, k) with k strictly increasing, so a torn or stale-versioned read
  // surfaces as a decoded inconsistency: versions must be monotone per
  // reader, and re-reading the same version must yield the same value.
  AtomicMemory<std::int64_t> mem(1, 0);
  constexpr int kWriters = 4;
  constexpr int kWrites = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  {
    std::vector<std::jthread> threads;
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&] {
        std::uint64_t last_version = 0;
        std::int64_t last_value = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const auto v = mem.versioned_read(0);
          if (v.version < last_version) inconsistent.fetch_add(1);
          if (v.version == last_version && last_version > 0 &&
              v.value != last_value) {
            inconsistent.fetch_add(1);  // same version, different value
          }
          const std::int64_t k = v.value % (kWrites + 1);
          const std::int64_t w = v.value / (kWrites + 1);
          if (v.value != 0 && (w < 0 || w >= kWriters || k < 1)) {
            inconsistent.fetch_add(1);  // torn/out-of-universe value
          }
          last_version = v.version;
          last_value = v.value;
        }
      });
    }
    {
      std::vector<std::jthread> writers;
      for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
          for (int k = 1; k <= kWrites; ++k) {
            mem.write(0, static_cast<std::int64_t>(w) * (kWrites + 1) + k);
          }
        });
      }
    }  // writers join
    stop.store(true, std::memory_order_release);
  }
  EXPECT_EQ(inconsistent.load(), 0);
  const auto settled = mem.versioned_read(0);
  EXPECT_EQ(settled.version, static_cast<std::uint64_t>(kWriters) * kWrites);
}

TEST(FetchAdd, BaselineStrictlyIncreasing) {
  core::FetchAddTimestamp ts;
  std::vector<std::vector<std::int64_t>> per_thread(4);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int k = 0; k < 1000; ++k) {
          per_thread[static_cast<std::size_t>(t)].push_back(ts.getts());
        }
      });
    }
  }
  // Globally: all distinct; per thread: strictly increasing.
  std::set<std::int64_t> all;
  for (const auto& v : per_thread) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_TRUE(all.insert(v[i]).second);
      if (i > 0) {
        EXPECT_LT(v[i - 1], v[i]);
      }
    }
  }
  EXPECT_EQ(all.size(), 4000u);
}

}  // namespace
