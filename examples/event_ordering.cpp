// Event ordering with logical clocks — the lineage the paper builds on
// (Lamport 1978; Fidge/Mattern vector clocks) next to a shared-memory
// timestamp object labeling the same events.
//
//   build/examples/event_ordering
//
// A small message-passing run is annotated with Lamport and vector times;
// the example shows where Lamport's integer clock only *respects* the order
// (e1 -> e2 implies C1 < C2) while vector clocks *characterize* it, and then
// labels the same process-local events with the simulator's max-scan
// timestamp object.
#include <iostream>

#include "clocks/lamport_clock.hpp"
#include "clocks/vector_clock.hpp"
#include "core/maxscan_longlived.hpp"
#include "runtime/scheduler.hpp"

int main() {
  using namespace stamped;
  using clocks::MessagePassingRun;
  using clocks::VectorClock;

  MessagePassingRun run(3);
  const int a = run.local(0);          // p0: a
  const int s1 = run.send(0, 1);       // p0 -> p1
  const int b = run.local(2);          // p2: b (concurrent with everything so far)
  const int r1 = run.receive(s1);      // p1 receives
  const int s2 = run.send(1, 2);       // p1 -> p2
  const int r2 = run.receive(s2);      // p2 receives
  const int c = run.local(2);          // p2: c

  auto kind_name = [](const clocks::MpEvent& e) {
    switch (e.kind) {
      case clocks::MpEvent::Kind::kLocal: return "local";
      case clocks::MpEvent::Kind::kSend: return "send ";
      case clocks::MpEvent::Kind::kReceive: return "recv ";
    }
    return "?";
  };

  std::cout << "event log (Lamport | vector):\n";
  for (const auto& ev : run.events()) {
    std::cout << "  p" << ev.pid << ' ' << kind_name(ev) << "  L="
              << ev.lamport << "  V=" << VectorClock(ev.vector_time).repr()
              << '\n';
  }

  std::cout << "\nhappens-before vs clocks:\n";
  auto show = [&](int x, int y, const char* label) {
    const auto& ev = run.events();
    const bool hb = run.happens_before(x, y);
    const bool lamport_lt = ev[static_cast<std::size_t>(x)].lamport <
                            ev[static_cast<std::size_t>(y)].lamport;
    const bool vc_lt = VectorClock::before(
        VectorClock(ev[static_cast<std::size_t>(x)].vector_time),
        VectorClock(ev[static_cast<std::size_t>(y)].vector_time));
    std::cout << "  " << label << ": hb=" << hb << " lamport<" << '='
              << lamport_lt << " vector<" << '=' << vc_lt << '\n';
  };
  show(a, r2, "a -> r2 (via two messages)");
  show(b, c, "b -> c (program order)   ");
  show(a, b, "a || b (concurrent)      ");
  show(b, r1, "b || r1 (concurrent)     ");

  // The same ordering service from shared registers: each message-passing
  // process is paired with a simulated process that calls getTS at its
  // events. Sequential (happens-before ordered) calls get increasing
  // timestamps.
  std::cout << "\nshared-memory timestamps for the causal chain a -> s1 -> "
               "r1 -> s2 -> r2 -> c:\n";
  runtime::CallLog<std::int64_t> log;
  auto sys = core::make_maxscan_system(3, 4, &log);
  // Drive the calls in causal order: p0 (a, s1), p1 (r1, s2), p2 (r2, c).
  for (int pid : {0, 0, 1, 1, 2, 2}) {
    runtime::run_solo_until_calls_complete(*sys, pid, 1, 10000);
  }
  for (const auto& rec : log.snapshot()) {
    std::cout << "  p" << rec.pid << " call#" << rec.call_index << " -> ts "
              << rec.ts << '\n';
  }
  std::cout << "(strictly increasing because each event happens before the "
               "next)\n";
  return 0;
}
