// Quickstart: the unified timestamp-family API.
//
//   build/examples/quickstart
//
// One registry, six families, one harness. We pick the asymptotically
// space-optimal one-shot family (Algorithm 4 / Theorem 1.3), run it for
// eight processes under a random schedule with the timestamp-property
// checkers on, and print the structured report — then sweep every registered
// family through the same scenario shape to show the comparative table the
// paper is about.
#include <algorithm>
#include <iostream>

#include "api/harness.hpp"
#include "api/registry.hpp"

int main() {
  using namespace stamped;
  constexpr int kProcesses = 8;

  // --- one family in detail -----------------------------------------------
  const api::TimestampFamily& alg4 = api::family("sqrt-oneshot");
  api::ScenarioSpec spec;
  spec.n = kProcesses;
  spec.seed = 42;

  std::cout << alg4.name << ": " << alg4.summary << "\n  universe: "
            << alg4.universe << "\n  allocates "
            << alg4.registers_allocated(spec) << " registers for n="
            << kProcesses << " (vs " << kProcesses
            << " for the long-lived max-scan construction)\n\n";

  auto instance = alg4.make(spec);
  util::Rng rng(spec.seed);
  api::seeded_random().drive(instance->system(), rng, 1u << 24);
  runtime::check_no_failures(instance->system());
  bool all_ok = instance->system().all_finished();

  const api::GenericCallLog log = instance->calls();
  std::vector<std::size_t> order(log.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&log](std::size_t a, std::size_t b) {
              return log.before(log.records[a].ts, log.records[b].ts);
            });
  std::cout << "timestamps (sorted by the family's own compare):\n";
  for (std::size_t i : order) {
    const api::GenericCallRecord& rec = log.records[i];
    std::cout << "  p" << rec.pid << " -> " << log.ts_repr(rec.ts)
              << "  interval=[" << rec.invoked_at << ',' << rec.responded_at
              << ")\n";
  }

  // Timestamp property of the exact run printed above, via the type-erased
  // log: every ordered pair must compare forward and not backward.
  std::size_t ordered = 0;
  std::size_t bad = 0;
  for (const api::GenericCallRecord& a : log.records) {
    for (const api::GenericCallRecord& b : log.records) {
      if (!a.happens_before(b) || !log.obligated(a, b)) continue;
      ++ordered;
      if (!log.before(a.ts, b.ts) || log.before(b.ts, a.ts)) ++bad;
    }
  }
  std::cout << "\nthis run: " << ordered << " ordered pairs, " << bad
            << " violations\n";
  all_ok = all_ok && bad == 0;

  // --- every family through the same harness ------------------------------
  // The sweep drives every registered family (long-lived families with two
  // calls per process) with the property checkers on; together with the
  // check above it forms the exit status that the ctest smoke registration
  // of this example gates on.
  std::cout << "\nall registered families, same scenario, checkers on:\n";
  for (const api::TimestampFamily& fam : api::registry()) {
    api::ScenarioSpec s = spec;
    if (fam.max_calls_per_process == 0) s.calls_per_process = 2;
    const api::ScenarioReport report =
        api::Harness{}.run_scenario(fam, s, api::seeded_random());
    std::cout << "  " << report.summary() << '\n';
    all_ok = all_ok && report.ok() && report.all_finished;
  }
  std::cout << (all_ok ? "\ntimestamp property: OK for every family\n"
                       : "\ntimestamp property: VIOLATED\n");
  return all_ok ? 0 : 1;
}
