// Quickstart: one-shot timestamps from 2*ceil(sqrt(n)) registers under real
// threads (Algorithm 4 / Theorem 1.3).
//
//   build/examples/quickstart
//
// Eight threads each acquire one timestamp; we then verify the timestamp
// property on the recorded history and print the result.
#include <algorithm>
#include <iostream>

#include "atomicmem/atomic_memory.hpp"
#include "core/sqrt_oneshot.hpp"
#include "verify/hb_checker.hpp"

int main() {
  using namespace stamped;
  constexpr int kThreads = 8;
  const int m = core::sqrt_oneshot_registers(kThreads);

  std::cout << "one-shot timestamp object for " << kThreads << " processes: "
            << m << " registers (vs " << kThreads
            << " for the long-lived construction)\n\n";

  runtime::CallLog<core::PairTimestamp> log;
  atomicmem::ThreadedHarness<core::TsRecord> harness(m,
                                                     core::TsRecord::bottom());
  std::vector<atomicmem::ThreadedHarness<core::TsRecord>::Program> programs;
  for (int p = 0; p < kThreads; ++p) {
    programs.push_back([p, m, &log](atomicmem::DirectCtx<core::TsRecord>& ctx) {
      return core::sqrt_getts_program(ctx, core::TsId{p, 0}, m, &log,
                                      nullptr);
    });
  }
  harness.run(programs);

  auto records = log.snapshot();
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return core::compare(a.ts, b.ts);
            });
  std::cout << "timestamps (sorted by compare):\n";
  for (const auto& rec : records) {
    std::cout << "  p" << rec.pid << " -> " << rec.ts.repr() << "  interval=["
              << rec.invoked_at << ',' << rec.responded_at << ")\n";
  }

  auto report = verify::check_timestamp_property(records, core::Compare{});
  std::cout << "\ntimestamp property: "
            << (report.ok() ? "OK" : "VIOLATED") << " ("
            << report.ordered_pairs_checked << " ordered pairs, "
            << report.concurrent_pairs << " concurrent pairs)\n";
  return report.ok() ? 0 : 1;
}
