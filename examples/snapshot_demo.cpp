// Atomic snapshot demo — the Afek et al. substrate used by Algorithm 4,
// with a ground-truth linearizability check from the simulator trace.
//
//   build/examples/snapshot_demo [n] [rounds] [seed]
#include <cstdlib>
#include <iostream>

#include "runtime/scheduler.hpp"
#include "snapshot/wait_free_snapshot.hpp"
#include "verify/snapshot_checker.hpp"

int main(int argc, char** argv) {
  using namespace stamped;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  std::cout << "wait-free snapshot: " << n << " writers x " << rounds
            << " update/scan rounds, random schedule seed " << seed << "\n\n";

  snapshot::ScanLog log;
  auto sys = snapshot::make_snapshot_system(n, rounds, &log);
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
  runtime::check_no_failures(*sys);

  const auto scans = log.snapshot();
  std::size_t embedded = 0;
  for (const auto& scan : scans) embedded += scan.used_embedded ? 1 : 0;

  std::cout << "steps executed: " << sys->steps_taken() << '\n'
            << "scans performed: " << scans.size() << " (" << embedded
            << " via embedded views — helping)\n";
  std::cout << "\nlast few scans:\n";
  const std::size_t show = scans.size() < 5 ? scans.size() : 5;
  for (std::size_t i = scans.size() - show; i < scans.size(); ++i) {
    const auto& scan = scans[i];
    std::cout << "  p" << scan.pid << " [" << scan.start_step << ','
              << scan.end_step << "] embedded=" << scan.used_embedded
              << " view=[";
    for (std::size_t c = 0; c < scan.view.size(); ++c) {
      std::cout << (c ? " " : "") << scan.view[c];
    }
    std::cout << "]\n";
  }

  auto verdict = verify::check_scans_linearizable(*sys, scans);
  std::cout << "\nlinearizability (vs simulator ground truth): "
            << (verdict.has_value() ? "VIOLATED: " + *verdict : "OK") << '\n';
  return verdict.has_value() ? 1 : 0;
}
