// Covering explorer — run the Section 4 lower-bound construction against a
// chosen one-shot implementation and watch the covering grid grow (the
// interactive version of Figures 1 and 2).
//
//   build/examples/covering_explorer [alg4|simple] [n]
//
// Prints the grid after the initial (j1, m-j1)-full configuration and after
// every extension round, with the Case 1 / Case 2 bookkeeping.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "adversary/oneshot_builder.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "util/grid.hpp"

int main(int argc, char** argv) {
  using namespace stamped;
  std::string alg = argc > 1 ? argv[1] : "alg4";
  const int n = argc > 2 ? std::atoi(argv[2]) : 50;
  if (n < 4 || n > 512) {
    std::cerr << "n must be in [4, 512]\n";
    return 1;
  }
  runtime::SystemFactory factory;
  if (alg == "alg4") {
    factory = core::sqrt_oneshot_factory(n);
  } else if (alg == "simple") {
    factory = core::simple_oneshot_factory(n);
  } else {
    std::cerr << "usage: covering_explorer [alg4|simple] [n]\n";
    return 1;
  }

  std::cout << "Section 4 covering construction vs '" << alg << "', n=" << n
            << "\n\n";
  auto result = adversary::build_oneshot_covering(factory, n);

  for (const auto& step : result.steps) {
    if (step.round == 0) {
      std::cout << "== initial step: Lemma 4.1 from C0, shortest prefix "
                   "reaching the diagonal ==\n";
    } else {
      std::cout << "== round " << step.round << ": Case " << step.case_kind
                << ", nu=" << step.nu << " new column(s) ==\n";
    }
    std::cout << "j=" << step.j_after << " l=" << step.l_after
              << " idle=" << step.idle_after
              << " schedule_steps=" << step.schedule_length << '\n'
              << util::render_covering_grid(step.ordered_sig, step.l_after,
                                            step.j_after - 1)
              << '\n';
  }

  std::cout << "== result ==\n" << result.summary() << '\n';
  std::cout << "theorem 1.2 yardsticks: m=" << result.m
            << ", m - log2(n) - 2 = "
            << result.m - std::log2(static_cast<double>(n)) - 2
            << ", case2 budget log2(n) = "
            << std::log2(static_cast<double>(n)) << '\n';
  return result.all_checks_ok ? 0 : 1;
}
