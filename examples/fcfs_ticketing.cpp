// First-come-first-served ticketing — the classic timestamp application
// (the paper's introduction: FCFS fairness, mutual exclusion, k-exclusion).
//
//   build/examples/fcfs_ticketing
//
// Customers (threads) arrive at a service desk in waves; each takes a
// timestamp from the long-lived max-scan object on arrival. The desk serves
// customers in compare() order. Because the object preserves happens-before,
// a customer who completed ticketing strictly before another is always
// served first — FCFS fairness for non-overlapping arrivals.
#include <algorithm>
#include <iostream>
#include <map>
#include <thread>

#include "atomicmem/atomic_memory.hpp"
#include "core/maxscan_longlived.hpp"
#include "verify/hb_checker.hpp"

namespace {

using namespace stamped;

struct Ticket {
  int customer = 0;
  int wave = 0;
  std::int64_t stamp = 0;
};

}  // namespace

int main() {
  constexpr int kCustomers = 6;
  constexpr int kWaves = 3;

  atomicmem::AtomicMemory<std::int64_t> mem(kCustomers, 0);
  std::atomic<std::uint64_t> clock{0};
  runtime::CallLog<std::int64_t> log;

  // Waves arrive strictly one after another (a barrier between waves); the
  // customers inside one wave race each other.
  std::vector<Ticket> tickets;
  std::mutex tickets_mu;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::jthread> arrivals;
    for (int c = 0; c < kCustomers; ++c) {
      arrivals.emplace_back([&, c, wave] {
        atomicmem::DirectCtx<std::int64_t> ctx(&mem, c, &clock);
        auto task = core::maxscan_program(ctx, c, kCustomers, 1, &log);
        task.handle().resume();
        // The call log holds the timestamp; grab the newest entry for (c).
        auto snap = log.snapshot();
        for (auto it = snap.rbegin(); it != snap.rend(); ++it) {
          if (it->pid == c) {
            std::lock_guard<std::mutex> lock(tickets_mu);
            tickets.push_back({c, wave, it->ts});
            break;
          }
        }
      });
    }
  }

  std::sort(tickets.begin(), tickets.end(), [](const Ticket& a,
                                               const Ticket& b) {
    if (a.stamp != b.stamp) return core::compare(a.stamp, b.stamp);
    return a.customer < b.customer;  // tie-break concurrent arrivals
  });

  std::cout << "service order (FCFS by timestamp):\n";
  bool fair = true;
  int last_wave_served = 0;
  for (const auto& t : tickets) {
    std::cout << "  serve customer " << t.customer << " (wave " << t.wave
              << ", ticket " << t.stamp << ")\n";
    // Waves are separated by happens-before, so wave numbers must be served
    // in non-decreasing order.
    fair = fair && t.wave >= last_wave_served;
    last_wave_served = std::max(last_wave_served, t.wave);
  }

  auto report =
      verify::check_timestamp_property(log.snapshot(), core::Compare{});
  std::cout << "\nFCFS across waves: " << (fair ? "OK" : "VIOLATED")
            << "; timestamp property: " << (report.ok() ? "OK" : "VIOLATED")
            << "\n";
  return (fair && report.ok()) ? 0 : 1;
}
