// NativeSystem: the repo's second execution engine.
//
// The simulator (runtime::System<V>) interleaves coroutine steps under a
// deterministic scheduler; NativeSystem runs the SAME coroutine programs on
// a pool of real OS threads over atomicmem::AtomicMemory<V>. Because
// DirectCtx's awaiters are immediately ready, a program resumed once runs to
// completion synchronously on its worker thread — every co_await compiles
// down to an atomic register operation, so the execution is a genuine
// hardware-speed concurrent history, scheduled by the OS and the memory
// system rather than by us.
//
// Correctness transfers by post-hoc checking (the Haldar–Vitányi move:
// validate the recorded history, not the scheduler): programs record each
// completed call into a native::HistoryRecorder arena, stamped from the one
// shared atomic clock, and the merged log feeds the exact same property
// checkers as simulated runs. NativeSystem itself is policy-free — it maps
// P programs onto W workers (work claimed off an atomic counter, so W < P
// just serializes some programs per worker), joins, quiesces the memory's
// retirement stacks, and reports RunStats.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "atomicmem/atomic_memory.hpp"
#include "runtime/coro.hpp"
#include "util/assert.hpp"

namespace stamped::native {

/// Floor for RunStats::elapsed_seconds. Tiny runs (a handful of programs on
/// a fast machine) can finish inside one steady_clock tick; dividing ops by
/// a zero or sub-tick elapsed yields inf or garbage-of-ten rates. One
/// microsecond is far below anything a thread spawn costs, so the clamp
/// never distorts a real measurement — it only keeps degenerate runs finite.
inline constexpr double kMinElapsedSeconds = 1e-6;

/// What one run() did, for ScenarioReport's native fields and the T12 bench.
struct RunStats {
  int threads = 0;               ///< workers actually spawned
  /// Spawn-to-join wall time, clamped to >= kMinElapsedSeconds so rate math
  /// (ops / elapsed) stays finite on degenerate runs.
  double elapsed_seconds = 0.0;
  std::uint64_t ops = 0;         ///< register operations (sum of my_steps)
  std::uint64_t calls = 0;       ///< completed getTS calls (note_call_complete)
  std::vector<std::uint64_t> per_thread_calls;  ///< calls by worker index
  std::uint64_t retired_nodes = 0;      ///< memory retirees left post-quiesce
  std::uint64_t memory_arena_bytes = 0; ///< AtomicMemory heap after quiesce

  [[nodiscard]] double ops_per_sec() const {
    return static_cast<double>(ops) /
           std::max(elapsed_seconds, kMinElapsedSeconds);
  }
  [[nodiscard]] double calls_per_sec() const {
    return static_cast<double>(calls) /
           std::max(elapsed_seconds, kMinElapsedSeconds);
  }
};

/// Runs one program per process on a pool of real threads. Single-use: build,
/// run once, harvest the recorder. The memory lives here; programs reach it
/// through the per-process DirectCtx handed to them at spawn time.
template <class V>
class NativeSystem {
 public:
  using Ctx = atomicmem::DirectCtx<V>;
  using Program = std::function<runtime::ProcessTask(Ctx&)>;
  using OpHook = std::function<void(int pid, std::uint64_t my_ops)>;

  NativeSystem(int num_registers, const V& initial,
               std::vector<Program> programs)
      : mem_(num_registers, initial), programs_(std::move(programs)) {
    STAMPED_ASSERT_MSG(!programs_.empty(),
                       "a native run needs at least one program");
  }

  [[nodiscard]] atomicmem::AtomicMemory<V>& memory() { return mem_; }
  [[nodiscard]] int num_processes() const {
    return static_cast<int>(programs_.size());
  }

  /// Deterministic stall injection for fault tests: the hook runs on the
  /// worker thread after each of its register ops (pid, that process's op
  /// count). A hook that blocks models a preempted/crashed thread — exactly
  /// the adversary the combiner-lease protocol must survive. Install before
  /// run(); the hook must be safe to call from multiple threads.
  void set_op_hook(OpHook hook) {
    STAMPED_ASSERT_MSG(!ran_, "install op hooks before run()");
    hook_ = std::move(hook);
  }

  /// Executes every program to completion on `threads` workers (0 = hardware
  /// concurrency; requests are honored even beyond the core count — the OS
  /// time-slices, which is exactly the adversary we want — but never more
  /// workers than programs). Rethrows the first program exception after the
  /// pool joins. Single-use.
  RunStats run(int threads = 0) {
    STAMPED_ASSERT_MSG(!ran_, "NativeSystem::run is single-use");
    ran_ = true;

    const int n = num_processes();
    int pool = threads;
    if (pool <= 0) {
      pool = static_cast<int>(std::thread::hardware_concurrency());
      if (pool < 1) pool = 1;
    }
    if (pool > n) pool = n;

    // One ctx per process (not per worker): my_steps/calls_completed are
    // per-process facts, and a worker running several processes must not
    // blend their counters.
    std::vector<std::unique_ptr<Ctx>> ctxs;
    ctxs.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      ctxs.push_back(std::make_unique<Ctx>(&mem_, p, &clock_));
      if (hook_) ctxs.back()->set_op_hook(&hook_);
    }
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> per_thread_calls(
        static_cast<std::size_t>(pool), 0);
    std::atomic<int> next{0};

    const auto started = std::chrono::steady_clock::now();
    {
      std::vector<std::jthread> workers;
      workers.reserve(static_cast<std::size_t>(pool));
      for (int w = 0; w < pool; ++w) {
        workers.emplace_back([&, w] {
          // Workers claim processes off the shared counter; per_thread_calls
          // slot w is written by worker w alone.
          for (;;) {
            const int p = next.fetch_add(1, std::memory_order_relaxed);
            if (p >= n) return;
            auto& ctx = *ctxs[static_cast<std::size_t>(p)];
            runtime::ProcessTask task =
                programs_[static_cast<std::size_t>(p)](ctx);
            task.handle().resume();
            // Immediately-ready awaiters: one resume runs the whole program.
            STAMPED_ASSERT_MSG(task.done(),
                               "native program suspended; DirectCtx awaiters "
                               "must be immediately ready");
            errors[static_cast<std::size_t>(p)] = task.exception();
            per_thread_calls[static_cast<std::size_t>(w)] +=
                ctx.calls_completed();
          }
        });
      }
    }  // jthreads join here
    const auto finished = std::chrono::steady_clock::now();

    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    // The run's quiesce point: workers are joined, so nobody is pinned in
    // this memory — free the whole retirement backlog.
    mem_.quiesce();

    RunStats stats;
    stats.threads = pool;
    stats.elapsed_seconds =
        std::max(std::chrono::duration<double>(finished - started).count(),
                 kMinElapsedSeconds);
    for (const auto& ctx : ctxs) {
      stats.ops += ctx->my_steps();
      stats.calls += ctx->calls_completed();
    }
    stats.per_thread_calls = std::move(per_thread_calls);
    stats.retired_nodes = mem_.retired_nodes();
    stats.memory_arena_bytes = mem_.arena_bytes();
    return stats;
  }

 private:
  atomicmem::AtomicMemory<V> mem_;
  std::vector<Program> programs_;
  std::atomic<std::uint64_t> clock_{0};
  OpHook hook_;
  bool ran_ = false;
};

}  // namespace stamped::native
