// TypedNativeInstance: the native counterpart of api::TypedFamilyInstance.
//
// A native instance owns the history recorder that its programs write into
// and the NativeSystem that runs them — construction is two-phase like the
// simulated instance (programs capture arena pointers into the recorder, so
// the recorder must exist first):
//   auto inst = std::make_unique<TypedNativeInstance<V, Ts, Cmp>>(spec.n);
//   ... build programs capturing &inst->recorder().arena(p) ...
//   inst->adopt(std::make_unique<NativeSystem<V>>(regs, initial, programs));
// The harness drives it through the FamilyInstance virtuals: run_native()
// executes the pool and returns stats; calls() merges the arenas into the
// same GenericCallLog shape the checkers consume for simulated runs.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "api/family.hpp"
#include "native/native_system.hpp"
#include "native/recorder.hpp"
#include "util/assert.hpp"

namespace stamped::native {

template <class V, class Ts, class Cmp>
class TypedNativeInstance final : public api::FamilyInstance {
 public:
  using Filter = api::PairFilter<Ts>;

  explicit TypedNativeInstance(int n, Cmp cmp = {}, Filter filter = nullptr)
      : recorder_(n), cmp_(std::move(cmp)), filter_(std::move(filter)) {}

  [[nodiscard]] HistoryRecorder<Ts>& recorder() { return recorder_; }

  void adopt(std::unique_ptr<NativeSystem<V>> sys) {
    native_sys_ = std::move(sys);
  }

  void set_metrics(std::function<api::Metrics()> fn) {
    metrics_fn_ = std::move(fn);
  }

  [[nodiscard]] bool native() const override { return true; }

  api::NativeRunStats run_native(int threads) override {
    STAMPED_ASSERT_MSG(native_sys_ != nullptr,
                       "native instance has no adopted NativeSystem");
    RunStats raw = native_sys_->run(threads);
    api::NativeRunStats stats;
    stats.threads = raw.threads;
    stats.elapsed_seconds = raw.elapsed_seconds;
    stats.ops = raw.ops;
    stats.calls = raw.calls;
    stats.per_thread_calls = std::move(raw.per_thread_calls);
    stats.retired_nodes = raw.retired_nodes;
    stats.memory_arena_bytes = raw.memory_arena_bytes;
    stats.recorder_arena_bytes = recorder_.arena_bytes();
    return stats;
  }

  [[nodiscard]] api::GenericCallLog calls() const override {
    return api::erase_call_log<Ts>(recorder_.merged(), cmp_, filter_);
  }

  [[nodiscard]] api::Metrics metrics() const override {
    return metrics_fn_ ? metrics_fn_() : api::Metrics{};
  }

 private:
  HistoryRecorder<Ts> recorder_;
  std::unique_ptr<NativeSystem<V>> native_sys_;
  Cmp cmp_;
  Filter filter_;
  std::function<api::Metrics()> metrics_fn_;
};

}  // namespace stamped::native
