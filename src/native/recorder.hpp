// Lock-free history recorder for real-thread executions.
//
// The simulator's runtime::CallLog takes a mutex per record — fine for a
// deterministic scheduler stepping one coroutine at a time, but a
// serialization point that would poison a native throughput measurement (and
// perturb the very interleavings the run exists to produce). Here each
// worker appends to its own arena: a chain of fixed-size blocks touched by
// exactly one thread, so the hot path is a bump-pointer store with no shared
// state at all. The shared completion clock (DirectCtx::stamp, one atomic
// fetch_add) is the only cross-thread traffic per call, and it is the same
// clock that stamps invocations — stamps are therefore unique and totally
// ordered across threads, which is what lets the merge sort records into the
// real-time order the checkers need.
//
// merged() runs at quiesce, after the worker pool has been joined: plain
// reads of per-thread arenas with no concurrent writers (the join is the
// synchronization), then one stable sort by completion stamp. Nothing in the
// recorder blocks, spins, or retries at any point.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/history.hpp"
#include "util/assert.hpp"

namespace stamped::native {

/// Single-writer append-only arena of completed-call records. Blocks are
/// heap-allocated on demand and never moved, so earlier records stay valid
/// while later ones are appended (no vector reallocation on the hot path).
template <class Ts>
class CallArena {
 public:
  static constexpr std::size_t kBlockRecords = 256;

  CallArena() = default;
  CallArena(const CallArena&) = delete;
  CallArena& operator=(const CallArena&) = delete;

  /// Hot path; caller is the arena's one writer thread.
  void record(runtime::CallRecord<Ts> rec) {
    STAMPED_ASSERT_MSG(rec.invoked_at < rec.responded_at,
                       "call must span at least one event");
    if (blocks_.empty() || blocks_.back()->used == kBlockRecords) {
      blocks_.push_back(std::make_unique<Block>());
    }
    Block& b = *blocks_.back();
    b.records[b.used++] = std::move(rec);
  }

  [[nodiscard]] std::size_t size() const {
    if (blocks_.empty()) return 0;
    return (blocks_.size() - 1) * kBlockRecords + blocks_.back()->used;
  }

  [[nodiscard]] std::size_t bytes() const {
    return blocks_.size() * sizeof(Block);
  }

  void append_to(std::vector<runtime::CallRecord<Ts>>& out) const {
    for (const auto& b : blocks_) {
      for (std::size_t i = 0; i < b->used; ++i) out.push_back(b->records[i]);
    }
  }

 private:
  struct Block {
    std::array<runtime::CallRecord<Ts>, kBlockRecords> records{};
    std::size_t used = 0;
  };

  std::vector<std::unique_ptr<Block>> blocks_;
};

/// One arena per process. Workers write only their own processes' arenas;
/// the merge runs after the pool joins (see file comment).
template <class Ts>
class HistoryRecorder {
 public:
  explicit HistoryRecorder(int n) {
    STAMPED_ASSERT(n > 0);
    arenas_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      arenas_.push_back(std::make_unique<CallArena<Ts>>());
    }
  }

  [[nodiscard]] CallArena<Ts>& arena(int pid) {
    STAMPED_ASSERT(pid >= 0 && pid < static_cast<int>(arenas_.size()));
    return *arenas_[static_cast<std::size_t>(pid)];
  }

  /// All records across arenas, sorted by completion stamp. Completion
  /// stamps come from the shared run clock, so they are unique and the sort
  /// produces one definite total order (stable_sort for determinism anyway).
  [[nodiscard]] std::vector<runtime::CallRecord<Ts>> merged() const {
    std::vector<runtime::CallRecord<Ts>> out;
    out.reserve(size());
    for (const auto& a : arenas_) a->append_to(out);
    std::stable_sort(out.begin(), out.end(),
                     [](const runtime::CallRecord<Ts>& a,
                        const runtime::CallRecord<Ts>& b) {
                       return a.responded_at < b.responded_at;
                     });
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& a : arenas_) total += a->size();
    return total;
  }

  [[nodiscard]] std::size_t arena_bytes() const {
    std::size_t total = 0;
    for (const auto& a : arenas_) total += a->bytes();
    return total;
  }

  [[nodiscard]] std::vector<std::uint64_t> per_arena_counts() const {
    std::vector<std::uint64_t> counts;
    counts.reserve(arenas_.size());
    for (const auto& a : arenas_) counts.push_back(a->size());
    return counts;
  }

 private:
  std::vector<std::unique_ptr<CallArena<Ts>>> arenas_;
};

}  // namespace stamped::native
