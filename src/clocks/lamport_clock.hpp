// Lamport's logical clock (CACM 1978) — the origin of the timestamping idea
// the paper studies. Assigns an integer C(e) to each event so that
// e1 happens-before e2 implies C(e1) < C(e2) (the converse need not hold).
//
// This module also provides a tiny message-passing event simulator used by
// the event-ordering example and the clocks tests: processes emit local
// events and exchange messages; the happens-before relation is defined by
// program order plus send->receive edges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stamped::clocks {

/// The scalar logical clock of one process.
class LamportClock {
 public:
  /// Local event (or message send): advance and return the new time.
  std::uint64_t tick() { return ++time_; }

  /// Message receipt carrying the sender's timestamp.
  std::uint64_t on_receive(std::uint64_t msg_time) {
    time_ = (msg_time > time_ ? msg_time : time_) + 1;
    return time_;
  }

  [[nodiscard]] std::uint64_t now() const { return time_; }

 private:
  std::uint64_t time_ = 0;
};

/// An event in the message-passing simulator.
struct MpEvent {
  enum class Kind { kLocal, kSend, kReceive };
  int pid = -1;
  int index = -1;          ///< per-process sequence number (program order)
  Kind kind = Kind::kLocal;
  int peer = -1;           ///< send: destination; receive: source
  int match = -1;          ///< receive: global index of the matching send
  std::uint64_t lamport = 0;
  std::vector<std::uint64_t> vector_time;
};

/// Deterministic message-passing run: a script of events (sends must precede
/// their receives). Computes Lamport and vector timestamps for every event.
class MessagePassingRun {
 public:
  explicit MessagePassingRun(int num_processes);

  /// Appends a local event for pid; returns the global event index.
  int local(int pid);
  /// Appends a send from pid to dst; returns the global event index.
  int send(int pid, int dst);
  /// Appends the receipt by dst of the send with global index send_index.
  int receive(int send_index);

  [[nodiscard]] const std::vector<MpEvent>& events() const { return events_; }
  [[nodiscard]] int num_processes() const;

  /// Ground-truth happens-before: reflexive-transitive closure of program
  /// order and send->receive edges, queried as "a strictly before b".
  [[nodiscard]] bool happens_before(int a, int b) const;

 private:
  int append(MpEvent ev);

  std::vector<LamportClock> lamport_;
  std::vector<std::vector<std::uint64_t>> vector_;
  std::vector<MpEvent> events_;
  // predecessors for the happens-before closure (program order + message)
  std::vector<std::vector<int>> preds_;
};

}  // namespace stamped::clocks
