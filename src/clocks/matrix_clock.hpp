// Matrix clocks (Wuu & Bernstein 1986, Sarin & Lynch 1987): each process
// maintains an n x n matrix M where row i is its best knowledge of process
// i's vector clock. The column-wise minimum gives a global watermark — every
// process is known to have seen events up to it — used to discard obsolete
// information (the replicated-log/dictionary problem).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clocks/vector_clock.hpp"

namespace stamped::clocks {

class MatrixClock {
 public:
  MatrixClock() = default;
  explicit MatrixClock(int num_processes);

  /// Local event at `pid`: tick own row's own component.
  void tick(int pid);

  /// Receive rule at `pid` from `sender` with the sender's matrix:
  /// row-wise component-wise max, own row additionally merged with the
  /// sender's row (the sender's vector knowledge), then tick own component.
  void merge_and_tick(int pid, int sender, const MatrixClock& sender_matrix);

  /// Process `pid`'s own vector clock (row pid).
  [[nodiscard]] const VectorClock& row(int pid) const;

  /// Watermark: component-wise minimum over all rows. An event with vector
  /// time <= watermark in every component is known to all processes.
  [[nodiscard]] VectorClock watermark() const;

  [[nodiscard]] int size() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] std::string repr() const;

 private:
  std::vector<VectorClock> rows_;
};

}  // namespace stamped::clocks
