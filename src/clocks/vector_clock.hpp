// Vector clocks (Fidge 1988, Mattern 1989): the extension of Lamport's
// integer clock that *characterizes* happens-before: VC(e1) < VC(e2) iff
// e1 happens before e2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stamped::clocks {

/// The four possible relations between two vector timestamps.
enum class Ordering { kBefore, kAfter, kConcurrent, kEqual };

[[nodiscard]] const char* ordering_name(Ordering o);

/// A vector timestamp / per-process vector clock.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int num_processes);
  VectorClock(std::vector<std::uint64_t> components);

  /// Advance own component (local or send event).
  void tick(int pid);

  /// Receive rule: component-wise max with `other`, then tick(pid).
  void merge_and_tick(int pid, const VectorClock& other);

  /// Compares two vector timestamps.
  [[nodiscard]] static Ordering compare(const VectorClock& a,
                                        const VectorClock& b);

  /// a happens-before b (strictly less in the component-wise order).
  [[nodiscard]] static bool before(const VectorClock& a,
                                   const VectorClock& b) {
    return compare(a, b) == Ordering::kBefore;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& components() const {
    return components_;
  }
  [[nodiscard]] std::uint64_t component(int pid) const;
  [[nodiscard]] int size() const {
    return static_cast<int>(components_.size());
  }
  [[nodiscard]] std::string repr() const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::uint64_t> components_;
};

}  // namespace stamped::clocks
