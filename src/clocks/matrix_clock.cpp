#include "clocks/matrix_clock.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace stamped::clocks {

MatrixClock::MatrixClock(int num_processes)
    : rows_(static_cast<std::size_t>(num_processes),
            VectorClock(num_processes)) {
  STAMPED_ASSERT(num_processes >= 1);
}

void MatrixClock::tick(int pid) {
  STAMPED_ASSERT(pid >= 0 && pid < size());
  rows_[static_cast<std::size_t>(pid)].tick(pid);
}

void MatrixClock::merge_and_tick(int pid, int sender,
                                 const MatrixClock& sender_matrix) {
  STAMPED_ASSERT(sender_matrix.size() == size());
  STAMPED_ASSERT(pid >= 0 && pid < size());
  STAMPED_ASSERT(sender >= 0 && sender < size());
  for (int i = 0; i < size(); ++i) {
    const auto ui = static_cast<std::size_t>(i);
    std::vector<std::uint64_t> merged = rows_[ui].components();
    const auto& theirs = sender_matrix.rows_[ui].components();
    for (std::size_t c = 0; c < merged.size(); ++c) {
      merged[c] = std::max(merged[c], theirs[c]);
    }
    rows_[ui] = VectorClock(std::move(merged));
  }
  // Own row also absorbs the sender's own row (its vector knowledge).
  const auto upid = static_cast<std::size_t>(pid);
  std::vector<std::uint64_t> own = rows_[upid].components();
  const auto& sender_row =
      sender_matrix.rows_[static_cast<std::size_t>(sender)].components();
  for (std::size_t c = 0; c < own.size(); ++c) {
    own[c] = std::max(own[c], sender_row[c]);
  }
  rows_[upid] = VectorClock(std::move(own));
  rows_[upid].tick(pid);
}

const VectorClock& MatrixClock::row(int pid) const {
  STAMPED_ASSERT(pid >= 0 && pid < size());
  return rows_[static_cast<std::size_t>(pid)];
}

VectorClock MatrixClock::watermark() const {
  STAMPED_ASSERT(size() >= 1);
  std::vector<std::uint64_t> mins = rows_[0].components();
  for (int i = 1; i < size(); ++i) {
    const auto& comps = rows_[static_cast<std::size_t>(i)].components();
    for (std::size_t c = 0; c < mins.size(); ++c) {
      mins[c] = std::min(mins[c], comps[c]);
    }
  }
  return VectorClock(std::move(mins));
}

std::string MatrixClock::repr() const {
  std::ostringstream os;
  for (int i = 0; i < size(); ++i) {
    os << rows_[static_cast<std::size_t>(i)].repr();
    if (i + 1 < size()) os << '\n';
  }
  return os.str();
}

}  // namespace stamped::clocks
