#include "clocks/lamport_clock.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace stamped::clocks {

MessagePassingRun::MessagePassingRun(int num_processes)
    : lamport_(static_cast<std::size_t>(num_processes)),
      vector_(static_cast<std::size_t>(num_processes),
              std::vector<std::uint64_t>(
                  static_cast<std::size_t>(num_processes), 0)) {
  STAMPED_ASSERT(num_processes >= 1);
}

int MessagePassingRun::num_processes() const {
  return static_cast<int>(lamport_.size());
}

int MessagePassingRun::append(MpEvent ev) {
  const auto pid = static_cast<std::size_t>(ev.pid);
  // Program-order predecessor: the previous event of the same process.
  std::vector<int> preds;
  for (int i = static_cast<int>(events_.size()) - 1; i >= 0; --i) {
    if (events_[static_cast<std::size_t>(i)].pid == ev.pid) {
      preds.push_back(i);
      break;
    }
  }
  if (ev.kind == MpEvent::Kind::kReceive) preds.push_back(ev.match);

  ev.index = static_cast<int>(std::count_if(
      events_.begin(), events_.end(),
      [&](const MpEvent& e) { return e.pid == ev.pid; }));
  ev.vector_time = vector_[pid];
  events_.push_back(std::move(ev));
  preds_.push_back(std::move(preds));
  return static_cast<int>(events_.size()) - 1;
}

int MessagePassingRun::local(int pid) {
  STAMPED_ASSERT(pid >= 0 && pid < num_processes());
  const auto upid = static_cast<std::size_t>(pid);
  MpEvent ev;
  ev.pid = pid;
  ev.kind = MpEvent::Kind::kLocal;
  ev.lamport = lamport_[upid].tick();
  ++vector_[upid][upid];
  return append(std::move(ev));
}

int MessagePassingRun::send(int pid, int dst) {
  STAMPED_ASSERT(pid >= 0 && pid < num_processes());
  STAMPED_ASSERT(dst >= 0 && dst < num_processes() && dst != pid);
  const auto upid = static_cast<std::size_t>(pid);
  MpEvent ev;
  ev.pid = pid;
  ev.kind = MpEvent::Kind::kSend;
  ev.peer = dst;
  ev.lamport = lamport_[upid].tick();
  ++vector_[upid][upid];
  return append(std::move(ev));
}

int MessagePassingRun::receive(int send_index) {
  STAMPED_ASSERT(send_index >= 0 &&
                 send_index < static_cast<int>(events_.size()));
  const MpEvent& snd = events_[static_cast<std::size_t>(send_index)];
  STAMPED_ASSERT_MSG(snd.kind == MpEvent::Kind::kSend,
                     "receive() must reference a send event");
  const int pid = snd.peer;
  const auto upid = static_cast<std::size_t>(pid);
  MpEvent ev;
  ev.pid = pid;
  ev.kind = MpEvent::Kind::kReceive;
  ev.peer = snd.pid;
  ev.match = send_index;
  ev.lamport = lamport_[upid].on_receive(snd.lamport);
  // Vector clock receive rule: component-wise max with the piggybacked
  // vector, then tick own component. The piggybacked vector is the sender's
  // vector *after* the send event.
  std::vector<std::uint64_t> piggy = snd.vector_time;
  const auto spid = static_cast<std::size_t>(snd.pid);
  for (std::size_t i = 0; i < piggy.size(); ++i) {
    vector_[upid][i] = std::max(vector_[upid][i], piggy[i]);
  }
  (void)spid;
  ++vector_[upid][upid];
  return append(std::move(ev));
}

bool MessagePassingRun::happens_before(int a, int b) const {
  if (a == b) return false;
  // BFS over predecessor edges from b.
  std::vector<bool> seen(events_.size(), false);
  std::vector<int> stack = preds_[static_cast<std::size_t>(b)];
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    if (cur == a) return true;
    if (seen[static_cast<std::size_t>(cur)]) continue;
    seen[static_cast<std::size_t>(cur)] = true;
    for (int p : preds_[static_cast<std::size_t>(cur)]) stack.push_back(p);
  }
  return false;
}

}  // namespace stamped::clocks
