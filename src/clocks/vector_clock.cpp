#include "clocks/vector_clock.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace stamped::clocks {

const char* ordering_name(Ordering o) {
  switch (o) {
    case Ordering::kBefore: return "before";
    case Ordering::kAfter: return "after";
    case Ordering::kConcurrent: return "concurrent";
    case Ordering::kEqual: return "equal";
  }
  return "?";
}

VectorClock::VectorClock(int num_processes)
    : components_(static_cast<std::size_t>(num_processes), 0) {
  STAMPED_ASSERT(num_processes >= 1);
}

VectorClock::VectorClock(std::vector<std::uint64_t> components)
    : components_(std::move(components)) {}

void VectorClock::tick(int pid) {
  STAMPED_ASSERT(pid >= 0 && pid < size());
  ++components_[static_cast<std::size_t>(pid)];
}

void VectorClock::merge_and_tick(int pid, const VectorClock& other) {
  STAMPED_ASSERT(other.size() == size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
  tick(pid);
}

Ordering VectorClock::compare(const VectorClock& a, const VectorClock& b) {
  STAMPED_ASSERT(a.size() == b.size());
  bool a_lt = false;
  bool b_lt = false;
  for (std::size_t i = 0; i < a.components_.size(); ++i) {
    if (a.components_[i] < b.components_[i]) a_lt = true;
    if (b.components_[i] < a.components_[i]) b_lt = true;
  }
  if (a_lt && b_lt) return Ordering::kConcurrent;
  if (a_lt) return Ordering::kBefore;
  if (b_lt) return Ordering::kAfter;
  return Ordering::kEqual;
}

std::uint64_t VectorClock::component(int pid) const {
  STAMPED_ASSERT(pid >= 0 && pid < size());
  return components_[static_cast<std::size_t>(pid)];
}

std::string VectorClock::repr() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << ' ';
    os << components_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace stamped::clocks
