// Long-lived unbounded timestamps: the classic collect/max+1 construction.
//
// This is the library's long-lived comparator for the space-gap experiments.
// Each process owns one single-writer multi-reader register (n registers for
// n processes). getTS() collects all n registers, computes t = max + 1, writes
// t to its own register and returns t; compare(t1, t2) is t1 < t2.
//
// Correctness: if g1 (by p, returning t1) happens before g2 (by q), then q's
// collect reads p's register after p wrote t1, and register values never
// decrease (a process only writes max+1 of a collect that included its own
// register), so t2 >= t1 + 1 > t1.
//
// Substitution note (see DESIGN.md): the paper's Theta(n) comparator is the
// n-1 register algorithm of Ellen, Fatourou & Ruppert, whose construction is
// not given in this paper. The n-register max-scan preserves the Theta(n)
// shape that Theorem 1.1 (n/6 - 1 lower bound) makes asymptotically tight.
//
// Wait-free: every call takes exactly n + 1 steps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/timestamp.hpp"
#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"

namespace stamped::core {

/// One getTS() by process `pid` in an n-process max-scan object; awaitable so
/// long-lived programs chain calls. Returns the timestamp. `Log` is any
/// recorder of CallRecord<int64_t> — runtime::CallLog on the simulator,
/// native::CallArena on real threads.
template <class Ctx, class Log>
runtime::SubTask<std::int64_t> maxscan_getts(Ctx& ctx, int pid, int n,
                                             int call_index, Log* log) {
  const std::uint64_t invoked = ctx.stamp();
  std::int64_t mx = 0;
  for (int i = 0; i < n; ++i) {
    mx = std::max(mx, co_await ctx.read(i));
  }
  const std::int64_t t = mx + 1;
  co_await ctx.write(pid, t);
  if (log != nullptr) {
    log->record({pid, call_index, t, invoked, ctx.stamp()});
  }
  ctx.note_call_complete();
  co_return t;
}

/// Long-lived program: process `pid` performs `num_calls` getTS calls.
template <class Ctx, class Log>
runtime::ProcessTask maxscan_program(Ctx& ctx, int pid, int n, int num_calls,
                                     Log* log) {
  for (int k = 0; k < num_calls; ++k) {
    co_await maxscan_getts(ctx, pid, n, k, log);
  }
}

/// Builds an n-process long-lived max-scan system where every process
/// performs `calls_per_process` getTS calls.
inline std::unique_ptr<runtime::System<std::int64_t>> make_maxscan_system(
    int n, int calls_per_process, runtime::CallLog<std::int64_t>* log) {
  STAMPED_ASSERT(n >= 1 && calls_per_process >= 1);
  using Sys = runtime::System<std::int64_t>;
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, n, calls_per_process, log](Sys::Ctx& ctx) {
      return maxscan_program(ctx, p, n, calls_per_process, log);
    });
  }
  return std::make_unique<Sys>(n, std::int64_t{0}, std::move(programs));
}

/// Deterministic factory for replay-based adversaries.
inline runtime::SystemFactory maxscan_factory(int n, int calls_per_process) {
  return [n, calls_per_process]() -> std::unique_ptr<runtime::ISystem> {
    return make_maxscan_system(n, calls_per_process, nullptr);
  };
}

}  // namespace stamped::core
