#include "core/timestamp.hpp"

#include <sstream>

namespace stamped::core {

std::string TsId::repr() const {
  std::ostringstream os;
  os << 'p' << pid << '.' << call;
  return os.str();
}

std::string PairTimestamp::repr() const {
  std::ostringstream os;
  os << '(' << rnd << ',' << turn << ')';
  return os.str();
}

std::string TsRecord::repr() const {
  if (is_bottom) return "⊥";
  std::ostringstream os;
  os << "<[";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) os << ' ';
    os << seq[i].repr();
  }
  os << "]," << rnd << '>';
  return os.str();
}

}  // namespace stamped::core
