#include "core/bounded_longlived.hpp"

#include <sstream>

#include "util/math.hpp"

namespace stamped::core {

std::string BoundedLabel::repr() const {
  std::ostringstream os;
  os << val << '#' << gen;
  return os.str();
}

std::string BoundedTimestamp::repr() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < comps.size(); ++i) {
    if (i > 0) os << ' ';
    os << comps[i];
  }
  os << ">%" << modulus;
  return os.str();
}

int bounded_bits_per_register(std::int32_t modulus) {
  STAMPED_ASSERT(modulus >= 2);
  return util::ceil_log2(modulus) + util::ceil_log2(modulus + 1);
}

bool bounded_before(const BoundedTimestamp& a, const BoundedTimestamp& b) {
  if (a.modulus != b.modulus || a.comps.size() != b.comps.size()) return false;
  const std::int32_t k = a.modulus;
  if (k < 3 || a.comps.empty()) return false;
  const std::int32_t w = bounded_window(k);
  bool strict = false;
  for (std::size_t i = 0; i < a.comps.size(); ++i) {
    const std::int32_t diff =
        (((b.comps[i] - a.comps[i]) % k) + k) % k;  // (b_i - a_i) mod K
    if (diff > w) return false;
    if (diff >= 1) strict = true;
  }
  return strict;
}

bool bounded_pair_within_window(
    const std::vector<runtime::CallRecord<BoundedTimestamp>>& all,
    const runtime::CallRecord<BoundedTimestamp>& a,
    const runtime::CallRecord<BoundedTimestamp>& b, std::int32_t modulus) {
  const std::int32_t w = bounded_window(modulus);
  // Count, per process, the calls overlapping [a.invoked_at, b.responded_at].
  // Every register tick between the two scans belongs to such a call, so
  // these counts upper-bound the interim ticks d_i of the window argument.
  std::vector<std::int64_t> overlapping;
  for (const auto& r : all) {
    if (r.responded_at <= a.invoked_at || r.invoked_at >= b.responded_at) {
      continue;
    }
    if (r.pid < 0) continue;
    if (static_cast<std::size_t>(r.pid) >= overlapping.size()) {
      overlapping.resize(static_cast<std::size_t>(r.pid) + 1, 0);
    }
    if (++overlapping[static_cast<std::size_t>(r.pid)] > w) return false;
  }
  return true;
}

std::unique_ptr<runtime::System<BoundedLabel>> make_bounded_system(
    int n, int calls_per_process, std::int32_t modulus,
    runtime::CallLog<BoundedTimestamp>* log, BoundedStats* stats) {
  STAMPED_ASSERT(n >= 1 && calls_per_process >= 1);
  if (modulus <= 0) modulus = bounded_modulus_for(calls_per_process);
  STAMPED_ASSERT_MSG(modulus >= 3,
                     "bounded modulus must be >= 3, got " << modulus);
  using Sys = runtime::System<BoundedLabel>;
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back(
        [p, n, modulus, calls_per_process, log, stats](Sys::Ctx& ctx) {
          return bounded_program(ctx, p, n, modulus, calls_per_process, log,
                                 stats);
        });
  }
  return std::make_unique<Sys>(n, BoundedLabel{}, std::move(programs));
}

runtime::SystemFactory bounded_factory(int n, int calls_per_process,
                                       std::int32_t modulus) {
  return [n, calls_per_process,
          modulus]() -> std::unique_ptr<runtime::ISystem> {
    return make_bounded_system(n, calls_per_process, modulus, nullptr);
  };
}

}  // namespace stamped::core
