// Section 7 extension: Algorithm 4 without an a-priori bound on the number of
// getTS invocations.
//
// The paper remarks that the one-shot algorithm "generalizes even to the
// situation where the number of getTS() method invocations is not bounded,
// provided that the system could acquire additional registers as needed",
// with progress degrading from wait-free to non-blocking.
//
// In the simulator, register acquisition is modeled by a pre-allocated pool
// that is provably large enough for the actual number of invocations issued
// (Phi <= M phases can ever start, since each getTS performs at most one
// scan, so M + 2 registers always suffice); the algorithm itself never reads
// past the first ⊥ register, so the pool size is unobservable to it — exactly
// as if registers were materialized on demand.
#pragma once

#include <memory>

#include "core/sqrt_oneshot.hpp"

namespace stamped::core {

/// A safe register pool size for `total_calls` invocations: each call starts
/// at most one phase, so at most total_calls + 1 registers can ever become
/// non-⊥; one extra ⊥ sentinel terminates the initial while-loop.
[[nodiscard]] constexpr int growing_pool_registers(int total_calls) {
  return total_calls + 2;
}

/// Builds an n-process one-shot system running Algorithm 4 with an
/// effectively unbounded register pool (no dependence on M in the algorithm).
inline std::unique_ptr<runtime::System<TsRecord>> make_growing_oneshot_system(
    int n, runtime::CallLog<PairTimestamp>* log, SqrtStats* stats = nullptr) {
  return make_sqrt_oneshot_system(n, log, stats,
                                  growing_pool_registers(n));
}

/// Growing variant with `calls_per_process` calls per process.
inline std::unique_ptr<runtime::System<TsRecord>> make_growing_bounded_system(
    int n, int calls_per_process, runtime::CallLog<PairTimestamp>* log,
    SqrtStats* stats = nullptr) {
  STAMPED_ASSERT(n >= 1 && calls_per_process >= 1);
  using Sys = runtime::System<TsRecord>;
  const int total = n * calls_per_process;
  const int m = growing_pool_registers(total);
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, m, calls_per_process, log, stats](Sys::Ctx& ctx) {
      return sqrt_calls_program(ctx, p, calls_per_process, m, log, stats);
    });
  }
  return std::make_unique<Sys>(m, TsRecord::bottom(), std::move(programs));
}

}  // namespace stamped::core
