// Timestamp types shared by all algorithms in this library.
//
// An unbounded timestamp object (paper, Section 2) supports
//   getTS()          -> timestamp from a universe T
//   compare(t1, t2)  -> bool
// with the single correctness requirement: if getTS g1 returning t1 happens
// before getTS g2 returning t2, then compare(t1,t2) = true and
// compare(t2,t1) = false. compare never accesses shared memory.
//
// Two timestamp universes appear in the paper:
//   - integers (simple algorithm of Section 5, max-scan comparator):
//     compare is `<`
//   - ordered pairs (rnd, turn) in N x (N u {0}) (Algorithm 3/4, Section 6):
//     compare is lexicographic `<`
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace stamped::core {

/// A getTS-id "p.k": the k-th invocation of getTS by process p (paper,
/// Section 6.1). For one-shot objects k is always 0 and the id reduces to the
/// process identifier.
struct TsId {
  std::int32_t pid = -1;
  std::int32_t call = 0;

  friend constexpr auto operator<=>(const TsId&, const TsId&) = default;

  [[nodiscard]] std::string repr() const;
};

/// Timestamp of Algorithms 3/4: the ordered pair (rnd, turn).
struct PairTimestamp {
  std::int64_t rnd = 0;
  std::int64_t turn = 0;

  friend constexpr bool operator==(const PairTimestamp&,
                                   const PairTimestamp&) = default;

  [[nodiscard]] std::string repr() const;
};

/// Algorithm 3: compare((rnd1,turn1),(rnd2,turn2)) — pure lexicographic
/// comparison, no shared-memory access.
[[nodiscard]] constexpr bool compare(const PairTimestamp& a,
                                     const PairTimestamp& b) {
  return a.rnd < b.rnd || (a.rnd == b.rnd && a.turn < b.turn);
}

/// Integer timestamps (Section 5 simple algorithm, max-scan): compare is <.
[[nodiscard]] constexpr bool compare(std::int64_t a, std::int64_t b) {
  return a < b;
}

/// Functor form of compare for generic checkers.
struct Compare {
  template <class Ts>
  [[nodiscard]] constexpr bool operator()(const Ts& a, const Ts& b) const {
    return compare(a, b);
  }
};

/// Register content of Algorithm 4: either the initial value ⊥ (bottom) or a
/// pair <seq, rnd> where seq is a sequence of getTS-ids and rnd a positive
/// integer. The algorithm maintains (paper, Section 6.1): for some k >= 0 the
/// first k registers are non-⊥ and all others ⊥, and the seq stored in
/// (1-indexed) register j has length either 1 or j.
struct TsRecord {
  bool is_bottom = true;
  std::vector<TsId> seq;
  std::int64_t rnd = 0;

  friend bool operator==(const TsRecord&, const TsRecord&) = default;

  [[nodiscard]] static TsRecord bottom() { return {}; }

  [[nodiscard]] static TsRecord make(std::vector<TsId> ids,
                                     std::int64_t round) {
    STAMPED_ASSERT(!ids.empty());
    STAMPED_ASSERT(round >= 1);
    TsRecord rec;
    rec.is_bottom = false;
    rec.seq = std::move(ids);
    rec.rnd = round;
    return rec;
  }

  /// last(seq) — the last getTS-id of the stored sequence.
  [[nodiscard]] const TsId& last() const {
    STAMPED_ASSERT_MSG(!is_bottom && !seq.empty(),
                       "last() on bottom/empty record");
    return seq.back();
  }

  [[nodiscard]] std::string repr() const;
};

}  // namespace stamped::core
