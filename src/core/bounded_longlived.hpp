// Long-lived *bounded-universe* timestamps in the style of Haldar & Vitányi,
// "Bounded Concurrent Timestamp Systems Using Vector Clocks" (see PAPERS.md).
//
// Every object of the source paper draws timestamps from an unbounded
// universe (integers, pairs, id-sequences). This object is the first family
// outside that paper: its labels live in the *finite* universe Z_K^n and
// exhausted labels are recycled cyclically (value K-1 wraps to 0).
//
// Construction. Each process p owns one SWMR register holding a BoundedLabel
// (a value in Z_K plus a small wrap-detection guard). getTS() by p:
//   1. double-collect scan of all n registers (snapshot/double_collect.hpp,
//      the collect primitive suggested by Gafni's "Snapshot for Time"),
//   2. tick the own component: val' = (val + 1) mod K (the recycling rule),
//   3. write the new label to the own register,
//   4. return the scanned vector with the own component replaced — a
//      vector-clock-style timestamp (v_0, .., v_{n-1}) in Z_K^n.
//
// compare(a, b) is cyclic dominance within the window W = (K-1)/2:
//   a < b  iff  for all i: (b_i - a_i) mod K in [0, W], and some i in [1, W].
// Because 2W < K, this relation is irreflexive and asymmetric on ALL of
// Z_K^n, and restricted to any window-coherent set (labels pairwise within
// the window — the HV condition "labels simultaneously in circulation") it is
// transitive as well, i.e. a strict partial order: if (b-a) and (c-b) land in
// [0, W] componentwise, their sum is < K, so no wrap-around can reorder a
// window-coherent chain. A genuinely static strict order over a finite
// universe cannot order unboundedly long happens-before chains — that is
// exactly why the source paper's model uses unbounded universes — so the
// bounded object's guarantee is conditioned on the recycling window:
//
//   Timestamp property (windowed): if g1 -> g2 and between the two scans no
//   process ticked its component more than W times, then compare(t1, t2) and
//   !compare(t2, t1).
//
// Proof sketch: g2's scan reads each register i after g1's scan did, and
// register i only changes by +1 mod K per write by process i; with d_i <= W
// interim ticks the componentwise cyclic differences all land in [0, W], and
// the own component of g2's caller lands in [1, W]. Executions whose total
// per-process call count is at most W (modulus K >= 2*calls+1, see
// bounded_modulus_for) satisfy the property unconditionally — the regime the
// exhaustive explorer certifies. Longer executions recycle labels and are
// checked against the windowed property (bounded_pair_within_window +
// check_timestamp_property_filtered).
//
// Space: n registers of ceil(log2 K) + ceil(log2 (K+1)) bits — versus the
// unbounded max-scan object's n registers of unbounded (64-bit in practice)
// integers. bench_t7_bounded tabulates the comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"
#include "snapshot/versioned_collect.hpp"
#include "util/assert.hpp"

namespace stamped::core {

/// Register content of the bounded object: the owner's current label value in
/// Z_K plus a wrap-detection guard in Z_{K+1}. The guard ticks with every
/// write but with a modulus coprime to K, so a double collect is only fooled
/// by K*(K+1) interim writes instead of K (a simplified stand-in for the
/// Haldar-Vitányi handshake bits).
struct BoundedLabel {
  std::int32_t val = 0;
  std::int32_t gen = 0;

  friend bool operator==(const BoundedLabel&, const BoundedLabel&) = default;

  [[nodiscard]] std::string repr() const;
};

/// Timestamp of the bounded object: a vector in Z_K^n (see file comment).
struct BoundedTimestamp {
  std::int32_t modulus = 0;
  std::vector<std::int32_t> comps;

  friend bool operator==(const BoundedTimestamp&,
                         const BoundedTimestamp&) = default;

  [[nodiscard]] std::string repr() const;
};

/// The comparison window W = (K-1)/2; 2W < K makes compare asymmetric.
[[nodiscard]] constexpr std::int32_t bounded_window(std::int32_t modulus) {
  return (modulus - 1) / 2;
}

/// Smallest modulus whose window covers executions with at most
/// `calls_per_process` getTS calls by each process (K = 2*calls + 1, min 3).
[[nodiscard]] constexpr std::int32_t bounded_modulus_for(
    int calls_per_process) {
  const std::int32_t k = 2 * calls_per_process + 1;
  return k < 3 ? 3 : k;
}

/// Bits one BoundedLabel register needs: ceil(log2 K) + ceil(log2 (K+1)).
[[nodiscard]] int bounded_bits_per_register(std::int32_t modulus);

/// Cyclic dominance within the window (see file comment). Vectors with
/// different moduli or lengths are incomparable (returns false).
[[nodiscard]] bool bounded_before(const BoundedTimestamp& a,
                                  const BoundedTimestamp& b);

/// Functor form for the generic checkers.
struct BoundedCompare {
  [[nodiscard]] bool operator()(const BoundedTimestamp& a,
                                const BoundedTimestamp& b) const {
    return bounded_before(a, b);
  }
};

/// Conservative eligibility test for the windowed timestamp property: the
/// ordered pair (a, b) carries an obligation only if no process has more than
/// `bounded_window(modulus)` of its calls overlapping [a.invoked_at,
/// b.responded_at] — every register tick between the two scans belongs to
/// such a call, so eligible pairs satisfy the interim-tick bound.
[[nodiscard]] bool bounded_pair_within_window(
    const std::vector<runtime::CallRecord<BoundedTimestamp>>& all,
    const runtime::CallRecord<BoundedTimestamp>& a,
    const runtime::CallRecord<BoundedTimestamp>& b, std::int32_t modulus);

/// Aggregate accounting for one system run (wrap events = recycled labels).
/// Thread-safe, mirroring SqrtStats.
class BoundedStats {
 public:
  void on_call(std::uint64_t collects, bool wrapped) {
    std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    collects_ += collects;
    if (wrapped) ++wraps_;
  }

  [[nodiscard]] std::uint64_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  [[nodiscard]] std::uint64_t collects() const {
    std::lock_guard<std::mutex> lock(mu_);
    return collects_;
  }
  [[nodiscard]] std::uint64_t wraps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wraps_;
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t calls_ = 0;
  std::uint64_t collects_ = 0;
  std::uint64_t wraps_ = 0;
};

/// One getTS() by process `pid` in an n-process bounded system; awaitable so
/// long-lived programs chain calls. Returns the vector timestamp.
template <class Ctx, class Log>
runtime::SubTask<BoundedTimestamp> bounded_getts(Ctx& ctx, int pid, int n,
                                                 std::int32_t modulus,
                                                 int call_index, Log* log,
                                                 BoundedStats* stats) {
  const std::uint64_t invoked = ctx.stamp();
  // Version-clock scan: O(n) integer comparison per double collect instead
  // of O(n) label comparisons, same step count (every recycling write ticks
  // the own component, so values never repeat between adjacent writes).
  auto scan = co_await snapshot::versioned_double_collect_scan(ctx, n);

  const BoundedLabel& mine = scan.view[static_cast<std::size_t>(pid)];
  BoundedLabel next;
  next.val = (mine.val + 1) % modulus;         // recycling: K-1 wraps to 0
  next.gen = (mine.gen + 1) % (modulus + 1);   // wrap-detection guard
  co_await ctx.write(pid, next);

  BoundedTimestamp ts;
  ts.modulus = modulus;
  ts.comps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ts.comps.push_back(scan.view[static_cast<std::size_t>(i)].val);
  }
  ts.comps[static_cast<std::size_t>(pid)] = next.val;

  if (stats != nullptr) stats->on_call(scan.collects, next.val == 0);
  if (log != nullptr) {
    log->record({pid, call_index, ts, invoked, ctx.stamp()});
  }
  ctx.note_call_complete();
  co_return ts;
}

/// Long-lived program: process `pid` performs `num_calls` getTS calls.
template <class Ctx, class Log>
runtime::ProcessTask bounded_program(Ctx& ctx, int pid, int n,
                                     std::int32_t modulus, int num_calls,
                                     Log* log, BoundedStats* stats) {
  for (int k = 0; k < num_calls; ++k) {
    co_await bounded_getts(ctx, pid, n, modulus, k, log, stats);
  }
}

/// Builds an n-process long-lived bounded system where every process performs
/// `calls_per_process` getTS calls. `modulus` <= 0 selects
/// bounded_modulus_for(calls_per_process), the smallest modulus whose window
/// covers the whole execution; an explicit smaller modulus exercises
/// recycling beyond the window (pair checks must then be filtered through
/// bounded_pair_within_window).
std::unique_ptr<runtime::System<BoundedLabel>> make_bounded_system(
    int n, int calls_per_process, std::int32_t modulus,
    runtime::CallLog<BoundedTimestamp>* log, BoundedStats* stats = nullptr);

/// Deterministic factory for replay-based adversaries and the explorer.
runtime::SystemFactory bounded_factory(int n, int calls_per_process,
                                       std::int32_t modulus = 0);

}  // namespace stamped::core
