// Throughput baseline: a timestamp object built from a single fetch&add
// primitive instead of read/write registers.
//
// This is NOT a register implementation — the paper's model allows only
// atomic read/write — so it is outside the lower bounds entirely. The
// throughput benchmark (T5) uses it to show what a stronger primitive buys
// and to put the register algorithms' costs in context.
#pragma once

#include <atomic>
#include <cstdint>

namespace stamped::core {

/// Wait-free long-lived timestamps from one fetch&add word.
class FetchAddTimestamp {
 public:
  /// Returns a strictly increasing timestamp (per object).
  [[nodiscard]] std::int64_t getts() {
    return counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// compare(t1, t2) — as everywhere, plain <.
  [[nodiscard]] static bool compare(std::int64_t a, std::int64_t b) {
    return a < b;
  }

 private:
  std::atomic<std::int64_t> counter_{0};
};

}  // namespace stamped::core
