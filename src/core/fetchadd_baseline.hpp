// Throughput baseline: a timestamp object built from a single fetch&add
// primitive instead of read/write registers.
//
// This is NOT a register implementation — the paper's model allows only
// atomic read/write — so it is outside the lower bounds entirely. The
// throughput benchmark (T5) uses it to show what a stronger primitive buys
// and to put the register algorithms' costs in context.
//
// Two forms are provided: FetchAddTimestamp wraps a bare std::atomic for
// hot-loop timing, and fetchadd_program runs the same object as a simulated
// (or DirectCtx) process via the runtime's kFetchAdd op, so the family is
// enumerable through api::registry() next to the register algorithms.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"

namespace stamped::core {

/// Wait-free long-lived timestamps from one fetch&add word.
class FetchAddTimestamp {
 public:
  /// Returns a strictly increasing timestamp (per object).
  [[nodiscard]] std::int64_t getts() {
    return counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// compare(t1, t2) — as everywhere, plain <.
  [[nodiscard]] static bool compare(std::int64_t a, std::int64_t b) {
    return a < b;
  }

 private:
  std::atomic<std::int64_t> counter_{0};
};

/// One getTS() via the shared counter in register 0: a single fetch&add step.
/// The returned timestamp old+1 is strictly increasing across all calls, so
/// the timestamp property holds unconditionally.
template <class Ctx, class Log>
runtime::SubTask<std::int64_t> fetchadd_getts(Ctx& ctx, int pid,
                                              int call_index, Log* log) {
  const std::uint64_t invoked = ctx.stamp();
  const std::int64_t t = (co_await ctx.fetch_add(0, std::int64_t{1})) + 1;
  if (log != nullptr) {
    log->record({pid, call_index, t, invoked, ctx.stamp()});
  }
  ctx.note_call_complete();
  co_return t;
}

/// Long-lived program: process `pid` performs `num_calls` getTS calls.
template <class Ctx, class Log>
runtime::ProcessTask fetchadd_program(Ctx& ctx, int pid, int num_calls,
                                      Log* log) {
  for (int k = 0; k < num_calls; ++k) {
    co_await fetchadd_getts(ctx, pid, k, log);
  }
}

/// Builds an n-process simulated fetch&add system (one shared counter
/// register) where every process performs `calls_per_process` getTS calls.
inline std::unique_ptr<runtime::System<std::int64_t>> make_fetchadd_system(
    int n, int calls_per_process, runtime::CallLog<std::int64_t>* log) {
  STAMPED_ASSERT(n >= 1 && calls_per_process >= 1);
  using Sys = runtime::System<std::int64_t>;
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, calls_per_process, log](Sys::Ctx& ctx) {
      return fetchadd_program(ctx, p, calls_per_process, log);
    });
  }
  return std::make_unique<Sys>(1, std::int64_t{0}, std::move(programs));
}

/// Deterministic factory for replay-based adversaries and the explorer.
inline runtime::SystemFactory fetchadd_factory(int n, int calls_per_process) {
  return [n, calls_per_process]() -> std::unique_ptr<runtime::ISystem> {
    return make_fetchadd_system(n, calls_per_process, nullptr);
  };
}

}  // namespace stamped::core
