// Section 6: the asymptotically space-optimal one-shot timestamp object.
//
// Algorithm 4 (getTS) with Algorithm 3 (compare = lexicographic on
// (rnd, turn)). For a system that performs at most M getTS calls it uses
// m = ceil(2*sqrt(M)) multi-writer registers, the last of which is a sentinel
// that is read but never written. Specialized to one-shot (M = n) this proves
// Theorem 1.3 and matches the sqrt(2n) - log n lower bound of Theorem 1.2.
//
// Register contents are core::TsRecord: ⊥ or <seq, rnd>. The execution
// proceeds in phases; during phase k registers R[1..k] (1-indexed) are
// non-⊥. A register R[j] is *valid* when last(R[j].seq) equals the j-th entry
// of R[k].seq; a getTS that began in phase k looks for the first valid
// register, invalidates it by overwriting, and returns (k, j). If none is
// valid it performs a double-collect scan and tries to start phase k+1 by
// writing the scanned last-ids into R[k+1], returning (k+1, 0).
//
// Indexing note: this file uses 0-based register indices; the paper is
// 1-based. `myrnd` here equals the paper's myrnd (the number of non-⊥
// registers found), so paper register R[myrnd] is index myrnd-1 and paper
// R[myrnd+1] is index myrnd. Returned timestamps follow the paper exactly:
// turn j in (rnd, j) refers to the paper's 1-based register number.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/timestamp.hpp"
#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"
#include "snapshot/versioned_collect.hpp"
#include "util/bounds.hpp"

namespace stamped::core {

/// Registers allocated by Algorithm 4 for at most M getTS calls:
/// f(M) = ceil(2*sqrt(M)), with a floor of 2 so the never-written sentinel
/// exists even for M = 1.
[[nodiscard]] inline int sqrt_oneshot_registers(std::int64_t max_calls) {
  const auto m = util::bounds::oneshot_upper_sqrt(max_calls);
  return static_cast<int>(m < 2 ? 2 : m);
}

/// Algorithm 4 variants (DESIGN.md ablation #1).
enum class SqrtVariant {
  /// The paper's algorithm: on an invalid register, overwrite only when the
  /// stale record's rnd is below myrnd (line 10's guard).
  kPaper,
  /// The "simple repair" the paper rejects: always overwrite an invalid
  /// register before moving on. Still correct, but performs more
  /// invalidation writes — the ablation benchmark quantifies the cost.
  kAlwaysOverwrite,
  /// MUTANT — deliberately incorrect: never re-assert an invalidated
  /// register. Section 6.1 explains why this breaks: a stale write from an
  /// earlier phase can be "validated back" by a slow phase-starter, letting
  /// a later call return a smaller timestamp. Tests hunt for the violation.
  kNeverOverwrite,
};

/// Execution accounting shared by all getTS calls of one system run.
/// Thread-safe; also used by the real-thread backend.
class SqrtStats {
 public:
  struct ScanEvent {
    int myrnd = 0;  ///< the scanner's myrnd; the scan may start phase myrnd+1
    std::uint64_t linearize_step = 0;  ///< canonical linearization step
    std::uint64_t collects = 0;
  };
  struct CallEvent {
    TsId id;
    PairTimestamp ts;
    std::uint64_t steps = 0;  ///< shared-memory steps used by this call
  };

  void on_scan(int myrnd, std::uint64_t linearize_step,
               std::uint64_t collects) {
    std::lock_guard<std::mutex> lock(mu_);
    scans_.push_back({myrnd, linearize_step, collects});
  }
  void on_call(TsId id, PairTimestamp ts, std::uint64_t steps) {
    std::lock_guard<std::mutex> lock(mu_);
    calls_.push_back({id, ts, steps});
  }

  [[nodiscard]] std::vector<ScanEvent> scans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return scans_;
  }
  [[nodiscard]] std::vector<CallEvent> calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ScanEvent> scans_;
  std::vector<CallEvent> calls_;
};

/// One getTS(ID) call (Algorithm 4), awaitable so that callers can chain
/// multiple calls (the bounded-M generalization). Returns the timestamp.
/// `m` is the register count; the system must perform at most M total calls
/// with sqrt_oneshot_registers(M) <= m. `log` and `stats` may be null (`Log`
/// is runtime::CallLog or native::CallArena over PairTimestamp).
template <class Ctx, class Log>
runtime::SubTask<PairTimestamp> sqrt_getts(
    Ctx& ctx, TsId id, int m, Log* log, SqrtStats* stats,
    SqrtVariant variant = SqrtVariant::kPaper) {
  const std::uint64_t invoked = ctx.stamp();
  const std::uint64_t steps_before = ctx.my_steps();

  // Lines 1-3: scan forward for the first ⊥ register, collecting values.
  std::vector<TsRecord> r(static_cast<std::size_t>(m), TsRecord::bottom());
  int j = 0;
  for (;;) {
    STAMPED_ASSERT_MSG(j < m,
                       "space bound violated: no ⊥ register among " << m);
    TsRecord v = co_await ctx.read(j);
    if (v.is_bottom) break;
    r[static_cast<std::size_t>(j)] = v;
    ++j;
  }
  // Line 4: myrnd — the paper's 1-based round index; paper register R[myrnd]
  // is r[myrnd-1] here.
  const int myrnd = j;

  PairTimestamp result;
  bool returned = false;

  // Line 5: for j = 1 .. myrnd-1 (paper); i = j-1 is the 0-based index.
  for (int i = 0; i <= myrnd - 2 && !returned; ++i) {
    // Line 6: if R[myrnd+1] == ⊥ (paper) — index myrnd.
    TsRecord probe = co_await ctx.read(myrnd);
    if (!probe.is_bottom) {
      // Line 12: the phase advanced; terminate with (myrnd+1, 0).
      result = {myrnd + 1, 0};
      returned = true;
      break;
    }
    // Line 7: valid iff r[myrnd].seq[j] == last(R[j].seq) (paper indices).
    TsRecord cur = co_await ctx.read(i);
    const TsRecord& mine = r[static_cast<std::size_t>(myrnd - 1)];
    STAMPED_ASSERT_MSG(!cur.is_bottom,
                       "non-⊥ prefix invariant violated at register " << i);
    STAMPED_ASSERT_MSG(static_cast<int>(mine.seq.size()) == myrnd,
                       "phase record in R[" << myrnd - 1 << "] has seq length "
                                            << mine.seq.size() << ", expected "
                                            << myrnd);
    TsRecord inval = TsRecord::make(std::vector<TsId>{id}, myrnd);
    if (mine.seq[static_cast<std::size_t>(i)] == cur.last()) {
      // Lines 8-9: invalidate the first valid register, return (myrnd, j).
      co_await ctx.write(i, std::move(inval));
      result = {myrnd, i + 1};
      returned = true;
    } else if (variant != SqrtVariant::kNeverOverwrite &&
               (cur.rnd < myrnd ||
                variant == SqrtVariant::kAlwaysOverwrite)) {
      // Lines 10-11: the invalidation may be a stale write from an earlier
      // phase; re-assert it for the current phase so it cannot be undone by
      // a slow phase-starter (see the discussion after Lemma 6.4). The
      // kAlwaysOverwrite ablation re-asserts unconditionally.
      co_await ctx.write(i, std::move(inval));
    }
  }

  if (!returned) {
    // Line 13: scan — successful double collect over all m registers,
    // comparing version clocks instead of id-sequence vectors. Step-for-step
    // identical to the value-comparing scan because writes always change the
    // written register's value (Claim 6.1(b)).
    auto scan = co_await snapshot::versioned_double_collect_scan(ctx, m);
    if (stats != nullptr) {
      stats->on_scan(myrnd, scan.linearize_step, scan.collects);
    }
    // Lines 14-15: try to start phase myrnd+1.
    if (scan.view[static_cast<std::size_t>(myrnd)].is_bottom) {
      std::vector<TsId> seq;
      seq.reserve(static_cast<std::size_t>(myrnd) + 1);
      for (int k = 0; k < myrnd; ++k) {
        const TsRecord& rec = scan.view[static_cast<std::size_t>(k)];
        STAMPED_ASSERT_MSG(!rec.is_bottom,
                           "scan view has ⊥ below the frontier at " << k);
        seq.push_back(rec.last());
      }
      seq.push_back(id);
      TsRecord starter = TsRecord::make(std::move(seq), myrnd + 1);
      co_await ctx.write(myrnd, std::move(starter));
    }
    // Line 16.
    result = {myrnd + 1, 0};
  }

  if (log != nullptr) {
    log->record({id.pid, id.call, result, invoked, ctx.stamp()});
  }
  if (stats != nullptr) {
    stats->on_call(id, result, ctx.my_steps() - steps_before);
  }
  ctx.note_call_complete();
  co_return result;
}

/// Top-level program: one getTS call by process `id.pid`.
///
/// NOTE for all *_program coroutines in this library: they are free
/// functions, not capturing lambdas, because coroutine parameters are copied
/// into the frame while lambda captures live in the (short-lived) closure
/// object.
template <class Ctx, class Log>
runtime::ProcessTask sqrt_getts_program(Ctx& ctx, TsId id, int m, Log* log,
                                        SqrtStats* stats,
                                        SqrtVariant variant = SqrtVariant::kPaper) {
  co_await sqrt_getts(ctx, id, m, log, stats, variant);
}

/// Program performing `calls` consecutive getTS calls (IDs "pid.k").
template <class Ctx, class Log>
runtime::ProcessTask sqrt_calls_program(Ctx& ctx, int pid, int calls, int m,
                                        Log* log, SqrtStats* stats,
                                        SqrtVariant variant = SqrtVariant::kPaper) {
  for (int k = 0; k < calls; ++k) {
    co_await sqrt_getts(ctx, TsId{pid, k}, m, log, stats, variant);
  }
}

/// Builds an n-process one-shot simulation of Algorithm 4 (M = n, one call
/// per process, ID = process id). `log`/`stats` may be null but must outlive
/// the system otherwise. `registers_override` (if > 0) replaces the computed
/// register count — used by tests that probe the space bound.
inline std::unique_ptr<runtime::System<TsRecord>> make_sqrt_oneshot_system(
    int n, runtime::CallLog<PairTimestamp>* log, SqrtStats* stats = nullptr,
    int registers_override = 0,
    SqrtVariant variant = SqrtVariant::kPaper) {
  STAMPED_ASSERT(n >= 1);
  using Sys = runtime::System<TsRecord>;
  const int m =
      registers_override > 0 ? registers_override : sqrt_oneshot_registers(n);
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, m, log, stats, variant](Sys::Ctx& ctx) {
      return sqrt_getts_program(ctx, TsId{p, 0}, m, log, stats, variant);
    });
  }
  return std::make_unique<Sys>(m, TsRecord::bottom(), std::move(programs));
}

/// Deterministic factory for replay-based adversaries.
inline runtime::SystemFactory sqrt_oneshot_factory(int n) {
  return [n]() -> std::unique_ptr<runtime::ISystem> {
    return make_sqrt_oneshot_system(n, nullptr, nullptr);
  };
}

/// Builds a system where each of the n processes performs
/// `calls_per_process` consecutive getTS calls — the bounded-M
/// generalization of Section 6 (M = n * calls_per_process, IDs are "p.k").
inline std::unique_ptr<runtime::System<TsRecord>> make_sqrt_bounded_system(
    int n, int calls_per_process, runtime::CallLog<PairTimestamp>* log,
    SqrtStats* stats = nullptr) {
  STAMPED_ASSERT(n >= 1 && calls_per_process >= 1);
  using Sys = runtime::System<TsRecord>;
  const std::int64_t total_calls =
      static_cast<std::int64_t>(n) * calls_per_process;
  const int m = sqrt_oneshot_registers(total_calls);
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, m, calls_per_process, log, stats](Sys::Ctx& ctx) {
      return sqrt_calls_program(ctx, p, calls_per_process, m, log, stats);
    });
  }
  return std::make_unique<Sys>(m, TsRecord::bottom(), std::move(programs));
}

}  // namespace stamped::core
