// Section 5: the simple one-shot timestamp object with ceil(n/2) registers.
//
// R[0 .. ceil(n/2)-1] is an array of multi-reader/2-writer registers holding
// values in {0,1,2}, all initialized to 0; register floor(p/2) is written by
// processes p and its partner. simple-getTS() by process p reads the
// registers in index order, increments its own register when it reaches it,
// and returns the sum of all values as its timestamp.
// simple-compare(t1,t2) is t1 < t2 (see core::compare for int64_t).
//
// Wait-free; each call takes exactly ceil(n/2) + 2 shared-memory steps
// (one extra read + one write at the process's own register).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/timestamp.hpp"
#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"
#include "util/math.hpp"

namespace stamped::core {

/// Number of registers the simple algorithm allocates for n processes.
[[nodiscard]] constexpr int simple_oneshot_registers(int n) {
  return static_cast<int>(util::ceil_div(n, 2));
}

/// The register index written by process p.
[[nodiscard]] constexpr int simple_own_register(int pid) { return pid / 2; }

/// One simple-getTS() call by process `pid` in an n-process system
/// (Algorithm 2). Appends the returned integer timestamp to `log` if non-null
/// (`Log` is runtime::CallLog or native::CallArena). `call_index` is the
/// caller's k (always 0 under the one-shot discipline; the sharded service
/// reuses the algorithm per shard and records the client's global k).
template <class Ctx, class Log>
runtime::SubTask<std::int64_t> simple_getts(Ctx& ctx, int pid, int n,
                                            int call_index, Log* log) {
  const std::uint64_t invoked = ctx.stamp();
  const int m = simple_oneshot_registers(n);
  const int own = simple_own_register(pid);
  std::int64_t sum = 0;
  for (int i = 0; i < m; ++i) {
    if (i == own) {
      // R[i] := R[i] + 1 — a read followed by a write in the register model.
      const std::int64_t v = co_await ctx.read(i);
      STAMPED_ASSERT_MSG(v >= 0 && v <= 1,
                         "one-shot register out of range before write: " << v);
      co_await ctx.write(i, v + 1);
    }
    const std::int64_t observed = co_await ctx.read(i);
    STAMPED_ASSERT_MSG(observed >= 0 && observed <= 2,
                       "register value out of {0,1,2}: " << observed);
    sum += observed;
  }
  if (log != nullptr) {
    log->record({pid, call_index, sum, invoked, ctx.stamp()});
  }
  ctx.note_call_complete();
  co_return sum;
}

/// The classic whole-program form: exactly one simple-getTS() by `pid`.
template <class Ctx, class Log>
runtime::ProcessTask simple_getts_program(Ctx& ctx, int pid, int n, Log* log) {
  co_await simple_getts(ctx, pid, n, 0, log);
}

/// Builds an n-process simulation of the simple one-shot object. Every
/// process performs exactly one simple-getTS(). `log` may be null (the
/// adversary benchmarks do not need call records) but must outlive the system
/// otherwise.
inline std::unique_ptr<runtime::System<std::int64_t>>
make_simple_oneshot_system(int n, runtime::CallLog<std::int64_t>* log) {
  STAMPED_ASSERT(n >= 1);
  using Sys = runtime::System<std::int64_t>;
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, n, log](Sys::Ctx& ctx) {
      return simple_getts_program(ctx, p, n, log);
    });
  }
  return std::make_unique<Sys>(simple_oneshot_registers(n), std::int64_t{0},
                               std::move(programs));
}

/// Deterministic factory for replay-based adversaries.
inline runtime::SystemFactory simple_oneshot_factory(int n) {
  return [n]() -> std::unique_ptr<runtime::ISystem> {
    return make_simple_oneshot_system(n, nullptr);
  };
}

}  // namespace stamped::core
