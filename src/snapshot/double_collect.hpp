// The obstruction-free scan of Afek, Attiya, Dolev, Gafni, Merritt & Shavit
// (J.ACM 1993), as used by Algorithm 4 (line 13) of the paper.
//
// A *collect* reads registers R[0..count-1] in order; the scan repeats
// collects until two consecutive collects return identical views
// (a successful double collect). The scan linearizes at any point between the
// last two collects. It is obstruction-free in general, but wait-free in the
// context of Algorithm 4 because every getTS performs boundedly many writes
// and writes to a register always change its value (paper Claim 6.1(b)), so
// only finitely many collect repetitions can be forced.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/coro.hpp"

namespace stamped::snapshot {

/// Result of a scan: the consistent view plus accounting data.
template <class V>
struct ScanResult {
  std::vector<V> view;
  /// Number of collects performed (>= 2).
  std::uint64_t collects = 0;
  /// Global step count at the start of the final collect. The scan can be
  /// linearized at any point between the last two collects; this value is a
  /// canonical choice used by the phase analysis of Algorithm 4.
  std::uint64_t linearize_step = 0;
  /// Per-register write-versions of the returned view. Filled by the
  /// version-clock scan (snapshot/versioned_collect.hpp); empty for the
  /// value-comparing scan below.
  std::vector<std::uint64_t> versions;
};

/// Repeated double collect over registers [0, count). Each register read is
/// one simulator step. Ctx is a memory context (runtime::SimCtx or
/// atomicmem::DirectCtx).
template <class Ctx>
runtime::SubTask<ScanResult<typename Ctx::Value>> double_collect_scan(
    Ctx& ctx, int count) {
  using V = typename Ctx::Value;
  std::vector<V> prev;
  bool have_prev = false;
  std::uint64_t collects = 0;
  for (;;) {
    const std::uint64_t collect_start = ctx.steps_now();
    std::vector<V> cur;
    cur.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      cur.push_back(co_await ctx.read(i));
    }
    ++collects;
    if (have_prev && cur == prev) {
      ScanResult<V> result;
      result.view = std::move(cur);
      result.collects = collects;
      result.linearize_step = collect_start;
      co_return result;
    }
    prev = std::move(cur);
    have_prev = true;
  }
}

}  // namespace stamped::snapshot
