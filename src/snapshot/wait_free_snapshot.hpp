// The wait-free single-writer atomic snapshot of Afek, Attiya, Dolev, Gafni,
// Merritt & Shavit (J.ACM 1993) — the substrate cited by the paper for
// Algorithm 4's scan primitive.
//
// Each of the n components is a single-writer register holding a SnapCell:
// the component value, a write sequence number, and the view the writer
// embedded (obtained from its own scan performed inside update()).
//
// scan(): repeatedly collect all cells.
//   - If two consecutive collects are identical, return the direct view
//     (linearizes between the two collects).
//   - If some writer is observed to move twice (its seq changed in two
//     distinct collect transitions since the scan began), return that
//     writer's embedded view: the embedded scan executed entirely within
//     this scan's interval, so its linearization point is valid here too.
// Every update performs exactly one embedded scan, so after n+1 collects a
// scan either double-collects cleanly or sees some writer move twice:
// wait-free with O(n^2) reads per scan.
//
// update(v): scan(), then write <v, seq+1, view>.
#pragma once

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"
#include "util/assert.hpp"

namespace stamped::snapshot {

/// Register content for the wait-free snapshot (component values: int64).
struct SnapCell {
  std::int64_t value = 0;
  std::int64_t seq = 0;
  std::vector<std::int64_t> view;  ///< embedded view (empty before 1st write)

  friend bool operator==(const SnapCell&, const SnapCell&) = default;

  [[nodiscard]] std::string repr() const {
    std::ostringstream os;
    os << '{' << value << "#" << seq << ",[";
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (i > 0) os << ' ';
      os << view[i];
    }
    os << "]}";
    return os.str();
  }
};

/// A scan with its interval, for linearizability checking.
struct ScanRecord {
  int pid = -1;
  std::vector<std::int64_t> view;
  std::uint64_t start_step = 0;  ///< steps_now() at scan start
  std::uint64_t end_step = 0;    ///< steps_now() at scan end
  bool used_embedded = false;    ///< view taken from a moving writer
};

/// Thread-safe log of completed scans.
class ScanLog {
 public:
  void record(ScanRecord rec) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(rec));
  }
  [[nodiscard]] std::vector<ScanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ScanRecord> records_;
};

/// One collect: reads components [0, count) in order.
template <class Ctx>
runtime::SubTask<std::vector<SnapCell>> snap_collect(Ctx& ctx, int count) {
  std::vector<SnapCell> cells;
  cells.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    cells.push_back(co_await ctx.read(i));
  }
  co_return cells;
}

/// Wait-free scan over components [0, n). Returns the component values.
template <class Ctx>
runtime::SubTask<std::vector<std::int64_t>> snap_scan(Ctx& ctx, int n,
                                                      ScanLog* log) {
  const std::uint64_t start = ctx.steps_now();
  std::vector<int> moved(static_cast<std::size_t>(n), 0);
  std::vector<SnapCell> prev = co_await snap_collect(ctx, n);
  for (;;) {
    std::vector<SnapCell> cur = co_await snap_collect(ctx, n);
    if (cur == prev) {
      std::vector<std::int64_t> view;
      view.reserve(static_cast<std::size_t>(n));
      for (const auto& cell : cur) view.push_back(cell.value);
      if (log != nullptr) {
        log->record({ctx.pid(), view, start, ctx.steps_now(), false});
      }
      co_return view;
    }
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (cur[ui].seq != prev[ui].seq) {
        ++moved[ui];
        if (moved[ui] >= 2) {
          // Writer i completed an entire update within our interval; its
          // embedded view was obtained by a scan nested in our interval.
          STAMPED_ASSERT_MSG(
              static_cast<int>(cur[ui].view.size()) == n,
              "embedded view missing for component " << i);
          std::vector<std::int64_t> view = cur[ui].view;
          if (log != nullptr) {
            log->record({ctx.pid(), view, start, ctx.steps_now(), true});
          }
          co_return view;
        }
      }
    }
    prev = std::move(cur);
  }
}

/// Wait-free update of component `pid` to `value`.
template <class Ctx>
runtime::SubTask<std::int64_t> snap_update(Ctx& ctx, int pid, int n,
                                           std::int64_t value,
                                           std::int64_t local_seq,
                                           ScanLog* log) {
  std::vector<std::int64_t> view = co_await snap_scan(ctx, n, log);
  SnapCell cell{value, local_seq, std::move(view)};
  co_await ctx.write(pid, std::move(cell));
  co_return local_seq;
}

/// Worker program: alternates updates of component `pid` (values
/// pid*1000 + k) with scans, `rounds` times. A free-function coroutine so
/// its parameters live in the frame (see core/sqrt_oneshot.hpp note).
template <class Ctx>
runtime::ProcessTask snapshot_worker_program(Ctx& ctx, int pid, int n,
                                             int rounds, ScanLog* log) {
  for (int k = 1; k <= rounds; ++k) {
    co_await snap_update(ctx, pid, n, static_cast<std::int64_t>(pid) * 1000 + k,
                         k, log);
    ctx.note_call_complete();
    std::vector<std::int64_t> view = co_await snap_scan(ctx, n, log);
    (void)view;
    ctx.note_call_complete();
  }
}

/// Builds a simulated snapshot system of n update/scan workers.
inline std::unique_ptr<runtime::System<SnapCell>> make_snapshot_system(
    int n, int rounds, ScanLog* log) {
  STAMPED_ASSERT(n >= 1 && rounds >= 1);
  using Sys = runtime::System<SnapCell>;
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, n, rounds, log](Sys::Ctx& ctx) {
      return snapshot_worker_program(ctx, p, n, rounds, log);
    });
  }
  return std::make_unique<Sys>(n, SnapCell{}, std::move(programs));
}

}  // namespace stamped::snapshot
