// The version-clock double collect: the AADGMS scan of double_collect.hpp
// with per-register write-versions standing in for deep value comparison.
//
// Motivation (cf. Bezerra–Freitas–Kuznetsov, "Asynchronous Latency and Fast
// Atomic Snapshot", and the vector-clock timestamp systems of Haldar &
// Vitányi): the classic scan decides "did anything change between my two
// collects?" by comparing the full value vectors. For the register contents
// this library scans — Algorithm 4's TsRecord id-sequences, the bounded
// object's labels — that comparison is O(n·K) in the value width, and it sits
// inside the collect-dominated getTS hot path. Every register already carries
// a version clock (its write count, runtime::Versioned), so the scan can
// compare two O(n) integer vectors instead.
//
// Linearizability argument (same shape as the classic proof, minus the ABA
// caveat): every register's cell guarantees that two versioned reads
// returning equal versions bracket a write-free interval (monotone write
// counts in the simulator and inline cells; unique never-reinstalled nodes
// in the threaded record cells), so equal version vectors across two
// consecutive collects mean NO register was written between the first
// collect's read of register i and the second collect's read of register i,
// for every i. Each of those write-free intervals
// contains the boundary point between the two collects (reads happen in
// index order), so at that point the shared memory held exactly the returned
// view; the scan linearizes there. Note the strengthening: a value-comparing
// collect can be fooled by an A->B->A run of writes (it would return a view
// that was never in memory at a single point), while equal *versions* can
// never be forged. The version scan therefore retries in exactly the
// executions where the value scan would have been wrong, and behaves
// step-for-step identically whenever writes always change the register value
// — which Claim 6.1(b) guarantees for Algorithm 4 and the own-component tick
// guarantees for the bounded object's recycling writes.
//
// Debug builds assert the agreement with the value-comparing reference:
// whenever the version vectors match, the value vectors of the two collects
// must match as well.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/coro.hpp"
#include "snapshot/double_collect.hpp"
#include "util/assert.hpp"

namespace stamped::snapshot {

/// Repeated double collect over registers [0, count) comparing version
/// vectors. Each register access is one `versioned_read` — a single simulator
/// step, exactly like a plain read, so traces and step counts are unchanged
/// relative to double_collect_scan wherever writes always change values.
/// Ctx is a memory context (runtime::SimCtx or atomicmem::DirectCtx).
///
/// The two collects of the success case are batched into one buffer pass:
/// the scan allocates a single {values, versions} pair up front, and every
/// collect after the first compares versions register-by-register *as it
/// reads*, overwriting the buffers in place. When the previous collect's
/// version vector is already clean (no interim write — the common case on the
/// getTS hot path of sqrt_oneshot and bounded_longlived), the scan therefore
/// finishes inside that single fused pass: no per-collect vector allocations,
/// no whole-vector comparison, no value moves between collects. A dirty
/// register simply seeds the same buffers as the new previous collect. The
/// co_await sequence is identical to the unbatched loop, so schedules,
/// traces, collect counts and the blessed space baselines are bit-identical.
template <class Ctx>
runtime::SubTask<ScanResult<typename Ctx::Value>> versioned_double_collect_scan(
    Ctx& ctx, int count) {
  using V = typename Ctx::Value;
  ScanResult<V> result;
  result.view.resize(static_cast<std::size_t>(count));
  result.versions.resize(static_cast<std::size_t>(count));

  // Collect 1 seeds the buffers.
  for (int i = 0; i < count; ++i) {
    runtime::Versioned<V> vv = co_await ctx.versioned_read(i);
    result.view[static_cast<std::size_t>(i)] = std::move(vv.value);
    result.versions[static_cast<std::size_t>(i)] = vv.version;
  }
  result.collects = 1;

#ifndef NDEBUG
  // Agreement check with the value-comparing reference scan: equal versions
  // must imply equal values (versions bump on every write). Debug-only copy.
  std::vector<V> prev_vals;
#endif

  for (;;) {
    const std::uint64_t collect_start = ctx.steps_now();
#ifndef NDEBUG
    prev_vals = result.view;
#endif
    bool clean = true;
    for (int i = 0; i < count; ++i) {
      runtime::Versioned<V> vv = co_await ctx.versioned_read(i);
      std::uint64_t& version = result.versions[static_cast<std::size_t>(i)];
      if (vv.version != version) {
        clean = false;
        version = vv.version;
      }
      // Stored unconditionally: on a clean register the value is provably
      // unchanged, on a dirty one this read is the new previous collect.
      result.view[static_cast<std::size_t>(i)] = std::move(vv.value);
    }
    ++result.collects;
    if (clean) {
#ifndef NDEBUG
      STAMPED_ASSERT_MSG(result.view == prev_vals,
                         "version vectors matched but value vectors differ — "
                         "version clock out of sync with register contents");
#endif
      result.linearize_step = collect_start;
      co_return result;
    }
  }
}

}  // namespace stamped::snapshot
