// Multi-writer register from single-writer registers — the classic
// Vitányi–Awerbuch-style construction, one of the timestamp applications the
// paper's introduction lists ("register constructions [Vitányi and Awerbuch
// 1986; Li et al. 1996]").
//
// Each of the n writers owns one SWMR base register holding a TaggedValue
// (value, ts, writer). A write collects all base registers, computes
// t = max ts + 1, and stores (v, t, own id); a read collects and returns the
// value with the lexicographically largest (ts, writer) tag. The embedded
// tagging mechanism is *exactly* the max-scan timestamp object — the point
// the paper makes about timestamps hiding inside classic constructions.
//
// Guarantees (tested in tests/test_mwmr_register.cpp):
//  - tag monotonicity per base register, hence per-reader monotone reads
//    (no new/old inversion between happens-before-ordered reads);
//  - a read that starts after a write completes returns a tag >= that
//    write's tag;
//  - a read returns only values actually written (or the initial value);
//  - writes that are happens-before ordered carry strictly increasing tags.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/system.hpp"
#include "util/assert.hpp"

namespace stamped::registers {

/// Content of one base register.
struct TaggedValue {
  std::int64_t value = 0;
  std::int64_t ts = 0;       ///< 0 = never written
  std::int32_t writer = -1;

  friend bool operator==(const TaggedValue&, const TaggedValue&) = default;

  /// Lexicographic tag order (ts, writer): the write linearization order.
  [[nodiscard]] bool tag_less(const TaggedValue& other) const {
    return ts < other.ts || (ts == other.ts && writer < other.writer);
  }

  [[nodiscard]] std::string repr() const {
    std::ostringstream os;
    os << '{' << value << '@' << ts << 'w' << writer << '}';
    return os.str();
  }
};

/// One completed MWMR operation, for the checkers.
struct MwmrEvent {
  enum class Kind { kWrite, kRead };
  Kind kind = Kind::kRead;
  int pid = -1;
  TaggedValue tagged;  ///< the written (v,t,w) or the returned one
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Thread-safe event log.
class MwmrLog {
 public:
  void record(MwmrEvent ev) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(ev);
  }
  [[nodiscard]] std::vector<MwmrEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<MwmrEvent> events_;
};

/// mwmr-write(v) by process pid in an n-writer register.
template <class Ctx>
runtime::SubTask<TaggedValue> mwmr_write(Ctx& ctx, int pid, int n,
                                         std::int64_t value, MwmrLog* log) {
  MwmrEvent ev;
  ev.kind = MwmrEvent::Kind::kWrite;
  ev.pid = pid;
  ev.begin = ctx.stamp();
  std::int64_t max_ts = 0;
  for (int j = 0; j < n; ++j) {
    const TaggedValue cell = co_await ctx.read(j);
    max_ts = std::max(max_ts, cell.ts);
  }
  TaggedValue mine{value, max_ts + 1, pid};
  co_await ctx.write(pid, mine);
  ev.tagged = mine;
  ev.end = ctx.stamp();
  if (log != nullptr) log->record(ev);
  ctx.note_call_complete();
  co_return mine;
}

/// mwmr-read() by process pid: returns the max-tag value.
template <class Ctx>
runtime::SubTask<TaggedValue> mwmr_read(Ctx& ctx, int pid, int n,
                                        MwmrLog* log) {
  MwmrEvent ev;
  ev.kind = MwmrEvent::Kind::kRead;
  ev.pid = pid;
  ev.begin = ctx.stamp();
  TaggedValue best;  // ts = 0: the initial value
  for (int j = 0; j < n; ++j) {
    const TaggedValue cell = co_await ctx.read(j);
    if (best.tag_less(cell)) best = cell;
  }
  ev.tagged = best;
  ev.end = ctx.stamp();
  if (log != nullptr) log->record(ev);
  ctx.note_call_complete();
  co_return best;
}

/// Worker alternating writes (values pid*1000 + k) and reads, `rounds` times.
template <class Ctx>
runtime::ProcessTask mwmr_worker_program(Ctx& ctx, int pid, int n, int rounds,
                                         MwmrLog* log) {
  for (int k = 1; k <= rounds; ++k) {
    co_await mwmr_write(ctx, pid, n, static_cast<std::int64_t>(pid) * 1000 + k,
                        log);
    co_await mwmr_read(ctx, pid, n, log);
  }
}

/// Builds an n-process simulated MWMR register with read/write workers.
inline std::unique_ptr<runtime::System<TaggedValue>> make_mwmr_system(
    int n, int rounds, MwmrLog* log) {
  STAMPED_ASSERT(n >= 1 && rounds >= 1);
  using Sys = runtime::System<TaggedValue>;
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([p, n, rounds, log](Sys::Ctx& ctx) {
      return mwmr_worker_program(ctx, p, n, rounds, log);
    });
  }
  return std::make_unique<Sys>(n, TaggedValue{}, std::move(programs));
}

/// Checks the register guarantees on a recorded history. Returns a
/// description of the first violation, or empty.
inline std::string check_mwmr_history(const std::vector<MwmrEvent>& events) {
  auto describe = [](const MwmrEvent& e) {
    std::ostringstream os;
    os << (e.kind == MwmrEvent::Kind::kWrite ? "write" : "read") << " by p"
       << e.pid << " " << e.tagged.repr() << " @[" << e.begin << ',' << e.end
       << ')';
    return os.str();
  };
  for (const auto& a : events) {
    for (const auto& b : events) {
      const bool a_before_b = a.end < b.begin;
      if (!a_before_b) continue;
      // (1) a write completed before any op started: the later op must see a
      //     tag at least as large.
      if (a.kind == MwmrEvent::Kind::kWrite && b.tagged.tag_less(a.tagged)) {
        return describe(a) + " precedes " + describe(b) +
               " but the later op saw a smaller tag";
      }
      // (2) HB-ordered reads must be tag-monotone (no new/old inversion).
      if (a.kind == MwmrEvent::Kind::kRead &&
          b.kind == MwmrEvent::Kind::kRead && b.tagged.tag_less(a.tagged)) {
        return "new/old inversion: " + describe(a) + " then " + describe(b);
      }
      // (3) HB-ordered writes carry strictly increasing tags.
      if (a.kind == MwmrEvent::Kind::kWrite &&
          b.kind == MwmrEvent::Kind::kWrite &&
          !a.tagged.tag_less(b.tagged)) {
        return "non-increasing write tags: " + describe(a) + " then " +
               describe(b);
      }
    }
  }
  // (4) every read returns the initial value or some written value.
  for (const auto& r : events) {
    if (r.kind != MwmrEvent::Kind::kRead || r.tagged.ts == 0) continue;
    bool found = false;
    for (const auto& w : events) {
      if (w.kind == MwmrEvent::Kind::kWrite && w.tagged == r.tagged) {
        found = true;
        break;
      }
    }
    if (!found) return "read returned a value never written: " + describe(r);
  }
  return {};
}

}  // namespace stamped::registers
