// Harness: compose any registered timestamp family with any schedule source
// and the history checkers, yielding one structured ScenarioReport.
//
//   auto report = api::Harness{}.run_scenario(
//       api::family("sqrt-oneshot"), {.n = 16}, api::seeded_random());
//   STAMPED_ASSERT(report.ok());
//
// Schedule sources mirror the executions used throughout the paper: fair
// round-robin, a seeded random adversary, fully sequential arrival, the
// staggered-arrival workload that drives Algorithm 4 through many phases, a
// greedy block-write covering adversary (Sections 3-4 flavor), and the
// exhaustive explorer that enumerates every interleaving of small systems.
// The timestamp property is checked through the family's own comparator and
// pair filter, so bounded-universe families are automatically held to their
// windowed guarantee and unbounded families to the unconditional one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/family.hpp"
#include "util/rng.hpp"
#include "verify/explorer.hpp"

namespace stamped::api {

/// Budget and seed of the coverage-guided schedule fuzzer (coverage_fuzzer).
struct FuzzOptions {
  /// Seed of the mutation stream, combined with ScenarioSpec::seed so the
  /// same source can drive distinct sweeps.
  std::uint64_t seed = 0;
  /// Executions to run. Every execution costs one fresh instance.
  std::uint64_t budget = 64;
  /// Schedules retained as mutation parents (oldest evicted beyond this).
  std::size_t max_corpus = 64;
};

/// One way of driving a scenario to completion.
struct ScheduleSource {
  enum class Kind : std::uint8_t {
    kDriver,      ///< steps one live system via `drive`
    kExhaustive,  ///< enumerates all executions via the explorer
    kCrash,       ///< crash/restart adversary (runtime::run_crash_restart)
    kJitter,      ///< seeded stall windows (runtime::run_jittered)
    kFuzzer,      ///< coverage-guided schedule search (verify::CoverageMap)
    kNativeOS,    ///< real threads; the OS schedules (backend = kNative)
  };

  std::string name;
  Kind kind = Kind::kDriver;
  /// Steps `sys` until done (or `max_steps`); `rng` is seeded from the
  /// ScenarioSpec. Used by kDriver only.
  std::function<void(runtime::ISystem& sys, util::Rng& rng,
                     std::uint64_t max_steps)>
      drive;
  /// Exploration budget for kExhaustive.
  verify::ExploreOptions explore{};
  /// Crash schedule for kCrash.
  runtime::CrashPlan crash{};
  /// Stall distribution for kJitter.
  runtime::JitterSpec jitter{};
  /// Search budget for kFuzzer.
  FuzzOptions fuzz{};
  /// True for drivers that run one process solo until it blocks on a
  /// covering condition (covering_adversary). The combiner-lease protocol
  /// recovers from a parked lease holder (a later solo process exhausts its
  /// steal budget and steals the lease), so sharded scenarios accept these
  /// sources — except under ShardSpec::allow_steal == false, the explicitly
  /// wedgeable legacy config, which still rejects them up front rather than
  /// burning the step budget on a spin that cannot end.
  bool solo_blocking = false;
};

/// Fair round-robin over unfinished processes.
[[nodiscard]] ScheduleSource round_robin();
/// Uniformly random adversary, reproducible from ScenarioSpec::seed.
[[nodiscard]] ScheduleSource seeded_random();
/// Fully sequential arrival: process 0 runs to completion, then 1, ...
[[nodiscard]] ScheduleSource sequential();
/// Staggered arrival in groups of `group`; each group completes under a
/// random schedule before the next starts (the phase-driving workload).
[[nodiscard]] ScheduleSource staggered(int group);
/// Greedy block-write covering adversary: each process runs solo until it
/// covers a register outside the covered set; the block write is then
/// executed and the run drained round-robin (Sections 3-4 flavor).
[[nodiscard]] ScheduleSource covering_adversary();
/// Exhaustive exploration of every interleaving (small systems only).
[[nodiscard]] ScheduleSource exhaustive_explorer(
    verify::ExploreOptions opts = {});
/// Crash/restart adversary: kills processes mid-call per `plan` under a
/// seeded random schedule, optionally restarting them with fresh local
/// state. Crashed-and-down processes never step again, so their calls never
/// complete and never enter the history — the checkers hold survivors to the
/// wait-free obligation and crashed calls to none, per the paper's model.
[[nodiscard]] ScheduleSource crash_restart(runtime::CrashPlan plan = {});
/// Deterministic jitter: a seeded random schedule with per-process stall
/// windows (runtime::run_jittered). Same spec + seed => byte-identical
/// ScenarioReport.
[[nodiscard]] ScheduleSource jittered(runtime::JitterSpec spec = {});
/// Coverage-guided schedule fuzzer: runs `budget` executions — one random
/// seed, the two structured extremes (sequential, strict round-robin), then
/// mutated corpus parents (splice/shift/swap/solo-burst/truncate) — steering
/// toward unvisited op-pair
/// interleaving signatures (verify::CoverageMap); every execution is checked
/// and coverage is reported in the ScenarioReport. Sits between the random
/// sweeps and the exhaustive explorer: guided breadth without tree
/// enumeration. Requires ScenarioSpec::recording == kFull (signatures come
/// from the step-info log).
[[nodiscard]] ScheduleSource coverage_fuzzer(std::uint64_t seed,
                                             std::uint64_t budget);
/// As above with full control of the search parameters.
[[nodiscard]] ScheduleSource coverage_fuzzer(FuzzOptions opts);
/// The native backend's one schedule source: real OS threads schedule
/// themselves; the recorded history is checked post-hoc. Requires
/// ScenarioSpec::backend == Backend::kNative (both directions are asserted —
/// a native spec under a simulator source, or vice versa, is a category
/// error). Thread count comes from ScenarioSpec::native_threads.
[[nodiscard]] ScheduleSource native_os();

/// Which history checks run_scenario applies to the recorded calls.
struct Checkers {
  bool timestamp_property = true;
  bool per_process_monotonicity = true;

  [[nodiscard]] static Checkers none() { return {false, false}; }
};

/// Structured outcome of one scenario.
struct ScenarioReport {
  std::string family;
  std::string schedule;
  ScenarioSpec spec;

  bool all_finished = false;
  std::uint64_t steps = 0;
  std::uint64_t calls = 0;
  std::int64_t registers_allocated = 0;
  int registers_written = 0;

  /// Pair accounting from the checkers (0 when checks are disabled).
  std::size_t ordered_pairs = 0;
  std::size_t concurrent_pairs = 0;
  std::size_t filtered_pairs = 0;

  /// kCrash only: crash events that fired / victims restarted / processes
  /// still down at the end. A run with crashed_down > 0 legitimately has
  /// all_finished == false; survivors_finished is the wait-freedom verdict
  /// (every never-crashed or restarted process completed its program).
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t crashed_down = 0;
  bool survivors_finished = false;

  /// kJitter only: stall windows injected / scheduler ticks elapsed
  /// (ticks >= steps; the surplus is time where every live process stalled).
  std::uint64_t stalls = 0;
  std::uint64_t ticks = 0;

  /// kFuzzer only: distinct op-pair interleaving signatures reached and
  /// schedules retained as mutation parents. steps/calls/violations
  /// aggregate over all executions; registers_written is the worst case.
  std::uint64_t coverage_signatures = 0;
  std::uint64_t corpus_size = 0;

  /// kExhaustive/kFuzzer: complete executions checked; budget flag is
  /// kExhaustive only.
  std::uint64_t executions = 0;
  bool budget_exhausted = false;

  /// kExhaustive only: interior scheduling nodes visited / subtrees the
  /// sleep sets pruned (0 unless ExploreOptions::por) / sibling branches the
  /// persistent sets deferred (0 unless ExploreOptions::persistent).
  std::uint64_t nodes = 0;
  std::uint64_t sleep_pruned = 0;
  std::uint64_t persistent_deferred = 0;

  /// kExhaustive only: worker threads the exploration actually used —
  /// ScenarioSpec::explore_threads when set, else the source's
  /// ExploreOptions::threads, with 0 resolved to hardware concurrency (so
  /// this reports the real pool size, never 0).
  int explore_workers = 0;

  /// kNativeOS only: real worker threads spawned / wall time / total
  /// register ops and throughput (ops includes every read+write, so it is
  /// deterministic for scan-free families and workload-dependent for
  /// scanning ones) / completed calls per worker (sums to `calls`; the split
  /// is OS-scheduling-dependent) / recorder block bytes / memory retirement
  /// accounting after quiesce (retired_nodes is 0 on a clean quiesce).
  int native_threads = 0;
  double native_elapsed_seconds = 0.0;
  double native_ops_per_sec = 0.0;
  std::vector<std::uint64_t> native_thread_calls;
  std::uint64_t recorder_arena_bytes = 0;
  std::uint64_t retired_nodes = 0;
  std::uint64_t memory_arena_bytes = 0;

  /// Sharded scenarios only (ScenarioSpec::shard.shards > 0): shard count,
  /// flat-combining batch accounting (passes that served >= 1 request, calls
  /// served by some pass, largest/average single batch), the per-shard call
  /// and client split, and how many cross-shard happens-before pairs the
  /// cross-shard monotonicity checker held to order.
  int shards = 0;
  std::uint64_t combiner_passes = 0;
  std::uint64_t combined_calls = 0;
  std::uint64_t max_batch = 0;
  double avg_batch = 0.0;
  std::vector<std::uint64_t> shard_calls;
  std::vector<int> shard_clients;
  std::size_t cross_shard_pairs = 0;

  /// Sharded fault accounting: leases stolen from stuck holders, steal
  /// budgets exhausted (counted even when allow_steal is off), and claim
  /// CASes lost by deposed passes (each one a prevented double-serve).
  std::uint64_t lease_steals = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t claim_losses = 0;

  Metrics metrics;
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Aggregated outcome of run_scenario_sweep: the per-spec reports (input
/// order) plus totals for quick gating.
struct SweepReport {
  std::vector<ScenarioReport> reports;
  std::uint64_t total_steps = 0;
  std::uint64_t total_calls = 0;
  std::size_t scenarios_failed = 0;  ///< reports with violations
  int workers = 0;                   ///< threads actually spawned
  double elapsed_seconds = 0.0;

  [[nodiscard]] bool ok() const { return scenarios_failed == 0; }
  [[nodiscard]] std::string summary() const;
};

/// The scenario runner. Stateless apart from the step budget.
class Harness {
 public:
  Harness() = default;
  explicit Harness(std::uint64_t max_steps) : max_steps_(max_steps) {}

  /// Runs `family` under `source` and applies `checkers`; see file comment.
  [[nodiscard]] ScenarioReport run_scenario(const TimestampFamily& family,
                                            const ScenarioSpec& spec,
                                            const ScheduleSource& source,
                                            const Checkers& checkers = {}) const;

  /// Fans `grid` across a pool of `workers` threads (0 = hardware
  /// concurrency) and aggregates the reports. Each scenario builds its own
  /// System inside its worker — replay determinism makes the per-spec
  /// reports identical to a serial loop of run_scenario calls, in any worker
  /// interleaving — so the sweep is embarrassingly parallel. The first
  /// exception thrown by any scenario is rethrown after all workers join.
  [[nodiscard]] SweepReport run_scenario_sweep(
      const TimestampFamily& family, const std::vector<ScenarioSpec>& grid,
      const ScheduleSource& source, const Checkers& checkers = {},
      unsigned workers = 0) const;

  /// Runs verify::crosscheck_por on `family`'s instances (full DFS vs the
  /// POR-reduced DFS, violation sets diffed). The cross-check certifies the
  /// exhaustive tree and nothing else: handing it an adversarial source
  /// (crash, jitter, fuzzer, any driver) is a category error and throws
  /// invariant_error loudly instead of "passing" a check that never ran.
  [[nodiscard]] verify::PorCrossCheck crosscheck_por(
      const TimestampFamily& family, const ScenarioSpec& spec,
      const ScheduleSource& source, const Checkers& checkers = {}) const;

 private:
  std::uint64_t max_steps_ = std::uint64_t{1} << 32;
};

}  // namespace stamped::api
