// Harness: compose any registered timestamp family with any schedule source
// and the history checkers, yielding one structured ScenarioReport.
//
//   auto report = api::Harness{}.run_scenario(
//       api::family("sqrt-oneshot"), {.n = 16}, api::seeded_random());
//   STAMPED_ASSERT(report.ok());
//
// Schedule sources mirror the executions used throughout the paper: fair
// round-robin, a seeded random adversary, fully sequential arrival, the
// staggered-arrival workload that drives Algorithm 4 through many phases, a
// greedy block-write covering adversary (Sections 3-4 flavor), and the
// exhaustive explorer that enumerates every interleaving of small systems.
// The timestamp property is checked through the family's own comparator and
// pair filter, so bounded-universe families are automatically held to their
// windowed guarantee and unbounded families to the unconditional one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/family.hpp"
#include "util/rng.hpp"
#include "verify/explorer.hpp"

namespace stamped::api {

/// One way of driving a scenario to completion.
struct ScheduleSource {
  enum class Kind : std::uint8_t {
    kDriver,      ///< steps one live system via `drive`
    kExhaustive,  ///< enumerates all executions via the explorer
  };

  std::string name;
  Kind kind = Kind::kDriver;
  /// Steps `sys` until done (or `max_steps`); `rng` is seeded from the
  /// ScenarioSpec. Unused for kExhaustive.
  std::function<void(runtime::ISystem& sys, util::Rng& rng,
                     std::uint64_t max_steps)>
      drive;
  /// Exploration budget for kExhaustive.
  verify::ExploreOptions explore{};
};

/// Fair round-robin over unfinished processes.
[[nodiscard]] ScheduleSource round_robin();
/// Uniformly random adversary, reproducible from ScenarioSpec::seed.
[[nodiscard]] ScheduleSource seeded_random();
/// Fully sequential arrival: process 0 runs to completion, then 1, ...
[[nodiscard]] ScheduleSource sequential();
/// Staggered arrival in groups of `group`; each group completes under a
/// random schedule before the next starts (the phase-driving workload).
[[nodiscard]] ScheduleSource staggered(int group);
/// Greedy block-write covering adversary: each process runs solo until it
/// covers a register outside the covered set; the block write is then
/// executed and the run drained round-robin (Sections 3-4 flavor).
[[nodiscard]] ScheduleSource covering_adversary();
/// Exhaustive exploration of every interleaving (small systems only).
[[nodiscard]] ScheduleSource exhaustive_explorer(
    verify::ExploreOptions opts = {});

/// Which history checks run_scenario applies to the recorded calls.
struct Checkers {
  bool timestamp_property = true;
  bool per_process_monotonicity = true;

  [[nodiscard]] static Checkers none() { return {false, false}; }
};

/// Structured outcome of one scenario.
struct ScenarioReport {
  std::string family;
  std::string schedule;
  ScenarioSpec spec;

  bool all_finished = false;
  std::uint64_t steps = 0;
  std::uint64_t calls = 0;
  std::int64_t registers_allocated = 0;
  int registers_written = 0;

  /// Pair accounting from the checkers (0 when checks are disabled).
  std::size_t ordered_pairs = 0;
  std::size_t concurrent_pairs = 0;
  std::size_t filtered_pairs = 0;

  /// kExhaustive only: complete executions checked / budget flag.
  std::uint64_t executions = 0;
  bool budget_exhausted = false;

  /// kExhaustive only: interior scheduling nodes visited / subtrees the
  /// sleep sets pruned (0 unless ExploreOptions::por) / sibling branches the
  /// persistent sets deferred (0 unless ExploreOptions::persistent).
  std::uint64_t nodes = 0;
  std::uint64_t sleep_pruned = 0;
  std::uint64_t persistent_deferred = 0;

  /// kExhaustive only: worker threads the exploration actually used —
  /// ScenarioSpec::explore_threads when set, else the source's
  /// ExploreOptions::threads, with 0 resolved to hardware concurrency (so
  /// this reports the real pool size, never 0).
  int explore_workers = 0;

  Metrics metrics;
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Aggregated outcome of run_scenario_sweep: the per-spec reports (input
/// order) plus totals for quick gating.
struct SweepReport {
  std::vector<ScenarioReport> reports;
  std::uint64_t total_steps = 0;
  std::uint64_t total_calls = 0;
  std::size_t scenarios_failed = 0;  ///< reports with violations
  int workers = 0;                   ///< threads actually spawned
  double elapsed_seconds = 0.0;

  [[nodiscard]] bool ok() const { return scenarios_failed == 0; }
  [[nodiscard]] std::string summary() const;
};

/// The scenario runner. Stateless apart from the step budget.
class Harness {
 public:
  Harness() = default;
  explicit Harness(std::uint64_t max_steps) : max_steps_(max_steps) {}

  /// Runs `family` under `source` and applies `checkers`; see file comment.
  [[nodiscard]] ScenarioReport run_scenario(const TimestampFamily& family,
                                            const ScenarioSpec& spec,
                                            const ScheduleSource& source,
                                            const Checkers& checkers = {}) const;

  /// Fans `grid` across a pool of `workers` threads (0 = hardware
  /// concurrency) and aggregates the reports. Each scenario builds its own
  /// System inside its worker — replay determinism makes the per-spec
  /// reports identical to a serial loop of run_scenario calls, in any worker
  /// interleaving — so the sweep is embarrassingly parallel. The first
  /// exception thrown by any scenario is rethrown after all workers join.
  [[nodiscard]] SweepReport run_scenario_sweep(
      const TimestampFamily& family, const std::vector<ScenarioSpec>& grid,
      const ScheduleSource& source, const Checkers& checkers = {},
      unsigned workers = 0) const;

 private:
  std::uint64_t max_steps_ = std::uint64_t{1} << 32;
};

}  // namespace stamped::api
