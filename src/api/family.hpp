// TimestampFamily: one first-class descriptor per timestamp implementation.
//
// Every algorithm in this library used to expose its own ad-hoc
// make_X_system / X_factory / X_program trio with divergent value and log
// types, so every comparison (tests, space benches, examples) was hand-wired
// per family. A TimestampFamily erases those differences behind:
//   - metadata: name, lifetime kind, timestamp universe, paper reference,
//     the paper's space bound as a callable of the scenario;
//   - make(spec): a live FamilyInstance — simulated system + typed call log
//     behind the GenericCallLog view;
//   - factory(spec): a deterministic runtime::SystemFactory for the
//     replay-based adversaries and the exhaustive explorer;
//   - make_native(spec): the same scenario as a native FamilyInstance that
//     runs on real hardware threads (src/native/ over the atomicmem
//     backend) and records a checkable history.
//
// api::registry() enumerates all families; harness.hpp composes any of them
// with any schedule source and the history checkers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario.hpp"
#include "runtime/history.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/system.hpp"

namespace stamped::shard {
class ShardedInstance;  // src/shard/sharded_instance.hpp
}

namespace stamped::api {

/// Family-specific counters surfaced in ScenarioReport (e.g. the bounded
/// family's label recycles, Algorithm 4's double-collect scans).
using Metrics = std::vector<std::pair<std::string, std::int64_t>>;

/// Pair filter over typed records: does the ordered pair (a, b) carry a
/// timestamp-property obligation? Null means every pair does. (Bounded
/// families release pairs outside their recycling window.)
template <class Ts>
using PairFilter =
    std::function<bool(const std::vector<runtime::CallRecord<Ts>>&,
                       const runtime::CallRecord<Ts>&,
                       const runtime::CallRecord<Ts>&)>;

/// Erases a typed record vector to the GenericCallLog the checkers consume.
/// Shared by the simulated instance (log snapshot) and the native instance
/// (recorder merge) so both backends feed the checkers through one code path.
template <class Ts, class Cmp>
[[nodiscard]] GenericCallLog erase_call_log(
    std::vector<runtime::CallRecord<Ts>> records, Cmp cmp,
    PairFilter<Ts> filter = nullptr) {
  auto typed = std::make_shared<std::vector<runtime::CallRecord<Ts>>>(
      std::move(records));
  GenericCallLog g;
  g.records.reserve(typed->size());
  for (std::size_t i = 0; i < typed->size(); ++i) {
    const auto& r = (*typed)[i];
    g.records.push_back({r.pid, r.call_index, i, r.invoked_at,
                         r.responded_at});
  }
  g.before = [typed, cmp = std::move(cmp)](std::size_t a, std::size_t b) {
    return cmp((*typed)[a].ts, (*typed)[b].ts);
  };
  g.ts_repr = [typed](std::size_t i) {
    return runtime::value_repr((*typed)[i].ts);
  };
  if (filter) {
    g.obligated = [typed, f = std::move(filter)](const GenericCallRecord& a,
                                                 const GenericCallRecord& b) {
      return f(*typed, (*typed)[a.ts], (*typed)[b.ts]);
    };
  } else {
    g.obligated = [](const GenericCallRecord&, const GenericCallRecord&) {
      return true;
    };
  }
  return g;
}

/// What a native (real-thread) run did; surfaced in ScenarioReport. All
/// counter fields are deterministic given the call counts; elapsed time and
/// the per-thread split are genuinely nondeterministic (the OS schedules).
struct NativeRunStats {
  int threads = 0;               ///< workers actually spawned
  double elapsed_seconds = 0.0;  ///< spawn-to-join wall time
  std::uint64_t ops = 0;         ///< register operations executed
  std::uint64_t calls = 0;       ///< completed getTS calls
  std::vector<std::uint64_t> per_thread_calls;   ///< calls by worker index
  std::uint64_t retired_nodes = 0;       ///< memory retirees after quiesce
  std::uint64_t memory_arena_bytes = 0;  ///< AtomicMemory heap after quiesce
  std::uint64_t recorder_arena_bytes = 0;  ///< history recorder block bytes
};

/// A live scenario: the simulated system plus the typed history it records,
/// viewed type-erased. The instance owns the typed CallLog that the system's
/// programs write into, so it must outlive the system — take_system() hands
/// out ownership of the system alone (explorer composition) while the logs
/// stay with the instance.
class FamilyInstance {
 public:
  virtual ~FamilyInstance() = default;
  FamilyInstance(const FamilyInstance&) = delete;
  FamilyInstance& operator=(const FamilyInstance&) = delete;

  [[nodiscard]] runtime::ISystem& system() {
    STAMPED_ASSERT_MSG(sys_ != nullptr, "system was taken or never adopted");
    return *sys_;
  }

  /// Transfers ownership of the system (the instance keeps the logs; see
  /// class comment). Used by the exhaustive-exploration schedule source.
  [[nodiscard]] std::unique_ptr<runtime::ISystem> take_system() {
    return std::move(sys_);
  }

  /// Type-erased snapshot of the history recorded so far.
  [[nodiscard]] virtual GenericCallLog calls() const = 0;

  /// Family-specific counters (empty by default).
  [[nodiscard]] virtual Metrics metrics() const { return {}; }

  /// True for instances built by TimestampFamily::make_native — they run on
  /// real threads via run_native() and have no simulated system().
  [[nodiscard]] virtual bool native() const { return false; }

  /// Executes the native run (real threads; see src/native/). Only valid on
  /// native instances, and single-use. `threads` <= 0 means hardware
  /// concurrency.
  virtual NativeRunStats run_native(int threads) {
    (void)threads;
    STAMPED_ASSERT_MSG(false, "run_native on a simulated instance");
    return {};
  }

 protected:
  FamilyInstance() = default;
  std::unique_ptr<runtime::ISystem> sys_;
};

/// The bridge from a typed implementation (register value V, timestamp Ts,
/// comparator Cmp) to the erased FamilyInstance. Construction is two-phase
/// because the system's programs capture a pointer to the instance-owned log:
///   auto inst = std::make_unique<TypedFamilyInstance<V, Ts, Cmp>>();
///   inst->adopt(make_X_system(..., &inst->log()));
template <class V, class Ts, class Cmp>
class TypedFamilyInstance final : public FamilyInstance {
 public:
  using PairFilter = api::PairFilter<Ts>;

  explicit TypedFamilyInstance(Cmp cmp = {}, PairFilter filter = nullptr)
      : cmp_(std::move(cmp)), filter_(std::move(filter)) {}

  [[nodiscard]] runtime::CallLog<Ts>& log() { return log_; }

  void adopt(std::unique_ptr<runtime::System<V>> sys) {
    sys_ = std::move(sys);
  }

  void set_metrics(std::function<Metrics()> fn) { metrics_fn_ = std::move(fn); }

  [[nodiscard]] GenericCallLog calls() const override {
    return erase_call_log<Ts>(log_.snapshot(), cmp_, filter_);
  }

  [[nodiscard]] Metrics metrics() const override {
    return metrics_fn_ ? metrics_fn_() : Metrics{};
  }

 private:
  runtime::CallLog<Ts> log_;
  Cmp cmp_;
  PairFilter filter_;
  std::function<Metrics()> metrics_fn_;
};

/// Register-ownership discipline of a family (paper, Sections 3-6): who may
/// write each register. The space bounds hinge on this structure, so it is
/// declared per family and linted against observed executions
/// (analysis::lint_footprints) rather than assumed.
enum class Ownership : std::uint8_t {
  kSWMR,          ///< single writer per register (max-scan, bounded)
  kMWMR,          ///< several declared writers per register (simple, fetch&add)
  kMWMRSentinel,  ///< MWMR body plus never-written sentinel tail (Algorithm 4)
};

[[nodiscard]] constexpr const char* ownership_name(Ownership o) {
  switch (o) {
    case Ownership::kSWMR: return "SWMR";
    case Ownership::kMWMR: return "MWMR";
    case Ownership::kMWMRSentinel: return "MWMR+sentinel";
  }
  return "?";
}

/// The family's declared static register-access footprint: the paper's
/// ownership discipline as data. `writer_mask` is the ground truth the
/// footprint lint diffs observed executions against, and the static write
/// map the explorer's exact persistent-set closure is built from
/// (verify::WriteFootprints via analysis::write_footprints).
struct FootprintSpec {
  Ownership ownership = Ownership::kMWMR;

  /// Bitmask of pids permitted to write `reg` in ANY execution of the
  /// scenario (bit p set iff process p may write). A zero mask declares a
  /// hard sentinel: the register is read but never written — Algorithm 4's
  /// last register and the unreachable tail of the growing pool.
  std::function<std::uint64_t(const ScenarioSpec&, int reg)> writer_mask;

  /// True when `reg` may legitimately end a COMPLETE execution unwritten
  /// (hard sentinels, and Algorithm 4's frontier registers beyond the phases
  /// an execution actually starts). Registers observed never-written whose
  /// predicate is false fail the lint.
  std::function<bool(const ScenarioSpec&, int reg)> may_be_unwritten;

  /// Op kinds the family's programs may issue, as a bitmask indexed by
  /// runtime::OpKind (bit 1 << kind). The register algorithms use reads and
  /// writes only; the fetch&add baseline declares kFetchAdd instead.
  std::uint32_t allowed_ops = (1u << static_cast<unsigned>(
                                   runtime::OpKind::kRead)) |
                              (1u << static_cast<unsigned>(
                                   runtime::OpKind::kWrite));

  /// A family without a declared footprint predates the analysis layer (or
  /// deliberately opts out); the lint reports it instead of guessing.
  [[nodiscard]] bool declared() const { return writer_mask != nullptr; }
};

/// The type-erased descriptor of one timestamp implementation family.
struct TimestampFamily {
  std::string name;       ///< unique slug, e.g. "sqrt-oneshot"
  std::string summary;    ///< one-line human description
  std::string paper_ref;  ///< e.g. "Section 6 (Algorithm 4)"
  Lifetime lifetime = Lifetime::kOneShot;
  std::string universe;   ///< the timestamp universe T, human-readable

  /// 0 = unlimited getTS calls per process; 1 = strictly one-shot.
  int max_calls_per_process = 0;

  /// The paper's space bound for this scenario: registers the implementation
  /// allocates (== the quantity the theorems bound).
  std::function<std::int64_t(const ScenarioSpec&)> registers_allocated;

  /// True when a solo sequential run writes every allocated register
  /// (max-scan, simple, bounded, fetch&add); Algorithm 4 allocates a
  /// never-written sentinel and writes only the phase frontier.
  bool writes_full_allocation = false;

  /// Declared static register-access footprint (see FootprintSpec). Linted
  /// against observed executions by analysis::lint_footprints and fed to the
  /// explorer's exact persistent-set closure.
  FootprintSpec footprint;

  /// Builds a live instance recording a typed history (null log never used).
  std::function<std::unique_ptr<FamilyInstance>(const ScenarioSpec&)> make;

  /// Deterministic log-free factory for replay adversaries / the explorer.
  std::function<runtime::SystemFactory(const ScenarioSpec&)> factory;

  /// Builds a native instance: the same scenario wired for real threads
  /// (src/native/ over the atomicmem backend), recording a history through
  /// the lock-free recorder. Drive it with run_native(), then calls() /
  /// metrics() as usual. Null when the family has no native form.
  std::function<std::unique_ptr<FamilyInstance>(const ScenarioSpec&)>
      make_native;

  /// Builds a sharded-service run of this family (src/shard/): clients are
  /// routed to `spec.shard.shards` independent instances, concurrent calls
  /// per shard are flat-combined, composed timestamps carry a global epoch.
  /// Requires spec.shard.shards >= 1. Null when the family has no sharded
  /// form. Works on both backends (the spec's Backend picks sim vs native).
  std::function<std::unique_ptr<shard::ShardedInstance>(const ScenarioSpec&)>
      make_sharded;

  /// Whether this family can run the given scenario.
  [[nodiscard]] bool supports(const ScenarioSpec& spec) const {
    return spec.n >= 1 && spec.calls_per_process >= 1 &&
           (max_calls_per_process == 0 ||
            spec.calls_per_process <= max_calls_per_process);
  }
};

}  // namespace stamped::api
