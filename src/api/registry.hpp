// The global timestamp-family registry: every implementation of this
// library, enumerable through one API.
//
//   for (const auto& fam : api::registry()) { ... }
//   const auto& alg4 = api::family("sqrt-oneshot");
//
// Registered families (name — paper reference):
//   maxscan         — long-lived collect/max+1 comparator (Theta(n) shape of
//                     Theorem 1.1)
//   simple-oneshot  — Section 5 simple algorithm, ceil(n/2) registers
//   sqrt-oneshot    — Section 6 Algorithm 4, ceil(2*sqrt(M)) registers
//                     (calls_per_process > 1 selects the bounded-M
//                     generalization)
//   growing-oneshot — Algorithm 4 on an unbounded register pool (Section 7
//                     remark; non-blocking register acquisition)
//   fetchadd        — non-register fetch&add baseline (outside the paper's
//                     model and its lower bounds)
//   bounded         — Haldar–Vitanyi-style bounded-universe long-lived
//                     object, labels in Z_K^n (beyond the source paper)
#pragma once

#include <string_view>
#include <vector>

#include "api/family.hpp"

namespace stamped::api {

/// All registered families, in a stable order. Thread-safe, built once.
[[nodiscard]] const std::vector<TimestampFamily>& registry();

/// The family named `name`, or nullptr if unknown.
[[nodiscard]] const TimestampFamily* find_family(std::string_view name);

/// The family named `name`; throws stamped::invariant_error if unknown.
[[nodiscard]] const TimestampFamily& family(std::string_view name);

}  // namespace stamped::api
