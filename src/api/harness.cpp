#include "api/harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <utility>

#include "analysis/footprint.hpp"
#include "runtime/scheduler.hpp"
#include "shard/sharded_instance.hpp"
#include "verify/at_most_once.hpp"
#include "verify/coverage.hpp"
#include "verify/hb_checker.hpp"

namespace stamped::api {

namespace {

/// ExploreOptions::exact_footprints opt-in: lowers the family's declared
/// footprint into the explorer's static write map. A family without a
/// declared footprint keeps the pending-op heuristic (null map).
void fill_footprints(verify::ExploreOptions& opts,
                     const TimestampFamily& family,
                     const ScenarioSpec& spec) {
  if (!opts.exact_footprints || opts.footprints != nullptr ||
      !family.footprint.declared()) {
    return;
  }
  opts.footprints = analysis::write_footprints(family, spec);
}

/// A timestamp handle dressed up as a RegisterValue so the typed checkers of
/// verify/hb_checker.hpp run unchanged over type-erased histories.
struct OpaqueTs {
  std::size_t idx = 0;
  const GenericCallLog* log = nullptr;

  friend bool operator==(const OpaqueTs&, const OpaqueTs&) = default;

  [[nodiscard]] std::string repr() const {
    return log != nullptr ? log->ts_repr(idx) : "?";
  }
};

struct OpaqueCompare {
  [[nodiscard]] bool operator()(const OpaqueTs& a, const OpaqueTs& b) const {
    return a.log->before(a.idx, b.idx);
  }
};

GenericCallRecord to_generic(const runtime::CallRecord<OpaqueTs>& r) {
  return {r.pid, r.call_index, r.ts.idx, r.invoked_at, r.responded_at};
}

/// Applies the enabled checkers to `log`, accumulating into `rep`.
void apply_checkers(const GenericCallLog& log, const Checkers& checkers,
                    ScenarioReport& rep) {
  if (!checkers.timestamp_property && !checkers.per_process_monotonicity) {
    return;
  }
  std::vector<runtime::CallRecord<OpaqueTs>> records;
  records.reserve(log.records.size());
  for (const auto& r : log.records) {
    runtime::CallRecord<OpaqueTs> c;
    c.pid = r.pid;
    c.call_index = r.call_index;
    c.ts = OpaqueTs{r.ts, &log};
    c.invoked_at = r.invoked_at;
    c.responded_at = r.responded_at;
    records.push_back(c);
  }
  const auto pair_filter = [&log](const runtime::CallRecord<OpaqueTs>& a,
                                  const runtime::CallRecord<OpaqueTs>& b) {
    return log.obligated(to_generic(a), to_generic(b));
  };
  if (checkers.timestamp_property) {
    const auto r = verify::check_timestamp_property_filtered(
        records, OpaqueCompare{}, pair_filter);
    rep.ordered_pairs += r.ordered_pairs_checked;
    rep.concurrent_pairs += r.concurrent_pairs;
    rep.filtered_pairs += r.filtered_pairs;
    rep.violations.insert(rep.violations.end(), r.violations.begin(),
                          r.violations.end());
  }
  if (checkers.per_process_monotonicity) {
    const auto r = verify::check_per_process_monotonicity_filtered(
        records, OpaqueCompare{}, pair_filter);
    rep.violations.insert(rep.violations.end(), r.violations.begin(),
                          r.violations.end());
  }
}

/// The sharded-service path of run_scenario (ScenarioSpec::shard.shards
/// > 0): builds a shard::ShardedInstance, drives it on the requested
/// backend, and checks three layers of history — the composed global log
/// (timestamp property through ComposedCompare), every per-shard local log
/// (the shard's own family comparator and pair filter, violations prefixed
/// "shard s:"), and the cross-shard monotonicity obligation.
ScenarioReport run_sharded_scenario(const TimestampFamily& family,
                                    const ScenarioSpec& spec,
                                    const ScheduleSource& source,
                                    const Checkers& checkers,
                                    std::uint64_t max_steps) {
  STAMPED_ASSERT_MSG(family.make_sharded != nullptr,
                     "family '" << family.name << "' has no sharded form");
  STAMPED_ASSERT_MSG(
      source.kind == ScheduleSource::Kind::kDriver ||
          source.kind == ScheduleSource::Kind::kCrash ||
          source.kind == ScheduleSource::Kind::kJitter ||
          source.kind == ScheduleSource::Kind::kNativeOS,
      "sharded scenarios run under driver, crash, jitter, or native_os() "
      "sources; '" << source.name << "' is not supported");
  // With lease stealing a parked combiner is recoverable: a later solo
  // process exhausts its steal budget and takes the lease. Only the
  // explicitly wedgeable no-steal config still rejects solo-blocking
  // drivers up front — under it the wait loop genuinely cannot end.
  STAMPED_ASSERT_MSG(!source.solo_blocking || spec.shard.allow_steal,
                     "schedule source '"
                         << source.name
                         << "' runs processes solo until they block; with "
                            "ShardSpec::allow_steal == false a parked "
                            "combiner holds its lease forever and the "
                            "flat-combining wait loop never terminates");
  ScenarioReport rep;
  rep.family = family.name;
  rep.schedule = source.name;
  rep.spec = spec;

  auto inst = family.make_sharded(spec);
  if (source.kind == ScheduleSource::Kind::kNativeOS) {
    const NativeRunStats st = inst->run_native(spec.native_threads);
    rep.steps = st.ops;
    rep.calls = st.calls;
    rep.all_finished = true;  // run_native rethrows program failures
    rep.survivors_finished = true;
    rep.native_threads = st.threads;
    rep.native_elapsed_seconds = st.elapsed_seconds;
    rep.native_ops_per_sec =
        st.elapsed_seconds > 0.0
            ? static_cast<double>(st.ops) / st.elapsed_seconds
            : 0.0;
    rep.native_thread_calls = st.per_thread_calls;
    rep.recorder_arena_bytes = st.recorder_arena_bytes;
    rep.retired_nodes = st.retired_nodes;
    rep.memory_arena_bytes = st.memory_arena_bytes;
  } else {
    runtime::ISystem& sys = inst->system();
    if (spec.recording != runtime::RecordingMode::kFull) {
      sys.set_recording_mode(spec.recording);
    }
    util::Rng rng(spec.seed);
    bool crash_survivors = false;
    switch (source.kind) {
      case ScheduleSource::Kind::kDriver: {
        STAMPED_ASSERT_MSG(source.drive != nullptr,
                           "schedule source '" << source.name
                                               << "' has no driver");
        source.drive(sys, rng, max_steps);
        break;
      }
      case ScheduleSource::Kind::kCrash: {
        const runtime::CrashStats st =
            runtime::run_crash_restart(sys, rng, source.crash, max_steps);
        rep.crashes = st.crashes;
        rep.restarts = st.restarts;
        rep.crashed_down = st.crashed_down;
        crash_survivors = st.survivors_finished;
        break;
      }
      case ScheduleSource::Kind::kJitter: {
        const runtime::JitterStats st =
            runtime::run_jittered(sys, rng, source.jitter, max_steps);
        rep.stalls = st.stalls;
        rep.ticks = st.ticks;
        break;
      }
      default:
        STAMPED_ASSERT(false);  // kinds filtered above
    }
    runtime::check_no_failures(sys);
    rep.all_finished = sys.all_finished();
    // Crash runs legitimately leave crashed-and-down processes unfinished;
    // the wait-freedom verdict is the crash driver's survivor accounting.
    rep.survivors_finished = source.kind == ScheduleSource::Kind::kCrash
                                 ? crash_survivors
                                 : rep.all_finished;
    rep.steps = sys.steps_taken();
    rep.calls = sys.calls_completed_total();
    rep.registers_written = sys.registers_written();
  }

  const shard::ShardRunStats st = inst->shard_stats();
  rep.registers_allocated = st.total_registers;
  rep.shards = st.shards;
  rep.combiner_passes = st.combiner_passes;
  rep.combined_calls = st.combined_calls;
  rep.max_batch = st.max_batch;
  rep.avg_batch = st.avg_batch();
  rep.shard_calls = st.per_shard_calls;
  rep.shard_clients = st.per_shard_clients;
  rep.lease_steals = st.lease_steals;
  rep.lease_expiries = st.lease_expiries;
  rep.claim_losses = st.claim_losses;
  rep.metrics = inst->metrics();

  if (checkers.timestamp_property || checkers.per_process_monotonicity) {
    const GenericCallLog composed = inst->composed_calls();
    apply_checkers(composed, checkers, rep);
    // At-most-once service: the claim protocol's observable consequence.
    // Restarted processes legitimately re-run the same (pid, call_index), so
    // the duplicate check only binds runs without restarts.
    if (rep.restarts == 0) {
      const verify::HbReport once =
          verify::check_at_most_once_service(composed.records);
      rep.violations.insert(rep.violations.end(), once.violations.begin(),
                            once.violations.end());
    }
    for (int s = 0; s < st.shards; ++s) {
      ScenarioReport local;
      apply_checkers(inst->shard_calls(s), checkers, local);
      rep.ordered_pairs += local.ordered_pairs;
      rep.concurrent_pairs += local.concurrent_pairs;
      rep.filtered_pairs += local.filtered_pairs;
      for (const std::string& v : local.violations) {
        rep.violations.push_back("shard " + std::to_string(s) + ": " + v);
      }
    }
    const verify::HbReport cross = inst->cross_shard_monotonicity();
    rep.cross_shard_pairs = cross.ordered_pairs_checked;
    rep.violations.insert(rep.violations.end(), cross.violations.begin(),
                          cross.violations.end());
  }
  return rep;
}

/// Builds the explorer's instance factory for a family/spec: each instance
/// is a fresh system whose check applies the harness checkers to the typed
/// history and folds registers_written into the shared accumulator. Captures
/// family/spec/checkers by reference — callers must keep them alive for the
/// duration of the exploration (run_scenario and crosscheck_por do).
verify::InstanceFactory make_explore_factory(
    const TimestampFamily& family, const ScenarioSpec& spec,
    const Checkers& checkers,
    std::shared_ptr<std::atomic<int>> worst_written) {
  return [&family, &spec, &checkers, worst_written]() {
    std::shared_ptr<FamilyInstance> inst{family.make(spec)};
    verify::ExplorationInstance e;
    e.sys = inst->take_system();
    runtime::ISystem* raw = e.sys.get();
    e.check = [inst, raw, &checkers,
               worst_written]() -> std::optional<std::string> {
      const int written = raw->registers_written();
      int cur = worst_written->load(std::memory_order_relaxed);
      while (written > cur &&
             !worst_written->compare_exchange_weak(
                 cur, written, std::memory_order_relaxed)) {
      }
      ScenarioReport branch;
      apply_checkers(inst->calls(), checkers, branch);
      if (!branch.violations.empty()) return branch.violations.front();
      return std::nullopt;
    };
    return e;
  };
}

/// Sums family metrics across the fuzzer's executions, keyed by name.
void accumulate_metrics(Metrics& into, const Metrics& add) {
  for (const auto& [key, value] : add) {
    const auto it =
        std::find_if(into.begin(), into.end(),
                     [&key](const auto& kv) { return kv.first == key; });
    if (it == into.end()) {
      into.emplace_back(key, value);
    } else {
      it->second += value;
    }
  }
}

/// One mutation of a corpus schedule: splice two parents, shift a block
/// (manufactures solo bursts), transpose two steps, truncate (the dropped
/// tail re-randomizes during repair), or insert a solo burst (one process
/// runs 4..19 consecutive steps — adjacencies a uniform random schedule
/// almost never produces). All draws come from the fuzzer's master rng, so
/// the search is deterministic.
runtime::Schedule mutate_schedule(const std::vector<runtime::Schedule>& corpus,
                                  int num_processes, util::Rng& rng) {
  const runtime::Schedule& a = corpus[static_cast<std::size_t>(
      rng.next_below(corpus.size()))];
  runtime::Schedule out;
  switch (rng.next_below(5)) {
    case 0: {  // splice: prefix of one parent + suffix of another
      const runtime::Schedule& b = corpus[static_cast<std::size_t>(
          rng.next_below(corpus.size()))];
      const auto ca = static_cast<std::ptrdiff_t>(
          rng.next_below(a.size() + 1));
      const auto cb = static_cast<std::ptrdiff_t>(
          rng.next_below(b.size() + 1));
      out.assign(a.begin(), a.begin() + ca);
      out.insert(out.end(), b.begin() + cb, b.end());
      return out;
    }
    case 1: {  // shift a short block elsewhere
      out = a;
      if (out.size() < 2) return out;
      const auto i = static_cast<std::ptrdiff_t>(
          rng.next_below(out.size()));
      const auto len = static_cast<std::ptrdiff_t>(
          1 + rng.next_below(std::min<std::uint64_t>(
                  8, out.size() - static_cast<std::size_t>(i))));
      const std::vector<int> block(out.begin() + i, out.begin() + i + len);
      out.erase(out.begin() + i, out.begin() + i + len);
      const auto j = static_cast<std::ptrdiff_t>(
          rng.next_below(out.size() + 1));
      out.insert(out.begin() + j, block.begin(), block.end());
      return out;
    }
    case 2: {  // transpose two steps
      out = a;
      if (out.size() < 2) return out;
      const auto i = static_cast<std::size_t>(rng.next_below(out.size()));
      const auto j = static_cast<std::size_t>(rng.next_below(out.size()));
      std::swap(out[i], out[j]);
      return out;
    }
    case 3: {  // insert a solo burst
      out = a;
      const int pid = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(num_processes)));
      const auto len = 4 + rng.next_below(16);
      const auto j = static_cast<std::ptrdiff_t>(
          rng.next_below(out.size() + 1));
      out.insert(out.begin() + j, static_cast<std::size_t>(len), pid);
      return out;
    }
    default: {  // truncate
      out.assign(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(
                                            rng.next_below(a.size() + 1)));
      return out;
    }
  }
}

}  // namespace

ScheduleSource round_robin() {
  ScheduleSource src;
  src.name = "round-robin";
  src.drive = [](runtime::ISystem& sys, util::Rng&, std::uint64_t max_steps) {
    runtime::run_round_robin(sys, max_steps);
  };
  return src;
}

ScheduleSource seeded_random() {
  ScheduleSource src;
  src.name = "random";
  src.drive = [](runtime::ISystem& sys, util::Rng& rng,
                 std::uint64_t max_steps) {
    runtime::run_random(sys, rng, max_steps);
  };
  return src;
}

ScheduleSource sequential() {
  ScheduleSource src;
  src.name = "sequential";
  src.drive = [](runtime::ISystem& sys, util::Rng&, std::uint64_t max_steps) {
    for (int p = 0; p < sys.num_processes(); ++p) {
      runtime::run_solo_until(
          sys, p, [](runtime::ISystem&) { return false; }, max_steps);
    }
  };
  return src;
}

ScheduleSource staggered(int group) {
  STAMPED_ASSERT(group >= 1);
  ScheduleSource src;
  src.name = "staggered-" + std::to_string(group);
  src.drive = [group](runtime::ISystem& sys, util::Rng& rng,
                      std::uint64_t max_steps) {
    const int n = sys.num_processes();
    std::uint64_t steps = 0;
    for (int base = 0; base < n; base += group) {
      const int hi = std::min(n, base + group);
      std::vector<int> live;
      for (;;) {
        live.clear();
        for (int p = base; p < hi; ++p) {
          if (!sys.finished(p)) live.push_back(p);
        }
        if (live.empty() || steps >= max_steps) break;
        sys.step(live[static_cast<std::size_t>(rng.next_below(live.size()))]);
        ++steps;
      }
      if (steps >= max_steps) break;
    }
  };
  return src;
}

ScheduleSource covering_adversary() {
  ScheduleSource src;
  src.name = "covering";
  src.solo_blocking = true;
  src.drive = [](runtime::ISystem& sys, util::Rng&, std::uint64_t max_steps) {
    // Pause every process at a write to a register no earlier process
    // covers (greedy covering), then release the block write and drain.
    std::unordered_set<int> covered;
    const int n = sys.num_processes();
    for (int p = 0; p < n; ++p) {
      if (runtime::run_solo_until_poised_outside(sys, p, covered,
                                                 max_steps)) {
        covered.insert(sys.pending(p).reg);
      }
    }
    for (int p = 0; p < n; ++p) {
      if (!sys.finished(p) && sys.pending(p).is_write()) sys.step(p);
    }
    runtime::run_round_robin(sys, max_steps);
  };
  return src;
}

ScheduleSource exhaustive_explorer(verify::ExploreOptions opts) {
  ScheduleSource src;
  src.name = "exhaustive";
  src.kind = ScheduleSource::Kind::kExhaustive;
  src.explore = opts;
  return src;
}

ScheduleSource crash_restart(runtime::CrashPlan plan) {
  STAMPED_ASSERT(plan.crashes >= 0);
  STAMPED_ASSERT(plan.min_victim_steps <= plan.max_victim_steps);
  ScheduleSource src;
  src.name = plan.restart ? "crash-restart" : "crash";
  src.kind = ScheduleSource::Kind::kCrash;
  src.crash = plan;
  return src;
}

ScheduleSource jittered(runtime::JitterSpec spec) {
  STAMPED_ASSERT(spec.stall_period >= 1);
  STAMPED_ASSERT(spec.max_stall >= 1);
  ScheduleSource src;
  src.name = "jitter";
  src.kind = ScheduleSource::Kind::kJitter;
  src.jitter = spec;
  return src;
}

ScheduleSource coverage_fuzzer(std::uint64_t seed, std::uint64_t budget) {
  FuzzOptions opts;
  opts.seed = seed;
  opts.budget = budget;
  return coverage_fuzzer(opts);
}

ScheduleSource coverage_fuzzer(FuzzOptions opts) {
  STAMPED_ASSERT(opts.budget >= 1);
  STAMPED_ASSERT(opts.max_corpus >= 1);
  ScheduleSource src;
  src.name = "fuzzer";
  src.kind = ScheduleSource::Kind::kFuzzer;
  src.fuzz = opts;
  return src;
}

ScheduleSource native_os() {
  ScheduleSource src;
  src.name = "native-os";
  src.kind = ScheduleSource::Kind::kNativeOS;
  return src;
}

std::string ScenarioReport::summary() const {
  std::ostringstream os;
  os << family << " x " << schedule << " (n=" << spec.n << ", calls="
     << spec.calls_per_process << "): ";
  if (schedule == "native-os") {
    os << steps << " ops on " << native_threads << " threads ("
       << native_elapsed_seconds << "s, "
       << static_cast<std::uint64_t>(native_ops_per_sec) << " ops/s), "
       << calls << " calls, recorder " << recorder_arena_bytes
       << " B, memory " << memory_arena_bytes << " B, retired "
       << retired_nodes << ", ";
  } else if (schedule == "exhaustive") {
    os << executions << " executions, " << nodes << " nodes";
    if (sleep_pruned > 0 || persistent_deferred > 0) {
      os << " (" << sleep_pruned << " pruned, " << persistent_deferred
         << " deferred)";
    }
    if (explore_workers > 1) os << " on " << explore_workers << " workers";
    os << ", ";
  } else {
    os << steps << " steps, " << calls << " calls, registers "
       << registers_written << "/" << registers_allocated << ", ";
  }
  os << "ordered=" << ordered_pairs << " concurrent=" << concurrent_pairs
     << " filtered=" << filtered_pairs;
  if (crashes > 0 || crashed_down > 0) {
    os << " crashes=" << crashes << " restarts=" << restarts << " down="
       << crashed_down << " survivors_finished=" << survivors_finished;
  }
  if (stalls > 0) os << " stalls=" << stalls << " ticks=" << ticks;
  if (coverage_signatures > 0) {
    os << " signatures=" << coverage_signatures << " corpus=" << corpus_size
       << " executions=" << executions;
  }
  if (shards > 0) {
    os << " shards=" << shards << " passes=" << combiner_passes
       << " combined=" << combined_calls << " max_batch=" << max_batch
       << " avg_batch=" << avg_batch << " cross_pairs=" << cross_shard_pairs;
    if (lease_steals > 0 || lease_expiries > 0 || claim_losses > 0) {
      os << " steals=" << lease_steals << " expiries=" << lease_expiries
         << " claim_losses=" << claim_losses;
    }
  }
  for (const auto& [key, value] : metrics) os << ' ' << key << '=' << value;
  os << (ok() ? " OK" : " VIOLATED");
  for (const auto& v : violations) os << "\n  " << v;
  return os.str();
}

ScenarioReport Harness::run_scenario(const TimestampFamily& family,
                                     const ScenarioSpec& spec,
                                     const ScheduleSource& source,
                                     const Checkers& checkers) const {
  STAMPED_ASSERT_MSG(family.supports(spec),
                     "family '" << family.name
                                << "' does not support this scenario (n="
                                << spec.n << ", calls_per_process="
                                << spec.calls_per_process << ")");
  // Both directions: a native spec under a simulator source would silently
  // run the wrong engine; a simulator spec under native_os() has no programs
  // wired for real threads. Either way the report would lie about what ran.
  STAMPED_ASSERT_MSG(
      (spec.backend == Backend::kNative) ==
          (source.kind == ScheduleSource::Kind::kNativeOS),
      "backend/source mismatch: backend=" << backend_name(spec.backend)
          << " with schedule source '" << source.name
          << "' — the native backend runs only under api::native_os()");
  if (spec.sharded()) {
    return run_sharded_scenario(family, spec, source, checkers, max_steps_);
  }
  ScenarioReport rep;
  rep.family = family.name;
  rep.schedule = source.name;
  rep.spec = spec;
  rep.registers_allocated = family.registers_allocated(spec);

  if (source.kind == ScheduleSource::Kind::kNativeOS) {
    STAMPED_ASSERT_MSG(family.make_native != nullptr,
                       "family '" << family.name << "' has no native form");
    auto inst = family.make_native(spec);
    const NativeRunStats st = inst->run_native(spec.native_threads);
    // Native runs have no simulated scheduler: steps is the register-op
    // count from the shared clock, and registers_written stays 0 (the
    // atomic backend does not track per-register write sets; footprint
    // analysis is a simulator concern).
    rep.steps = st.ops;
    rep.calls = st.calls;
    rep.all_finished = true;  // run_native rethrows program failures
    rep.survivors_finished = true;
    rep.native_threads = st.threads;
    rep.native_elapsed_seconds = st.elapsed_seconds;
    rep.native_ops_per_sec =
        st.elapsed_seconds > 0.0
            ? static_cast<double>(st.ops) / st.elapsed_seconds
            : 0.0;
    rep.native_thread_calls = st.per_thread_calls;
    rep.recorder_arena_bytes = st.recorder_arena_bytes;
    rep.retired_nodes = st.retired_nodes;
    rep.memory_arena_bytes = st.memory_arena_bytes;
    rep.metrics = inst->metrics();
    if (checkers.timestamp_property || checkers.per_process_monotonicity) {
      // The Haldar–Vitányi move: the OS scheduled the run, so correctness
      // comes from checking the recorded history post-hoc.
      apply_checkers(inst->calls(), checkers, rep);
    }
    return rep;
  }

  if (source.kind == ScheduleSource::Kind::kExhaustive) {
    // The explorer replays prefixes and inspects views, which requires full
    // recording; reject the conflicting spec loudly rather than silently
    // running in kFull.
    STAMPED_ASSERT_MSG(spec.recording == runtime::RecordingMode::kFull,
                       "the exhaustive explorer requires "
                       "ScenarioSpec::recording == kFull");
    verify::ExploreOptions opts = source.explore;
    if (spec.explore_threads > 0) opts.threads = spec.explore_threads;
    fill_footprints(opts, family, spec);
    // Instances are worker-private, but the worst-registers-written
    // accumulator is shared across the whole exploration — atomic, because
    // the parallel DFS runs checks from several workers at once.
    auto worst_written = std::make_shared<std::atomic<int>>(0);
    const verify::InstanceFactory factory =
        make_explore_factory(family, spec, checkers, worst_written);
    const auto result = verify::explore_all_executions(factory, opts);
    rep.executions = result.executions;
    rep.nodes = result.nodes;
    rep.sleep_pruned = result.sleep_pruned;
    rep.persistent_deferred = result.persistent_deferred;
    rep.explore_workers = result.workers;
    rep.budget_exhausted = result.budget_exhausted;
    rep.registers_written = worst_written->load(std::memory_order_relaxed);
    rep.all_finished = !result.depth_exceeded;
    rep.violations = result.violations;
    return rep;
  }

  if (source.kind == ScheduleSource::Kind::kFuzzer) {
    // Signatures come from the step-info log, which kCountsOnly discards.
    STAMPED_ASSERT_MSG(spec.recording == runtime::RecordingMode::kFull,
                       "the coverage fuzzer requires "
                       "ScenarioSpec::recording == kFull");
    util::Rng rng(spec.seed ^
                  (source.fuzz.seed * 0x9e3779b97f4a7c15ULL));
    verify::CoverageMap cov;
    std::vector<runtime::Schedule> corpus;
    bool all_finished = true;
    // Execution length of the seeding run, used to size the two structured
    // seed guides below; `dry` counts consecutive executions that reached no
    // fresh coverage.
    std::uint64_t seed_len = 0;
    std::uint64_t dry = 0;
    for (std::uint64_t e = 0; e < source.fuzz.budget; ++e) {
      // Guide for this execution. Execution 0 is pure random (seeds the
      // corpus and measures the execution length); executions 1 and 2 are
      // the structured extremes — fully sequential and strict round-robin —
      // whose call-boundary adjacencies a uniform random schedule reaches
      // only with vanishing probability; the rest replay mutated corpus
      // parents, except that after `kDrySpell` consecutive executions with
      // no fresh coverage the next shot is pure random again (mutants of a
      // saturated corpus re-tread known territory; a fresh execution is the
      // cheaper probe). Oversized guides are harmless: replay skips
      // finished pids.
      constexpr std::uint64_t kDrySpell = 3;
      runtime::Schedule guide;
      if (e == 1 && seed_len > 0) {
        for (int p = 0; p < spec.n; ++p) {
          guide.insert(guide.end(), seed_len, p);
        }
      } else if (e == 2 && seed_len > 0) {
        for (std::uint64_t r = 0; r < seed_len; ++r) {
          for (int p = 0; p < spec.n; ++p) guide.push_back(p);
        }
      } else if (!corpus.empty() && e > 0 && dry < kDrySpell) {
        guide = mutate_schedule(corpus, spec.n, rng);
      } else {
        dry = 0;  // spend this execution on a pure random probe
      }
      auto inst = family.make(spec);
      runtime::ISystem& sys = inst->system();
      // Replay the guide with repair — steps naming finished processes are
      // skipped (mutation can overrun a pid's program) — then complete the
      // execution under the same seeded random stream.
      std::uint64_t steps = 0;
      for (int pid : guide) {
        if (steps >= max_steps_) break;
        if (pid < 0 || pid >= sys.num_processes() || sys.finished(pid)) {
          continue;
        }
        sys.step(pid);
        ++steps;
      }
      runtime::run_random(sys, rng, max_steps_ - steps);
      runtime::check_no_failures(sys);
      if (e == 0) seed_len = sys.steps_taken();
      all_finished = all_finished && sys.all_finished();
      const std::size_t fresh = cov.add_execution(sys.step_infos());
      rep.steps += sys.steps_taken();
      rep.calls += sys.calls_completed_total();
      rep.registers_written =
          std::max(rep.registers_written, sys.registers_written());
      accumulate_metrics(rep.metrics, inst->metrics());
      if (checkers.timestamp_property || checkers.per_process_monotonicity) {
        apply_checkers(inst->calls(), checkers, rep);
      }
      dry = fresh > 0 ? 0 : dry + 1;
      // Schedules that reached unvisited signatures become mutation parents.
      if (fresh > 0) {
        corpus.push_back(sys.executed_schedule());
        if (corpus.size() > source.fuzz.max_corpus) {
          corpus.erase(corpus.begin());
        }
      }
    }
    rep.executions = source.fuzz.budget;
    rep.all_finished = all_finished;
    rep.survivors_finished = all_finished;
    rep.coverage_signatures = cov.size();
    rep.corpus_size = corpus.size();
    return rep;
  }

  auto inst = family.make(spec);
  runtime::ISystem& sys = inst->system();
  if (spec.recording != runtime::RecordingMode::kFull) {
    sys.set_recording_mode(spec.recording);
  }
  util::Rng rng(spec.seed);
  switch (source.kind) {
    case ScheduleSource::Kind::kDriver: {
      STAMPED_ASSERT_MSG(source.drive != nullptr,
                         "schedule source '" << source.name
                                             << "' has no driver");
      source.drive(sys, rng, max_steps_);
      rep.survivors_finished = sys.all_finished();
      break;
    }
    case ScheduleSource::Kind::kCrash: {
      const runtime::CrashStats st =
          runtime::run_crash_restart(sys, rng, source.crash, max_steps_);
      rep.crashes = st.crashes;
      rep.restarts = st.restarts;
      rep.crashed_down = st.crashed_down;
      rep.survivors_finished = st.survivors_finished;
      break;
    }
    case ScheduleSource::Kind::kJitter: {
      const runtime::JitterStats st =
          runtime::run_jittered(sys, rng, source.jitter, max_steps_);
      rep.stalls = st.stalls;
      rep.ticks = st.ticks;
      rep.survivors_finished = sys.all_finished();
      break;
    }
    case ScheduleSource::Kind::kExhaustive:
    case ScheduleSource::Kind::kFuzzer:
    case ScheduleSource::Kind::kNativeOS:
      STAMPED_ASSERT(false);  // handled above
  }
  runtime::check_no_failures(sys);

  rep.all_finished = sys.all_finished();
  rep.steps = sys.steps_taken();
  rep.calls = sys.calls_completed_total();
  rep.registers_written = sys.registers_written();
  rep.metrics = inst->metrics();
  if (checkers.timestamp_property || checkers.per_process_monotonicity) {
    // calls() snapshots the whole typed history; skip it when no checker
    // will look (the space benches run with Checkers::none()).
    apply_checkers(inst->calls(), checkers, rep);
  }
  return rep;
}

verify::PorCrossCheck Harness::crosscheck_por(const TimestampFamily& family,
                                              const ScenarioSpec& spec,
                                              const ScheduleSource& source,
                                              const Checkers& checkers) const {
  STAMPED_ASSERT_MSG(
      source.kind == ScheduleSource::Kind::kExhaustive,
      "crosscheck_por certifies the exhaustive exploration tree; schedule "
      "source '" << source.name << "' is not exhaustive — run it through "
      "run_scenario instead of pretending a cross-check passed");
  STAMPED_ASSERT_MSG(family.supports(spec),
                     "family '" << family.name
                                << "' does not support this scenario (n="
                                << spec.n << ", calls_per_process="
                                << spec.calls_per_process << ")");
  STAMPED_ASSERT_MSG(spec.recording == runtime::RecordingMode::kFull,
                     "the exhaustive explorer requires "
                     "ScenarioSpec::recording == kFull");
  verify::ExploreOptions opts = source.explore;
  if (spec.explore_threads > 0) opts.threads = spec.explore_threads;
  fill_footprints(opts, family, spec);
  auto worst_written = std::make_shared<std::atomic<int>>(0);
  const verify::InstanceFactory factory =
      make_explore_factory(family, spec, checkers, worst_written);
  return verify::crosscheck_por(factory, opts);
}

std::string SweepReport::summary() const {
  std::ostringstream os;
  os << "sweep: " << reports.size() << " scenarios on " << workers
     << " workers, " << total_steps << " steps, " << total_calls
     << " calls, " << scenarios_failed << " failed ("
     << elapsed_seconds << "s)";
  return os.str();
}

SweepReport Harness::run_scenario_sweep(const TimestampFamily& family,
                                        const std::vector<ScenarioSpec>& grid,
                                        const ScheduleSource& source,
                                        const Checkers& checkers,
                                        unsigned workers) const {
  SweepReport sweep;
  sweep.reports.resize(grid.size());
  if (grid.empty()) return sweep;

  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = std::min<unsigned>(workers, static_cast<unsigned>(grid.size()));
  sweep.workers = static_cast<int>(workers);

  const auto start = std::chrono::steady_clock::now();
  // Work-stealing by atomic index: each worker claims the next unclaimed
  // spec and runs it on a System it alone owns. The spec order of `grid` is
  // preserved in `reports`, so results are independent of which worker ran
  // which spec (replay determinism) and of the claiming order.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= grid.size()) return;
          try {
            sweep.reports[i] =
                run_scenario(family, grid[i], source, checkers);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  sweep.elapsed_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  for (const ScenarioReport& rep : sweep.reports) {
    sweep.total_steps += rep.steps;
    sweep.total_calls += rep.calls;
    if (!rep.ok()) ++sweep.scenarios_failed;
  }
  return sweep;
}

}  // namespace stamped::api
