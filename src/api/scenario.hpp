// Scenario vocabulary of the unified timestamp-family API.
//
// The paper is a *comparative* result: long-lived vs one-shot vs bounded
// universes. To compare implementations uniformly, every family is driven
// from the same ScenarioSpec and reports its history through the same
// type-erased GenericCallLog, whose timestamps are opaque handles ordered
// only by the family's own compare(). Consumers (conformance tests, space
// benches, examples) never see the per-family value types.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/isystem.hpp"
#include "util/assert.hpp"

namespace stamped::api {

/// Lifetime kind of a timestamp family (paper, Section 1).
enum class Lifetime : std::uint8_t {
  kOneShot,    ///< every process calls getTS() at most once
  kLongLived,  ///< processes call getTS() arbitrarily often
};

[[nodiscard]] constexpr const char* lifetime_name(Lifetime lt) {
  return lt == Lifetime::kOneShot ? "one-shot" : "long-lived";
}

/// Which execution engine runs the scenario. The simulator interleaves
/// coroutine steps under a deterministic scheduler; the native backend runs
/// the same programs on real OS threads (src/native/) and checks the
/// recorded history post-hoc.
enum class Backend : std::uint8_t {
  kSim,     ///< deterministic coroutine simulator (runtime::System<V>)
  kNative,  ///< real threads over atomicmem::AtomicMemory<V>
};

[[nodiscard]] constexpr const char* backend_name(Backend b) {
  return b == Backend::kSim ? "sim" : "native";
}

/// Sharding parameters (src/shard/). shards == 0 disables sharding; a
/// positive count routes each client (or each call, under rehash_calls) to
/// one of `shards` independent family instances and composes globally
/// comparable (epoch, shard, local) timestamps.
struct ShardSpec {
  int shards = 0;            ///< 0 = unsharded; >= 1 = sharded service
  bool batched = true;       ///< flat-combining batcher on each shard
  bool rehash_calls = false; ///< route per (client, call) instead of client
  /// Planted mis-composition for differential tests: report epoch 0 on
  /// every composed timestamp (the classic "forwarded the local label,
  /// dropped the epoch" bug). Never set outside tests.
  bool drop_epoch = false;
  /// Native backend: raw spins between yields while waiting on a combiner.
  /// 0 degenerates to yield-every-probe — still terminates, because the
  /// wait loop's self-combine arm never depends on the holder.
  int spin_budget = 64;
  /// Probes (sim steps / native spin+yield rounds) a waiter tolerates with
  /// no movement of the holder's (lease, heartbeat) before declaring the
  /// lease expired and — when allow_steal — stealing it.
  int steal_budget = 48;
  /// False restores the old wedgeable semantics: an expired lease is
  /// counted but never stolen, so a combiner that crashes or parks while
  /// holding it wedges the shard. Exists for the wedge differential tests;
  /// the harness rejects solo-blocking schedule sources under it.
  bool allow_steal = true;
};

/// Parameters of one scenario: which system to build and how big.
struct ScenarioSpec {
  int n = 2;                   ///< number of processes
  int calls_per_process = 1;   ///< getTS calls per process (1 for one-shot)
  std::int32_t universe_bound = 0;  ///< bounded family's modulus K (0 = auto)
  std::uint64_t seed = 1;      ///< RNG seed for randomized schedule sources
  /// Recording mode for the simulated system. kCountsOnly skips per-step
  /// trace/view/observer bookkeeping in the hot loop — measurement sweeps
  /// only; history checkers still work (the CallLog is program-level).
  /// The exhaustive-explorer schedule source requires kFull and rejects
  /// anything else.
  runtime::RecordingMode recording = runtime::RecordingMode::kFull;
  /// Worker threads for the exhaustive-explorer schedule source (the
  /// work-stealing parallel DFS; see verify::ExploreOptions::threads).
  /// 0 = keep whatever the schedule source's ExploreOptions carry; > 0
  /// overrides them for this scenario. Ignored by driver-based sources.
  int explore_threads = 0;
  /// Execution engine. kNative requires the api::native_os() schedule source
  /// (the OS is the scheduler — driver/crash/jitter/fuzzer/exhaustive
  /// sources are simulator concepts) and ignores `recording`: native
  /// histories are checked post-hoc, never replayed.
  Backend backend = Backend::kSim;
  /// Worker threads for backend = kNative (<= 0: hardware concurrency).
  /// Requests beyond the core count are honored — the OS time-slices.
  int native_threads = 0;
  /// Sharded-service routing (src/shard/). shard.shards == 0 runs the plain
  /// unsharded family; >= 1 runs it through ShardedInstance.
  ShardSpec shard;

  [[nodiscard]] bool sharded() const { return shard.shards > 0; }

  [[nodiscard]] std::int64_t total_calls() const {
    return static_cast<std::int64_t>(n) * calls_per_process;
  }
};

/// One completed getTS() call with its timestamp erased to an opaque handle
/// (an index into the owning GenericCallLog's timestamp store).
struct GenericCallRecord {
  int pid = -1;
  int call_index = 0;  ///< k for the k-th call by this process (0-based)
  std::size_t ts = 0;  ///< opaque timestamp handle
  std::uint64_t invoked_at = 0;
  std::uint64_t responded_at = 0;

  /// Paper's happens-before: this call's response precedes other's invocation.
  [[nodiscard]] bool happens_before(const GenericCallRecord& other) const {
    return responded_at < other.invoked_at;
  }
};

/// Type-erased call history of one scenario run. `before` is the family's
/// compare() lifted to handles; `obligated` is the family's pair filter for
/// the timestamp property (bounded-universe families release ordered pairs
/// outside their recycling window; unbounded families obligate every pair).
struct GenericCallLog {
  std::vector<GenericCallRecord> records;
  std::function<bool(std::size_t, std::size_t)> before;
  std::function<std::string(std::size_t)> ts_repr;
  std::function<bool(const GenericCallRecord&, const GenericCallRecord&)>
      obligated;

  [[nodiscard]] std::size_t size() const { return records.size(); }
};

}  // namespace stamped::api
