#include "api/registry.hpp"

#include <memory>
#include <utility>

#include "atomicmem/atomic_memory.hpp"
#include "core/bounded_longlived.hpp"
#include "core/fetchadd_baseline.hpp"
#include "core/growing_oneshot.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "core/timestamp.hpp"
#include "native/native_instance.hpp"
#include "native/native_system.hpp"
#include "shard/engines.hpp"
#include "shard/sharded_service.hpp"
#include "util/bounds.hpp"

namespace stamped::api {

namespace {

/// The bounded family's modulus for a scenario: the explicit universe_bound,
/// or the smallest window covering the whole execution.
std::int32_t bounded_modulus(const ScenarioSpec& spec) {
  return spec.universe_bound > 0
             ? spec.universe_bound
             : core::bounded_modulus_for(spec.calls_per_process);
}

template <class V>
using NativeSys = native::NativeSystem<V>;

/// Bitmask of every pid in the scenario (FootprintSpec masks; n <= 64).
constexpr std::uint64_t all_pids(int n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

constexpr std::uint64_t pid_bit(int p) { return std::uint64_t{1} << p; }

constexpr std::uint32_t op_bit(runtime::OpKind k) {
  return 1u << static_cast<unsigned>(k);
}

TimestampFamily maxscan_family() {
  TimestampFamily fam;
  fam.name = "maxscan";
  fam.summary = "long-lived collect/max+1 comparator, n SWMR registers";
  fam.paper_ref = "Theorem 1.1 shape (Theta(n) comparator)";
  fam.lifetime = Lifetime::kLongLived;
  fam.universe = "integers, compare is <";
  fam.max_calls_per_process = 0;
  fam.registers_allocated = [](const ScenarioSpec& spec) {
    return util::bounds::longlived_upper_maxscan(spec.n);
  };
  fam.writes_full_allocation = true;
  // Paper SWMR layout: register p belongs to process p; everyone collects.
  fam.footprint.ownership = Ownership::kSWMR;
  fam.footprint.writer_mask = [](const ScenarioSpec& spec, int reg) {
    return reg >= 0 && reg < spec.n ? pid_bit(reg) : std::uint64_t{0};
  };
  fam.footprint.may_be_unwritten = [](const ScenarioSpec&, int) {
    return false;
  };
  fam.make = [](const ScenarioSpec& spec) -> std::unique_ptr<FamilyInstance> {
    auto inst = std::make_unique<
        TypedFamilyInstance<std::int64_t, std::int64_t, core::Compare>>();
    inst->adopt(core::make_maxscan_system(spec.n, spec.calls_per_process,
                                          &inst->log()));
    return inst;
  };
  fam.factory = [](const ScenarioSpec& spec) {
    return core::maxscan_factory(spec.n, spec.calls_per_process);
  };
  fam.make_native = [](const ScenarioSpec& spec)
      -> std::unique_ptr<FamilyInstance> {
    auto inst = std::make_unique<native::TypedNativeInstance<
        std::int64_t, std::int64_t, core::Compare>>(spec.n);
    std::vector<NativeSys<std::int64_t>::Program> programs;
    for (int p = 0; p < spec.n; ++p) {
      auto* arena = &inst->recorder().arena(p);
      programs.push_back(
          [p, spec, arena](atomicmem::DirectCtx<std::int64_t>& ctx) {
            return core::maxscan_program(ctx, p, spec.n,
                                         spec.calls_per_process, arena);
          });
    }
    inst->adopt(std::make_unique<NativeSys<std::int64_t>>(
        spec.n, 0, std::move(programs)));
    return inst;
  };
  fam.make_sharded = [](const ScenarioSpec& spec) {
    return shard::make_sharded<shard::MaxscanEngine>(spec);
  };
  return fam;
}

TimestampFamily simple_oneshot_family() {
  TimestampFamily fam;
  fam.name = "simple-oneshot";
  fam.summary = "Section 5 simple one-shot algorithm, ceil(n/2) registers";
  fam.paper_ref = "Section 5 (Algorithm 2)";
  fam.lifetime = Lifetime::kOneShot;
  fam.universe = "integers in [1, 2*ceil(n/2)], compare is <";
  fam.max_calls_per_process = 1;
  fam.registers_allocated = [](const ScenarioSpec& spec) {
    return util::bounds::oneshot_upper_simple(spec.n);
  };
  fam.writes_full_allocation = true;
  // Algorithm 2 pairs processes 2r and 2r+1 on register r.
  fam.footprint.ownership = Ownership::kMWMR;
  fam.footprint.writer_mask = [](const ScenarioSpec& spec, int reg) {
    std::uint64_t mask = 0;
    if (2 * reg < spec.n) mask |= pid_bit(2 * reg);
    if (2 * reg + 1 < spec.n) mask |= pid_bit(2 * reg + 1);
    return mask;
  };
  fam.footprint.may_be_unwritten = [](const ScenarioSpec&, int) {
    return false;
  };
  fam.make = [](const ScenarioSpec& spec) -> std::unique_ptr<FamilyInstance> {
    auto inst = std::make_unique<
        TypedFamilyInstance<std::int64_t, std::int64_t, core::Compare>>();
    inst->adopt(core::make_simple_oneshot_system(spec.n, &inst->log()));
    return inst;
  };
  fam.factory = [](const ScenarioSpec& spec) {
    return core::simple_oneshot_factory(spec.n);
  };
  fam.make_native = [](const ScenarioSpec& spec)
      -> std::unique_ptr<FamilyInstance> {
    STAMPED_ASSERT(spec.calls_per_process == 1);
    auto inst = std::make_unique<native::TypedNativeInstance<
        std::int64_t, std::int64_t, core::Compare>>(spec.n);
    std::vector<NativeSys<std::int64_t>::Program> programs;
    for (int p = 0; p < spec.n; ++p) {
      auto* arena = &inst->recorder().arena(p);
      programs.push_back(
          [p, spec, arena](atomicmem::DirectCtx<std::int64_t>& ctx) {
            return core::simple_getts_program(ctx, p, spec.n, arena);
          });
    }
    inst->adopt(std::make_unique<NativeSys<std::int64_t>>(
        core::simple_oneshot_registers(spec.n), 0, std::move(programs)));
    return inst;
  };
  fam.make_sharded = [](const ScenarioSpec& spec) {
    return shard::make_sharded<shard::SimpleEngine>(spec);
  };
  return fam;
}

/// Shared between sqrt-oneshot and growing-oneshot, which differ only in the
/// register pool: Algorithm 4 with `m` registers, one TypedFamilyInstance
/// wired to a SqrtStats metrics source.
std::unique_ptr<FamilyInstance> make_alg4_instance(
    const ScenarioSpec& spec, bool growing) {
  auto inst = std::make_unique<TypedFamilyInstance<
      core::TsRecord, core::PairTimestamp, core::Compare>>();
  auto stats = std::make_shared<core::SqrtStats>();
  if (growing) {
    inst->adopt(core::make_growing_bounded_system(
        spec.n, spec.calls_per_process, &inst->log(), stats.get()));
  } else {
    inst->adopt(core::make_sqrt_bounded_system(
        spec.n, spec.calls_per_process, &inst->log(), stats.get()));
  }
  inst->set_metrics([stats] {
    return Metrics{
        {"scans", static_cast<std::int64_t>(stats->scans().size())}};
  });
  return inst;
}

/// Native counterpart of make_alg4_instance: Algorithm 4 over `m` real
/// atomic TsRecord registers, recording into per-process arenas, SqrtStats
/// (mutex-guarded — metrics, not the recorder hot path) as the metrics
/// source.
std::unique_ptr<FamilyInstance> make_alg4_native(
    const ScenarioSpec& spec, int m) {
  auto inst = std::make_unique<native::TypedNativeInstance<
      core::TsRecord, core::PairTimestamp, core::Compare>>(spec.n);
  auto stats = std::make_shared<core::SqrtStats>();
  std::vector<NativeSys<core::TsRecord>::Program> programs;
  for (int p = 0; p < spec.n; ++p) {
    auto* arena = &inst->recorder().arena(p);
    programs.push_back(
        [p, spec, m, arena, stats](atomicmem::DirectCtx<core::TsRecord>& ctx) {
          return core::sqrt_calls_program(ctx, p, spec.calls_per_process, m,
                                          arena, stats.get());
        });
  }
  inst->adopt(std::make_unique<NativeSys<core::TsRecord>>(
      m, core::TsRecord::bottom(), std::move(programs)));
  inst->set_metrics([stats] {
    return Metrics{
        {"scans", static_cast<std::int64_t>(stats->scans().size())}};
  });
  return inst;
}

TimestampFamily sqrt_oneshot_family() {
  TimestampFamily fam;
  fam.name = "sqrt-oneshot";
  fam.summary =
      "Section 6 Algorithm 4, ceil(2*sqrt(M)) registers (Theorem 1.3)";
  fam.paper_ref = "Section 6 (Algorithms 3+4)";
  fam.lifetime = Lifetime::kOneShot;
  fam.universe = "pairs (rnd, turn), compare is lexicographic <";
  fam.max_calls_per_process = 0;  // calls > 1: the bounded-M generalization
  fam.registers_allocated = [](const ScenarioSpec& spec) {
    return static_cast<std::int64_t>(
        core::sqrt_oneshot_registers(spec.total_calls()));
  };
  fam.writes_full_allocation = false;  // the sentinel is never written
  // Algorithm 4: any process may write any frontier register; the last of
  // the ceil(2*sqrt(M)) registers is the paper's never-written sentinel.
  // Frontier registers beyond the phases an execution actually starts may
  // legitimately stay unwritten (register 0 never may: the first getTS
  // call's starter write lands there).
  fam.footprint.ownership = Ownership::kMWMRSentinel;
  fam.footprint.writer_mask = [](const ScenarioSpec& spec, int reg) {
    const int m = core::sqrt_oneshot_registers(spec.total_calls());
    return reg >= 0 && reg < m - 1 ? all_pids(spec.n) : std::uint64_t{0};
  };
  fam.footprint.may_be_unwritten = [](const ScenarioSpec&, int reg) {
    return reg >= 1;
  };
  fam.make = [](const ScenarioSpec& spec) {
    return make_alg4_instance(spec, /*growing=*/false);
  };
  fam.factory = [](const ScenarioSpec& spec) -> runtime::SystemFactory {
    return [spec]() -> std::unique_ptr<runtime::ISystem> {
      return core::make_sqrt_bounded_system(spec.n, spec.calls_per_process,
                                            nullptr, nullptr);
    };
  };
  fam.make_native = [](const ScenarioSpec& spec) {
    return make_alg4_native(spec,
                            core::sqrt_oneshot_registers(spec.total_calls()));
  };
  fam.make_sharded = [](const ScenarioSpec& spec) {
    return shard::make_sharded<shard::SqrtEngine>(spec);
  };
  return fam;
}

TimestampFamily growing_oneshot_family() {
  TimestampFamily fam;
  fam.name = "growing-oneshot";
  fam.summary =
      "Algorithm 4 on an unbounded register pool (no a-priori call bound)";
  fam.paper_ref = "Section 7 remark (growing generalization)";
  fam.lifetime = Lifetime::kOneShot;
  fam.universe = "pairs (rnd, turn), compare is lexicographic <";
  fam.max_calls_per_process = 0;
  fam.registers_allocated = [](const ScenarioSpec& spec) {
    return static_cast<std::int64_t>(core::growing_pool_registers(
        static_cast<int>(spec.total_calls())));
  };
  fam.writes_full_allocation = false;
  // Growing pool: each getTS call starts at most one phase and invalidation
  // writes only target already-started phases, so with total_calls() calls
  // no register at index >= total_calls() is ever written — the pool's tail
  // (growing_pool_registers adds two) is all sentinel.
  fam.footprint.ownership = Ownership::kMWMRSentinel;
  fam.footprint.writer_mask = [](const ScenarioSpec& spec, int reg) {
    return reg >= 0 && reg < spec.total_calls() ? all_pids(spec.n)
                                                : std::uint64_t{0};
  };
  fam.footprint.may_be_unwritten = [](const ScenarioSpec&, int reg) {
    return reg >= 1;
  };
  fam.make = [](const ScenarioSpec& spec) {
    return make_alg4_instance(spec, /*growing=*/true);
  };
  fam.factory = [](const ScenarioSpec& spec) -> runtime::SystemFactory {
    return [spec]() -> std::unique_ptr<runtime::ISystem> {
      return core::make_growing_bounded_system(spec.n, spec.calls_per_process,
                                               nullptr, nullptr);
    };
  };
  fam.make_native = [](const ScenarioSpec& spec) {
    return make_alg4_native(spec, core::growing_pool_registers(
                                      static_cast<int>(spec.total_calls())));
  };
  fam.make_sharded = [](const ScenarioSpec& spec) {
    return shard::make_sharded<shard::GrowingEngine>(spec);
  };
  return fam;
}

TimestampFamily fetchadd_family() {
  TimestampFamily fam;
  fam.name = "fetchadd";
  fam.summary =
      "non-register fetch&add baseline: one counter, one step per call";
  fam.paper_ref = "outside the paper's model (throughput baseline)";
  fam.lifetime = Lifetime::kLongLived;
  fam.universe = "integers, compare is <";
  fam.max_calls_per_process = 0;
  fam.registers_allocated = [](const ScenarioSpec&) {
    return std::int64_t{1};
  };
  fam.writes_full_allocation = true;
  // Everyone RMWs the single counter; the only op kind is fetch&add.
  fam.footprint.ownership = Ownership::kMWMR;
  fam.footprint.writer_mask = [](const ScenarioSpec& spec, int reg) {
    return reg == 0 ? all_pids(spec.n) : std::uint64_t{0};
  };
  fam.footprint.may_be_unwritten = [](const ScenarioSpec&, int) {
    return false;
  };
  fam.footprint.allowed_ops = op_bit(runtime::OpKind::kFetchAdd);
  fam.make = [](const ScenarioSpec& spec) -> std::unique_ptr<FamilyInstance> {
    auto inst = std::make_unique<
        TypedFamilyInstance<std::int64_t, std::int64_t, core::Compare>>();
    inst->adopt(core::make_fetchadd_system(spec.n, spec.calls_per_process,
                                           &inst->log()));
    return inst;
  };
  fam.factory = [](const ScenarioSpec& spec) {
    return core::fetchadd_factory(spec.n, spec.calls_per_process);
  };
  fam.make_native = [](const ScenarioSpec& spec)
      -> std::unique_ptr<FamilyInstance> {
    auto inst = std::make_unique<native::TypedNativeInstance<
        std::int64_t, std::int64_t, core::Compare>>(spec.n);
    std::vector<NativeSys<std::int64_t>::Program> programs;
    for (int p = 0; p < spec.n; ++p) {
      auto* arena = &inst->recorder().arena(p);
      programs.push_back(
          [p, spec, arena](atomicmem::DirectCtx<std::int64_t>& ctx) {
            return core::fetchadd_program(ctx, p, spec.calls_per_process,
                                          arena);
          });
    }
    inst->adopt(std::make_unique<NativeSys<std::int64_t>>(
        1, 0, std::move(programs)));
    return inst;
  };
  fam.make_sharded = [](const ScenarioSpec& spec) {
    return shard::make_sharded<shard::FetchAddEngine>(spec);
  };
  return fam;
}

/// The bounded family's obligation filter for modulus `k`. When the window
/// covers the whole execution (K >= 2*calls + 1, the auto default) the
/// UNCONDITIONAL property must hold — same bar as the unbounded families, so
/// no pair filter. Only a deliberately small universe_bound puts the run in
/// the recycling regime, where ordered pairs outside the window carry no
/// obligation. Shared by the simulated and native instance builders.
PairFilter<core::BoundedTimestamp> bounded_filter(const ScenarioSpec& spec,
                                                  std::int32_t k) {
  if (core::bounded_window(k) >= spec.calls_per_process) return nullptr;
  return [k](const std::vector<runtime::CallRecord<core::BoundedTimestamp>>&
                 all,
             const runtime::CallRecord<core::BoundedTimestamp>& a,
             const runtime::CallRecord<core::BoundedTimestamp>& b) {
    return core::bounded_pair_within_window(all, a, b, k);
  };
}

TimestampFamily bounded_family() {
  TimestampFamily fam;
  fam.name = "bounded";
  fam.summary =
      "bounded-universe long-lived object (Haldar-Vitanyi style), "
      "labels in Z_K^n";
  fam.paper_ref = "beyond the source paper (see PAPERS.md)";
  fam.lifetime = Lifetime::kLongLived;
  fam.universe = "vectors in Z_K^n, compare is windowed cyclic dominance";
  fam.max_calls_per_process = 0;
  fam.registers_allocated = [](const ScenarioSpec& spec) {
    return static_cast<std::int64_t>(spec.n);
  };
  fam.writes_full_allocation = true;
  // Haldar-Vitanyi assumes one writer per traceable variable: register p
  // holds process p's label and only p rewrites it.
  fam.footprint.ownership = Ownership::kSWMR;
  fam.footprint.writer_mask = [](const ScenarioSpec& spec, int reg) {
    return reg >= 0 && reg < spec.n ? pid_bit(reg) : std::uint64_t{0};
  };
  fam.footprint.may_be_unwritten = [](const ScenarioSpec&, int) {
    return false;
  };
  fam.make = [](const ScenarioSpec& spec) -> std::unique_ptr<FamilyInstance> {
    using Instance = TypedFamilyInstance<
        core::BoundedLabel, core::BoundedTimestamp, core::BoundedCompare>;
    const std::int32_t k = bounded_modulus(spec);
    auto inst = std::make_unique<Instance>(core::BoundedCompare{},
                                           bounded_filter(spec, k));
    auto stats = std::make_shared<core::BoundedStats>();
    inst->adopt(core::make_bounded_system(spec.n, spec.calls_per_process, k,
                                          &inst->log(), stats.get()));
    inst->set_metrics([stats] {
      return Metrics{
          {"wraps", static_cast<std::int64_t>(stats->wraps())},
          {"collects", static_cast<std::int64_t>(stats->collects())}};
    });
    return inst;
  };
  fam.factory = [](const ScenarioSpec& spec) {
    return core::bounded_factory(spec.n, spec.calls_per_process,
                                 spec.universe_bound);
  };
  fam.make_native = [](const ScenarioSpec& spec)
      -> std::unique_ptr<FamilyInstance> {
    const std::int32_t k = bounded_modulus(spec);
    auto inst = std::make_unique<native::TypedNativeInstance<
        core::BoundedLabel, core::BoundedTimestamp, core::BoundedCompare>>(
        spec.n, core::BoundedCompare{}, bounded_filter(spec, k));
    auto stats = std::make_shared<core::BoundedStats>();
    std::vector<NativeSys<core::BoundedLabel>::Program> programs;
    for (int p = 0; p < spec.n; ++p) {
      auto* arena = &inst->recorder().arena(p);
      programs.push_back(
          [p, spec, k, arena,
           stats](atomicmem::DirectCtx<core::BoundedLabel>& ctx) {
            return core::bounded_program(ctx, p, spec.n, k,
                                         spec.calls_per_process, arena,
                                         stats.get());
          });
    }
    inst->adopt(std::make_unique<NativeSys<core::BoundedLabel>>(
        spec.n, core::BoundedLabel{}, std::move(programs)));
    inst->set_metrics([stats] {
      return Metrics{
          {"wraps", static_cast<std::int64_t>(stats->wraps())},
          {"collects", static_cast<std::int64_t>(stats->collects())}};
    });
    return inst;
  };
  fam.make_sharded = [](const ScenarioSpec& spec) {
    return shard::make_sharded<shard::BoundedEngine>(spec);
  };
  return fam;
}

}  // namespace

const std::vector<TimestampFamily>& registry() {
  static const std::vector<TimestampFamily> families = [] {
    std::vector<TimestampFamily> fams;
    fams.push_back(maxscan_family());
    fams.push_back(simple_oneshot_family());
    fams.push_back(sqrt_oneshot_family());
    fams.push_back(growing_oneshot_family());
    fams.push_back(fetchadd_family());
    fams.push_back(bounded_family());
    return fams;
  }();
  return families;
}

const TimestampFamily* find_family(std::string_view name) {
  for (const auto& fam : registry()) {
    if (fam.name == name) return &fam;
  }
  return nullptr;
}

const TimestampFamily& family(std::string_view name) {
  const TimestampFamily* fam = find_family(name);
  STAMPED_ASSERT_MSG(fam != nullptr,
                     "unknown timestamp family '" << std::string(name)
                                                  << "'");
  return *fam;
}

}  // namespace stamped::api
