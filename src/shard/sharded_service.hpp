// The sharded timestamp service: client programs, the flat-combining pass,
// and the typed instance behind shard::ShardedInstance.
//
// One ShardedState<Engine> owns everything the programs touch: the layout
// (client -> shard routing, per-shard register windows), the flat-combining
// slots and per-shard combiner locks, the global epoch counter, the composed
// per-client history, and one local history recorder per shard. Client
// programs are coroutine templates over their ctx, exactly like the family
// algorithms they wrap — the SAME program text runs under the deterministic
// simulator (runtime::System) and on real OS threads (native::NativeSystem).
//
// Writer discipline (why the recorders stay single-writer without locks):
//   - composed arena c: written only by client c's program.
//   - inner arena (s, c), batched mode: written only by the holder of shard
//     s's combiner lock — serialized by the lock's acquire/release.
//   - inner arena (s, c), unbatched mode: written only by client c itself.
// Histories are harvested after the run completes (sim: single-threaded;
// native: after the pool joins), the same post-hoc discipline as PR 8.
#pragma once

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/family.hpp"
#include "api/scenario.hpp"
#include "native/native_system.hpp"
#include "native/recorder.hpp"
#include "runtime/coro.hpp"
#include "runtime/system.hpp"
#include "shard/compose.hpp"
#include "shard/engines.hpp"
#include "shard/flat_combiner.hpp"
#include "shard/offset_ctx.hpp"
#include "shard/sharded_instance.hpp"
#include "util/assert.hpp"
#include "verify/cross_shard.hpp"

namespace stamped::shard {

template <class Engine>
class ShardedState {
 public:
  using V = typename Engine::V;
  using Ts = typename Engine::Ts;
  using Cmp = typename Engine::Cmp;
  using Composed = ComposedTs<Ts>;

  explicit ShardedState(const api::ScenarioSpec& spec)
      : engine_(spec),
        layout_(ShardLayout::make(
            spec.n, spec.shard.shards, spec.shard.rehash_calls,
            [&](int w) { return engine_.shard_registers(w, spec); })),
        batched_(spec.shard.batched),
        drop_epoch_(spec.shard.drop_epoch),
        calls_per_client_(spec.calls_per_process),
        slots_(static_cast<std::size_t>(layout_.shards) *
               static_cast<std::size_t>(layout_.clients)),
        ctl_(static_cast<std::size_t>(layout_.shards)),
        composed_(layout_.clients) {
    inner_.reserve(static_cast<std::size_t>(layout_.shards));
    for (int s = 0; s < layout_.shards; ++s) {
      inner_.push_back(
          std::make_unique<native::HistoryRecorder<Ts>>(layout_.clients));
    }
  }

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  [[nodiscard]] const ShardLayout& layout() const { return layout_; }
  [[nodiscard]] bool batched() const { return batched_; }
  [[nodiscard]] int calls_per_client() const { return calls_per_client_; }

  [[nodiscard]] ShardGeom geom(int s) const {
    return {layout_.width[static_cast<std::size_t>(s)],
            layout_.regs[static_cast<std::size_t>(s)]};
  }
  [[nodiscard]] int local_pid_in(int s, int client) const {
    if (layout_.rehash_calls) return client;
    STAMPED_ASSERT(layout_.shard_of[static_cast<std::size_t>(client)] == s);
    return layout_.local_pid[static_cast<std::size_t>(client)];
  }

  [[nodiscard]] FcSlot<Ts>& slot(int s, int client) {
    return slots_[static_cast<std::size_t>(s) *
                      static_cast<std::size_t>(layout_.clients) +
                  static_cast<std::size_t>(client)];
  }
  [[nodiscard]] ShardCtl& ctl(int s) {
    return ctl_[static_cast<std::size_t>(s)];
  }

  /// The global epoch draw. drop_epoch is the planted mis-composition for
  /// the cross-shard checker's differential test: every call reports epoch
  /// 0, so the composed label degenerates to the bare local label.
  [[nodiscard]] std::uint64_t next_epoch() {
    if (drop_epoch_) return 0;
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  [[nodiscard]] native::CallArena<Composed>& composed_arena(int client) {
    return composed_.arena(client);
  }
  [[nodiscard]] native::HistoryRecorder<Composed>& composed() {
    return composed_;
  }
  [[nodiscard]] const native::HistoryRecorder<Composed>& composed() const {
    return composed_;
  }
  [[nodiscard]] native::HistoryRecorder<Ts>& inner(int s) {
    return *inner_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const native::HistoryRecorder<Ts>& inner(int s) const {
    return *inner_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] native::CallArena<Ts>& inner_arena(int s, int client) {
    return inner(s).arena(client);
  }

  template <class Ts2>
  void publish_response(int s, const BatchReq& rq, std::uint64_t epoch,
                        Ts2 local) {
    FcSlot<Ts>& sl = slot(s, rq.client);
    sl.resp_epoch = epoch;
    sl.resp_local = std::move(local);
    sl.done.store(rq.seq, std::memory_order_release);
  }

 private:
  Engine engine_;
  ShardLayout layout_;
  bool batched_;
  bool drop_epoch_;
  int calls_per_client_;
  std::vector<FcSlot<Ts>> slots_;
  std::vector<ShardCtl> ctl_;
  std::atomic<std::uint64_t> epoch_{0};
  native::HistoryRecorder<Composed> composed_;
  std::vector<std::unique_ptr<native::HistoryRecorder<Ts>>> inner_;
};

/// One combining pass over shard s. Caller holds ctl(s).lock. Collect, THEN
/// draw the epoch, then execute (see flat_combiner.hpp for why this order is
/// the correctness hinge), then publish responses.
template <class Engine, class Ctx>
runtime::SubTask<int> sharded_combine_pass(Ctx& ctx, ShardedState<Engine>* st,
                                           int s) {
  using Ts = typename Engine::Ts;
  std::vector<BatchReq> batch;
  for (int c : st->layout().members[static_cast<std::size_t>(s)]) {
    FcSlot<Ts>& sl = st->slot(s, c);
    const std::uint64_t r = sl.request.load(std::memory_order_acquire);
    if (r > sl.done.load(std::memory_order_relaxed)) {
      batch.push_back({c, st->local_pid_in(s, c), sl.call_index, r});
    }
  }
  if (batch.empty()) co_return 0;
  const std::uint64_t epoch = st->next_epoch();
  const ShardGeom g = st->geom(s);
  OffsetCtx<Ctx> octx(ctx, st->layout().base[static_cast<std::size_t>(s)],
                      st->layout().regs[static_cast<std::size_t>(s)]);
  std::vector<Ts> out(batch.size());
  if constexpr (Engine::kHasBatch) {
    co_await st->engine().batch(octx, g, batch, st->inner(s), out);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      st->publish_response(s, batch[i], epoch, out[i]);
    }
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const BatchReq& rq = batch[i];
      out[i] = co_await st->engine().getts(octx, g, rq.local_pid,
                                           rq.call_index,
                                           &st->inner_arena(s, rq.client));
      st->publish_response(s, rq, epoch, out[i]);
    }
  }
  st->ctl(s).note_pass(batch.size());
  co_return static_cast<int>(batch.size());
}

/// One composed getTS by `client` (its k-th call). Batched: publish to the
/// routed shard's slot, then loop serve-check / self-combine / spin — the
/// self-combine arm makes progress caller-driven, so no one waits on a
/// combiner that never shows up. Unbatched: run the family getts directly,
/// then draw an epoch inside the call interval.
template <class Engine, class Ctx>
runtime::SubTask<int> sharded_one_call(Ctx& ctx, ShardedState<Engine>* st,
                                       int client, int k) {
  using Ts = typename Engine::Ts;
  const int s = st->layout().route(client, k);
  const std::uint64_t invoked = ctx.stamp();
  std::uint64_t epoch = 0;
  Ts local{};
  if (!st->batched()) {
    OffsetCtx<Ctx> octx(ctx, st->layout().base[static_cast<std::size_t>(s)],
                        st->layout().regs[static_cast<std::size_t>(s)]);
    local = co_await st->engine().getts(octx, st->geom(s),
                                        st->local_pid_in(s, client), k,
                                        &st->inner_arena(s, client));
    epoch = st->next_epoch();
  } else {
    FcSlot<Ts>& sl = st->slot(s, client);
    const std::uint64_t seq = static_cast<std::uint64_t>(k) + 1;
    sl.call_index = k;
    sl.request.store(seq, std::memory_order_release);
    int spins = 0;
    for (;;) {
      if (sl.done.load(std::memory_order_acquire) >= seq) break;
      if (st->ctl(s).try_lock()) {
        co_await sharded_combine_pass(ctx, st, s);
        st->ctl(s).unlock();
        continue;
      }
      if constexpr (kRealThreadCtx<Ctx>) {
        // Bounded spin, then park politely: the lock holder is doing our
        // work; burning the core only delays it on small machines.
        if (++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
      } else {
        // One scheduler step per spin so the simulator can run the holder.
        (void)co_await ctx.read(0);
      }
    }
    epoch = sl.resp_epoch;
    local = sl.resp_local;
  }
  st->composed_arena(client).record(
      {client, k, ComposedTs<Ts>{epoch, s, local}, invoked, ctx.stamp()});
  co_return 0;
}

/// Client c's whole program: calls_per_client composed getTS calls.
template <class Engine, class Ctx>
runtime::ProcessTask sharded_client_program(Ctx& ctx,
                                            ShardedState<Engine>* st,
                                            int client) {
  for (int k = 0; k < st->calls_per_client(); ++k) {
    co_await sharded_one_call(ctx, st, client, k);
  }
}

template <class Engine>
class TypedShardedInstance final : public ShardedInstance {
 public:
  using V = typename Engine::V;
  using Ts = typename Engine::Ts;
  using Cmp = typename Engine::Cmp;
  using Composed = ComposedTs<Ts>;

  explicit TypedShardedInstance(const api::ScenarioSpec& spec)
      : st_(std::make_unique<ShardedState<Engine>>(spec)) {
    const ShardLayout& lo = st_->layout();
    if (spec.backend == api::Backend::kNative) {
      std::vector<typename native::NativeSystem<V>::Program> programs;
      programs.reserve(static_cast<std::size_t>(lo.clients));
      for (int c = 0; c < lo.clients; ++c) {
        programs.push_back(
            [st = st_.get(), c](atomicmem::DirectCtx<V>& ctx) {
              return sharded_client_program(ctx, st, c);
            });
      }
      native_sys_ = std::make_unique<native::NativeSystem<V>>(
          lo.total_regs, Engine::initial_value(), std::move(programs));
    } else {
      using Sys = runtime::System<V>;
      std::vector<typename Sys::Program> programs;
      programs.reserve(static_cast<std::size_t>(lo.clients));
      for (int c = 0; c < lo.clients; ++c) {
        programs.push_back([st = st_.get(), c](typename Sys::Ctx& ctx) {
          return sharded_client_program(ctx, st, c);
        });
      }
      sim_sys_ = std::make_unique<Sys>(lo.total_regs, Engine::initial_value(),
                                       std::move(programs));
    }
  }

  [[nodiscard]] bool native() const override {
    return native_sys_ != nullptr;
  }

  [[nodiscard]] runtime::ISystem& system() override {
    STAMPED_ASSERT_MSG(sim_sys_ != nullptr,
                       "sharded instance was built for the native backend");
    return *sim_sys_;
  }

  api::NativeRunStats run_native(int threads) override {
    STAMPED_ASSERT_MSG(native_sys_ != nullptr,
                       "sharded instance was built for the simulator");
    native::RunStats raw = native_sys_->run(threads);
    api::NativeRunStats stats;
    stats.threads = raw.threads;
    stats.elapsed_seconds = raw.elapsed_seconds;
    stats.ops = raw.ops;
    stats.calls = raw.calls;
    stats.per_thread_calls = std::move(raw.per_thread_calls);
    stats.retired_nodes = raw.retired_nodes;
    stats.memory_arena_bytes = raw.memory_arena_bytes;
    stats.recorder_arena_bytes = recorder_bytes();
    return stats;
  }

  [[nodiscard]] api::GenericCallLog composed_calls() const override {
    return api::erase_call_log<Composed>(st_->composed().merged(),
                                         composed_compare());
  }

  [[nodiscard]] api::GenericCallLog shard_calls(int s) const override {
    return api::erase_call_log<Ts>(st_->inner(s).merged(),
                                   st_->engine().compare(),
                                   st_->engine().filter());
  }

  [[nodiscard]] verify::HbReport cross_shard_monotonicity() const override {
    return verify::check_cross_shard_monotonicity(
        st_->composed().merged(), composed_compare(),
        [](const runtime::CallRecord<Composed>& r) { return r.ts.shard; });
  }

  [[nodiscard]] ShardRunStats shard_stats() const override {
    const ShardLayout& lo = st_->layout();
    ShardRunStats stats;
    stats.shards = lo.shards;
    stats.clients = lo.clients;
    stats.batched = st_->batched();
    stats.total_registers = lo.total_regs;
    for (int s = 0; s < lo.shards; ++s) {
      const ShardCtl& c = const_cast<ShardedState<Engine>*>(st_.get())->ctl(s);
      stats.combiner_passes += c.passes.load(std::memory_order_relaxed);
      stats.combined_calls += c.combined.load(std::memory_order_relaxed);
      stats.max_batch = std::max(
          stats.max_batch, c.max_batch.load(std::memory_order_relaxed));
      stats.per_shard_calls.push_back(st_->inner(s).size());
      stats.per_shard_clients.push_back(
          lo.rehash_calls
              ? lo.clients
              : static_cast<int>(
                    lo.members[static_cast<std::size_t>(s)].size()));
    }
    return stats;
  }

  [[nodiscard]] api::Metrics metrics() const override {
    return st_->engine().metrics();
  }

 private:
  [[nodiscard]] ComposedCompare<Ts, Cmp> composed_compare() const {
    return ComposedCompare<Ts, Cmp>{st_->engine().compare()};
  }

  [[nodiscard]] std::uint64_t recorder_bytes() const {
    std::uint64_t total = st_->composed().arena_bytes();
    for (int s = 0; s < st_->layout().shards; ++s) {
      total += st_->inner(s).arena_bytes();
    }
    return total;
  }

  std::unique_ptr<ShardedState<Engine>> st_;
  std::unique_ptr<runtime::System<V>> sim_sys_;
  std::unique_ptr<native::NativeSystem<V>> native_sys_;
};

/// TimestampFamily::make_sharded builder for engine type E.
template <class E>
[[nodiscard]] std::unique_ptr<ShardedInstance> make_sharded(
    const api::ScenarioSpec& spec) {
  STAMPED_ASSERT_MSG(spec.shard.shards >= 1,
                     "make_sharded needs ScenarioSpec::shard.shards >= 1");
  return std::make_unique<TypedShardedInstance<E>>(spec);
}

}  // namespace stamped::shard
