// The sharded timestamp service: client programs, the crash-tolerant
// flat-combining pass, and the typed instance behind shard::ShardedInstance.
//
// One ShardedState<Engine> owns everything the programs touch: the layout
// (client -> shard routing, per-shard register windows), the flat-combining
// slots and per-shard combiner leases, the global epoch counter, the
// composed per-client history, and one local history recorder per shard.
// Client programs are coroutine templates over their ctx, exactly like the
// family algorithms they wrap — the SAME program text runs under the
// deterministic simulator (runtime::System) and on real OS threads
// (native::NativeSystem).
//
// Fault tolerance (see flat_combiner.hpp for the lease/claim protocol):
//   - A combiner that crashes or parks while holding a shard's lease is
//     deposed after a bounded no-progress budget (ShardSpec::steal_budget)
//     and a waiter steals the lease — no schedule can wedge a shard while
//     any client still takes steps, unless ShardSpec::allow_steal is
//     explicitly off (the planted wedgeable config for differential tests).
//   - A deposed-but-alive combiner (zombie) may finish its pass later; the
//     per-request claim on FcSlot::done makes it lose every request a
//     successor already served, so service is at-most-once per (client,
//     call) by construction.
//   - Only kHasBatch engines (maxscan, fetch&add) are truly delegated —
//     their batches are zombie-safe speculations (engines.hpp). The
//     one-shot families cannot be re-executed safely, so in batched mode
//     each client runs its own getts and the combiner pass only GRANTS the
//     composing epoch: the grant pass touches no simulated registers, so it
//     is atomic under the simulator's crash adversary.
//
// Epoch linearization with interleaved generations: every pass still draws
// its ONE epoch after its collect, so a granted/served epoch was drawn
// after the request published, inside the call's interval. If call A
// happens-before call B, B's request publishes after A responded; every
// pass that can claim B collected after that publish and drew its epoch
// after A's server drew its own — so B's epoch is strictly larger no matter
// which generations' passes win the two claims. For maxscan the same
// argument runs through the own-register top-label write (engines.hpp).
//
// Restart recovery: a restarted client derives its slot sequence from the
// slot itself. An orphaned pre-crash request (request == done + 1) is
// drained — waited out and discarded, never adopted, because its response's
// epoch belongs to a call interval that ended at the crash — and only then
// is a fresh request published. Like the unsharded families, restart is
// only meaningful for long-lived engines (re-running a one-shot program
// violates its own-register precondition).
//
// Writer discipline (why the recorders stay single-writer without locks):
//   - composed arena c: written only by client c's program.
//   - inner arena (s, c), batched kHasBatch engines: written only by the
//     CLAIM WINNER of c's current request — winners of consecutive seqs are
//     chained by (record, ready release) -> client acquire -> (request
//     release) -> next winner's acquire, so writes never overlap.
//   - inner arena (s, c), batched epoch-grant engines and unbatched mode:
//     written only by client c itself.
// Histories are harvested after the run completes (sim: single-threaded;
// native: after the pool joins), the same post-hoc discipline as PR 8.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/family.hpp"
#include "api/scenario.hpp"
#include "native/native_system.hpp"
#include "native/recorder.hpp"
#include "runtime/coro.hpp"
#include "runtime/system.hpp"
#include "shard/compose.hpp"
#include "shard/engines.hpp"
#include "shard/flat_combiner.hpp"
#include "shard/offset_ctx.hpp"
#include "shard/sharded_instance.hpp"
#include "util/assert.hpp"
#include "verify/cross_shard.hpp"

namespace stamped::shard {

template <class Engine>
class ShardedState {
 public:
  using V = typename Engine::V;
  using Ts = typename Engine::Ts;
  using Cmp = typename Engine::Cmp;
  using Composed = ComposedTs<Ts>;

  explicit ShardedState(const api::ScenarioSpec& spec)
      : engine_(spec),
        layout_(ShardLayout::make(
            spec.n, spec.shard.shards, spec.shard.rehash_calls,
            [&](int w) { return engine_.shard_registers(w, spec); })),
        batched_(spec.shard.batched),
        drop_epoch_(spec.shard.drop_epoch),
        spin_budget_(spec.shard.spin_budget),
        steal_budget_(spec.shard.steal_budget),
        allow_steal_(spec.shard.allow_steal),
        calls_per_client_(spec.calls_per_process),
        slots_(static_cast<std::size_t>(layout_.shards) *
               static_cast<std::size_t>(layout_.clients)),
        ctl_(static_cast<std::size_t>(layout_.shards)),
        composed_(layout_.clients) {
    STAMPED_ASSERT_MSG(spec.shard.spin_budget >= 0,
                       "ShardSpec::spin_budget must be >= 0");
    STAMPED_ASSERT_MSG(spec.shard.steal_budget >= 1,
                       "ShardSpec::steal_budget must be >= 1");
    inner_.reserve(static_cast<std::size_t>(layout_.shards));
    for (int s = 0; s < layout_.shards; ++s) {
      inner_.push_back(
          std::make_unique<native::HistoryRecorder<Ts>>(layout_.clients));
    }
  }

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  [[nodiscard]] const ShardLayout& layout() const { return layout_; }
  [[nodiscard]] bool batched() const { return batched_; }
  [[nodiscard]] int calls_per_client() const { return calls_per_client_; }
  [[nodiscard]] int spin_budget() const { return spin_budget_; }
  [[nodiscard]] int steal_budget() const { return steal_budget_; }
  [[nodiscard]] bool allow_steal() const { return allow_steal_; }

  [[nodiscard]] ShardGeom geom(int s) const {
    return {layout_.width[static_cast<std::size_t>(s)],
            layout_.regs[static_cast<std::size_t>(s)]};
  }
  [[nodiscard]] int local_pid_in(int s, int client) const {
    if (layout_.rehash_calls) return client;
    STAMPED_ASSERT(layout_.shard_of[static_cast<std::size_t>(client)] == s);
    return layout_.local_pid[static_cast<std::size_t>(client)];
  }

  [[nodiscard]] FcSlot<Ts>& slot(int s, int client) {
    return slots_[static_cast<std::size_t>(s) *
                      static_cast<std::size_t>(layout_.clients) +
                  static_cast<std::size_t>(client)];
  }
  [[nodiscard]] ShardCtl& ctl(int s) {
    return ctl_[static_cast<std::size_t>(s)];
  }

  /// The global epoch draw. drop_epoch is the planted mis-composition for
  /// the cross-shard checker's differential test: every call reports epoch
  /// 0, so the composed label degenerates to the bare local label.
  [[nodiscard]] std::uint64_t next_epoch() {
    if (drop_epoch_) return 0;
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  [[nodiscard]] native::CallArena<Composed>& composed_arena(int client) {
    return composed_.arena(client);
  }
  [[nodiscard]] native::HistoryRecorder<Composed>& composed() {
    return composed_;
  }
  [[nodiscard]] const native::HistoryRecorder<Composed>& composed() const {
    return composed_;
  }
  [[nodiscard]] native::HistoryRecorder<Ts>& inner(int s) {
    return *inner_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const native::HistoryRecorder<Ts>& inner(int s) const {
    return *inner_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] native::CallArena<Ts>& inner_arena(int s, int client) {
    return inner(s).arena(client);
  }

  /// Full-service publication for delegated (kHasBatch) engines: win the
  /// claim, then — as the unique server of this (client, call) — write the
  /// response, record the inner history on the requester's arena, count the
  /// call, and release `ready`. No co_await between claim and ready, so on
  /// the simulator the whole block is atomic under the crash adversary. A
  /// lost claim means a pass of another generation already served this
  /// request; touch nothing.
  template <class Ctx>
  bool publish_served(Ctx& ctx, int s, const BatchReq& rq,
                      std::uint64_t epoch, Ts local) {
    FcSlot<Ts>& sl = slot(s, rq.client);
    if (!sl.claim(rq.seq)) {
      ctl(s).note_claim_loss();
      return false;
    }
    sl.resp_epoch = epoch;
    sl.resp_local = local;
    inner_arena(s, rq.client)
        .record({rq.local_pid, rq.call_index, local, rq.invoked,
                 ctx.stamp()});
    ctx.note_call_complete();
    sl.ready.store(rq.seq, std::memory_order_release);
    return true;
  }

  /// Epoch-only publication for epoch-grant batching (the collect-free
  /// families): the client already executed its own getts and recorded the
  /// inner history; the winner hands it the post-collect epoch.
  bool publish_granted(int s, const BatchReq& rq, std::uint64_t epoch) {
    FcSlot<Ts>& sl = slot(s, rq.client);
    if (!sl.claim(rq.seq)) {
      ctl(s).note_claim_loss();
      return false;
    }
    sl.resp_epoch = epoch;
    sl.ready.store(rq.seq, std::memory_order_release);
    return true;
  }

 private:
  Engine engine_;
  ShardLayout layout_;
  bool batched_;
  bool drop_epoch_;
  int spin_budget_;
  int steal_budget_;
  bool allow_steal_;
  int calls_per_client_;
  std::vector<FcSlot<Ts>> slots_;
  std::vector<ShardCtl> ctl_;
  std::atomic<std::uint64_t> epoch_{0};
  native::HistoryRecorder<Composed> composed_;
  std::vector<std::unique_ptr<native::HistoryRecorder<Ts>>> inner_;
};

/// One combining pass over shard s by client `me`, who holds the lease (or
/// believes it does — a deposed zombie runs the same code and simply loses
/// its claims). Collect, THEN draw the epoch (see flat_combiner.hpp for why
/// this order is the correctness hinge), then execute, then claim-and-
/// publish. Returns the number of requests THIS pass actually served.
template <class Engine, class Ctx>
runtime::SubTask<int> sharded_combine_pass(Ctx& ctx, ShardedState<Engine>* st,
                                           int s, int me) {
  using Ts = typename Engine::Ts;
  ShardCtl& ctl = st->ctl(s);
  ctl.beat();
  std::vector<BatchReq> batch;
  for (int c : st->layout().members[static_cast<std::size_t>(s)]) {
    FcSlot<Ts>& sl = st->slot(s, c);
    const std::uint64_t r = sl.request.load(std::memory_order_acquire);
    if (r > sl.done.load(std::memory_order_relaxed)) {
      batch.push_back({c, st->local_pid_in(s, c),
                       sl.call_index.load(std::memory_order_relaxed), r,
                       sl.invoked.load(std::memory_order_relaxed)});
    }
  }
  if (batch.empty()) co_return 0;
  const std::uint64_t epoch = st->next_epoch();
  int served = 0;
  if constexpr (Engine::kHasBatch) {
    const ShardGeom g = st->geom(s);
    OffsetCtx<Ctx> octx(ctx, st->layout().base[static_cast<std::size_t>(s)],
                        st->layout().regs[static_cast<std::size_t>(s)]);
    std::vector<Ts> out(batch.size());
    co_await st->engine().batch(octx, g, st->local_pid_in(s, me), batch, out);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (st->publish_served(ctx, s, batch[i], epoch, out[i])) {
        ++served;
        ctl.beat();
      }
    }
  } else {
    // Epoch-grant pass: no registers, no co_await — collect, one epoch,
    // claims. Atomic under the simulator's crash/jitter adversaries, and a
    // zombie grantor is harmless (its epoch was drawn after its collect,
    // so it is still inside every claimed call's interval).
    for (const BatchReq& rq : batch) {
      if (st->publish_granted(s, rq, epoch)) {
        ++served;
        ctl.beat();
      }
    }
  }
  if (served > 0) ctl.note_pass(static_cast<std::uint64_t>(served));
  co_return served;
}

/// Waits until slot (s, client) has been served through `seq`, combining
/// and — after a bounded no-progress budget — stealing the shard's lease as
/// needed. Termination does not depend on any other process: the
/// self-combine arm serves the caller's own request, and with allow_steal a
/// held lease whose (word, heartbeat) shows no movement for steal_budget
/// probes is taken over. With allow_steal off this loop can spin forever
/// behind a crashed holder — exactly the wedge the differential tests pin.
template <class Engine, class Ctx>
runtime::SubTask<int> fc_await_served(Ctx& ctx, ShardedState<Engine>* st,
                                      int s, int client, std::uint64_t seq) {
  using Ts = typename Engine::Ts;
  FcSlot<Ts>& sl = st->slot(s, client);
  ShardCtl& ctl = st->ctl(s);
  std::uint64_t watched_word = 0;
  std::uint64_t watched_beat = 0;
  int idle = 0;
  int spins = 0;
  for (;;) {
    if (sl.ready.load(std::memory_order_acquire) >= seq) co_return 0;
    const std::uint64_t lease = ctl.try_acquire(client);
    if (lease != 0) {
      co_await sharded_combine_pass(ctx, st, s, client);
      (void)ctl.release(lease);
      continue;
    }
    const std::uint64_t w = ctl.lease.load(std::memory_order_acquire);
    const std::uint64_t hb = ctl.heartbeat.load(std::memory_order_relaxed);
    if (w != watched_word || hb != watched_beat) {
      watched_word = w;
      watched_beat = hb;
      idle = 0;
    } else if (++idle >= st->steal_budget()) {
      idle = 0;
      ctl.note_expiry();
      if (st->allow_steal() && ShardCtl::held(w)) {
        const std::uint64_t stolen = ctl.steal(client, w);
        if (stolen != 0) {
          co_await sharded_combine_pass(ctx, st, s, client);
          (void)ctl.release(stolen);
          continue;
        }
      }
    }
    if constexpr (kRealThreadCtx<Ctx>) {
      // Bounded spin, then park politely: the lock holder is doing our
      // work; burning the core only delays it on small machines.
      if (++spins >= st->spin_budget()) {
        std::this_thread::yield();
        spins = 0;
      }
    } else {
      // One scheduler step per probe so the simulator can run the holder.
      (void)co_await ctx.read(0);
    }
  }
}

/// One composed getTS by `client` (its k-th call). Batched: publish to the
/// routed shard's slot and wait through fc_await_served (for collect-free
/// engines the client first runs its own getts and only the epoch is
/// requested — epoch-grant batching). Unbatched: run the family getts
/// directly, then draw an epoch inside the call interval.
template <class Engine, class Ctx>
runtime::SubTask<int> sharded_one_call(Ctx& ctx, ShardedState<Engine>* st,
                                       int client, int k) {
  using Ts = typename Engine::Ts;
  const int s = st->layout().route(client, k);
  const std::uint64_t invoked = ctx.stamp();
  std::uint64_t epoch = 0;
  Ts local{};
  if (!st->batched()) {
    OffsetCtx<Ctx> octx(ctx, st->layout().base[static_cast<std::size_t>(s)],
                        st->layout().regs[static_cast<std::size_t>(s)]);
    local = co_await st->engine().getts(octx, st->geom(s),
                                        st->local_pid_in(s, client), k,
                                        &st->inner_arena(s, client));
    epoch = st->next_epoch();
  } else {
    if constexpr (!Engine::kHasBatch) {
      // Epoch-grant batching: one-shot algorithms cannot be re-executed by
      // a deposed combiner, so the client executes (and records) its own
      // getts and delegates only the epoch draw.
      OffsetCtx<Ctx> octx(ctx,
                          st->layout().base[static_cast<std::size_t>(s)],
                          st->layout().regs[static_cast<std::size_t>(s)]);
      local = co_await st->engine().getts(octx, st->geom(s),
                                          st->local_pid_in(s, client), k,
                                          &st->inner_arena(s, client));
    }
    FcSlot<Ts>& sl = st->slot(s, client);
    // Restart recovery: the slot, not the call index, carries the sequence.
    // An orphaned pre-crash request is drained and its response discarded —
    // its epoch belongs to a call interval that ended at the crash.
    const std::uint64_t r = sl.request.load(std::memory_order_relaxed);
    if (r > sl.done.load(std::memory_order_relaxed)) {
      co_await fc_await_served(ctx, st, s, client, r);
    }
    const std::uint64_t seq = r + 1;
    sl.invoked.store(invoked, std::memory_order_relaxed);
    sl.call_index.store(k, std::memory_order_relaxed);
    sl.request.store(seq, std::memory_order_release);
    co_await fc_await_served(ctx, st, s, client, seq);
    epoch = sl.resp_epoch;
    if constexpr (Engine::kHasBatch) local = sl.resp_local;
  }
  st->composed_arena(client).record(
      {client, k, ComposedTs<Ts>{epoch, s, local}, invoked, ctx.stamp()});
  co_return 0;
}

/// Client c's whole program: calls_per_client composed getTS calls.
template <class Engine, class Ctx>
runtime::ProcessTask sharded_client_program(Ctx& ctx,
                                            ShardedState<Engine>* st,
                                            int client) {
  for (int k = 0; k < st->calls_per_client(); ++k) {
    co_await sharded_one_call(ctx, st, client, k);
  }
}

template <class Engine>
class TypedShardedInstance final : public ShardedInstance {
 public:
  using V = typename Engine::V;
  using Ts = typename Engine::Ts;
  using Cmp = typename Engine::Cmp;
  using Composed = ComposedTs<Ts>;

  explicit TypedShardedInstance(const api::ScenarioSpec& spec)
      : st_(std::make_unique<ShardedState<Engine>>(spec)) {
    const ShardLayout& lo = st_->layout();
    if (spec.backend == api::Backend::kNative) {
      std::vector<typename native::NativeSystem<V>::Program> programs;
      programs.reserve(static_cast<std::size_t>(lo.clients));
      for (int c = 0; c < lo.clients; ++c) {
        programs.push_back(
            [st = st_.get(), c](atomicmem::DirectCtx<V>& ctx) {
              return sharded_client_program(ctx, st, c);
            });
      }
      native_sys_ = std::make_unique<native::NativeSystem<V>>(
          lo.total_regs, Engine::initial_value(), std::move(programs));
    } else {
      using Sys = runtime::System<V>;
      std::vector<typename Sys::Program> programs;
      programs.reserve(static_cast<std::size_t>(lo.clients));
      for (int c = 0; c < lo.clients; ++c) {
        programs.push_back([st = st_.get(), c](typename Sys::Ctx& ctx) {
          return sharded_client_program(ctx, st, c);
        });
      }
      sim_sys_ = std::make_unique<Sys>(lo.total_regs, Engine::initial_value(),
                                       std::move(programs));
    }
  }

  [[nodiscard]] bool native() const override {
    return native_sys_ != nullptr;
  }

  [[nodiscard]] runtime::ISystem& system() override {
    STAMPED_ASSERT_MSG(sim_sys_ != nullptr,
                       "sharded instance was built for the native backend");
    return *sim_sys_;
  }

  void set_native_op_hook(NativeOpHook hook) override {
    STAMPED_ASSERT_MSG(native_sys_ != nullptr,
                       "op hooks intercept real-thread register ops; build "
                       "the instance for Backend::kNative");
    native_sys_->set_op_hook(std::move(hook));
  }

  [[nodiscard]] std::uint64_t lease_word(int s) const override {
    return const_cast<ShardedState<Engine>*>(st_.get())
        ->ctl(s)
        .lease.load(std::memory_order_acquire);
  }

  [[nodiscard]] int lease_owner(int s) const override {
    const std::uint64_t w = lease_word(s);
    return ShardCtl::held(w) ? ShardCtl::owner(w) : -1;
  }

  api::NativeRunStats run_native(int threads) override {
    STAMPED_ASSERT_MSG(native_sys_ != nullptr,
                       "sharded instance was built for the simulator");
    native::RunStats raw = native_sys_->run(threads);
    api::NativeRunStats stats;
    stats.threads = raw.threads;
    stats.elapsed_seconds = raw.elapsed_seconds;
    stats.ops = raw.ops;
    stats.calls = raw.calls;
    stats.per_thread_calls = std::move(raw.per_thread_calls);
    stats.retired_nodes = raw.retired_nodes;
    stats.memory_arena_bytes = raw.memory_arena_bytes;
    stats.recorder_arena_bytes = recorder_bytes();
    return stats;
  }

  [[nodiscard]] api::GenericCallLog composed_calls() const override {
    return api::erase_call_log<Composed>(st_->composed().merged(),
                                         composed_compare());
  }

  [[nodiscard]] api::GenericCallLog shard_calls(int s) const override {
    return api::erase_call_log<Ts>(st_->inner(s).merged(),
                                   st_->engine().compare(),
                                   st_->engine().filter());
  }

  [[nodiscard]] verify::HbReport cross_shard_monotonicity() const override {
    return verify::check_cross_shard_monotonicity(
        st_->composed().merged(), composed_compare(),
        [](const runtime::CallRecord<Composed>& r) { return r.ts.shard; });
  }

  [[nodiscard]] ShardRunStats shard_stats() const override {
    const ShardLayout& lo = st_->layout();
    ShardRunStats stats;
    stats.shards = lo.shards;
    stats.clients = lo.clients;
    stats.batched = st_->batched();
    stats.total_registers = lo.total_regs;
    for (int s = 0; s < lo.shards; ++s) {
      const ShardCtl& c = const_cast<ShardedState<Engine>*>(st_.get())->ctl(s);
      stats.combiner_passes += c.passes.load(std::memory_order_relaxed);
      stats.combined_calls += c.combined.load(std::memory_order_relaxed);
      stats.max_batch = std::max(
          stats.max_batch, c.max_batch.load(std::memory_order_relaxed));
      stats.lease_steals += c.steals.load(std::memory_order_relaxed);
      stats.lease_expiries += c.expiries.load(std::memory_order_relaxed);
      stats.claim_losses +=
          c.claim_losses.load(std::memory_order_relaxed);
      stats.per_shard_calls.push_back(st_->inner(s).size());
      stats.per_shard_clients.push_back(
          lo.rehash_calls
              ? lo.clients
              : static_cast<int>(
                    lo.members[static_cast<std::size_t>(s)].size()));
    }
    return stats;
  }

  [[nodiscard]] api::Metrics metrics() const override {
    return st_->engine().metrics();
  }

 private:
  [[nodiscard]] ComposedCompare<Ts, Cmp> composed_compare() const {
    return ComposedCompare<Ts, Cmp>{st_->engine().compare()};
  }

  [[nodiscard]] std::uint64_t recorder_bytes() const {
    std::uint64_t total = st_->composed().arena_bytes();
    for (int s = 0; s < st_->layout().shards; ++s) {
      total += st_->inner(s).arena_bytes();
    }
    return total;
  }

  std::unique_ptr<ShardedState<Engine>> st_;
  std::unique_ptr<runtime::System<V>> sim_sys_;
  std::unique_ptr<native::NativeSystem<V>> native_sys_;
};

/// TimestampFamily::make_sharded builder for engine type E.
template <class E>
[[nodiscard]] std::unique_ptr<ShardedInstance> make_sharded(
    const api::ScenarioSpec& spec) {
  STAMPED_ASSERT_MSG(spec.shard.shards >= 1,
                     "make_sharded needs ScenarioSpec::shard.shards >= 1");
  return std::make_unique<TypedShardedInstance<E>>(spec);
}

}  // namespace stamped::shard
