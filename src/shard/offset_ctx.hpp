// OffsetCtx: one backing memory, many shard-local register spaces.
//
// Every shard's family instance believes it owns registers [0, regs_s); the
// service packs them all into one runtime::System / native::NativeSystem
// memory and hands each execution an OffsetCtx that rebases register indices
// by the shard's base offset. The family getts coroutines are templates over
// their ctx, so they run unchanged — on the simulator, on real threads, and
// under a combiner executing another client's call (the combiner's own ctx,
// the request's shard-local pid).
#pragma once

#include <cstdint>

#include "atomicmem/atomic_memory.hpp"
#include "util/assert.hpp"

namespace stamped::shard {

/// True when `Ctx` executes on a real OS thread (native backend): spin waits
/// must use raw atomics + yield there, while simulator ctxs spin by burning
/// scheduler steps so other coroutines get to run.
template <class Ctx>
inline constexpr bool kRealThreadCtx = false;

template <class V>
inline constexpr bool kRealThreadCtx<atomicmem::DirectCtx<V>> = true;

template <class Ctx>
class OffsetCtx {
 public:
  using Value = typename Ctx::Value;

  OffsetCtx(Ctx& inner, int base, int limit)
      : inner_(inner), base_(base), limit_(limit) {
    STAMPED_ASSERT(base >= 0 && limit >= 1);
  }

  [[nodiscard]] auto read(int reg) { return inner_.read(rebase(reg)); }
  [[nodiscard]] auto versioned_read(int reg) {
    return inner_.versioned_read(rebase(reg));
  }
  [[nodiscard]] auto write(int reg, Value value) {
    return inner_.write(rebase(reg), std::move(value));
  }
  [[nodiscard]] auto swap(int reg, Value value) {
    return inner_.swap(rebase(reg), std::move(value));
  }
  // Template so the member only instantiates for arithmetic V (DirectCtx
  // constrains fetch_add; only the fetchadd engine reaches this).
  template <class A>
  [[nodiscard]] auto fetch_add(int reg, A addend) {
    return inner_.fetch_add(rebase(reg), std::move(addend));
  }

  std::uint64_t stamp() { return inner_.stamp(); }
  [[nodiscard]] std::uint64_t steps_now() const { return inner_.steps_now(); }
  [[nodiscard]] std::uint64_t my_steps() const { return inner_.my_steps(); }
  void note_call_complete() { inner_.note_call_complete(); }
  [[nodiscard]] int pid() const { return inner_.pid(); }
  [[nodiscard]] int num_registers() const { return limit_; }

 private:
  [[nodiscard]] int rebase(int reg) const {
    STAMPED_ASSERT_MSG(reg >= 0 && reg < limit_,
                       "shard-local register " << reg
                           << " outside shard window of " << limit_);
    return base_ + reg;
  }

  Ctx& inner_;
  int base_;
  int limit_;
};

template <class Ctx>
inline constexpr bool kRealThreadCtx<OffsetCtx<Ctx>> = kRealThreadCtx<Ctx>;

}  // namespace stamped::shard
