// Per-family engines of the sharded service: the uniform seam between the
// generic flat-combining machinery (sharded_service.hpp) and the paper's
// algorithms (src/core/).
//
// An engine answers, for one family: how many registers a shard of width w
// needs, what the registers start as, how one shard-local getTS call runs,
// and — where the algorithm's structure allows it — how a whole combiner
// batch runs with ONE scan pass (kHasBatch). maxscan amortizes its collect
// (one scan of w registers serves the entire batch, labels mx+1..mx+m);
// fetch&add amortizes its RMW (one fetch_add of m serves m calls). The
// collect-free families (simple, sqrt, growing, bounded) execute batches
// per-request under the combiner lock — still one thread doing cache-warm
// back-to-back calls instead of w threads contending on the same lines.
//
// Engines run under OffsetCtx with shard-LOCAL pids, so every algorithm
// keeps its own register discipline per shard; batch execution logs each
// served request into the requesting client's arena of the shard recorder.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/family.hpp"
#include "api/scenario.hpp"
#include "core/bounded_longlived.hpp"
#include "core/fetchadd_baseline.hpp"
#include "core/growing_oneshot.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "core/timestamp.hpp"
#include "native/recorder.hpp"
#include "runtime/coro.hpp"
#include "shard/flat_combiner.hpp"
#include "util/assert.hpp"

namespace stamped::shard {

/// Shard-local geometry an engine call runs against: how many processes the
/// shard's family instance seats and how many registers it owns.
struct ShardGeom {
  int width = 0;
  int regs = 0;
};

struct MaxscanEngine {
  using V = std::int64_t;
  using Ts = std::int64_t;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = true;

  explicit MaxscanEngine(const api::ScenarioSpec&) {}

  [[nodiscard]] static int shard_registers(int width,
                                           const api::ScenarioSpec&) {
    return width;
  }
  [[nodiscard]] static V initial_value() { return 0; }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const { return {}; }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::maxscan_getts(ctx, local_pid, g.width, call_index, log);
  }

  /// The flat-combining payoff: ONE collect of the shard's w registers
  /// serves the whole batch. The pass hands out mx+1, mx+2, ... in slot
  /// order and writes each label to the owner's register, so registers stay
  /// monotone (every old value was <= mx) and the next pass's collect sees
  /// all of them — batch labels strictly increase across passes.
  template <class Ctx>
  runtime::SubTask<int> batch(Ctx& ctx, const ShardGeom& g,
                              const std::vector<BatchReq>& reqs,
                              native::HistoryRecorder<Ts>& inner,
                              std::vector<Ts>& out) {
    std::int64_t mx = 0;
    for (int i = 0; i < g.width; ++i) {
      mx = std::max(mx, co_await ctx.read(i));
    }
    std::int64_t label = mx;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const BatchReq& rq = reqs[i];
      const std::uint64_t invoked = ctx.stamp();
      ++label;
      co_await ctx.write(rq.local_pid, label);
      out[i] = label;
      inner.arena(rq.client).record(
          {rq.local_pid, rq.call_index, label, invoked, ctx.stamp()});
      ctx.note_call_complete();
    }
    co_return static_cast<int>(reqs.size());
  }
};

struct SimpleEngine {
  using V = std::int64_t;
  using Ts = std::int64_t;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = false;

  explicit SimpleEngine(const api::ScenarioSpec& spec) {
    STAMPED_ASSERT_MSG(spec.calls_per_process == 1,
                       "simple-oneshot shards are one-shot per client");
  }

  [[nodiscard]] static int shard_registers(int width,
                                           const api::ScenarioSpec&) {
    return core::simple_oneshot_registers(width);
  }
  [[nodiscard]] static V initial_value() { return 0; }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const { return {}; }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::simple_getts(ctx, local_pid, g.width, call_index, log);
  }
};

/// Algorithm 4 on a per-shard pool sized for the shard's worst-case call
/// count (rehash routing may funnel every call into one shard, so the pool
/// is provisioned for all of them — elasticity costs footprint, explicitly).
struct SqrtEngine {
  using V = core::TsRecord;
  using Ts = core::PairTimestamp;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = false;

  explicit SqrtEngine(const api::ScenarioSpec& spec)
      : calls_(spec.calls_per_process),
        stats_(std::make_shared<core::SqrtStats>()) {}

  [[nodiscard]] int shard_registers(int width,
                                    const api::ScenarioSpec& spec) const {
    return core::sqrt_oneshot_registers(
        static_cast<std::int64_t>(width) * spec.calls_per_process);
  }
  [[nodiscard]] static V initial_value() { return core::TsRecord::bottom(); }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const {
    return {{"scans", static_cast<std::int64_t>(stats_->scans().size())}};
  }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::sqrt_getts(ctx, core::TsId{local_pid, call_index}, g.regs,
                            log, stats_.get());
  }

 protected:
  int calls_;
  std::shared_ptr<core::SqrtStats> stats_;
};

/// Algorithm 4 on the growing pool (no a-priori bound baked into the label).
struct GrowingEngine : SqrtEngine {
  using SqrtEngine::SqrtEngine;

  [[nodiscard]] int shard_registers(int width,
                                    const api::ScenarioSpec& spec) const {
    return core::growing_pool_registers(width * spec.calls_per_process);
  }
};

struct FetchAddEngine {
  using V = std::int64_t;
  using Ts = std::int64_t;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = true;

  explicit FetchAddEngine(const api::ScenarioSpec&) {}

  [[nodiscard]] static int shard_registers(int, const api::ScenarioSpec&) {
    return 1;
  }
  [[nodiscard]] static V initial_value() { return 0; }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const { return {}; }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom&, int local_pid,
                             int call_index, Log* log) {
    // pid only labels the record; the counter is register 0 for everyone.
    return core::fetchadd_getts(ctx, local_pid, call_index, log);
  }

  /// One fetch_add of m claims m consecutive labels for the whole batch.
  template <class Ctx>
  runtime::SubTask<int> batch(Ctx& ctx, const ShardGeom&,
                              const std::vector<BatchReq>& reqs,
                              native::HistoryRecorder<Ts>& inner,
                              std::vector<Ts>& out) {
    const auto m = static_cast<std::int64_t>(reqs.size());
    std::int64_t label = co_await ctx.fetch_add(0, m);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const BatchReq& rq = reqs[i];
      const std::uint64_t invoked = ctx.stamp();
      ++label;
      out[i] = label;
      inner.arena(rq.client).record(
          {rq.local_pid, rq.call_index, label, invoked, ctx.stamp()});
      ctx.note_call_complete();
    }
    co_return static_cast<int>(reqs.size());
  }
};

struct BoundedEngine {
  using V = core::BoundedLabel;
  using Ts = core::BoundedTimestamp;
  using Cmp = core::BoundedCompare;
  static constexpr bool kHasBatch = false;

  explicit BoundedEngine(const api::ScenarioSpec& spec)
      : calls_(spec.calls_per_process),
        modulus_(spec.universe_bound > 0
                     ? spec.universe_bound
                     : core::bounded_modulus_for(spec.calls_per_process)),
        stats_(std::make_shared<core::BoundedStats>()) {}

  [[nodiscard]] static int shard_registers(int width,
                                           const api::ScenarioSpec&) {
    return width;
  }
  [[nodiscard]] static V initial_value() { return {}; }
  [[nodiscard]] Cmp compare() const { return {}; }

  /// Same windowed-obligation rule as the unsharded family: when the window
  /// covers every call a client makes, the unconditional property applies.
  [[nodiscard]] api::PairFilter<Ts> filter() const {
    if (core::bounded_window(modulus_) >= calls_) return nullptr;
    const std::int32_t k = modulus_;
    return [k](const std::vector<runtime::CallRecord<Ts>>& all,
               const runtime::CallRecord<Ts>& a,
               const runtime::CallRecord<Ts>& b) {
      return core::bounded_pair_within_window(all, a, b, k);
    };
  }
  [[nodiscard]] api::Metrics metrics() const {
    return {{"wraps", static_cast<std::int64_t>(stats_->wraps())},
            {"collects", static_cast<std::int64_t>(stats_->collects())}};
  }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::bounded_getts(ctx, local_pid, g.width, modulus_, call_index,
                               log, stats_.get());
  }

 private:
  int calls_;
  std::int32_t modulus_;
  std::shared_ptr<core::BoundedStats> stats_;
};

}  // namespace stamped::shard
