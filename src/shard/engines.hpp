// Per-family engines of the sharded service: the uniform seam between the
// generic flat-combining machinery (sharded_service.hpp) and the paper's
// algorithms (src/core/).
//
// An engine answers, for one family: how many registers a shard of width w
// needs, what the registers start as, how one shard-local getTS call runs,
// and — where the algorithm's structure allows it — how a whole combiner
// batch runs with ONE scan pass (kHasBatch). maxscan amortizes its collect
// (one scan of w registers serves the entire batch, labels mx+1..mx+m);
// fetch&add amortizes its RMW (one fetch_add of m serves m calls). The
// collect-free families (simple, sqrt, growing, bounded) are NEVER
// delegated: their one-shot getts cannot be safely re-executed by a deposed
// combiner, so in batched mode each client runs its own getts and the
// combiner pass only grants the composing epoch (sharded_service.hpp).
//
// Since combiner leases can be stolen, a batch may be executed by a pass
// that is later deposed yet still completes (a zombie). Engine batches are
// therefore written to be ZOMBIE-SAFE: they speculate — compute candidate
// labels and touch only state whose monotonicity survives a stale pass
// finishing late. maxscan writes the batch's top label ONCE to the
// COMBINER'S OWN register (each register is then written only by its
// owner's sequential passes, so registers stay monotone under any zombie
// delay) and writes it BEFORE any response publishes (so a pass serving a
// happens-after request collects at least that label). fetch&add draws from
// an RMW, unique by construction. Batches do not publish, record, or count
// calls — the claim winner in sharded_service.hpp does that per request.
//
// Engines run under OffsetCtx with shard-LOCAL pids, so every algorithm
// keeps its own register discipline per shard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/family.hpp"
#include "api/scenario.hpp"
#include "core/bounded_longlived.hpp"
#include "core/fetchadd_baseline.hpp"
#include "core/growing_oneshot.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "core/timestamp.hpp"
#include "runtime/coro.hpp"
#include "shard/flat_combiner.hpp"
#include "util/assert.hpp"

namespace stamped::shard {

/// Shard-local geometry an engine call runs against: how many processes the
/// shard's family instance seats and how many registers it owns.
struct ShardGeom {
  int width = 0;
  int regs = 0;
};

struct MaxscanEngine {
  using V = std::int64_t;
  using Ts = std::int64_t;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = true;

  explicit MaxscanEngine(const api::ScenarioSpec&) {}

  [[nodiscard]] static int shard_registers(int width,
                                           const api::ScenarioSpec&) {
    return width;
  }
  [[nodiscard]] static V initial_value() { return 0; }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const { return {}; }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::maxscan_getts(ctx, local_pid, g.width, call_index, log);
  }

  /// The flat-combining payoff: ONE collect of the shard's w registers
  /// serves the whole batch with candidate labels mx+1, mx+2, ... in slot
  /// order, and ONE write lands the batch's top label in the combiner's own
  /// register. Writing only the own register is the zombie-safety hinge:
  /// each register is written solely by its owner's sequential passes, so a
  /// deposed combiner finishing late can never drag a register backwards.
  /// The write precedes every response publish (the claim loop runs after
  /// this coroutine returns), so any pass serving a request published after
  /// one of these responses collects mx' >= this top label — batch labels
  /// of happens-before pairs strictly increase across passes of any mix of
  /// generations.
  template <class Ctx>
  runtime::SubTask<int> batch(Ctx& ctx, const ShardGeom& g, int my_local_pid,
                              const std::vector<BatchReq>& reqs,
                              std::vector<Ts>& out) {
    std::int64_t mx = 0;
    for (int i = 0; i < g.width; ++i) {
      mx = std::max(mx, co_await ctx.read(i));
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      out[i] = mx + 1 + static_cast<std::int64_t>(i);
    }
    co_await ctx.write(my_local_pid,
                       mx + static_cast<std::int64_t>(reqs.size()));
    co_return static_cast<int>(reqs.size());
  }
};

struct SimpleEngine {
  using V = std::int64_t;
  using Ts = std::int64_t;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = false;

  explicit SimpleEngine(const api::ScenarioSpec& spec) {
    STAMPED_ASSERT_MSG(spec.calls_per_process == 1,
                       "simple-oneshot shards are one-shot per client");
  }

  [[nodiscard]] static int shard_registers(int width,
                                           const api::ScenarioSpec&) {
    return core::simple_oneshot_registers(width);
  }
  [[nodiscard]] static V initial_value() { return 0; }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const { return {}; }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::simple_getts(ctx, local_pid, g.width, call_index, log);
  }
};

/// Algorithm 4 on a per-shard pool sized for the shard's worst-case call
/// count (rehash routing may funnel every call into one shard, so the pool
/// is provisioned for all of them — elasticity costs footprint, explicitly).
struct SqrtEngine {
  using V = core::TsRecord;
  using Ts = core::PairTimestamp;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = false;

  explicit SqrtEngine(const api::ScenarioSpec& spec)
      : calls_(spec.calls_per_process),
        stats_(std::make_shared<core::SqrtStats>()) {}

  [[nodiscard]] int shard_registers(int width,
                                    const api::ScenarioSpec& spec) const {
    return core::sqrt_oneshot_registers(
        static_cast<std::int64_t>(width) * spec.calls_per_process);
  }
  [[nodiscard]] static V initial_value() { return core::TsRecord::bottom(); }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const {
    return {{"scans", static_cast<std::int64_t>(stats_->scans().size())}};
  }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::sqrt_getts(ctx, core::TsId{local_pid, call_index}, g.regs,
                            log, stats_.get());
  }

 protected:
  int calls_;
  std::shared_ptr<core::SqrtStats> stats_;
};

/// Algorithm 4 on the growing pool (no a-priori bound baked into the label).
struct GrowingEngine : SqrtEngine {
  using SqrtEngine::SqrtEngine;

  [[nodiscard]] int shard_registers(int width,
                                    const api::ScenarioSpec& spec) const {
    return core::growing_pool_registers(width * spec.calls_per_process);
  }
};

struct FetchAddEngine {
  using V = std::int64_t;
  using Ts = std::int64_t;
  using Cmp = core::Compare;
  static constexpr bool kHasBatch = true;

  explicit FetchAddEngine(const api::ScenarioSpec&) {}

  [[nodiscard]] static int shard_registers(int, const api::ScenarioSpec&) {
    return 1;
  }
  [[nodiscard]] static V initial_value() { return 0; }
  [[nodiscard]] Cmp compare() const { return {}; }
  [[nodiscard]] api::PairFilter<Ts> filter() const { return nullptr; }
  [[nodiscard]] api::Metrics metrics() const { return {}; }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom&, int local_pid,
                             int call_index, Log* log) {
    // pid only labels the record; the counter is register 0 for everyone.
    return core::fetchadd_getts(ctx, local_pid, call_index, log);
  }

  /// One fetch_add of m claims m consecutive labels for the whole batch.
  /// Zombie-safe for free: the RMW makes every drawn label globally unique
  /// and realtime-monotone; a deposed pass that loses its claims simply
  /// leaves gaps in the label sequence.
  template <class Ctx>
  runtime::SubTask<int> batch(Ctx& ctx, const ShardGeom&, int /*my_local_pid*/,
                              const std::vector<BatchReq>& reqs,
                              std::vector<Ts>& out) {
    const auto m = static_cast<std::int64_t>(reqs.size());
    const std::int64_t base = co_await ctx.fetch_add(0, m);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      out[i] = base + 1 + static_cast<std::int64_t>(i);
    }
    co_return static_cast<int>(reqs.size());
  }
};

struct BoundedEngine {
  using V = core::BoundedLabel;
  using Ts = core::BoundedTimestamp;
  using Cmp = core::BoundedCompare;
  static constexpr bool kHasBatch = false;

  explicit BoundedEngine(const api::ScenarioSpec& spec)
      : calls_(spec.calls_per_process),
        modulus_(spec.universe_bound > 0
                     ? spec.universe_bound
                     : core::bounded_modulus_for(spec.calls_per_process)),
        stats_(std::make_shared<core::BoundedStats>()) {}

  [[nodiscard]] static int shard_registers(int width,
                                           const api::ScenarioSpec&) {
    return width;
  }
  [[nodiscard]] static V initial_value() { return {}; }
  [[nodiscard]] Cmp compare() const { return {}; }

  /// Same windowed-obligation rule as the unsharded family: when the window
  /// covers every call a client makes, the unconditional property applies.
  [[nodiscard]] api::PairFilter<Ts> filter() const {
    if (core::bounded_window(modulus_) >= calls_) return nullptr;
    const std::int32_t k = modulus_;
    return [k](const std::vector<runtime::CallRecord<Ts>>& all,
               const runtime::CallRecord<Ts>& a,
               const runtime::CallRecord<Ts>& b) {
      return core::bounded_pair_within_window(all, a, b, k);
    };
  }
  [[nodiscard]] api::Metrics metrics() const {
    return {{"wraps", static_cast<std::int64_t>(stats_->wraps())},
            {"collects", static_cast<std::int64_t>(stats_->collects())}};
  }

  template <class Ctx, class Log>
  runtime::SubTask<Ts> getts(Ctx& ctx, const ShardGeom& g, int local_pid,
                             int call_index, Log* log) {
    return core::bounded_getts(ctx, local_pid, g.width, modulus_, call_index,
                               log, stats_.get());
  }

 private:
  int calls_;
  std::int32_t modulus_;
  std::shared_ptr<core::BoundedStats> stats_;
};

}  // namespace stamped::shard
