// ShardedInstance: the type-erased face of one sharded-service run.
//
// Not a FamilyInstance — a sharded run has richer structure than one call
// log: a composed global history, one local history per shard, combiner
// statistics, and the cross-shard obligation. The harness consumes this
// interface (api/harness.cpp routes ScenarioSpec::shard.shards > 0 here);
// families expose a builder through TimestampFamily::make_sharded.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "api/family.hpp"
#include "runtime/isystem.hpp"
#include "verify/hb_checker.hpp"

namespace stamped::shard {

/// Callback invoked by the native backend after every register operation:
/// (pid, that process's op count so far). Installed through
/// set_native_op_hook; the fault tests use it to deterministically park the
/// thread currently holding a combiner lease and watch the lease get stolen.
using NativeOpHook = std::function<void(int pid, std::uint64_t my_ops)>;

/// What one sharded run did, beyond the plain call counts: the combiner's
/// batching behavior and the per-shard traffic split. Deterministic on the
/// simulator (the scheduler is); genuinely load-dependent on real threads.
struct ShardRunStats {
  int shards = 0;
  int clients = 0;
  bool batched = true;
  std::int64_t total_registers = 0;     ///< across all shard instances
  std::uint64_t combiner_passes = 0;    ///< passes that served >= 1 request
  std::uint64_t combined_calls = 0;     ///< requests served by some pass
  std::uint64_t max_batch = 0;          ///< largest single pass
  std::uint64_t lease_steals = 0;       ///< leases taken from a stuck holder
  std::uint64_t lease_expiries = 0;     ///< budgets exhausted (steal or not)
  std::uint64_t claim_losses = 0;       ///< deposed passes losing the claim
  std::vector<std::uint64_t> per_shard_calls;
  std::vector<int> per_shard_clients;   ///< static members (rehash: all)

  [[nodiscard]] double avg_batch() const {
    return combiner_passes > 0
               ? static_cast<double>(combined_calls) /
                     static_cast<double>(combiner_passes)
               : 0.0;
  }
};

class ShardedInstance {
 public:
  virtual ~ShardedInstance() = default;
  ShardedInstance(const ShardedInstance&) = delete;
  ShardedInstance& operator=(const ShardedInstance&) = delete;

  /// True when built for Backend::kNative: drive with run_native(). A sim
  /// instance is driven through system() by a kDriver schedule source.
  [[nodiscard]] virtual bool native() const = 0;
  [[nodiscard]] virtual runtime::ISystem& system() = 0;
  virtual api::NativeRunStats run_native(int threads) = 0;

  /// Native-only stall injection: the hook runs on the worker thread after
  /// each of its register ops. Asserts on sim-built instances.
  virtual void set_native_op_hook(NativeOpHook hook) = 0;

  /// Raw lease word of shard s ([owner+1:16][generation:48]; odd = held) and
  /// its decoded holder (-1 when free). Safe to poll concurrently with a
  /// native run — the fault tests watch these to observe steals live.
  [[nodiscard]] virtual std::uint64_t lease_word(int s) const = 0;
  [[nodiscard]] virtual int lease_owner(int s) const = 0;

  /// The composed global history: one record per client call, timestamped
  /// with (epoch, shard, local label), compared through ComposedCompare.
  [[nodiscard]] virtual api::GenericCallLog composed_calls() const = 0;

  /// Shard s's local history through the family's own comparator and pair
  /// filter — the per-shard property check runs on exactly what the shard's
  /// family instance saw.
  [[nodiscard]] virtual api::GenericCallLog shard_calls(int s) const = 0;

  /// verify::check_cross_shard_monotonicity over the composed history.
  [[nodiscard]] virtual verify::HbReport cross_shard_monotonicity() const = 0;

  [[nodiscard]] virtual ShardRunStats shard_stats() const = 0;
  [[nodiscard]] virtual api::Metrics metrics() const { return {}; }

 protected:
  ShardedInstance() = default;
};

}  // namespace stamped::shard
