// ShardedInstance: the type-erased face of one sharded-service run.
//
// Not a FamilyInstance — a sharded run has richer structure than one call
// log: a composed global history, one local history per shard, combiner
// statistics, and the cross-shard obligation. The harness consumes this
// interface (api/harness.cpp routes ScenarioSpec::shard.shards > 0 here);
// families expose a builder through TimestampFamily::make_sharded.
#pragma once

#include <cstdint>
#include <vector>

#include "api/family.hpp"
#include "runtime/isystem.hpp"
#include "verify/hb_checker.hpp"

namespace stamped::shard {

/// What one sharded run did, beyond the plain call counts: the combiner's
/// batching behavior and the per-shard traffic split. Deterministic on the
/// simulator (the scheduler is); genuinely load-dependent on real threads.
struct ShardRunStats {
  int shards = 0;
  int clients = 0;
  bool batched = true;
  std::int64_t total_registers = 0;     ///< across all shard instances
  std::uint64_t combiner_passes = 0;    ///< passes that served >= 1 request
  std::uint64_t combined_calls = 0;     ///< requests served by some pass
  std::uint64_t max_batch = 0;          ///< largest single pass
  std::vector<std::uint64_t> per_shard_calls;
  std::vector<int> per_shard_clients;   ///< static members (rehash: all)

  [[nodiscard]] double avg_batch() const {
    return combiner_passes > 0
               ? static_cast<double>(combined_calls) /
                     static_cast<double>(combiner_passes)
               : 0.0;
  }
};

class ShardedInstance {
 public:
  virtual ~ShardedInstance() = default;
  ShardedInstance(const ShardedInstance&) = delete;
  ShardedInstance& operator=(const ShardedInstance&) = delete;

  /// True when built for Backend::kNative: drive with run_native(). A sim
  /// instance is driven through system() by a kDriver schedule source.
  [[nodiscard]] virtual bool native() const = 0;
  [[nodiscard]] virtual runtime::ISystem& system() = 0;
  virtual api::NativeRunStats run_native(int threads) = 0;

  /// The composed global history: one record per client call, timestamped
  /// with (epoch, shard, local label), compared through ComposedCompare.
  [[nodiscard]] virtual api::GenericCallLog composed_calls() const = 0;

  /// Shard s's local history through the family's own comparator and pair
  /// filter — the per-shard property check runs on exactly what the shard's
  /// family instance saw.
  [[nodiscard]] virtual api::GenericCallLog shard_calls(int s) const = 0;

  /// verify::check_cross_shard_monotonicity over the composed history.
  [[nodiscard]] virtual verify::HbReport cross_shard_monotonicity() const = 0;

  [[nodiscard]] virtual ShardRunStats shard_stats() const = 0;
  [[nodiscard]] virtual api::Metrics metrics() const { return {}; }

 protected:
  ShardedInstance() = default;
};

}  // namespace stamped::shard
