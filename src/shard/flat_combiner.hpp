// Crash-tolerant flat-combining state for one sharded service
// (Bezerra–Freitas–Kuznetsov motivation, PAPERS.md arXiv:2408.02562:
// amortize concurrent scans through one combiner instead of paying one full
// collect per caller — without letting one crashed or preempted combiner
// wedge its shard).
//
// Protocol per call: the caller publishes its request into its per-shard
// slot (call_index/invoked stored, then `request` release-stored), then
// loops: served? take the response. Lease free? take it, run one combining
// pass, release. Lease held by someone who shows no progress for a full
// steal budget? STEAL it and run the pass yourself. Otherwise probe — a
// scheduler step on the simulator, bounded spinning + yield on real threads.
// The self-combine arm alone makes the loop wait-free against a missing
// combiner; the steal arm extends that to a combiner that crashed or parked
// while HOLDING the lease.
//
// The lease replaces the old atomic<bool> lock with one word:
//   [owner+1 : 16 bits][generation : 48 bits]      odd generation = held
// Acquire CASes an even generation to gen+1 with the acquirer as owner;
// release CASes the holder's exact word to gen+1 with no owner; a steal
// CASes the observed held word to gen+2 — still odd, new owner — so the
// deposed holder's release CAS fails and it learns it was deposed without
// touching anything. The holder bumps `heartbeat` as it works; waiters reset
// their budget whenever (lease word, heartbeat) changes, so only a genuinely
// stuck holder expires.
//
// A deposed-but-alive combiner (a zombie: preempted on the native backend,
// stalled by the jitter adversary, parked by the covering adversary on the
// simulator) may wake later and finish its pass. Safety then rests on the
// per-request CLAIM: a response is published only after winning a CAS on the
// slot's `done` from seq-1 to seq. Exactly one pass — of any generation —
// wins each request, writes the response fields, and release-stores `ready`;
// losers count a claim_loss and touch nothing. At-most-once service per
// (client, call) holds by construction, not by scheduling luck.
//
// One combining pass (lease held): (1) COLLECT the pending requests of every
// slot the shard seats; (2) draw ONE epoch from the global counter — after
// the collect, never before (a pass that drew its epoch first could stall,
// then collect a request published after a later-epoch pass already
// responded, handing out a stale epoch to a call that happens-after — the
// linearization argument in docs/runtime.md hangs on this order); (3)
// execute the batch against the shard's family instance; (4) claim each
// request and, on the claimed ones only, publish the response. Passes of
// different generations may interleave; the claim makes step (4) a
// partition of the batch, and every engine's step (3) is written so that a
// stale pass completing late cannot break register monotonicity (see
// engines.hpp).
//
// All cross-thread traffic is slot-local acquire/release plus the global
// fetch&adds (epoch, lease, shared clock); slots and shard controls are
// cacheline-aligned so spinning callers do not false-share with neighbors.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace stamped::shard {

/// One request/response mailbox. In static routing each client uses the one
/// slot of its home shard; with rehash_calls the service allocates a slot
/// per (shard, client) pair and call k uses the slot of its routed shard.
///
/// Three counters drive the protocol, all carrying a slot-local sequence:
///   request — client publishes seq (release); only the client writes it.
///   done    — the claim arbiter: a pass serves seq only after CAS seq-1 ->
///             seq; exactly one pass of any generation wins.
///   ready   — the claim winner's publication: response fields are written
///             before the release-store of seq; the client acquires it.
/// Invariant: request ∈ {done, done+1} (no gaps — the client publishes seq
/// r+1 only after taking response r; a restarted client drains an orphaned
/// pending request before publishing a fresh one). call_index/invoked are
/// atomics only because a deposed combiner may re-read them concurrently
/// with the client's next publish; the stale values it loads are never used
/// (its claim fails).
template <class Ts>
struct alignas(64) FcSlot {
  std::atomic<std::uint64_t> request{0};
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> ready{0};
  std::atomic<int> call_index{0};
  std::atomic<std::uint64_t> invoked{0};
  std::uint64_t resp_epoch = 0;
  Ts resp_local{};

  /// The claim: true iff this caller is the unique server of `seq`.
  [[nodiscard]] bool claim(std::uint64_t seq) {
    std::uint64_t expect = seq - 1;
    return done.compare_exchange_strong(expect, seq,
                                        std::memory_order_acq_rel);
  }
};

/// Per-shard combiner lease and batch statistics. Stats are relaxed atomics;
/// readers harvest after the run joins (sim: trivially; native: post-join).
struct alignas(64) ShardCtl {
  /// [owner+1 : 16][generation : 48]; odd generation = held.
  std::atomic<std::uint64_t> lease{0};
  /// Bumped by the holder at pass start and per publication; waiters reset
  /// their steal budget whenever (lease, heartbeat) moves.
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> combined{0};
  std::atomic<std::uint64_t> max_batch{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> expiries{0};
  std::atomic<std::uint64_t> claim_losses{0};

  static constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 48) - 1;

  [[nodiscard]] static std::uint64_t generation(std::uint64_t word) {
    return word & kGenMask;
  }
  [[nodiscard]] static bool held(std::uint64_t word) {
    return (generation(word) & 1) != 0;
  }
  /// -1 when the lease is free.
  [[nodiscard]] static int owner(std::uint64_t word) {
    return static_cast<int>(word >> 48) - 1;
  }
  [[nodiscard]] static std::uint64_t word_of(int owner_pid,
                                             std::uint64_t gen) {
    STAMPED_ASSERT(owner_pid >= -1 && owner_pid < (1 << 16) - 1);
    return (static_cast<std::uint64_t>(owner_pid + 1) << 48) |
           (gen & kGenMask);
  }

  /// Take a free lease. Returns the held word on success, 0 on failure
  /// (held, or lost the CAS race — the caller's loop retries).
  [[nodiscard]] std::uint64_t try_acquire(int me) {
    std::uint64_t w = lease.load(std::memory_order_acquire);
    if (held(w)) return 0;
    const std::uint64_t next = word_of(me, generation(w) + 1);
    if (lease.compare_exchange_strong(w, next, std::memory_order_acq_rel)) {
      return next;
    }
    return 0;
  }

  /// Depose the holder of `observed` (a held word this waiter watched expire
  /// its budget): generation + 2 keeps the lease held, now by `me`. The old
  /// holder's release CAS can no longer succeed. Returns the new held word
  /// on success, 0 if the word moved (the holder progressed or someone else
  /// stole first).
  [[nodiscard]] std::uint64_t steal(int me, std::uint64_t observed) {
    if (!held(observed)) return 0;
    std::uint64_t w = observed;
    const std::uint64_t next = word_of(me, generation(observed) + 2);
    if (lease.compare_exchange_strong(w, next, std::memory_order_acq_rel)) {
      steals.fetch_add(1, std::memory_order_relaxed);
      return next;
    }
    return 0;
  }

  /// Release `mine` (the word try_acquire/steal returned). False means this
  /// combiner was deposed mid-pass — the lease now belongs to a successor
  /// and must not be touched.
  [[nodiscard]] bool release(std::uint64_t mine) {
    std::uint64_t w = mine;
    return lease.compare_exchange_strong(w, word_of(-1, generation(mine) + 1),
                                         std::memory_order_acq_rel);
  }

  void beat() { heartbeat.fetch_add(1, std::memory_order_relaxed); }

  void note_pass(std::uint64_t batch) {
    passes.fetch_add(1, std::memory_order_relaxed);
    combined.fetch_add(batch, std::memory_order_relaxed);
    std::uint64_t cur = max_batch.load(std::memory_order_relaxed);
    while (batch > cur && !max_batch.compare_exchange_weak(
                              cur, batch, std::memory_order_relaxed)) {
    }
  }
  void note_expiry() { expiries.fetch_add(1, std::memory_order_relaxed); }
  void note_claim_loss() {
    claim_losses.fetch_add(1, std::memory_order_relaxed);
  }
};

/// One collected request, resolved to shard-local coordinates for the
/// engine. `invoked` is the CLIENT's clock stamp at call start (captured
/// from the slot at collect time): the claim winner records it as the call's
/// invocation, so a stale pass publishing late still reports the true call
/// interval — stamping at serve time would manufacture false happens-before
/// pairs under zombie interleavings.
struct BatchReq {
  int client = -1;
  int local_pid = -1;
  int call_index = 0;
  std::uint64_t seq = 0;
  std::uint64_t invoked = 0;
};

}  // namespace stamped::shard
