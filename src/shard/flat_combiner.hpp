// Flat-combining state for one sharded service (Bezerra–Freitas–Kuznetsov
// motivation, PAPERS.md arXiv:2408.02562: amortize concurrent scans through
// one combiner instead of paying one full collect per caller).
//
// Protocol per call: the caller publishes its request into its per-shard
// slot (call_index plain-written, then `request` release-stored), then loops:
// served? take the response. Combiner lock free? take it, run one combining
// pass. Otherwise spin — a scheduler step on the simulator, bounded
// spinning + yield on real threads. The self-serve arm makes the loop
// wait-free against a missing combiner: a caller never depends on anyone
// else volunteering.
//
// One combining pass (lock held): (1) COLLECT the pending requests of every
// slot the shard seats; (2) draw ONE epoch from the global counter — after
// the collect, never before (a pass that drew its epoch first could stall,
// then collect a request published after a later-epoch pass already
// responded, handing out a stale epoch to a call that happens-after — the
// linearization argument in docs/runtime.md hangs on this order); (3)
// execute the batch against the shard's family instance — one single-scan
// batch op where the family supports it, else per-request getts, all under
// the lock; (4) fill each slot's response and release-store its `done` seq.
//
// All cross-thread traffic is slot-local acquire/release plus the two global
// fetch&adds (epoch, shared clock); slots and shard controls are cacheline-
// aligned so spinning callers do not false-share with their neighbors.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace stamped::shard {

/// One request/response mailbox. In static routing each client uses the one
/// slot of its home shard; with rehash_calls the service allocates a slot
/// per (shard, client) pair and call k uses the slot of its routed shard.
/// `request`/`done` carry the per-client call sequence (k+1), so a slot is
/// pending exactly when request > done; responses are plain fields published
/// by the release-store of `done` and read after its acquire-load.
template <class Ts>
struct alignas(64) FcSlot {
  std::atomic<std::uint64_t> request{0};
  std::atomic<std::uint64_t> done{0};
  int call_index = 0;
  std::uint64_t resp_epoch = 0;
  Ts resp_local{};
};

/// Per-shard combiner lock and batch statistics. Stats are relaxed atomics
/// written only by the lock holder; readers harvest after the run joins.
struct alignas(64) ShardCtl {
  std::atomic<bool> lock{false};
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> combined{0};
  std::atomic<std::uint64_t> max_batch{0};

  [[nodiscard]] bool try_lock() {
    return !lock.exchange(true, std::memory_order_acquire);
  }
  void unlock() { lock.store(false, std::memory_order_release); }

  void note_pass(std::uint64_t batch) {
    passes.fetch_add(1, std::memory_order_relaxed);
    combined.fetch_add(batch, std::memory_order_relaxed);
    std::uint64_t cur = max_batch.load(std::memory_order_relaxed);
    while (batch > cur && !max_batch.compare_exchange_weak(
                              cur, batch, std::memory_order_relaxed)) {
    }
  }
};

/// One collected request, resolved to shard-local coordinates for the engine.
struct BatchReq {
  int client = -1;
  int local_pid = -1;
  int call_index = 0;
  std::uint64_t seq = 0;
};

}  // namespace stamped::shard
