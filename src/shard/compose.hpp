// Composed timestamps for the sharded service (beyond the source paper).
//
// The paper's objects serve a small fixed n. The service scales past that by
// routing clients to independent per-shard family instances and composing
// globally comparable timestamps as (shard epoch, shard, local label) — the
// Haldar–Vitányi composition idea (PAPERS.md, cs/0108002) with a single
// global epoch counter in place of a vector clock:
//
//   - `epoch` is drawn from one global fetch&add. A combiner pass draws one
//     epoch for its whole batch AFTER collecting the batch (the linearization
//     hinge — see docs/runtime.md "Sharding and combining"); an unbatched
//     call draws its own epoch inside its call interval. Either way the draw
//     happens inside every composed call's [invoked, responded) interval, so
//     a happens-before pair always sees strictly increasing epochs and the
//     epoch field alone settles every cross-call obligation.
//   - equal epochs only arise within one combiner batch, whose calls are
//     pairwise concurrent; the family's own comparator on the local labels
//     breaks the tie strictly (asymmetry is all concurrent pairs need).
//   - equal epochs on DIFFERENT shards are unreachable in a healthy run
//     (epochs are globally unique per draw); the comparator returns false
//     both ways, which is exactly what makes the planted drop_epoch
//     mis-composition detectable (see verify::check_cross_shard_monotonicity).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/value.hpp"
#include "util/assert.hpp"

namespace stamped::shard {

/// A globally comparable timestamp: the shard-local label `local` lifted by
/// the global pass epoch. `shard` is carried for diagnostics and for the
/// cross-shard checker; compare never orders across shards within one epoch.
template <class Ts>
struct ComposedTs {
  std::uint64_t epoch = 0;
  std::int32_t shard = 0;
  Ts local{};

  friend bool operator==(const ComposedTs&, const ComposedTs&) = default;

  [[nodiscard]] std::string repr() const {
    std::ostringstream os;
    os << "(e" << epoch << ",s" << shard << ","
       << runtime::value_repr(local) << ")";
    return os.str();
  }
};

/// compare() of the composed object: epoch order first; within one epoch
/// (one combiner batch) the family's own comparator on the local labels,
/// which is only meaningful on the batch's shard.
template <class Ts, class Cmp>
struct ComposedCompare {
  Cmp local{};

  [[nodiscard]] bool operator()(const ComposedTs<Ts>& a,
                                const ComposedTs<Ts>& b) const {
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    if (a.shard != b.shard) return false;  // cross-shard, same epoch: no order
    return local(a.local, b.local);
  }
};

/// splitmix64 finalizer: the client-id hash behind shard routing. Cheap,
/// stateless, and well-mixed so consecutive client ids spread across shards.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Static routing: the shard a client's every call lands on.
[[nodiscard]] constexpr int shard_of_client(int client, int shards) {
  return static_cast<int>(mix64(static_cast<std::uint64_t>(client)) %
                          static_cast<std::uint64_t>(shards));
}

/// Per-call routing (ShardSpec::rehash_calls): session-less load balancing
/// where each call of a client may land on a different shard. This is the
/// mode that exercises shard hops — and with them the cross-shard
/// monotonicity obligation.
[[nodiscard]] constexpr int shard_of_call(int client, int call_index,
                                          int shards) {
  return static_cast<int>(
      mix64(mix64(static_cast<std::uint64_t>(client)) ^
            static_cast<std::uint64_t>(call_index)) %
      static_cast<std::uint64_t>(shards));
}

/// The service's static geometry: which clients belong to which shard, how
/// wide each shard's family instance is, and where its registers live inside
/// the one backing memory (per-shard base offsets; see OffsetCtx).
///
/// In static routing, shard s hosts exactly its hash bucket and its family
/// instance is sized to that bucket. With rehash_calls every call may land
/// anywhere, so every shard must be able to seat every client: width becomes
/// `clients` everywhere and a client's local pid is its global id — the
/// footprint cost of elasticity, paid explicitly rather than hidden.
struct ShardLayout {
  int shards = 0;
  int clients = 0;
  bool rehash_calls = false;
  std::vector<int> shard_of;              ///< client -> home shard (static)
  std::vector<int> local_pid;             ///< client -> pid within home shard
  std::vector<std::vector<int>> members;  ///< shard -> clients it may seat
  std::vector<int> width;                 ///< shard -> family instance size
  std::vector<int> base;                  ///< shard -> first register
  std::vector<int> regs;                  ///< shard -> register count
  int total_regs = 0;

  /// `regs_fn(width)` is the family's per-shard register count (engines
  /// provide it); empty shards get zero registers and are never touched.
  template <class RegsFn>
  [[nodiscard]] static ShardLayout make(int clients, int shards,
                                        bool rehash_calls, RegsFn regs_fn) {
    STAMPED_ASSERT(clients >= 1);
    STAMPED_ASSERT(shards >= 1);
    ShardLayout lo;
    lo.shards = shards;
    lo.clients = clients;
    lo.rehash_calls = rehash_calls;
    lo.shard_of.resize(static_cast<std::size_t>(clients));
    lo.local_pid.resize(static_cast<std::size_t>(clients));
    lo.members.resize(static_cast<std::size_t>(shards));
    for (int c = 0; c < clients; ++c) {
      const int s = shard_of_client(c, shards);
      lo.shard_of[static_cast<std::size_t>(c)] = s;
      if (rehash_calls) {
        lo.local_pid[static_cast<std::size_t>(c)] = c;
      } else {
        lo.local_pid[static_cast<std::size_t>(c)] =
            static_cast<int>(lo.members[static_cast<std::size_t>(s)].size());
        lo.members[static_cast<std::size_t>(s)].push_back(c);
      }
    }
    if (rehash_calls) {
      for (int s = 0; s < shards; ++s) {
        auto& m = lo.members[static_cast<std::size_t>(s)];
        m.resize(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c) m[static_cast<std::size_t>(c)] = c;
      }
    }
    lo.width.resize(static_cast<std::size_t>(shards));
    lo.base.resize(static_cast<std::size_t>(shards));
    lo.regs.resize(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      const int w =
          static_cast<int>(lo.members[static_cast<std::size_t>(s)].size());
      lo.width[static_cast<std::size_t>(s)] = w;
      lo.regs[static_cast<std::size_t>(s)] = w > 0 ? regs_fn(w) : 0;
      lo.base[static_cast<std::size_t>(s)] = lo.total_regs;
      lo.total_regs += lo.regs[static_cast<std::size_t>(s)];
    }
    STAMPED_ASSERT_MSG(lo.total_regs >= 1,
                       "sharded layout allocated no registers");
    return lo;
  }

  /// The shard client c's call k lands on under the active routing mode.
  [[nodiscard]] int route(int client, int call_index) const {
    return rehash_calls ? shard_of_call(client, call_index, shards)
                        : shard_of[static_cast<std::size_t>(client)];
  }
};

}  // namespace stamped::shard
