// The Section 3 lower-bound machinery for long-lived timestamps, executable.
//
// Theorem 1.1's proof builds (3,k)-configurations (k covering processes, no
// register covered by more than three) for k up to floor(n/2), which forces
// at least floor(n/6) covered registers. Lemma 3.1 additionally finds, along
// any long enough execution, two (3,k)-configurations with the *same
// signature* (pigeonhole over the finite signature space), connected by a
// schedule beginning with three block writes to the 3-covered registers.
//
// Against a concrete long-lived implementation this builder:
//  1. drives processes one by one to covering positions, greedily respecting
//     the <=3-per-register constraint, yielding a (3,k)-configuration with
//     the largest reachable k;
//  2. demonstrates the Lemma 3.1 recurrence: repeatedly block-writes the
//     3-covered registers, lets interrupted calls finish (quiescence), drives
//     processes back to covering positions, and records signatures until one
//     repeats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace stamped::adversary {

struct LongLivedBuildResult {
  int n = 0;
  int k_reached = 0;           ///< covering processes in the (3,k)-configuration
  int registers_covered = 0;   ///< >= ceil(k/3); Theorem 1.1: >= floor(n/6)
  bool is_3k = false;          ///< signature really has no entry > 3
  std::vector<int> final_signature;

  // Lemma 3.1 recurrence demonstration.
  int rounds_run = 0;
  int repeat_first = -1;   ///< first round index of a repeated signature
  int repeat_second = -1;  ///< second round index with the same signature
  std::vector<std::vector<int>> signature_history;

  runtime::Schedule schedule;
  std::string stop_reason;

  [[nodiscard]] std::string summary() const;
};

struct LongLivedBuilderOptions {
  std::uint64_t solo_cap = 200000;
  int recurrence_rounds = 64;  ///< max rounds while searching for a repeat
};

/// Runs the Section 3 construction against the long-lived implementation
/// produced by `factory` (n processes, each with enough getTS calls
/// budgeted to survive the recurrence rounds).
LongLivedBuildResult build_longlived_covering(
    const runtime::SystemFactory& factory, int n, int target_k,
    const LongLivedBuilderOptions& opts = {});

}  // namespace stamped::adversary
