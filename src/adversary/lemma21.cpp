#include "adversary/lemma21.hpp"

#include "adversary/block_write.hpp"
#include "util/assert.hpp"

namespace stamped::adversary {

Lemma21Result test_lemma21(const runtime::SystemFactory& factory,
                           const runtime::Schedule& prefix,
                           const std::vector<int>& b0,
                           const std::vector<int>& b1,
                           const std::unordered_set<int>& covered, int q0,
                           int q1, std::uint64_t solo_cap) {
  Lemma21Result result;
  const std::vector<int>* blocks[2] = {&b0, &b1};
  const int solos[2] = {q0, q1};

  for (int i = 0; i < 2; ++i) {
    auto sys = runtime::replay(factory, prefix);
    block_write(*sys, *blocks[i]);
    const std::size_t mark = sys->step_infos().size();
    result.completed[i] =
        runtime::run_solo_until_calls_complete(*sys, solos[i], 1, solo_cap);
    const auto& infos = sys->step_infos();
    for (std::size_t s = mark; s < infos.size(); ++s) {
      if (infos[s].pid == solos[i] && infos[s].is_write() &&
          !covered.contains(infos[s].reg)) {
        result.writes_outside[i] = true;
        break;
      }
    }
  }

  if (result.writes_outside[0]) {
    result.chosen = 0;
  } else if (result.writes_outside[1]) {
    result.chosen = 1;
  }
  return result;
}

}  // namespace stamped::adversary
