#include "adversary/block_write.hpp"

#include <algorithm>

#include "adversary/covering.hpp"
#include "util/assert.hpp"

namespace stamped::adversary {

using runtime::ISystem;

runtime::Schedule block_write(ISystem& sys, std::vector<int> writers) {
  std::sort(writers.begin(), writers.end());
  runtime::Schedule executed;
  executed.reserve(writers.size());
  for (int pid : writers) {
    const runtime::PendingOp op = sys.pending(pid);
    STAMPED_ASSERT_MSG(op.is_write(),
                       "block-write process " << pid << " is not poised to "
                                              << "write");
    sys.step(pid);
    executed.push_back(pid);
  }
  return executed;
}

bool covers_all(ISystem& sys, const std::vector<int>& writers,
                const std::vector<int>& regs) {
  for (int reg : regs) {
    const bool covered = std::any_of(
        writers.begin(), writers.end(),
        [&](int pid) { return sys.pending(pid).covers(reg); });
    if (!covered) return false;
  }
  return true;
}

std::optional<std::vector<std::vector<int>>> choose_disjoint_covering_sets(
    ISystem& sys, const std::vector<int>& regs, int count) {
  std::vector<std::vector<int>> sets(static_cast<std::size_t>(count));
  std::unordered_set<int> used;
  for (int reg : regs) {
    const std::vector<int> candidates = covering_pids(sys, reg);
    std::vector<int> fresh;
    for (int pid : candidates) {
      if (!used.contains(pid)) fresh.push_back(pid);
    }
    if (static_cast<int>(fresh.size()) < count) return std::nullopt;
    for (int s = 0; s < count; ++s) {
      sets[static_cast<std::size_t>(s)].push_back(
          fresh[static_cast<std::size_t>(s)]);
      used.insert(fresh[static_cast<std::size_t>(s)]);
    }
  }
  return sets;
}

}  // namespace stamped::adversary
