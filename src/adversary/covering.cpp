#include "adversary/covering.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace stamped::adversary {

using runtime::ISystem;
using runtime::PendingOp;

std::vector<int> signature(ISystem& sys) {
  std::vector<int> sig(static_cast<std::size_t>(sys.num_registers()), 0);
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.finished(p)) continue;
    const PendingOp op = sys.pending(p);
    if (op.is_write()) ++sig[static_cast<std::size_t>(op.reg)];
  }
  return sig;
}

std::vector<int> order_signature(std::vector<int> sig) {
  std::sort(sig.begin(), sig.end(), std::greater<int>());
  return sig;
}

std::vector<int> ordered_signature(ISystem& sys) {
  return order_signature(signature(sys));
}

std::vector<int> r3_registers(ISystem& sys) {
  std::vector<int> out;
  const std::vector<int> sig = signature(sys);
  for (std::size_t r = 0; r < sig.size(); ++r) {
    if (sig[r] >= 3) out.push_back(static_cast<int>(r));
  }
  return out;
}

std::vector<int> covering_pids(ISystem& sys, int reg) {
  std::vector<int> out;
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.finished(p)) continue;
    if (sys.pending(p).covers(reg)) out.push_back(p);
  }
  return out;
}

std::vector<int> poised_pids(ISystem& sys,
                             const std::unordered_set<int>& regs) {
  std::vector<int> out;
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.finished(p)) continue;
    const PendingOp op = sys.pending(p);
    if (op.is_write() && regs.contains(op.reg)) out.push_back(p);
  }
  return out;
}

std::vector<int> poised_outside(ISystem& sys,
                                const std::unordered_set<int>& regs) {
  std::vector<int> out;
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.finished(p)) continue;
    const PendingOp op = sys.pending(p);
    if (op.is_write() && !regs.contains(op.reg)) out.push_back(p);
  }
  return out;
}

std::vector<int> idle_pids(ISystem& sys) {
  std::vector<int> out;
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.idle(p) && !sys.finished(p)) out.push_back(p);
  }
  return out;
}

bool is_3k_configuration(ISystem& sys, int k) {
  const std::vector<int> sig = signature(sys);
  const int total = std::accumulate(sig.begin(), sig.end(), 0);
  const int mx = sig.empty() ? 0 : *std::max_element(sig.begin(), sig.end());
  return total == k && mx <= 3;
}

bool is_l_constrained(const std::vector<int>& ordered_sig, int l) {
  for (int c = 1; c <= l && c <= static_cast<int>(ordered_sig.size()); ++c) {
    if (ordered_sig[static_cast<std::size_t>(c - 1)] > l - c) return false;
  }
  return true;
}

bool is_jk_full(const std::vector<int>& ordered_sig, int j, int k) {
  if (j < 1 || j > static_cast<int>(ordered_sig.size())) return false;
  return ordered_sig[static_cast<std::size_t>(j - 1)] >= k;
}

int diagonal_column(const std::vector<int>& ordered_sig, int l) {
  // Paper: "there is at least one j <= m-1 satisfying s_j >= m-j" — the
  // threshold l - j must be at least 1, otherwise the condition is vacuous.
  int best = 0;
  for (int j = 1; j <= static_cast<int>(ordered_sig.size()) && j <= l - 1;
       ++j) {
    if (ordered_sig[static_cast<std::size_t>(j - 1)] >= l - j) best = j;
  }
  return best;
}

std::vector<int> top_covered_registers(ISystem& sys, int j) {
  const std::vector<int> sig = signature(sys);
  std::vector<int> regs(sig.size());
  std::iota(regs.begin(), regs.end(), 0);
  std::stable_sort(regs.begin(), regs.end(), [&](int a, int b) {
    return sig[static_cast<std::size_t>(a)] > sig[static_cast<std::size_t>(b)];
  });
  STAMPED_ASSERT(j <= static_cast<int>(regs.size()));
  regs.resize(static_cast<std::size_t>(j));
  return regs;
}

}  // namespace stamped::adversary
