// Covering-argument vocabulary (paper Sections 2-4), computed on live
// configurations.
//
// A process covers register r when its pending operation writes r. The
// signature sig(C) counts covering processes per register; the ordered
// signature sorts it non-increasingly. These drive both lower-bound
// constructions:
//  - Section 3: (3,k)-configurations and R3(C) (registers covered by >= 3);
//  - Section 4: l-constrained and (j,k)-full configurations on the grid.
#pragma once

#include <unordered_set>
#include <vector>

#include "runtime/isystem.hpp"

namespace stamped::adversary {

/// sig(C): for each register, the number of processes poised to write it.
std::vector<int> signature(runtime::ISystem& sys);

/// ordSig(C): signature sorted non-increasingly.
std::vector<int> ordered_signature(runtime::ISystem& sys);

/// Helper: sorts a signature non-increasingly.
std::vector<int> order_signature(std::vector<int> sig);

/// R3(C): registers covered by at least three processes.
std::vector<int> r3_registers(runtime::ISystem& sys);

/// The pids covering register `reg`.
std::vector<int> covering_pids(runtime::ISystem& sys, int reg);

/// The pids covering some register of `regs`: poised(C, R).
std::vector<int> poised_pids(runtime::ISystem& sys,
                             const std::unordered_set<int>& regs);

/// The pids covering some register NOT in `regs`: poised(C, R-bar).
std::vector<int> poised_outside(runtime::ISystem& sys,
                                const std::unordered_set<int>& regs);

/// Idle processes (zero steps executed).
std::vector<int> idle_pids(runtime::ISystem& sys);

/// A (3,k)-configuration: k processes cover registers, none covered by > 3.
bool is_3k_configuration(runtime::ISystem& sys, int k);

/// l-constrained: the ordered signature satisfies s_c <= l - c for
/// 1 <= c <= l (paper Section 4).
bool is_l_constrained(const std::vector<int>& ordered_sig, int l);

/// (j,k)-full: at least j registers are covered by at least k processes.
bool is_jk_full(const std::vector<int>& ordered_sig, int j, int k);

/// The largest j >= 1 such that the configuration is (j, l-j)-full
/// (ordSig[j-1] >= l - j), or 0 if none. This detects a column reaching the
/// stepped diagonal (paper Figure 1).
int diagonal_column(const std::vector<int>& ordered_sig, int l);

/// The j registers with the highest cover counts (ties broken by index).
std::vector<int> top_covered_registers(runtime::ISystem& sys, int j);

}  // namespace stamped::adversary
