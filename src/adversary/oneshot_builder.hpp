// The Section 4 lower-bound construction, executable.
//
// Given any (correct, deterministic) one-shot timestamp implementation, this
// builder constructs the execution of Theorem 1.2's proof:
//
//  1. Lemma 4.1 (realized constructively in apply_lemma41): from a
//     configuration where B0, B1 cover R (with a third disjoint covering set
//     reserved), all but one of a set U of idle processes can be paused
//     covering registers *outside* R, using at most two block writes. The
//     proof's existential branch choices ("there exists i in {0,1}") are
//     resolved by testing both branches via deterministic replay.
//
//  2. The outer induction: starting from C0, repeatedly apply Lemma 4.1 and
//     cut the resulting schedule at the *shortest prefix* where some new set
//     Q of registers outside R reaches the stepped diagonal of the covering
//     grid (each register of Q covered by >= l - j - |Q| processes). Case 1
//     keeps the constraint l; Case 2 (one new column after two block writes)
//     lowers l by one and can occur at most log2(n) times, since it consumes
//     at least half of the remaining idle processes (paper Figure 2).
//
// The builder records the grid after every extension (paper Figures 1 and 2)
// and the final statistics (j_last >= m - log n - 2 when it stops because
// l - j <= 2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "runtime/scheduler.hpp"

namespace stamped::adversary {

/// Output of one constructive Lemma 4.1 application.
struct Lemma41Output {
  /// The schedule fragment beta sigma beta' sigma' (to append to the base
  /// schedule). Block writes included.
  runtime::Schedule fragment;
  /// Participants of sigma (run first, the larger half) and sigma'.
  std::vector<int> sigma_participants;
  std::vector<int> sigma_prime_participants;
  /// Offsets into `fragment`: [0, first_block_end) is beta,
  /// [second_block_begin, second_block_end) is beta'.
  std::size_t first_block_end = 0;
  std::size_t second_block_begin = 0;
  std::size_t second_block_end = 0;
  /// Every Lemma 2.1-style branch test found a branch (must hold for correct
  /// implementations).
  bool branch_checks_ok = true;
  /// Post-condition verified on the final replay: every participant is
  /// poised to write outside R.
  bool postcondition_ok = true;
};

/// Constructive Lemma 4.1. `base` reaches C from C0; `b0`/`b1` are disjoint
/// covering sets of `covered` in C (a third disjoint covering set must exist
/// but is not executed); `idle_procs` is U (|U| >= 2), all idle in C.
Lemma41Output apply_lemma41(const runtime::SystemFactory& factory,
                            const runtime::Schedule& base,
                            const std::vector<int>& b0,
                            const std::vector<int>& b1,
                            const std::unordered_set<int>& covered,
                            const std::vector<int>& idle_procs,
                            std::uint64_t solo_cap);

/// One extension round of the outer construction.
struct OneShotBuildStep {
  int round = 0;
  int case_kind = 0;  ///< 0: initial step; 1/2: paper Figure 2 cases
  int nu = 0;         ///< number of new diagonal columns (|Q|)
  int j_after = 0;
  int l_after = 0;
  int idle_after = 0;
  std::size_t schedule_length = 0;
  std::vector<int> ordered_sig;  ///< at the new configuration
};

struct OneShotBuildResult {
  int n = 0;
  int m = 0;  ///< grid width floor(sqrt(2n))
  int j_last = 0;
  int l_last = 0;
  int case2_count = 0;          ///< delta; paper: <= log2 n
  int registers_covered = 0;    ///< registers covered in the final config
  int registers_written = 0;    ///< distinct registers written en route
  std::vector<OneShotBuildStep> steps;
  runtime::Schedule schedule;   ///< reaches the final configuration from C0
  std::vector<int> final_ordered_sig;
  std::string stop_reason;
  bool all_checks_ok = true;

  [[nodiscard]] std::string summary() const;
};

struct OneShotBuilderOptions {
  std::uint64_t solo_cap = 200000;
  int max_rounds = 1 << 20;
};

/// Runs the full Section 4 construction against the implementation produced
/// by `factory` (n one-shot processes).
OneShotBuildResult build_oneshot_covering(
    const runtime::SystemFactory& factory, int n,
    const OneShotBuilderOptions& opts = {});

}  // namespace stamped::adversary
