#include "adversary/longlived_builder.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "adversary/block_write.hpp"
#include "adversary/covering.hpp"
#include "util/assert.hpp"

namespace stamped::adversary {

using runtime::ISystem;

namespace {

/// Runs `pid` solo until it is poised to write a register currently covered
/// by at most `max_covered` *other* processes, skipping over completed calls
/// (long-lived processes start their next call). Returns false if the
/// process's program finished first.
bool solo_until_covering_sparse(ISystem& sys, int pid, int max_covered,
                                std::uint64_t cap) {
  for (std::uint64_t steps = 0; steps <= cap; ++steps) {
    if (sys.finished(pid)) return false;
    const runtime::PendingOp op = sys.pending(pid);
    if (op.is_write()) {
      const int others =
          static_cast<int>(covering_pids(sys, op.reg).size()) - 1;
      if (others <= max_covered) return true;
    }
    STAMPED_ASSERT_MSG(steps < cap,
                       "solo cap hit for p" << pid << " while covering");
    sys.step(pid);
  }
  return false;
}

/// Quiesce: every process that is mid-call runs solo until its current call
/// completes (finished processes are skipped). Afterwards no process has a
/// pending half-done getTS — the paper's quiescent configuration.
void quiesce(ISystem& sys, std::uint64_t cap) {
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.finished(p) || sys.idle(p)) continue;
    // A process paused between calls has completed as many calls as it
    // started; detecting "mid-call" generically is implementation-specific,
    // so we conservatively run to the next call boundary.
    runtime::run_solo_until_calls_complete(sys, p, 1, cap);
  }
}

}  // namespace

std::string LongLivedBuildResult::summary() const {
  std::ostringstream os;
  os << "n=" << n << " k=" << k_reached << " covered=" << registers_covered
     << " is3k=" << (is_3k ? "yes" : "no") << " rounds=" << rounds_run
     << " repeat=(" << repeat_first << ',' << repeat_second << ')'
     << " steps=" << schedule.size() << " stop=" << stop_reason;
  return os.str();
}

LongLivedBuildResult build_longlived_covering(
    const runtime::SystemFactory& factory, int n, int target_k,
    const LongLivedBuilderOptions& opts) {
  LongLivedBuildResult result;
  result.n = n;

  auto sys = factory();
  STAMPED_ASSERT(sys->num_processes() == n);

  // ---- Phase A: build a (3,k)-configuration (Lemma 3.2's conclusion) ----
  int k = 0;
  for (int p = 0; p < n && k < target_k; ++p) {
    if (solo_until_covering_sparse(*sys, p, 2, opts.solo_cap)) ++k;
  }
  result.k_reached = k;
  result.final_signature = signature(*sys);
  result.is_3k = is_3k_configuration(*sys, k);
  result.registers_covered = static_cast<int>(std::count_if(
      result.final_signature.begin(), result.final_signature.end(),
      [](int s) { return s > 0; }));

  // ---- Phase B: Lemma 3.1 signature recurrence ---------------------------
  std::map<std::vector<int>, int> seen;
  for (int round = 0; round < opts.recurrence_rounds; ++round) {
    const std::vector<int> sig = signature(*sys);
    result.signature_history.push_back(sig);
    auto [it, inserted] = seen.emplace(sig, round);
    if (!inserted) {
      result.repeat_first = it->second;
      result.repeat_second = round;
      result.rounds_run = round + 1;
      break;
    }
    // Three block writes to the 3-covered registers (if any), then quiesce,
    // then drive processes back to covering positions.
    const std::vector<int> r3 = r3_registers(*sys);
    if (!r3.empty()) {
      auto triples = choose_disjoint_covering_sets(*sys, r3, 3);
      if (triples.has_value()) {
        for (const auto& block : *triples) block_write(*sys, block);
      }
    }
    quiesce(*sys, opts.solo_cap);
    for (int p = 0; p < n; ++p) {
      if (sys->finished(p)) continue;
      const runtime::PendingOp op = sys->pending(p);
      if (op.is_write()) continue;  // already covering
      solo_until_covering_sparse(*sys, p, 2, opts.solo_cap);
    }
    result.rounds_run = round + 1;
  }

  result.stop_reason = result.repeat_second >= 0 ? "signature-repeat"
                                                 : "rounds-exhausted";
  result.schedule = sys->executed_schedule();
  return result;
}

}  // namespace stamped::adversary
