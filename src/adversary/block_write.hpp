// Block writes (paper Section 2): if a process set P covers a register set R,
// executing exactly one step of each process of P (in a fixed permutation
// pi_P) overwrites all of R, obliterating any information stored there.
#pragma once

#include <array>
#include <optional>
#include <unordered_set>
#include <vector>

#include "runtime/isystem.hpp"
#include "runtime/scheduler.hpp"

namespace stamped::adversary {

/// Executes the block write pi_P: one step per process of `writers`, in
/// increasing pid order (the paper's fixed permutation). Every writer must be
/// poised to write. Returns the executed schedule fragment.
runtime::Schedule block_write(runtime::ISystem& sys,
                              std::vector<int> writers);

/// Verifies that `writers` covers every register of `regs` (each register has
/// at least one writer poised on it).
bool covers_all(runtime::ISystem& sys, const std::vector<int>& writers,
                const std::vector<int>& regs);

/// Selects `count` pairwise disjoint covering sets for `regs`, each of size
/// |regs| (one distinct covering process per register per set). Requires each
/// register of `regs` to be covered by at least `count` processes; returns
/// std::nullopt otherwise.
std::optional<std::vector<std::vector<int>>> choose_disjoint_covering_sets(
    runtime::ISystem& sys, const std::vector<int>& regs, int count);

}  // namespace stamped::adversary
