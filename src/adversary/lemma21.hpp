// Empirical form of Lemma 2.1 (Ellen, Fatourou & Ruppert, restated in the
// paper):
//
//   Let C be reachable; let B0, B1, B2, U0, U1 be disjoint process sets where
//   B0, B1, B2 each cover a register set R in C. Then for some i in {0,1},
//   every Ui-only execution from pi_Bi(C) containing a complete getTS writes
//   to some register outside R.
//
// For a *correct* implementation the lemma is a theorem; this module tests
// both branches by deterministic replay and reports which of them actually
// forced an outside write. The lower-bound builders use the same mechanism
// to realize the proofs' existential choices constructively.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "runtime/scheduler.hpp"

namespace stamped::adversary {

struct Lemma21Result {
  /// branch i: did q_i write outside R during (pi_Bi(C); solo q_i)?
  bool writes_outside[2] = {false, false};
  /// A branch where the conclusion holds (-1 if neither — which would
  /// falsify the lemma, i.e. expose an incorrect implementation).
  int chosen = -1;
  /// Whether each q_i completed its getTS within the step cap.
  bool completed[2] = {false, false};

  [[nodiscard]] bool lemma_holds() const { return chosen >= 0; }
};

/// Tests Lemma 2.1 with singleton U_i = {q_i}. `prefix` reaches the
/// configuration C from the initial configuration; `b0`/`b1` must be poised
/// covering sets of `covered` in C.
Lemma21Result test_lemma21(const runtime::SystemFactory& factory,
                           const runtime::Schedule& prefix,
                           const std::vector<int>& b0,
                           const std::vector<int>& b1,
                           const std::unordered_set<int>& covered, int q0,
                           int q1, std::uint64_t solo_cap);

}  // namespace stamped::adversary
