#include "adversary/oneshot_builder.hpp"

#include <algorithm>
#include <sstream>

#include "adversary/block_write.hpp"
#include "adversary/covering.hpp"
#include "util/assert.hpp"
#include "util/bounds.hpp"
#include "util/math.hpp"

namespace stamped::adversary {

using runtime::ISystem;
using runtime::Schedule;
using runtime::SystemFactory;

namespace {

/// Runs `pid` solo until it is poised to write outside `covered` (returns
/// true; the write is NOT executed) or until it completes one getTS call or
/// finishes (returns false). Throws if the step cap is hit — that would mean
/// the implementation is not solo-terminating.
bool solo_until_poised_outside_or_complete(
    ISystem& sys, int pid, const std::unordered_set<int>& covered,
    std::uint64_t cap) {
  const std::uint64_t calls_before = sys.calls_completed(pid);
  for (std::uint64_t steps = 0; steps <= cap; ++steps) {
    if (sys.finished(pid)) return false;
    if (sys.calls_completed(pid) > calls_before) return false;
    const runtime::PendingOp op = sys.pending(pid);
    if (op.is_write() && !covered.contains(op.reg)) return true;
    STAMPED_ASSERT_MSG(steps < cap, "solo cap hit for p"
                                        << pid
                                        << " — not solo-terminating?");
    sys.step(pid);
  }
  return false;  // unreachable
}

/// One branch of the Lemma 4.1 induction: a live system at configuration
/// base + pi_B + delta, plus schedule bookkeeping.
struct Branch {
  std::unique_ptr<ISystem> sys;
  std::vector<int> block;  ///< B (sorted), already executed on sys
  Schedule delta;          ///< steps executed after the block write
  std::vector<int> participants;
  int last_pid = -1;
  /// true: last is paused poised to write outside R (the proof's truncation
  /// point). false: last completed its getTS without writing outside R.
  bool last_poised_outside = false;

  /// Runs `pid` solo on this branch, updating bookkeeping.
  void add(int pid, const std::unordered_set<int>& covered,
           std::uint64_t cap) {
    const std::size_t mark = sys->executed_schedule().size();
    last_poised_outside =
        solo_until_poised_outside_or_complete(*sys, pid, covered, cap);
    const auto& sched = sys->executed_schedule();
    delta.insert(delta.end(), sched.begin() + static_cast<std::ptrdiff_t>(mark),
                 sched.end());
    participants.push_back(pid);
    last_pid = pid;
  }
};

/// Strips the trailing steps of `last_pid` from `delta` (each process's solo
/// steps form one contiguous segment, and the last process's segment is the
/// suffix).
void strip_last_segment(Schedule& delta, int last_pid) {
  while (!delta.empty() && delta.back() == last_pid) delta.pop_back();
  STAMPED_ASSERT_MSG(
      std::find(delta.begin(), delta.end(), last_pid) == delta.end(),
      "last process steps were not a contiguous suffix");
}

}  // namespace

Lemma41Output apply_lemma41(const SystemFactory& factory,
                            const Schedule& base, const std::vector<int>& b0,
                            const std::vector<int>& b1,
                            const std::unordered_set<int>& covered,
                            const std::vector<int>& idle_procs,
                            std::uint64_t solo_cap) {
  STAMPED_ASSERT_MSG(idle_procs.size() >= 2,
                     "Lemma 4.1 needs |U| >= 2, got " << idle_procs.size());
  Lemma41Output out;

  Branch branches[2];
  const std::vector<int>* blocks[2] = {&b0, &b1};
  for (int i = 0; i < 2; ++i) {
    branches[i].sys = runtime::replay(factory, base);
    branches[i].block = *blocks[i];
    std::sort(branches[i].block.begin(), branches[i].block.end());
    block_write(*branches[i].sys, branches[i].block);
    branches[i].add(idle_procs[static_cast<std::size_t>(i)], covered,
                    solo_cap);
  }

  // Inductive extension: place each further idle process on a branch whose
  // last process is known to write outside R (Lemma 2.1 guarantees one).
  for (std::size_t k = 2; k < idle_procs.size(); ++k) {
    int j;
    if (branches[0].last_poised_outside && branches[1].last_poised_outside) {
      j = branches[0].participants.size() <= branches[1].participants.size()
              ? 0
              : 1;
    } else if (branches[0].last_poised_outside) {
      j = 0;
    } else if (branches[1].last_poised_outside) {
      j = 1;
    } else {
      out.branch_checks_ok = false;  // would falsify Lemma 2.1
      break;
    }
    branches[j].add(idle_procs[k], covered, solo_cap);
  }

  // Final application: the branch whose last process writes outside R keeps
  // it (paused, poised outside); the other branch drops its last process
  // entirely.
  int j;
  if (branches[0].last_poised_outside) {
    j = 0;
  } else if (branches[1].last_poised_outside) {
    j = 1;
  } else {
    out.branch_checks_ok = false;
    j = 0;
  }
  Schedule sigma[2] = {branches[0].delta, branches[1].delta};
  std::vector<int> parts[2] = {branches[0].participants,
                               branches[1].participants};
  const int dropped = 1 - j;
  if (!parts[dropped].empty()) {
    strip_last_segment(sigma[dropped], branches[dropped].last_pid);
    parts[dropped].pop_back();
  }

  // Relabel so the larger half runs first (paper: |sigma| >= |sigma'|).
  const int first = parts[j].size() >= parts[dropped].size() ? j : dropped;
  const int second = 1 - first;

  out.fragment.insert(out.fragment.end(), branches[first].block.begin(),
                      branches[first].block.end());
  out.first_block_end = out.fragment.size();
  out.fragment.insert(out.fragment.end(), sigma[first].begin(),
                      sigma[first].end());
  out.second_block_begin = out.fragment.size();
  out.fragment.insert(out.fragment.end(), branches[second].block.begin(),
                      branches[second].block.end());
  out.second_block_end = out.fragment.size();
  out.fragment.insert(out.fragment.end(), sigma[second].begin(),
                      sigma[second].end());
  out.sigma_participants = parts[first];
  out.sigma_prime_participants = parts[second];

  // Verify the post-condition on a fresh replay of the combined schedule:
  // every participant ends poised to write outside R (Lemma 4.1 (b)).
  if (out.branch_checks_ok) {
    auto sys = runtime::replay(factory, base);
    runtime::run_script(*sys, out.fragment);
    for (const auto& plist : {out.sigma_participants,
                              out.sigma_prime_participants}) {
      for (int pid : plist) {
        const runtime::PendingOp op = sys->pending(pid);
        if (!(op.is_write() && !covered.contains(op.reg))) {
          out.postcondition_ok = false;
        }
      }
    }
  }
  return out;
}

std::string OneShotBuildResult::summary() const {
  std::ostringstream os;
  os << "n=" << n << " m=" << m << " j_last=" << j_last
     << " l_last=" << l_last << " case2=" << case2_count
     << " covered=" << registers_covered << " written=" << registers_written
     << " steps=" << schedule.size() << " stop=" << stop_reason
     << " checks=" << (all_checks_ok ? "ok" : "FAILED");
  return os.str();
}

OneShotBuildResult build_oneshot_covering(const SystemFactory& factory, int n,
                                          const OneShotBuilderOptions& opts) {
  OneShotBuildResult result;
  result.n = n;
  result.m = static_cast<int>(util::bounds::oneshot_grid_m(n));
  const int m = result.m;

  Schedule base;
  std::unordered_set<int> covered_set;
  std::vector<int> covered_regs;
  int j = 0;
  int l = m;

  // ---- initial step: Lemma 4.1 from C0 with empty block writes ----------
  {
    auto probe = factory();
    std::vector<int> all_procs;
    for (int p = 0; p < probe->num_processes(); ++p) all_procs.push_back(p);
    Lemma41Output out = apply_lemma41(factory, base, {}, {}, covered_set,
                                      all_procs, opts.solo_cap);
    result.all_checks_ok &= out.branch_checks_ok && out.postcondition_ok;

    // Walk the fragment to the shortest prefix where a column reaches the
    // stepped diagonal: exists j1 >= 1 with ordSig[j1-1] >= m - j1.
    auto sys = runtime::replay(factory, base);
    std::size_t prefix = 0;
    int j1 = 0;
    for (std::size_t idx = 0; idx < out.fragment.size(); ++idx) {
      sys->step(out.fragment[idx]);
      const std::vector<int> ord = ordered_signature(*sys);
      const int dc = diagonal_column(ord, m);
      if (dc >= 1) {
        j1 = dc;
        prefix = idx + 1;
        break;
      }
    }
    if (j1 == 0) {
      result.stop_reason = "initial-diagonal-unreachable";
      result.schedule = base;
      return result;
    }
    base.insert(base.end(), out.fragment.begin(),
                out.fragment.begin() + static_cast<std::ptrdiff_t>(prefix));
    covered_regs = top_covered_registers(*sys, j1);
    covered_set = std::unordered_set<int>(covered_regs.begin(),
                                          covered_regs.end());
    j = j1;
    l = m;

    OneShotBuildStep step;
    step.round = 0;
    step.case_kind = 0;
    step.nu = j1;
    step.j_after = j;
    step.l_after = l;
    step.idle_after = static_cast<int>(idle_pids(*sys).size());
    step.schedule_length = base.size();
    step.ordered_sig = ordered_signature(*sys);
    result.steps.push_back(std::move(step));
  }

  // ---- extension rounds ---------------------------------------------------
  int round = 1;
  while (round <= opts.max_rounds) {
    if (l - j < 3) {
      result.stop_reason = "l-j<=2";
      break;
    }
    auto sys = runtime::replay(factory, base);
    const std::vector<int> idle = idle_pids(*sys);
    if (idle.size() < 2) {
      result.stop_reason = "idle<2";
      break;
    }
    auto triples = choose_disjoint_covering_sets(*sys, covered_regs, 3);
    if (!triples.has_value()) {
      result.stop_reason = "covering-depleted";
      break;
    }
    // (*triples)[2] is the reserved third covering set B2 required by
    // Lemma 2.1; it is never scheduled.
    Lemma41Output out =
        apply_lemma41(factory, base, (*triples)[0], (*triples)[1],
                      covered_set, idle, opts.solo_cap);
    result.all_checks_ok &= out.branch_checks_ok && out.postcondition_ok;
    if (!out.branch_checks_ok) {
      result.stop_reason = "lemma-branch-failed";
      break;
    }

    // Walk to the shortest prefix where a non-empty Q outside R reaches the
    // diagonal: nu registers outside R each covered by >= l - j - nu.
    auto walk = runtime::replay(factory, base);
    std::size_t prefix = 0;
    int nu = 0;
    std::vector<int> q_regs;
    for (std::size_t idx = 0; idx < out.fragment.size(); ++idx) {
      walk->step(out.fragment[idx]);
      // Cover counts of registers outside R, sorted descending.
      const std::vector<int> sig = signature(*walk);
      std::vector<std::pair<int, int>> outside;  // (count, reg)
      for (std::size_t r = 0; r < sig.size(); ++r) {
        if (!covered_set.contains(static_cast<int>(r)) && sig[r] > 0) {
          outside.emplace_back(sig[r], static_cast<int>(r));
        }
      }
      std::sort(outside.begin(), outside.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (int candidate = 1;
           candidate <= static_cast<int>(outside.size()) && nu == 0;
           ++candidate) {
        const int threshold = std::max(1, l - j - candidate);
        if (outside[static_cast<std::size_t>(candidate - 1)].first >=
            threshold) {
          nu = candidate;
          for (int c = 0; c < candidate; ++c) {
            q_regs.push_back(outside[static_cast<std::size_t>(c)].second);
          }
        }
      }
      if (nu > 0) {
        prefix = idx + 1;
        break;
      }
    }
    if (nu == 0) {
      result.stop_reason = "no-extension";
      break;
    }

    // Case analysis (paper Figure 2): Case 2 iff the prefix runs past the
    // second block write AND only one new column reached the diagonal.
    const bool one_block = prefix <= out.second_block_begin;
    const int case_kind = (one_block || nu >= 2) ? 1 : 2;
    if (case_kind == 2) {
      ++result.case2_count;
      --l;
    }

    base.insert(base.end(), out.fragment.begin(),
                out.fragment.begin() + static_cast<std::ptrdiff_t>(prefix));
    for (int r : q_regs) {
      covered_regs.push_back(r);
      covered_set.insert(r);
    }
    j += nu;

    OneShotBuildStep step;
    step.round = round;
    step.case_kind = case_kind;
    step.nu = nu;
    step.j_after = j;
    step.l_after = l;
    step.idle_after = static_cast<int>(idle_pids(*walk).size());
    step.schedule_length = base.size();
    step.ordered_sig = ordered_signature(*walk);
    result.steps.push_back(std::move(step));
    ++round;
  }
  if (result.stop_reason.empty()) result.stop_reason = "max-rounds";

  // Final configuration statistics.
  auto final_sys = runtime::replay(factory, base);
  result.schedule = base;
  result.j_last = j;
  result.l_last = l;
  result.final_ordered_sig = ordered_signature(*final_sys);
  result.registers_covered = static_cast<int>(std::count_if(
      result.final_ordered_sig.begin(), result.final_ordered_sig.end(),
      [](int s) { return s > 0; }));
  result.registers_written = final_sys->registers_written();
  return result;
}

}  // namespace stamped::adversary
