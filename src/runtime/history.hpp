// Method-call histories and the happens-before relation.
//
// Programs record every completed method call (getTS) in a CallLog. A call g1
// happens before g2 (paper: g1 -> g2) iff g1's response event precedes g2's
// invocation event. Event stamps come from SimCtx::stamp() in simulation or
// from a shared atomic counter under real threads; in both cases stamps are
// strictly monotone across events, so `responded_at < invoked_at` captures
// the real-time precedence relation soundly.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace stamped::runtime {

/// One completed method call that returned a timestamp of type Ts.
template <class Ts>
struct CallRecord {
  int pid = -1;
  int call_index = 0;  ///< k for the k-th call by this process (0-based)
  Ts ts{};
  std::uint64_t invoked_at = 0;
  std::uint64_t responded_at = 0;

  /// Paper's happens-before: this call's response precedes other's invocation.
  [[nodiscard]] bool happens_before(const CallRecord& other) const {
    return responded_at < other.invoked_at;
  }
};

/// Append-only log of completed calls. Thread-safe (used by both the
/// single-threaded simulator and real-thread stress tests).
template <class Ts>
class CallLog {
 public:
  void record(CallRecord<Ts> rec) {
    std::lock_guard<std::mutex> lock(mu_);
    STAMPED_ASSERT_MSG(rec.invoked_at < rec.responded_at,
                       "call must span at least one event");
    records_.push_back(std::move(rec));
  }

  /// Snapshot of all records (copy; safe to iterate while others record).
  [[nodiscard]] std::vector<CallRecord<Ts>> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<CallRecord<Ts>> records_;
};

/// Renders a schedule as a compact string, e.g. "0 1 1 2" (debugging aid).
std::string schedule_to_string(const std::vector<int>& schedule,
                               std::size_t max_entries = 64);

/// Parses a whitespace-separated schedule string (inverse of the above for
/// short schedules); throws invariant_error on malformed input.
std::vector<int> parse_schedule(const std::string& text);

}  // namespace stamped::runtime
