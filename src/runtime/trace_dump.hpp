// Human-readable rendering of executions: step traces, register files, and
// per-process views. Debugging aid used by examples and failure messages.
#pragma once

#include <sstream>
#include <string>

#include "runtime/isystem.hpp"
#include "runtime/system.hpp"

namespace stamped::runtime {

/// Renders the last `max_steps` steps of a typed trace, one line per step:
///   #12 p3 write R[2] := <[p3.0],2>
template <RegisterValue V>
std::string dump_trace(const System<V>& sys, std::size_t max_steps = 64) {
  const auto& trace = sys.trace();
  const std::size_t begin =
      trace.size() > max_steps ? trace.size() - max_steps : 0;
  std::ostringstream os;
  if (begin > 0) os << "… (" << begin << " earlier steps)\n";
  for (std::size_t i = begin; i < trace.size(); ++i) {
    const auto& e = trace[i];
    os << '#' << e.index << " p" << e.pid << ' ' << op_kind_name(e.kind)
       << " R[" << e.reg << ']';
    switch (e.kind) {
      case OpKind::kRead:
        os << " -> " << value_repr(e.observed);
        break;
      case OpKind::kWrite:
        os << " := " << value_repr(e.written);
        break;
      case OpKind::kSwap:
      case OpKind::kFetchAdd:
        os << " := " << value_repr(e.written) << " (was "
           << value_repr(e.observed) << ')';
        break;
      case OpKind::kNone:
        break;
    }
    os << '\n';
  }
  return os.str();
}

/// Renders the current register file, one line per register, with covering
/// process lists:
///   R[0] = <[p0.0],1>   covered by {p2 p3}
inline std::string dump_registers(ISystem& sys) {
  std::ostringstream os;
  for (int r = 0; r < sys.num_registers(); ++r) {
    os << "R[" << r << "] = " << sys.register_repr(r);
    std::string coverers;
    for (int p = 0; p < sys.num_processes(); ++p) {
      if (!sys.finished(p) && sys.pending(p).covers(r)) {
        coverers += (coverers.empty() ? "p" : " p") + std::to_string(p);
      }
    }
    if (!coverers.empty()) os << "   covered by {" << coverers << '}';
    os << '\n';
  }
  return os.str();
}

/// One-line status of every process: steps, calls, pending op.
inline std::string dump_processes(ISystem& sys) {
  std::ostringstream os;
  for (int p = 0; p < sys.num_processes(); ++p) {
    os << 'p' << p << ": steps=" << sys.steps_taken_by(p)
       << " calls=" << sys.calls_completed(p);
    if (sys.failed(p)) {
      os << " FAILED(" << sys.failure_message(p) << ')';
    } else if (sys.finished(p)) {
      os << " finished";
    } else {
      const PendingOp op = sys.pending(p);
      os << " pending=" << op_kind_name(op.kind);
      if (op.kind != OpKind::kNone) os << "@R[" << op.reg << ']';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace stamped::runtime
