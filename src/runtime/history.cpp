#include "runtime/history.hpp"

#include <sstream>

namespace stamped::runtime {

std::string schedule_to_string(const std::vector<int>& schedule,
                               std::size_t max_entries) {
  std::ostringstream os;
  const std::size_t shown =
      schedule.size() < max_entries ? schedule.size() : max_entries;
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ' ';
    os << schedule[i];
  }
  if (shown < schedule.size()) {
    os << " …(+" << (schedule.size() - shown) << ")";
  }
  return os.str();
}

std::vector<int> parse_schedule(const std::string& text) {
  std::vector<int> out;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    try {
      std::size_t pos = 0;
      const int v = std::stoi(token, &pos);
      STAMPED_ASSERT_MSG(pos == token.size(),
                         "bad schedule token '" << token << "'");
      STAMPED_ASSERT_MSG(v >= 0, "negative pid in schedule");
      out.push_back(v);
    } catch (const std::invalid_argument&) {
      STAMPED_ASSERT_MSG(false, "bad schedule token '" << token << "'");
    } catch (const std::out_of_range&) {
      STAMPED_ASSERT_MSG(false, "schedule token out of range '" << token
                                                                << "'");
    }
  }
  return out;
}

}  // namespace stamped::runtime
