// Schedulers: drivers that choose which process takes the next step.
//
// A schedule (paper: sigma) is a sequence of process indices. The helpers in
// this header realize the executions used throughout the paper:
//  - run_script:      the execution (C; sigma) for an explicit sigma
//  - run_round_robin: a fair schedule until completion
//  - run_random:      a uniformly random adversary (seeded, reproducible)
//  - solo executions: run one process until its method call completes, or
//                     until it is poised to write outside a register set
//                     (the building block of the covering arguments)
//  - replay:          reconstruct sigma(C0) from a factory — configuration
//                     cloning for the lower-bound adversaries
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "runtime/isystem.hpp"
#include "util/rng.hpp"

namespace stamped::runtime {

/// A schedule: one process index per step.
using Schedule = std::vector<int>;

/// Creates a fresh system in its initial configuration C0. Factories must be
/// deterministic: two systems from the same factory stepped through the same
/// schedule reach indistinguishable configurations.
using SystemFactory = std::function<std::unique_ptr<ISystem>()>;

/// Executes the steps of `schedule` in order. Every scheduled process must
/// have a pending operation (i.e. not be finished). Returns the number of
/// steps executed (== schedule.size()).
std::uint64_t run_script(ISystem& sys, std::span<const int> schedule);

/// Round-robin over unfinished processes until all finish or `max_steps` is
/// reached. Returns steps executed.
std::uint64_t run_round_robin(ISystem& sys, std::uint64_t max_steps);

/// Uniformly random choice among unfinished processes each step, until all
/// finish or `max_steps`. Returns steps executed.
std::uint64_t run_random(ISystem& sys, util::Rng& rng,
                         std::uint64_t max_steps);

/// Runs only `pid` until it has completed `calls` additional method calls
/// (paper: a solo execution containing a complete getTS()).
/// Returns true on success; false if the process finished or `max_steps` was
/// hit first.
bool run_solo_until_calls_complete(ISystem& sys, int pid, std::uint64_t calls,
                                   std::uint64_t max_steps);

/// Runs only `pid` until it is poised to write to some register outside
/// `covered` (the process then covers a register outside the set). The poised
/// write is NOT executed. Returns true if such a point was reached; false if
/// the process finished (or hit `max_steps`) without ever being poised to
/// write outside `covered`.
bool run_solo_until_poised_outside(ISystem& sys, int pid,
                                   const std::unordered_set<int>& covered,
                                   std::uint64_t max_steps);

/// Steps `pid` while `predicate(sys)` is false; stops when the predicate
/// turns true, the process finishes, or `max_steps` is hit. Returns whether
/// the predicate held at stop.
bool run_solo_until(ISystem& sys, int pid,
                    const std::function<bool(ISystem&)>& predicate,
                    std::uint64_t max_steps);

/// Parameters of the crash/restart adversary (run_crash_restart): how many
/// crash events to inject, whether victims recover, and when.
struct CrashPlan {
  /// Crash events to attempt. Events are drawn one at a time: a random
  /// victim plus a threshold of additional own-steps after which it dies
  /// mid-call. An event whose victim finishes first is dropped (wait-freedom
  /// can beat the adversary), so CrashStats::crashes may be smaller.
  int crashes = 1;
  /// Recover each victim after `restart_delay` scheduler ticks with fresh
  /// local state (ISystem::restart_process — requires supports_restart()).
  /// When false, victims simply never take another step.
  bool restart = false;
  /// A victim dies after [min_victim_steps, max_victim_steps] further steps
  /// of its own (uniform, seeded) — mid-call for any multi-step algorithm.
  std::uint64_t min_victim_steps = 1;
  std::uint64_t max_victim_steps = 24;
  /// Scheduler ticks a crashed victim stays down before restarting.
  std::uint64_t restart_delay = 8;
};

/// Outcome of one crash/restart run.
struct CrashStats {
  std::uint64_t crashes = 0;   ///< crash events that actually fired
  std::uint64_t restarts = 0;  ///< victims recovered with fresh local state
  std::uint64_t steps = 0;     ///< shared-memory steps executed
  std::uint64_t crashed_down = 0;  ///< processes still crashed at the end
  /// Every process that was never crashed, or was restarted, finished its
  /// program — the wait-freedom obligation under this adversary.
  bool survivors_finished = false;
};

/// The crash/restart adversary: drives `sys` under a seeded random schedule
/// while killing processes mid-call per `plan` (and, optionally, restarting
/// them with fresh local state). Crashed processes are never scheduled while
/// down, so their pending ops stay poised forever — exactly a crashed
/// process of the paper's model, which may cover registers but never writes
/// again. Deterministic given (sys state, rng state, plan).
CrashStats run_crash_restart(ISystem& sys, util::Rng& rng,
                             const CrashPlan& plan, std::uint64_t max_steps);

/// Parameters of the deterministic jitter/stall driver (run_jittered).
struct JitterSpec {
  /// After each of its steps, a process stalls with probability
  /// 1/stall_period (seeded Bernoulli; must be >= 1; 1 = stall after every
  /// step).
  std::uint64_t stall_period = 8;
  /// A stall lasts [1, max_stall] scheduler ticks (uniform, seeded).
  std::uint64_t max_stall = 24;
};

/// Outcome of one jittered run.
struct JitterStats {
  std::uint64_t steps = 0;   ///< shared-memory steps executed
  std::uint64_t stalls = 0;  ///< stall windows injected
  std::uint64_t ticks = 0;   ///< scheduler ticks (>= steps; idle ticks stall)
};

/// The jitter adversary: a seeded random schedule where processes fall into
/// stall windows — ticks during which they are never scheduled — modeling
/// preemption/jitter. When every live process is stalled the tick clock
/// advances without a step (time passes, nobody runs). Stalls only reorder
/// steps, so any property that holds under every schedule is preserved;
/// deterministic given (sys state, rng state, spec).
JitterStats run_jittered(ISystem& sys, util::Rng& rng, const JitterSpec& spec,
                         std::uint64_t max_steps);

/// Builds sigma(C0): fresh system from `factory`, stepped through `schedule`.
std::unique_ptr<ISystem> replay(const SystemFactory& factory,
                                std::span<const int> schedule);

/// Throws stamped::invariant_error if any process of `sys` failed, with the
/// failure message. Call after driving a system to surface program bugs.
void check_no_failures(ISystem& sys);

}  // namespace stamped::runtime
