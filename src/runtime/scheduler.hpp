// Schedulers: drivers that choose which process takes the next step.
//
// A schedule (paper: sigma) is a sequence of process indices. The helpers in
// this header realize the executions used throughout the paper:
//  - run_script:      the execution (C; sigma) for an explicit sigma
//  - run_round_robin: a fair schedule until completion
//  - run_random:      a uniformly random adversary (seeded, reproducible)
//  - solo executions: run one process until its method call completes, or
//                     until it is poised to write outside a register set
//                     (the building block of the covering arguments)
//  - replay:          reconstruct sigma(C0) from a factory — configuration
//                     cloning for the lower-bound adversaries
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "runtime/isystem.hpp"
#include "util/rng.hpp"

namespace stamped::runtime {

/// A schedule: one process index per step.
using Schedule = std::vector<int>;

/// Creates a fresh system in its initial configuration C0. Factories must be
/// deterministic: two systems from the same factory stepped through the same
/// schedule reach indistinguishable configurations.
using SystemFactory = std::function<std::unique_ptr<ISystem>()>;

/// Executes the steps of `schedule` in order. Every scheduled process must
/// have a pending operation (i.e. not be finished). Returns the number of
/// steps executed (== schedule.size()).
std::uint64_t run_script(ISystem& sys, std::span<const int> schedule);

/// Round-robin over unfinished processes until all finish or `max_steps` is
/// reached. Returns steps executed.
std::uint64_t run_round_robin(ISystem& sys, std::uint64_t max_steps);

/// Uniformly random choice among unfinished processes each step, until all
/// finish or `max_steps`. Returns steps executed.
std::uint64_t run_random(ISystem& sys, util::Rng& rng,
                         std::uint64_t max_steps);

/// Runs only `pid` until it has completed `calls` additional method calls
/// (paper: a solo execution containing a complete getTS()).
/// Returns true on success; false if the process finished or `max_steps` was
/// hit first.
bool run_solo_until_calls_complete(ISystem& sys, int pid, std::uint64_t calls,
                                   std::uint64_t max_steps);

/// Runs only `pid` until it is poised to write to some register outside
/// `covered` (the process then covers a register outside the set). The poised
/// write is NOT executed. Returns true if such a point was reached; false if
/// the process finished (or hit `max_steps`) without ever being poised to
/// write outside `covered`.
bool run_solo_until_poised_outside(ISystem& sys, int pid,
                                   const std::unordered_set<int>& covered,
                                   std::uint64_t max_steps);

/// Steps `pid` while `predicate(sys)` is false; stops when the predicate
/// turns true, the process finishes, or `max_steps` is hit. Returns whether
/// the predicate held at stop.
bool run_solo_until(ISystem& sys, int pid,
                    const std::function<bool(ISystem&)>& predicate,
                    std::uint64_t max_steps);

/// Builds sigma(C0): fresh system from `factory`, stepped through `schedule`.
std::unique_ptr<ISystem> replay(const SystemFactory& factory,
                                std::span<const int> schedule);

/// Throws stamped::invariant_error if any process of `sys` failed, with the
/// failure message. Call after driving a system to surface program bugs.
void check_no_failures(ISystem& sys);

}  // namespace stamped::runtime
