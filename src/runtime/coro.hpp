// Coroutine machinery for simulated processes.
//
// Every process of the simulated asynchronous shared-memory system (see
// runtime/system.hpp) is a C++20 coroutine. The coroutine suspends at each
// shared-memory operation (read/write/swap); the scheduler decides which
// process's pending operation executes next. This realizes the paper's model
// exactly: a *configuration* is the tuple of process states (suspended
// coroutine frames) and register values, and a *step* is one register
// operation by one process. A process whose pending operation is a write to
// register r is "poised to write r", i.e. it covers r.
//
// Two task types are provided:
//  - ProcessTask: the top-level program of one process (returns nothing;
//    results are recorded through runtime::CallLog).
//  - SubTask<T>: a nested coroutine (e.g. the double-collect scan) awaited by
//    a ProcessTask or another SubTask. Suspension inside a subtask suspends
//    the whole logical process; completion resumes the awaiter via symmetric
//    transfer.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace stamped::runtime {

/// Top-level coroutine for one simulated process. Lazily started: the system
/// resumes it for the first time when the process is first scheduled or
/// inspected, running it up to its first shared-memory operation.
class ProcessTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    ProcessTask get_return_object() {
      return ProcessTask{Handle::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Keep the frame alive after completion so the system can inspect
    // done()/exception; the owning ProcessTask destroys it.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  ProcessTask() = default;
  explicit ProcessTask(Handle h) : handle_(h) {}

  ProcessTask(const ProcessTask&) = delete;
  ProcessTask& operator=(const ProcessTask&) = delete;

  ProcessTask(ProcessTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  ProcessTask& operator=(ProcessTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }

  ~ProcessTask() { destroy(); }

  [[nodiscard]] Handle handle() const { return handle_; }
  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::exception_ptr exception() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

/// Nested coroutine returning a value of type T. Awaiting a SubTask starts it
/// via symmetric transfer; when the subtask completes, control transfers back
/// to the awaiting coroutine. Shared-memory suspensions inside the subtask
/// suspend the entire process (the scheduler resumes the innermost frame).
template <class T>
class [[nodiscard]] SubTask {
  static_assert(!std::is_void_v<T>,
                "SubTask<void> is not needed by this library");

 public:
  struct promise_type {
    std::optional<T> value;
    std::exception_ptr exception;
    std::coroutine_handle<> continuation;

    SubTask get_return_object() {
      return SubTask{Handle::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  SubTask() = default;
  explicit SubTask(Handle h) : handle_(h) {}

  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask(SubTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  SubTask& operator=(SubTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~SubTask() { destroy(); }

  // Awaiter interface: `T result = co_await some_subtask(...);`
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    STAMPED_ASSERT(handle_);
    handle_.promise().continuation = cont;
    return handle_;  // symmetric transfer: start the subtask now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    STAMPED_ASSERT_MSG(p.value.has_value(),
                       "subtask finished without producing a value");
    return std::move(*p.value);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

}  // namespace stamped::runtime
