#include "runtime/scheduler.hpp"

#include "util/assert.hpp"

namespace stamped::runtime {

std::uint64_t run_script(ISystem& sys, std::span<const int> schedule) {
  for (int pid : schedule) {
    STAMPED_ASSERT_MSG(!sys.finished(pid),
                       "schedule names finished process " << pid);
    sys.step(pid);
  }
  return schedule.size();
}

std::uint64_t run_round_robin(ISystem& sys, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  const int n = sys.num_processes();
  bool progressed = true;
  while (steps < max_steps && progressed) {
    progressed = false;
    for (int p = 0; p < n && steps < max_steps; ++p) {
      if (sys.finished(p)) continue;
      sys.step(p);
      ++steps;
      progressed = true;
    }
  }
  return steps;
}

std::uint64_t run_random(ISystem& sys, util::Rng& rng,
                         std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  const int n = sys.num_processes();
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(n));
  while (steps < max_steps) {
    live.clear();
    for (int p = 0; p < n; ++p) {
      if (!sys.finished(p)) live.push_back(p);
    }
    if (live.empty()) break;
    const int pid =
        live[static_cast<std::size_t>(rng.next_below(live.size()))];
    sys.step(pid);
    ++steps;
  }
  return steps;
}

bool run_solo_until_calls_complete(ISystem& sys, int pid, std::uint64_t calls,
                                   std::uint64_t max_steps) {
  const std::uint64_t target = sys.calls_completed(pid) + calls;
  std::uint64_t steps = 0;
  while (sys.calls_completed(pid) < target) {
    if (sys.finished(pid) || steps >= max_steps) return false;
    sys.step(pid);
    ++steps;
  }
  return true;
}

bool run_solo_until_poised_outside(ISystem& sys, int pid,
                                   const std::unordered_set<int>& covered,
                                   std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps <= max_steps) {
    if (sys.finished(pid)) return false;
    const PendingOp op = sys.pending(pid);
    if (op.is_write() && covered.find(op.reg) == covered.end()) return true;
    if (steps == max_steps) return false;
    sys.step(pid);
    ++steps;
  }
  return false;
}

bool run_solo_until(ISystem& sys, int pid,
                    const std::function<bool(ISystem&)>& predicate,
                    std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!predicate(sys)) {
    if (sys.finished(pid) || steps >= max_steps) return false;
    sys.step(pid);
    ++steps;
  }
  return true;
}

CrashStats run_crash_restart(ISystem& sys, util::Rng& rng,
                             const CrashPlan& plan, std::uint64_t max_steps) {
  STAMPED_ASSERT(plan.crashes >= 0);
  STAMPED_ASSERT(plan.min_victim_steps <= plan.max_victim_steps);
  STAMPED_ASSERT_MSG(!plan.restart || sys.supports_restart(),
                     "CrashPlan::restart requires a system with "
                     "supports_restart()");
  const int n = sys.num_processes();
  CrashStats st;
  std::vector<char> down(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> up_at(static_cast<std::size_t>(n), 0);
  std::uint64_t tick = 0;

  // One pending crash event at a time: victim + cumulative own-step
  // threshold, drawn relative to the victim's current step count so a
  // restarted process can be re-victimized without firing instantly.
  int remaining = plan.crashes;
  int victim = -1;
  std::uint64_t victim_dies_at = 0;
  const auto draw_event = [&] {
    victim = -1;
    if (remaining == 0) return;
    --remaining;
    victim = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    victim_dies_at =
        sys.steps_taken_by(victim) + plan.min_victim_steps +
        rng.next_below(plan.max_victim_steps - plan.min_victim_steps + 1);
  };
  draw_event();

  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(n));
  while (st.steps < max_steps) {
    ++tick;
    // Fire (or drop) due crash events. A victim that finished or is already
    // down cannot be killed by this event; redraw until one can fire.
    while (victim >= 0 &&
           (down[static_cast<std::size_t>(victim)] || sys.finished(victim))) {
      draw_event();
    }
    if (victim >= 0 && sys.steps_taken_by(victim) >= victim_dies_at) {
      down[static_cast<std::size_t>(victim)] = 1;
      ++st.crashes;
      if (plan.restart) {
        up_at[static_cast<std::size_t>(victim)] = tick + plan.restart_delay;
      }
      draw_event();
    }
    // Recover victims whose downtime elapsed.
    if (plan.restart) {
      for (int p = 0; p < n; ++p) {
        if (down[static_cast<std::size_t>(p)] &&
            tick >= up_at[static_cast<std::size_t>(p)]) {
          sys.restart_process(p);
          ++st.restarts;
          down[static_cast<std::size_t>(p)] = 0;
        }
      }
    }
    // Random step among live, non-crashed processes.
    live.clear();
    bool any_down = false;
    for (int p = 0; p < n; ++p) {
      if (down[static_cast<std::size_t>(p)]) {
        any_down = true;
      } else if (!sys.finished(p)) {
        live.push_back(p);
      }
    }
    if (live.empty()) {
      // With restarts pending, let ticks elapse until a victim recovers;
      // without, the run is over (crashed processes never step again).
      if (plan.restart && any_down) continue;
      break;
    }
    sys.step(live[static_cast<std::size_t>(rng.next_below(live.size()))]);
    ++st.steps;
  }

  st.survivors_finished = true;
  for (int p = 0; p < n; ++p) {
    if (down[static_cast<std::size_t>(p)]) {
      ++st.crashed_down;
    } else if (!sys.finished(p)) {
      st.survivors_finished = false;
    }
  }
  return st;
}

JitterStats run_jittered(ISystem& sys, util::Rng& rng, const JitterSpec& spec,
                         std::uint64_t max_steps) {
  STAMPED_ASSERT(spec.stall_period >= 1);
  STAMPED_ASSERT(spec.max_stall >= 1);
  const int n = sys.num_processes();
  JitterStats st;
  std::vector<std::uint64_t> stalled_until(static_cast<std::size_t>(n), 0);
  std::vector<int> eligible;
  eligible.reserve(static_cast<std::size_t>(n));
  while (st.steps < max_steps) {
    ++st.ticks;
    eligible.clear();
    bool any_live = false;
    for (int p = 0; p < n; ++p) {
      if (sys.finished(p)) continue;
      any_live = true;
      if (stalled_until[static_cast<std::size_t>(p)] < st.ticks) {
        eligible.push_back(p);
      }
    }
    if (!any_live) break;
    // Every live process is mid-stall: the tick clock advances, nobody
    // steps. Stalls are finite, so this always unblocks.
    if (eligible.empty()) continue;
    const int pid =
        eligible[static_cast<std::size_t>(rng.next_below(eligible.size()))];
    sys.step(pid);
    ++st.steps;
    if (!sys.finished(pid) && rng.chance(1, spec.stall_period)) {
      stalled_until[static_cast<std::size_t>(pid)] =
          st.ticks + 1 + rng.next_below(spec.max_stall);
      ++st.stalls;
    }
  }
  return st;
}

std::unique_ptr<ISystem> replay(const SystemFactory& factory,
                                std::span<const int> schedule) {
  auto sys = factory();
  STAMPED_ASSERT(sys != nullptr);
  run_script(*sys, schedule);
  return sys;
}

void check_no_failures(ISystem& sys) {
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.failed(p)) {
      STAMPED_ASSERT_MSG(false, "process " << p << " failed: "
                                           << sys.failure_message(p));
    }
  }
}

}  // namespace stamped::runtime
