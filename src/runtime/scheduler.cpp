#include "runtime/scheduler.hpp"

#include "util/assert.hpp"

namespace stamped::runtime {

std::uint64_t run_script(ISystem& sys, std::span<const int> schedule) {
  for (int pid : schedule) {
    STAMPED_ASSERT_MSG(!sys.finished(pid),
                       "schedule names finished process " << pid);
    sys.step(pid);
  }
  return schedule.size();
}

std::uint64_t run_round_robin(ISystem& sys, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  const int n = sys.num_processes();
  bool progressed = true;
  while (steps < max_steps && progressed) {
    progressed = false;
    for (int p = 0; p < n && steps < max_steps; ++p) {
      if (sys.finished(p)) continue;
      sys.step(p);
      ++steps;
      progressed = true;
    }
  }
  return steps;
}

std::uint64_t run_random(ISystem& sys, util::Rng& rng,
                         std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  const int n = sys.num_processes();
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(n));
  while (steps < max_steps) {
    live.clear();
    for (int p = 0; p < n; ++p) {
      if (!sys.finished(p)) live.push_back(p);
    }
    if (live.empty()) break;
    const int pid =
        live[static_cast<std::size_t>(rng.next_below(live.size()))];
    sys.step(pid);
    ++steps;
  }
  return steps;
}

bool run_solo_until_calls_complete(ISystem& sys, int pid, std::uint64_t calls,
                                   std::uint64_t max_steps) {
  const std::uint64_t target = sys.calls_completed(pid) + calls;
  std::uint64_t steps = 0;
  while (sys.calls_completed(pid) < target) {
    if (sys.finished(pid) || steps >= max_steps) return false;
    sys.step(pid);
    ++steps;
  }
  return true;
}

bool run_solo_until_poised_outside(ISystem& sys, int pid,
                                   const std::unordered_set<int>& covered,
                                   std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps <= max_steps) {
    if (sys.finished(pid)) return false;
    const PendingOp op = sys.pending(pid);
    if (op.is_write() && covered.find(op.reg) == covered.end()) return true;
    if (steps == max_steps) return false;
    sys.step(pid);
    ++steps;
  }
  return false;
}

bool run_solo_until(ISystem& sys, int pid,
                    const std::function<bool(ISystem&)>& predicate,
                    std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!predicate(sys)) {
    if (sys.finished(pid) || steps >= max_steps) return false;
    sys.step(pid);
    ++steps;
  }
  return true;
}

std::unique_ptr<ISystem> replay(const SystemFactory& factory,
                                std::span<const int> schedule) {
  auto sys = factory();
  STAMPED_ASSERT(sys != nullptr);
  run_script(*sys, schedule);
  return sys;
}

void check_no_failures(ISystem& sys) {
  for (int p = 0; p < sys.num_processes(); ++p) {
    if (sys.failed(p)) {
      STAMPED_ASSERT_MSG(false, "process " << p << " failed: "
                                           << sys.failure_message(p));
    }
  }
}

}  // namespace stamped::runtime
