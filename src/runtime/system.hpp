// The simulated asynchronous shared-memory system.
//
// System<V> owns m atomic registers of value type V and n processes, each a
// coroutine (runtime/coro.hpp). The system is driven one step at a time by a
// scheduler; each step executes exactly one shared-memory operation of one
// process, matching the computational model of the paper (Section 2):
//
//   configuration C = (s_1..s_n, v_1..v_m)   — coroutine frames + registers
//   execution (C; sigma)                     — steps in schedule order
//   covering                                 — pending(p).covers(r)
//
// Determinism & replay: the processes of this library are deterministic, so a
// System constructed from the same programs and stepped through the same
// schedule reaches the same configuration. The lower-bound adversaries use
// this to "clone" configurations by replay (see adversary/).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/isystem.hpp"
#include "runtime/value.hpp"
#include "util/assert.hpp"

namespace stamped::runtime {

/// One executed step, recorded in the system trace.
template <RegisterValue V>
struct TraceEntry {
  std::uint64_t index = 0;  ///< 0-based global step number
  int pid = -1;
  OpKind kind = OpKind::kNone;
  int reg = -1;
  V written{};   ///< value stored (write/swap)
  V observed{};  ///< value returned to the process (read/swap)
};

template <RegisterValue V>
class System;

/// Per-process handle through which programs access shared memory. Passed by
/// reference to the process coroutine; stable for the system's lifetime.
template <RegisterValue V>
class SimCtx {
 public:
  using Value = V;

  SimCtx(const SimCtx&) = delete;
  SimCtx& operator=(const SimCtx&) = delete;

  [[nodiscard]] int pid() const { return pid_; }
  [[nodiscard]] int num_registers() const;
  [[nodiscard]] int num_processes() const;

  struct ReadAwaiter {
    System<V>* sys;
    int pid;
    int reg;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sys->post_op(pid, OpKind::kRead, reg, V{}, h);
    }
    V await_resume() { return sys->take_result(pid); }
  };

  struct WriteAwaiter {
    System<V>* sys;
    int pid;
    int reg;
    V value;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sys->post_op(pid, OpKind::kWrite, reg, std::move(value), h);
    }
    void await_resume() {}
  };

  struct SwapAwaiter {
    System<V>* sys;
    int pid;
    int reg;
    V value;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sys->post_op(pid, OpKind::kSwap, reg, std::move(value), h);
    }
    V await_resume() { return sys->take_result(pid); }
  };

  struct FetchAddAwaiter {
    System<V>* sys;
    int pid;
    int reg;
    V addend;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sys->post_op(pid, OpKind::kFetchAdd, reg, std::move(addend), h);
    }
    V await_resume() { return sys->take_result(pid); }
  };

  struct VersionedReadAwaiter {
    System<V>* sys;
    int pid;
    int reg;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sys->post_op(pid, OpKind::kRead, reg, V{}, h);
    }
    Versioned<V> await_resume() {
      return {sys->take_result(pid), sys->take_result_version(pid)};
    }
  };

  /// Atomic read of register `reg` (one step).
  [[nodiscard]] ReadAwaiter read(int reg) { return {sys_, pid_, reg}; }
  /// Atomic read of register `reg` paired with its version clock (one step,
  /// same trace footprint as read()). The version is the number of writes
  /// applied to the register before this read; see runtime::Versioned.
  [[nodiscard]] VersionedReadAwaiter versioned_read(int reg) {
    return {sys_, pid_, reg};
  }
  /// Atomic write to register `reg` (one step).
  [[nodiscard]] WriteAwaiter write(int reg, V value) {
    return {sys_, pid_, reg, std::move(value)};
  }
  /// Atomic swap on register `reg` (one step); returns the old value.
  [[nodiscard]] SwapAwaiter swap(int reg, V value) {
    return {sys_, pid_, reg, std::move(value)};
  }
  /// Atomic fetch&add on register `reg` (one step); returns the old value.
  /// Only meaningful for arithmetic V (non-register baseline objects).
  [[nodiscard]] FetchAddAwaiter fetch_add(int reg, V addend)
    requires std::is_arithmetic_v<V>
  {
    return {sys_, pid_, reg, std::move(addend)};
  }

  /// Monotone event counter; used to timestamp method invocations/responses
  /// for the happens-before checker. Strictly increases across all events.
  std::uint64_t stamp();

  /// Global steps executed so far (each shared-memory op is one step).
  [[nodiscard]] std::uint64_t steps_now() const;

  /// Steps executed by this process so far (wait-freedom accounting).
  [[nodiscard]] std::uint64_t my_steps() const;

  /// Programs call this when a method call (e.g. getTS) completes; solo
  /// schedulers use the count to detect completion.
  void note_call_complete();

 private:
  friend class System<V>;
  SimCtx(System<V>* sys, int pid) : sys_(sys), pid_(pid) {}
  System<V>* sys_;
  int pid_;
};

/// The simulated machine. See file comment.
template <RegisterValue V>
class System final : public ISystem {
 public:
  using Ctx = SimCtx<V>;
  using Program = std::function<ProcessTask(Ctx&)>;
  using Observer = std::function<void(const System&, const TraceEntry<V>&)>;

  /// Constructs a system with `num_registers` registers all holding
  /// `initial`, and one process per entry of `programs`. `mode` selects how
  /// much per-step bookkeeping is retained (see runtime::RecordingMode).
  System(int num_registers, V initial, std::vector<Program> programs,
         RecordingMode mode = RecordingMode::kFull)
      : initial_(initial),
        registers_(static_cast<std::size_t>(num_registers), initial),
        write_counts_(static_cast<std::size_t>(num_registers), 0),
        programs_(std::move(programs)),
        recording_(mode) {
    STAMPED_ASSERT(num_registers > 0);
    STAMPED_ASSERT(!programs_.empty());
    const int n = static_cast<int>(programs_.size());
    slots_.resize(static_cast<std::size_t>(n));
    views_.resize(static_cast<std::size_t>(n));
    steps_by_pid_.resize(static_cast<std::size_t>(n), 0);
    calls_by_pid_.resize(static_cast<std::size_t>(n), 0);
    ctxs_.reserve(static_cast<std::size_t>(n));
    tasks_.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      ctxs_.push_back(std::unique_ptr<Ctx>(new Ctx(this, p)));
      tasks_.push_back(programs_[static_cast<std::size_t>(p)](*ctxs_.back()));
      STAMPED_ASSERT(tasks_.back().valid());
    }
  }

  // ---- ISystem ------------------------------------------------------------

  [[nodiscard]] int num_processes() const override {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] int num_registers() const override {
    return static_cast<int>(registers_.size());
  }

  bool finished(int pid) override {
    ensure_started(pid);
    return tasks_[idx(pid)].done();
  }

  bool failed(int pid) override {
    ensure_started(pid);
    return tasks_[idx(pid)].done() &&
           tasks_[idx(pid)].exception() != nullptr;
  }

  [[nodiscard]] std::string failure_message(int pid) const override {
    const auto& task = tasks_[idx(pid)];
    if (!task.done() || !task.exception()) return {};
    try {
      std::rethrow_exception(task.exception());
    } catch (const std::exception& e) {
      return e.what();
    } catch (...) {
      return "unknown exception";
    }
  }

  PendingOp pending(int pid) override {
    ensure_started(pid);
    if (tasks_[idx(pid)].done()) return {};
    const Slot& s = slots_[idx(pid)];
    return {s.kind, s.reg};
  }

  void step(int pid) override {
    ensure_started(pid);
    STAMPED_ASSERT_MSG(!tasks_[idx(pid)].done(),
                       "step() on finished process " << pid);
    Slot& s = slots_[idx(pid)];
    STAMPED_ASSERT_MSG(s.kind != OpKind::kNone,
                       "process " << pid << " has no pending op");

    // The version of the value a read/swap observes: writes applied so far
    // (a write/swap/fetch&add bumps the count after this line).
    s.result_version = write_counts_[static_cast<std::size_t>(s.reg)];

    if (recording_ == RecordingMode::kCountsOnly) {
      step_counts_only(pid, s);
      return;
    }

    TraceEntry<V> entry;
    entry.index = trace_.size();
    entry.pid = pid;
    entry.kind = s.kind;
    entry.reg = s.reg;

    apply_op(s, &entry);

    switch (entry.kind) {
      case OpKind::kRead:
        append_view(pid, "R[" + std::to_string(entry.reg) +
                             "]=" + value_repr(entry.observed));
        break;
      case OpKind::kWrite:
        append_view(pid, "W[" + std::to_string(entry.reg) +
                             "]:=" + value_repr(entry.written));
        break;
      case OpKind::kSwap:
        append_view(pid, "X[" + std::to_string(entry.reg) + "]:=" +
                             value_repr(entry.written) + "/" +
                             value_repr(entry.observed));
        break;
      case OpKind::kFetchAdd:
        // apply_op leaves the addend in s.to_write for this view string.
        append_view(pid, "F[" + std::to_string(entry.reg) + "]+=" +
                             value_repr(s.to_write) + "->" +
                             value_repr(entry.written));
        break;
      case OpKind::kNone:
        STAMPED_ASSERT(false);
    }

    s.kind = OpKind::kNone;
    s.reg = -1;
    ++steps_;
    ++steps_by_pid_[idx(pid)];
    ++event_counter_;
    executed_schedule_.push_back(pid);
    step_infos_.push_back({pid, entry.kind, entry.reg});
    trace_.push_back(entry);

    auto h = std::exchange(s.resume_point, {});
    STAMPED_ASSERT(h);
    h.resume();

    if (observer_) observer_(*this, trace_.back());
  }

  [[nodiscard]] std::uint64_t steps_taken() const override { return steps_; }
  [[nodiscard]] std::uint64_t steps_taken_by(int pid) const override {
    STAMPED_ASSERT(pid >= 0 && idx(pid) < steps_by_pid_.size());
    return steps_by_pid_[idx(pid)];
  }

  [[nodiscard]] std::uint64_t calls_completed(int pid) const override {
    STAMPED_ASSERT(pid >= 0 && idx(pid) < calls_by_pid_.size());
    return calls_by_pid_[idx(pid)];
  }
  [[nodiscard]] std::uint64_t calls_completed_total() const override {
    return calls_total_;
  }

  [[nodiscard]] const std::vector<int>& executed_schedule() const override {
    return executed_schedule_;
  }

  [[nodiscard]] const std::vector<StepInfo>& step_infos() const override {
    return step_infos_;
  }

  [[nodiscard]] std::string register_repr(int reg) const override {
    return value_repr(registers_[idx(reg)]);
  }
  [[nodiscard]] bool register_written(int reg) const override {
    return write_counts_[idx(reg)] > 0;
  }
  [[nodiscard]] std::uint64_t writes_to(int reg) const override {
    return write_counts_[idx(reg)];
  }
  /// O(1): maintained incrementally by note_write() (the default rescans all
  /// m registers — it sat on the space-table loops of the benches).
  [[nodiscard]] int registers_written() const override {
    return distinct_registers_written_;
  }

  /// O(1) + copy: the view is streamed into a per-process string as steps
  /// execute (it used to be rebuilt from a vector of items on every call).
  /// Empty in kCountsOnly mode.
  [[nodiscard]] std::string process_view(int pid) const override {
    return views_[idx(pid)];
  }

  /// Devirtualized liveness scan: one virtual call per explorer node instead
  /// of n `finished()` calls (the explorer sits on this at every node).
  [[nodiscard]] std::uint64_t unfinished_mask() override {
    const int n = num_processes();
    STAMPED_ASSERT_MSG(n <= 64, "unfinished_mask supports at most 64 "
                                "processes, got " << n);
    std::uint64_t mask = 0;
    for (int p = 0; p < n; ++p) {
      ensure_started(p);
      if (!tasks_[idx(p)].done()) mask |= std::uint64_t{1} << p;
    }
    return mask;
  }

  /// Batched pending-op footprints by direct slot reads (persistent-set
  /// computation; see ISystem::pending_all).
  void pending_all(std::vector<PendingOp>& out) override {
    const int n = num_processes();
    out.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      ensure_started(p);
      if (tasks_[idx(p)].done()) {
        out[idx(p)] = {};
      } else {
        const Slot& s = slots_[idx(p)];
        out[idx(p)] = {s.kind, s.reg};
      }
    }
  }

  // ---- crash recovery -----------------------------------------------------

  [[nodiscard]] bool supports_restart() const override { return true; }

  /// See ISystem::restart_process. The old coroutine frame is destroyed
  /// (running the destructors of its locals, which tears down any nested
  /// SubTask frames), so a pending-but-unexecuted op vanishes with the local
  /// state; a fresh frame is created from the stored program. The process's
  /// step and completed-call counters persist — completed calls completed,
  /// and wait-freedom accounting charges the process for the steps its
  /// crashed incarnation took.
  void restart_process(int pid) override {
    STAMPED_ASSERT_MSG(pid >= 0 && pid < num_processes(), "bad pid " << pid);
    Slot& s = slots_[idx(pid)];
    // The slot's resume point targets the frame being destroyed; drop the
    // handle without resuming or destroying it separately.
    s.kind = OpKind::kNone;
    s.reg = -1;
    s.to_write = V{};
    s.result = V{};
    s.result_version = 0;
    s.resume_point = {};
    tasks_[idx(pid)] = programs_[idx(pid)](*ctxs_[idx(pid)]);
    STAMPED_ASSERT(tasks_[idx(pid)].valid());
    if (started_.size() > idx(pid)) started_[idx(pid)] = false;
    if (recording_ == RecordingMode::kFull) append_view(pid, "RESTART");
  }

  // ---- recording mode -----------------------------------------------------

  [[nodiscard]] RecordingMode recording_mode() const override {
    return recording_;
  }

  /// Switches the recording mode. Only legal on a pristine system (no steps
  /// executed yet), and kCountsOnly refuses systems with an observer
  /// installed — silently skipping invariant checks would be worse than
  /// failing loudly here.
  void set_recording_mode(RecordingMode mode) override {
    STAMPED_ASSERT_MSG(steps_ == 0,
                       "recording mode must be set before the first step");
    STAMPED_ASSERT_MSG(mode == RecordingMode::kFull || observer_ == nullptr,
                       "kCountsOnly would skip the installed observer");
    recording_ = mode;
  }

  // ---- typed access (tests, invariant checkers) ---------------------------

  /// Current value of register `reg`.
  [[nodiscard]] const V& reg_value(int reg) const {
    return registers_[idx(reg)];
  }

  /// Full step trace.
  [[nodiscard]] const std::vector<TraceEntry<V>>& trace() const {
    return trace_;
  }

  /// Installs a hook invoked after every step (invariant checking). Rejected
  /// in kCountsOnly mode, which skips observer dispatch.
  void set_observer(Observer obs) {
    STAMPED_ASSERT_MSG(recording_ == RecordingMode::kFull,
                       "observers require RecordingMode::kFull");
    observer_ = std::move(obs);
  }

  // ---- used by SimCtx ------------------------------------------------------

  void post_op(int pid, OpKind kind, int reg, V value,
               std::coroutine_handle<> resume_point) {
    STAMPED_ASSERT_MSG(reg >= 0 && reg < num_registers(),
                       "process " << pid << " accessed register " << reg
                                  << " outside [0," << num_registers() << ")");
    Slot& s = slots_[idx(pid)];
    STAMPED_ASSERT(s.kind == OpKind::kNone);
    s.kind = kind;
    s.reg = reg;
    s.to_write = std::move(value);
    s.resume_point = resume_point;
  }

  V take_result(int pid) { return std::move(slots_[idx(pid)].result); }

  [[nodiscard]] std::uint64_t take_result_version(int pid) const {
    return slots_[idx(pid)].result_version;
  }

  std::uint64_t bump_event_counter() { return ++event_counter_; }

  void note_call_complete(int pid) {
    ++calls_by_pid_[idx(pid)];
    ++calls_total_;
    if (recording_ == RecordingMode::kFull) {
      append_view(pid, "done#" + std::to_string(calls_by_pid_[idx(pid)]));
    }
  }

 private:
  struct Slot {
    OpKind kind = OpKind::kNone;
    int reg = -1;
    V to_write{};
    V result{};
    std::uint64_t result_version = 0;
    std::coroutine_handle<> resume_point{};
  };

  static std::size_t idx(int i) { return static_cast<std::size_t>(i); }

  void ensure_started(int pid) {
    STAMPED_ASSERT_MSG(pid >= 0 && pid < num_processes(),
                       "bad pid " << pid);
    if (started_.size() <= idx(pid)) started_.resize(tasks_.size(), false);
    if (!started_[idx(pid)]) {
      started_[idx(pid)] = true;
      // Runs process-local code up to the first shared-memory operation (or
      // completion). This consumes no model step.
      tasks_[idx(pid)].handle().resume();
    }
  }

  /// The single home of the shared-memory op semantics, shared by both
  /// recording modes so they cannot drift: applies the pending op of `s` to
  /// its register cell and fills s.result. When `entry` is non-null (kFull)
  /// the observed/written values are also recorded for the trace. For
  /// kFetchAdd, s.to_write (the addend) is left in place — the kFull caller
  /// prints it in the view string.
  void apply_op(Slot& s, TraceEntry<V>* entry) {
    V& cell = registers_[static_cast<std::size_t>(s.reg)];
    switch (s.kind) {
      case OpKind::kRead:
        s.result = cell;
        if (entry != nullptr) entry->observed = s.result;
        break;
      case OpKind::kWrite:
        if (entry != nullptr) entry->written = s.to_write;
        cell = std::move(s.to_write);
        note_write(s.reg);
        break;
      case OpKind::kSwap: {
        V observed = std::move(cell);
        cell = std::move(s.to_write);
        if (entry != nullptr) {
          entry->observed = observed;
          entry->written = cell;
        }
        s.result = std::move(observed);
        note_write(s.reg);
        break;
      }
      case OpKind::kFetchAdd:
        if constexpr (std::is_arithmetic_v<V>) {
          s.result = cell;
          cell = static_cast<V>(cell + s.to_write);
          if (entry != nullptr) {
            entry->observed = s.result;
            entry->written = cell;
          }
          note_write(s.reg);
        } else {
          STAMPED_ASSERT_MSG(false,
                             "fetch_add on non-arithmetic register type");
        }
        break;
      case OpKind::kNone:
        STAMPED_ASSERT(false);
    }
  }

  /// The kCountsOnly hot path: performs the register operation and bumps the
  /// aggregate counters, but builds no strings, retains no trace entries and
  /// dispatches no observer. ~an order of magnitude cheaper per step than the
  /// kFull path (see bench/bench_t8_runtime.cpp).
  void step_counts_only(int pid, Slot& s) {
    apply_op(s, nullptr);

    s.kind = OpKind::kNone;
    s.reg = -1;
    ++steps_;
    ++steps_by_pid_[idx(pid)];
    ++event_counter_;

    auto h = std::exchange(s.resume_point, {});
    STAMPED_ASSERT(h);
    h.resume();
  }

  void append_view(int pid, std::string item) {
    std::string& view = views_[idx(pid)];
    view += item;
    view += ';';
  }

  void note_write(int reg) {
    if (write_counts_[idx(reg)]++ == 0) ++distinct_registers_written_;
  }

  V initial_;
  std::vector<V> registers_;
  std::vector<std::uint64_t> write_counts_;
  /// Retained past construction so restart_process can recreate a crashed
  /// process's coroutine (programs must be re-invocable).
  std::vector<Program> programs_;
  std::vector<std::unique_ptr<Ctx>> ctxs_;
  std::vector<ProcessTask> tasks_;
  std::vector<Slot> slots_;
  std::vector<bool> started_;
  /// One streamed view string per process (kFull only; see process_view()).
  std::vector<std::string> views_;
  std::vector<TraceEntry<V>> trace_;
  std::vector<int> executed_schedule_;
  std::vector<StepInfo> step_infos_;
  /// Flat pre-sized per-pid counters (they were unordered_maps; the lookups
  /// sat on the step hot path).
  std::vector<std::uint64_t> steps_by_pid_;
  std::vector<std::uint64_t> calls_by_pid_;
  std::uint64_t steps_ = 0;
  std::uint64_t event_counter_ = 0;
  std::uint64_t calls_total_ = 0;
  int distinct_registers_written_ = 0;
  RecordingMode recording_ = RecordingMode::kFull;
  Observer observer_;
};

template <RegisterValue V>
int SimCtx<V>::num_registers() const {
  return sys_->num_registers();
}

template <RegisterValue V>
int SimCtx<V>::num_processes() const {
  return sys_->num_processes();
}

template <RegisterValue V>
std::uint64_t SimCtx<V>::stamp() {
  return sys_->bump_event_counter();
}

template <RegisterValue V>
std::uint64_t SimCtx<V>::steps_now() const {
  return sys_->steps_taken();
}

template <RegisterValue V>
std::uint64_t SimCtx<V>::my_steps() const {
  return sys_->steps_taken_by(pid_);
}

template <RegisterValue V>
void SimCtx<V>::note_call_complete() {
  sys_->note_call_complete(pid_);
}

}  // namespace stamped::runtime
