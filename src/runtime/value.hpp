// Register value representation helpers.
//
// A System<V> is homogeneous in its register value type V. V must be
// regular (default-constructible, copyable, equality-comparable) and
// printable either because it is arithmetic or because it provides a
// `std::string repr() const` member. The printed representation is used for
// traces, indistinguishability checks, and debugging output; it must be
// injective on the values an algorithm actually stores.
#pragma once

#include <concepts>
#include <string>
#include <type_traits>

namespace stamped::runtime {

template <class V>
concept HasRepr = requires(const V& v) {
  { v.repr() } -> std::convertible_to<std::string>;
};

template <class V>
concept RegisterValue =
    std::regular<V> && (std::is_arithmetic_v<V> || HasRepr<V>);

/// Canonical string form of a register value.
template <RegisterValue V>
std::string value_repr(const V& v) {
  if constexpr (std::is_arithmetic_v<V>) {
    return std::to_string(v);
  } else {
    return v.repr();
  }
}

}  // namespace stamped::runtime
