// Register value representation helpers.
//
// A System<V> is homogeneous in its register value type V. V must be
// regular (default-constructible, copyable, equality-comparable) and
// printable either because it is arithmetic or because it provides a
// `std::string repr() const` member. The printed representation is used for
// traces, indistinguishability checks, and debugging output; it must be
// injective on the values an algorithm actually stores.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>

namespace stamped::runtime {

/// A register value paired with the register's write-version at the moment it
/// was read. The load-bearing guarantee, everywhere: two versioned reads of
/// the same register returning equal versions bracket a write-free interval —
/// even when the *values* coincide (ABA). In the simulator and the threaded
/// backend's inline cells the version is additionally the register's write
/// count, strictly monotone per register; the threaded pointer-swap cells
/// guarantee only per-write uniqueness (creation-ordered, not
/// installation-ordered under racing writers — see atomicmem::AtomicCell),
/// which is all the equal-versions property needs. The version-clock scan
/// (snapshot/versioned_collect.hpp) compares these integers instead of deep
/// values.
template <class V>
struct Versioned {
  V value{};
  std::uint64_t version = 0;

  friend bool operator==(const Versioned&, const Versioned&) = default;
};

template <class V>
concept HasRepr = requires(const V& v) {
  { v.repr() } -> std::convertible_to<std::string>;
};

template <class V>
concept RegisterValue =
    std::regular<V> && (std::is_arithmetic_v<V> || HasRepr<V>);

/// Canonical string form of a register value.
template <RegisterValue V>
std::string value_repr(const V& v) {
  if constexpr (std::is_arithmetic_v<V>) {
    return std::to_string(v);
  } else {
    return v.repr();
  }
}

}  // namespace stamped::runtime
