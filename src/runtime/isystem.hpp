// Type-erased view of a simulated system.
//
// Schedulers and the lower-bound adversaries do not care about the register
// value type; they need only process/step control and covering information
// (which register, if any, each process is poised to write). ISystem provides
// exactly that facade over System<V>.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace stamped::runtime {

/// How much per-step bookkeeping a system retains.
///
/// kFull is the correctness-first default: every step is appended to the
/// typed trace, the executed schedule, the step-info log and the per-process
/// view strings, and the observer hook fires. kCountsOnly is the hot-loop
/// mode: only the aggregate counters survive (steps, per-process steps/calls,
/// per-register write counts/versions), so benches and sweeps that only
/// measure skip all per-step string building and trace retention. A
/// kCountsOnly system cannot be used for replay cloning (its executed
/// schedule stays empty), indistinguishability arguments (views stay empty)
/// or observer-based invariant checking — the mode setter rejects systems
/// with an observer installed.
enum class RecordingMode : std::uint8_t { kFull, kCountsOnly };

[[nodiscard]] constexpr const char* recording_mode_name(RecordingMode m) {
  return m == RecordingMode::kFull ? "kFull" : "kCountsOnly";
}

/// The kinds of atomic shared-memory operations a process can be poised to
/// perform. kSwap models a historyless swap object (Section 7 of the paper);
/// kFetchAdd a fetch&add primitive (the non-register throughput baseline);
/// the register algorithms use only kRead and kWrite.
enum class OpKind : std::uint8_t { kNone, kRead, kWrite, kSwap, kFetchAdd };

[[nodiscard]] constexpr const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kNone: return "none";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kSwap: return "swap";
    case OpKind::kFetchAdd: return "fetchadd";
  }
  return "?";
}

/// True if an operation of this kind modifies the register it targets.
[[nodiscard]] constexpr bool op_kind_writes(OpKind k) {
  return k == OpKind::kWrite || k == OpKind::kSwap || k == OpKind::kFetchAdd;
}

/// The operation a process will perform on its next step.
struct PendingOp {
  OpKind kind = OpKind::kNone;
  int reg = -1;

  /// True if executing this op would modify register `r` (paper: the process
  /// *covers* r).
  [[nodiscard]] bool covers(int r) const {
    return op_kind_writes(kind) && reg == r;
  }
  [[nodiscard]] bool is_write() const { return op_kind_writes(kind); }
};

/// Type-erased summary of one executed step (pid, op kind, register). The
/// full typed trace lives in System<V>; this summary is what the covering
/// adversaries need (e.g. "did q write outside R during this suffix?").
struct StepInfo {
  int pid = -1;
  OpKind kind = OpKind::kNone;
  int reg = -1;

  [[nodiscard]] bool is_write() const { return op_kind_writes(kind); }
};

/// Abstract simulated system: n processes, m registers, step-level control.
///
/// Note on const-ness: inspecting a process that has never run requires
/// resuming its coroutine up to the first shared-memory operation. That
/// executes only process-local code, which is invisible in the shared-memory
/// model (a configuration is defined by register values and the processes'
/// next operations), so inspection methods are non-const but logically pure.
class ISystem {
 public:
  virtual ~ISystem() = default;

  [[nodiscard]] virtual int num_processes() const = 0;
  [[nodiscard]] virtual int num_registers() const = 0;

  /// True once the process's program has returned.
  virtual bool finished(int pid) = 0;
  /// True if the process's program exited with an exception.
  virtual bool failed(int pid) = 0;
  /// Description of the failure, empty if none.
  [[nodiscard]] virtual std::string failure_message(int pid) const = 0;

  /// The process's next shared-memory operation ({kNone} if finished).
  virtual PendingOp pending(int pid) = 0;

  /// Executes one step (the pending op) of process pid. pid must not be
  /// finished. Records the step in the trace and executed schedule.
  virtual void step(int pid) = 0;

  [[nodiscard]] virtual std::uint64_t steps_taken() const = 0;
  [[nodiscard]] virtual std::uint64_t steps_taken_by(int pid) const = 0;

  /// Paper: a process is idle while it has taken no steps.
  [[nodiscard]] bool idle(int pid) const { return steps_taken_by(pid) == 0; }

  /// Number of completed method calls by pid / by all processes (programs
  /// report completion via SimCtx::note_call_complete).
  [[nodiscard]] virtual std::uint64_t calls_completed(int pid) const = 0;
  [[nodiscard]] virtual std::uint64_t calls_completed_total() const = 0;

  /// The schedule executed so far (one pid per step) — the paper's sigma.
  [[nodiscard]] virtual const std::vector<int>& executed_schedule() const = 0;

  /// Type-erased log of all executed steps, parallel to executed_schedule().
  [[nodiscard]] virtual const std::vector<StepInfo>& step_infos() const = 0;

  /// Printable value of register `reg` (injective on stored values).
  [[nodiscard]] virtual std::string register_repr(int reg) const = 0;
  /// True if register `reg` has been written at least once.
  [[nodiscard]] virtual bool register_written(int reg) const = 0;
  /// Number of writes (incl. swaps) applied to register `reg`.
  [[nodiscard]] virtual std::uint64_t writes_to(int reg) const = 0;
  /// The register's current version clock — the first-class name for the
  /// write count, matching the `{value, version}` pairs that
  /// `SimCtx::versioned_read` returns. Strictly monotone per register in the
  /// simulator; equal versions bracket a write-free interval (the guarantee
  /// the version-clock scan relies on — see runtime::Versioned for how the
  /// threaded backend's cells meet it).
  [[nodiscard]] virtual std::uint64_t register_version(int reg) const {
    return writes_to(reg);
  }

  /// True if this system can restart a crashed process (System<V> can; the
  /// crash/restart adversary requires it before calling restart_process).
  [[nodiscard]] virtual bool supports_restart() const { return false; }

  /// Crash recovery: destroys process pid's local state — its coroutine
  /// frame, including any pending-but-unexecuted operation — and restarts
  /// its program from the beginning. Shared memory (registers, write
  /// counts), the global trace and the process's step/call counters all
  /// survive: a crash loses exactly the process-local state, matching the
  /// model's notion that registers are the only persistent objects.
  virtual void restart_process(int pid) {
    STAMPED_ASSERT_MSG(false, "this ISystem implementation cannot restart "
                              "process " << pid);
  }

  /// Recording mode (see RecordingMode). The base implementation is the
  /// always-full default for exotic ISystem implementations; System<V>
  /// overrides both.
  [[nodiscard]] virtual RecordingMode recording_mode() const {
    return RecordingMode::kFull;
  }
  /// Switches the recording mode. Only legal before the first step; systems
  /// that do not support reduced recording reject kCountsOnly.
  virtual void set_recording_mode(RecordingMode mode) {
    STAMPED_ASSERT_MSG(mode == RecordingMode::kFull,
                       "this ISystem implementation records full traces only");
  }

  /// Serialized local knowledge of process pid: the sequence of operations it
  /// has performed with the values it observed. Two executions are
  /// indistinguishable to pid iff these views are equal (processes are
  /// deterministic functions of their observations).
  [[nodiscard]] virtual std::string process_view(int pid) const = 0;

  /// Bitmask of unfinished processes (bit p set iff process p is live).
  /// Requires n <= 64; the explorer's sleep sets and persistent sets are pid
  /// bitmasks of the same width, so the whole candidate computation is a few
  /// word operations per node instead of n virtual calls. May start
  /// never-inspected coroutines (see the class comment on const-ness).
  /// System<V> overrides this with a devirtualized loop.
  [[nodiscard]] virtual std::uint64_t unfinished_mask() {
    const int n = num_processes();
    STAMPED_ASSERT_MSG(n <= 64, "unfinished_mask supports at most 64 "
                                "processes, got " << n);
    std::uint64_t mask = 0;
    for (int p = 0; p < n; ++p) {
      if (!finished(p)) mask |= std::uint64_t{1} << p;
    }
    return mask;
  }

  /// The register footprint of every process's pending op in one call:
  /// fills `out[p] = pending(p)` for all p ({kNone} for finished processes).
  /// This is the cheap batched query the explorer's persistent-set
  /// computation runs at every branching node; System<V> overrides it with
  /// direct slot reads (one virtual call per node instead of n).
  virtual void pending_all(std::vector<PendingOp>& out) {
    const int n = num_processes();
    out.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      out[static_cast<std::size_t>(p)] = pending(p);
    }
  }

  // ---- conveniences built on the primitives -------------------------------

  /// True if every process has finished.
  bool all_finished() {
    for (int p = 0; p < num_processes(); ++p) {
      if (!finished(p)) return false;
    }
    return true;
  }

  /// Number of distinct registers that have been written so far. This is the
  /// "registers used" metric reported by the space benchmarks. System<V>
  /// overrides this with an O(1) incrementally maintained count; the default
  /// rescans for exotic ISystem implementations.
  [[nodiscard]] virtual int registers_written() const {
    int used = 0;
    for (int r = 0; r < num_registers(); ++r) {
      if (register_written(r)) ++used;
    }
    return used;
  }
};

}  // namespace stamped::runtime
