#include "util/grid.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace stamped::util {

std::string render_covering_grid(const std::vector<int>& ordered_sig, int l,
                                 int highlight) {
  const int m = static_cast<int>(ordered_sig.size());
  if (m == 0) return "(empty grid)\n";
  int max_height = l > 0 ? l : 0;
  for (int s : ordered_sig) max_height = std::max(max_height, s);
  max_height = std::max(max_height, 1);

  std::ostringstream os;
  // Rows from the top (height max_height) down to 1.
  for (int h = max_height; h >= 1; --h) {
    os << (h < 10 ? " " : "") << h << " |";
    for (int c = 0; c < m; ++c) {
      const bool shaded = ordered_sig[static_cast<std::size_t>(c)] >= h;
      // The stepped diagonal for an l-constrained configuration: column c
      // (1-based) may be shaded only strictly below height l - c + 1; draw the
      // boundary cell. (Paper: s_c <= l - c.)
      const bool diagonal = l > 0 && h == l - c;
      char cell = ' ';
      if (shaded) cell = '#';
      else if (diagonal) cell = '\\';
      os << ' ' << cell << (c == highlight ? '<' : ' ');
    }
    os << '\n';
  }
  os << "    ";
  for (int c = 0; c < m; ++c) os << "---";
  os << '\n' << "    ";
  for (int c = 1; c <= m; ++c) {
    if (c < 10) {
      os << ' ' << c << ' ';
    } else {
      os << c << ' ';
    }
  }
  os << "  (columns = registers, ordered by cover count)\n";
  return os.str();
}

std::string summarize_signature(const std::vector<int>& sig) {
  std::ostringstream os;
  os << "sig=(";
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (i > 0) os << ',';
    os << sig[i];
  }
  const int covered = static_cast<int>(
      std::count_if(sig.begin(), sig.end(), [](int s) { return s > 0; }));
  const int total = std::accumulate(sig.begin(), sig.end(), 0);
  os << ") covered=" << covered << " total=" << total;
  return os.str();
}

}  // namespace stamped::util
