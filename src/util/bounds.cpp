#include "util/bounds.hpp"

#include <cmath>

#include "util/math.hpp"

namespace stamped::util::bounds {

double longlived_lower(std::int64_t n) {
  return static_cast<double>(n) / 6.0 - 1.0;
}

std::int64_t longlived_upper_efr(std::int64_t n) { return n - 1; }

std::int64_t longlived_upper_maxscan(std::int64_t n) { return n; }

double oneshot_lower(std::int64_t n) {
  const double nd = static_cast<double>(n);
  return std::sqrt(2.0 * nd) - std::log2(nd);
}

std::int64_t oneshot_upper_sqrt(std::int64_t m_calls) {
  // ceil(2 * sqrt(M)): smallest integer m with m >= 2*sqrt(M), i.e. m^2 >= 4M.
  // Computed without forming 4M (which signed-overflows for M > INT64_MAX/4):
  // with s = isqrt(M), so s^2 <= M < (s+1)^2, the answer is one of
  //   2s    when M = s^2          (4M = (2s)^2),
  //   2s+1  when M <= s^2 + s     ((2s+1)^2 = 4s^2+4s+1 >= 4M),
  //   2s+2  otherwise             (M < (s+1)^2 gives 4M < (2s+2)^2).
  if (m_calls <= 0) return 0;
  const std::int64_t s = isqrt(m_calls);
  const std::uint64_t um = static_cast<std::uint64_t>(m_calls);
  const std::uint64_t us = static_cast<std::uint64_t>(s);
  if (us * us == um) return 2 * s;
  if (um <= us * us + us) return 2 * s + 1;
  return 2 * s + 2;
}

std::int64_t oneshot_upper_simple(std::int64_t n) { return ceil_div(n, 2); }

std::int64_t oneshot_grid_m(std::int64_t n) { return isqrt(2 * n); }

double phase_bound(std::int64_t m_calls) {
  return 2.0 * std::sqrt(static_cast<double>(m_calls));
}

std::int64_t invalidation_bound(std::int64_t m_calls) { return 2 * m_calls; }

}  // namespace stamped::util::bounds
