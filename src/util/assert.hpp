// Always-on assertion macros for the stamped library.
//
// The simulator and the algorithm implementations check model invariants (e.g.
// the non-bottom-prefix property of Algorithm 4) on every step; these checks
// must not silently disappear in release builds, so we do not use <cassert>.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stamped {

/// Thrown when an internal invariant of the library is violated. Tests treat
/// any escape of this exception as a failure of the system under test.
class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace stamped

// STAMPED_ASSERT(cond): hard invariant; throws stamped::invariant_error.
#define STAMPED_ASSERT(cond)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::stamped::detail::assert_fail(#cond, __FILE__, __LINE__, "");      \
  } while (0)

// STAMPED_ASSERT_MSG(cond, msg): as above with a streamable message.
#define STAMPED_ASSERT_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream stamped_assert_os_;                              \
      stamped_assert_os_ << msg;                                          \
      ::stamped::detail::assert_fail(#cond, __FILE__, __LINE__,           \
                                     stamped_assert_os_.str());           \
    }                                                                     \
  } while (0)
