// Deterministic pseudo-random number generation.
//
// All randomized schedules in tests and benchmarks are driven by this RNG so
// that every execution is reproducible from a 64-bit seed. We implement
// SplitMix64 (for seeding) and xoshiro256** (for the stream) rather than using
// std::mt19937 because the algorithms are fully specified, fast, and identical
// across standard libraries — important for replayable adversarial schedules.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace stamped::util {

/// SplitMix64: used to expand a single 64-bit seed into a full state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies the C++ named requirement
/// UniformRandomBitGenerator so it can drive <random> distributions if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle driven by Rng (deterministic given the seed).
template <class RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace stamped::util
