// Plain-text table rendering for benchmark output.
//
// Benchmarks print paper-style tables (one per reproduced table/figure); this
// keeps the formatting logic in one place and the benchmark code declarative.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stamped::util {

/// A simple column-aligned text table with a title and column headers.
///
/// Usage:
///   Table t("T2: one-shot space", {"n", "lower", "simple", "sqrt"});
///   t.add_row({"64", "7.3", "32", "16"});
///   std::cout << t.render();
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with to_string-like rules. Doubles are
  /// rendered with two decimals.
  void add_row_values(const std::vector<double>& cells);

  [[nodiscard]] std::string render() const;

  /// Renders the table as a JSON object {"title", "headers", "rows"} with
  /// rows as arrays of strings. Used by the benchmarks to emit machine-
  /// readable BENCH_*.json files next to the human-readable text tables.
  [[nodiscard]] std::string render_json() const;

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Formats a double with the given precision (helper for callers).
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::int64_t v);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stamped::util
