// Small integer math helpers used throughout the library.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace stamped::util {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Integer square root: largest s with s*s <= x. Safe for the full int64
/// range: candidates are squared in uint64, where they always fit — s stays
/// <= isqrt(INT64_MAX) = 3037000499 and bit <= 2^31 is only added while the
/// higher bits of s are still clear, so candidate < 2^32 throughout (the old
/// int64 `candidate * candidate` signed-overflowed — UB — for x near 2^63).
constexpr std::int64_t isqrt(std::int64_t x) {
  if (x < 0) return 0;
  const std::uint64_t ux = static_cast<std::uint64_t>(x);
  std::uint64_t s = 0;
  std::uint64_t bit = std::uint64_t{1} << 31;
  while (bit * bit > ux) bit >>= 1;
  for (; bit > 0; bit >>= 1) {
    const std::uint64_t candidate = s + bit;
    if (candidate * candidate <= ux) s = candidate;
  }
  return static_cast<std::int64_t>(s);
}

/// Smallest s with s*s >= x (ceiling of the real square root). The square in
/// the exactness test is computed in uint64 (s <= 3037000499, so s*s fits).
constexpr std::int64_t isqrt_ceil(std::int64_t x) {
  const std::int64_t s = isqrt(x);
  const std::uint64_t us = static_cast<std::uint64_t>(s);
  return static_cast<std::int64_t>(us * us) == x ? s : s + 1;
}

/// Floor of log2(x); x must be >= 1.
constexpr int floor_log2(std::int64_t x) {
  int lg = 0;
  while (x > 1) {
    x >>= 1;
    ++lg;
  }
  return lg;
}

/// Ceiling of log2(x); x must be >= 1.
constexpr int ceil_log2(std::int64_t x) {
  const int fl = floor_log2(x);
  return (std::int64_t{1} << fl) == x ? fl : fl + 1;
}

static_assert(isqrt(0) == 0);
static_assert(isqrt(1) == 1);
static_assert(isqrt(15) == 3);
static_assert(isqrt(16) == 4);
static_assert(isqrt_ceil(15) == 4);
static_assert(isqrt_ceil(16) == 4);
// Boundary checks at the top of the int64 range (the old implementation hit
// signed overflow here): 3037000499^2 = 9223372030926249001 <= INT64_MAX
// < 3037000500^2.
static_assert(isqrt(std::int64_t{9223372036854775807}) == 3037000499);
static_assert(isqrt(std::int64_t{9223372030926249001}) == 3037000499);
static_assert(isqrt(std::int64_t{9223372030926249000}) == 3037000498);
static_assert(isqrt_ceil(std::int64_t{9223372030926249001}) == 3037000499);
static_assert(isqrt_ceil(std::int64_t{9223372036854775807}) == 3037000500);
static_assert(isqrt((std::int64_t{1} << 62)) == std::int64_t{1} << 31);
static_assert(ceil_div(7, 2) == 4);
static_assert(floor_log2(8) == 3);
static_assert(ceil_log2(9) == 4);

}  // namespace stamped::util
