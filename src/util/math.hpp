// Small integer math helpers used throughout the library.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace stamped::util {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Integer square root: largest s with s*s <= x.
constexpr std::int64_t isqrt(std::int64_t x) {
  if (x < 0) return 0;
  std::int64_t s = 0;
  std::int64_t bit = std::int64_t{1} << 31;
  while (bit * bit > x) bit >>= 1;
  for (; bit > 0; bit >>= 1) {
    const std::int64_t candidate = s + bit;
    if (candidate * candidate <= x) s = candidate;
  }
  return s;
}

/// Smallest s with s*s >= x (ceiling of the real square root).
constexpr std::int64_t isqrt_ceil(std::int64_t x) {
  const std::int64_t s = isqrt(x);
  return s * s == x ? s : s + 1;
}

/// Floor of log2(x); x must be >= 1.
constexpr int floor_log2(std::int64_t x) {
  int lg = 0;
  while (x > 1) {
    x >>= 1;
    ++lg;
  }
  return lg;
}

/// Ceiling of log2(x); x must be >= 1.
constexpr int ceil_log2(std::int64_t x) {
  const int fl = floor_log2(x);
  return (std::int64_t{1} << fl) == x ? fl : fl + 1;
}

static_assert(isqrt(0) == 0);
static_assert(isqrt(1) == 1);
static_assert(isqrt(15) == 3);
static_assert(isqrt(16) == 4);
static_assert(isqrt_ceil(15) == 4);
static_assert(isqrt_ceil(16) == 4);
static_assert(ceil_div(7, 2) == 4);
static_assert(floor_log2(8) == 3);
static_assert(ceil_log2(9) == 4);

}  // namespace stamped::util
