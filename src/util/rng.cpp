#include "util/rng.hpp"

#include "util/assert.hpp"

namespace stamped::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  if (bound == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) noexcept {
  if (den == 0) return false;
  return next_below(den) < num;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace stamped::util
