// The paper's space-bound formulas, as executable functions.
//
// These are the quantities that appear in the theorems of Helmi, Higham,
// Pacheco & Woelfel (PODC 2011) and in the cited Ellen–Fatourou–Ruppert
// bounds. Benchmarks print these next to measured register usage so that the
// paper's tables can be regenerated (see EXPERIMENTS.md).
#pragma once

#include <cstdint>

namespace stamped::util::bounds {

/// Theorem 1.1: long-lived timestamps need at least n/6 - 1 registers.
double longlived_lower(std::int64_t n);

/// Ellen–Fatourou–Ruppert upper bound for long-lived timestamps: n - 1.
std::int64_t longlived_upper_efr(std::int64_t n);

/// Registers used by our long-lived comparator (max-scan): n.
std::int64_t longlived_upper_maxscan(std::int64_t n);

/// Theorem 1.2: one-shot timestamps need at least sqrt(2n) - log2(n) - O(1)
/// registers. We report the bound with the additive constant dropped; the
/// value may be negative for small n, in which case the bound is vacuous.
double oneshot_lower(std::int64_t n);

/// Theorem 1.3 / Section 6: Algorithm 4 uses ceil(2*sqrt(M)) registers for M
/// getTS calls (one-shot: M = n).
std::int64_t oneshot_upper_sqrt(std::int64_t m_calls);

/// Section 5: the simple one-shot algorithm uses ceil(n/2) registers.
std::int64_t oneshot_upper_simple(std::int64_t n);

/// Section 4 construction parameter m = floor(sqrt(2n)).
std::int64_t oneshot_grid_m(std::int64_t n);

/// Lemma 6.5: the number of phases Phi of Algorithm 4 satisfies Phi < 2*sqrt(M).
double phase_bound(std::int64_t m_calls);

/// Claim 6.13: at most 2M invalidation writes in any execution with M calls.
std::int64_t invalidation_bound(std::int64_t m_calls);

}  // namespace stamped::util::bounds
