// ASCII rendering of the covering grid from Section 4 of the paper
// (Figures 1 and 2).
//
// A configuration with ordered signature (s_1, ..., s_m) is drawn on an
// m-column grid where column c has its lowest s_c cells shaded; the stepped
// diagonal of an l-constrained configuration starts at height l-1. Each shaded
// cell is one process covering the register assigned to that column.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stamped::util {

/// Renders the covering grid for an ordered signature.
///
/// @param ordered_sig  non-increasing per-column cover counts (s_1 >= s_2 ...)
/// @param l            the constraint parameter; the stepped diagonal is drawn
///                     at height l - c for column c (pass 0 to omit it)
/// @param highlight    column index (0-based) to mark, or -1
std::string render_covering_grid(const std::vector<int>& ordered_sig, int l,
                                 int highlight = -1);

/// One-line summary, e.g. "sig=(4,3,3,1,0) covered=4 total=11".
std::string summarize_signature(const std::vector<int>& sig);

}  // namespace stamped::util
