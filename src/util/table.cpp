#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace stamped::util {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  STAMPED_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  STAMPED_ASSERT_MSG(cells.size() == headers_.size(),
                     "row width " << cells.size() << " != header width "
                                  << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) {
    // Render integers without a decimal point.
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
      out.push_back(fmt(static_cast<std::int64_t>(v)));
    } else {
      out.push_back(fmt(v));
    }
  }
  add_row(std::move(out));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

namespace {

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(ch) << std::dec << std::setfill(' ');
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void append_json_string_array(std::ostringstream& os,
                              const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ',';
    append_json_string(os, items[i]);
  }
  os << ']';
}

}  // namespace

std::string Table::render_json() const {
  std::ostringstream os;
  os << "{\"title\":";
  append_json_string(os, title_);
  os << ",\"headers\":";
  append_json_string_array(os, headers_);
  os << ",\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) os << ',';
    append_json_string_array(os, rows_[r]);
  }
  os << "]}";
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace stamped::util
