// Footprint extraction and the ownership lint.
//
// The paper's space bounds rest on register-access structure: max-scan and
// the bounded algorithm are SWMR (process p writes only register p), the
// one-shot algorithms share registers among declared writer sets, and
// Algorithm 4 allocates a sentinel that is read but never written. Each
// TimestampFamily now DECLARES that structure (api::FootprintSpec); this
// module OBSERVES it from executions and diffs the two:
//
//  - observe_footprint(family, spec): dry-runs the family's deterministic
//    factory under a battery of schedules (per-process solo runs, round
//    robin, seeded random) and merges the step-info logs into an AccessMap —
//    the observed writer/reader sets and op kinds per register.
//  - lint_footprints(family, spec): fails loudly on undeclared writers
//    (observed writer outside the declared mask), multi-writer registers in
//    families declared SWMR, never-written allocations that are not declared
//    sentinels, and op kinds outside the declared set.
//  - write_footprints(family, spec): lowers the declared masks into
//    verify::WriteFootprints for the explorer's footprint-driven persistent
//    sets (ExploreOptions::footprints).
//
// Observation is per-schedule sound (everything recorded really happened)
// and under-approximate in general (a schedule not driven may touch more);
// the declared mask is the over-approximation the lint checks it against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/access_map.hpp"
#include "api/family.hpp"
#include "verify/explorer.hpp"

namespace stamped::analysis {

/// Schedule battery of observe_footprint. The defaults finish in
/// milliseconds on every registry family at conformance-suite sizes.
struct ObserveOptions {
  int random_schedules = 8;     ///< seeded random runs to merge
  std::uint64_t max_steps = 1u << 20;  ///< per-run step guard
  std::uint64_t seed = 1;       ///< base seed of the random battery
};

/// Merged observation of the schedule battery.
struct ObservedFootprint {
  AccessMap map;
  std::uint64_t complete_runs = 0;  ///< runs where every process finished
  /// unwritten_in_complete_run[r]: some COMPLETE run ended with register r
  /// never written — the evidence the sentinel rule inspects.
  std::vector<bool> unwritten_in_complete_run;
};

/// One lint finding; reg < 0 for family-level findings.
struct LintIssue {
  int reg = -1;
  std::string message;
};

struct LintReport {
  std::string family;
  std::vector<LintIssue> issues;
  ObservedFootprint observed;

  [[nodiscard]] bool ok() const { return issues.empty(); }
  /// Multi-line human rendering ("" when ok) for test and CLI output.
  [[nodiscard]] std::string to_string() const;
};

/// Runs the schedule battery against family.factory(spec) and merges the
/// observed access maps. Requires RecordingMode::kFull step infos (the
/// factory default).
[[nodiscard]] ObservedFootprint observe_footprint(
    const api::TimestampFamily& family, const api::ScenarioSpec& spec,
    const ObserveOptions& opts = {});

/// Diffs family.footprint against observe_footprint(family, spec).
[[nodiscard]] LintReport lint_footprints(const api::TimestampFamily& family,
                                         const api::ScenarioSpec& spec,
                                         const ObserveOptions& opts = {});

/// Lowers the declared writer masks into the explorer's static write map.
/// Requires a declared footprint (family.footprint.declared()).
[[nodiscard]] std::shared_ptr<const verify::WriteFootprints> write_footprints(
    const api::TimestampFamily& family, const api::ScenarioSpec& spec);

}  // namespace stamped::analysis
