// AnalysisCtx: an instrumenting memory context for footprint dry-runs.
//
// Same interface as atomicmem::DirectCtx (immediately-ready awaiters, so
// coroutines execute synchronously to completion), but backed by a plain
// single-threaded register vector plus an AccessMap that records which pid
// touched which register with which op kind. Running a family's typed
// programs under AnalysisCtx yields the observed footprint of one sequential
// interleaving at near-zero cost — no scheduler, no coroutine suspension.
//
// This is the typed entry point of the extractor; the registry-uniform path
// (analysis::observe_footprint) instead drives the type-erased ISystem under
// many schedules and harvests step infos, covering interleavings that a
// synchronous run cannot reach. Both produce the same AccessMap shape.
#pragma once

#include <coroutine>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/access_map.hpp"
#include "runtime/coro.hpp"
#include "runtime/value.hpp"
#include "util/assert.hpp"

namespace stamped::analysis {

/// Shared state of one dry-run: plain registers, per-register write versions
/// (for versioned_read), a step clock, and the access map being built.
template <class V>
class AnalysisMemory {
 public:
  AnalysisMemory(int n, int num_registers, const V& initial)
      : map_(n, num_registers),
        regs_(static_cast<std::size_t>(num_registers), initial),
        versions_(static_cast<std::size_t>(num_registers), 0) {}

  [[nodiscard]] int num_registers() const {
    return static_cast<int>(regs_.size());
  }
  [[nodiscard]] const AccessMap& map() const { return map_; }
  [[nodiscard]] std::uint64_t clock() const { return clock_; }

 private:
  template <class>
  friend class AnalysisCtx;

  AccessMap map_;
  std::vector<V> regs_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t clock_ = 0;
  std::uint64_t stamps_ = 0;
};

/// Memory context recording every access into the shared AnalysisMemory.
/// Mirrors atomicmem::DirectCtx member for member so the same templated
/// programs (core::maxscan_program and friends) compile against it.
template <class V>
class AnalysisCtx {
 public:
  using Value = V;

  AnalysisCtx(AnalysisMemory<V>* mem, int pid) : mem_(mem), pid_(pid) {}

  [[nodiscard]] int pid() const { return pid_; }
  [[nodiscard]] int num_registers() const { return mem_->num_registers(); }

  struct ValueAwaiter {
    V v;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    V await_resume() { return std::move(v); }
  };
  struct VoidAwaiter {
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  struct VersionedAwaiter {
    runtime::Versioned<V> v;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    runtime::Versioned<V> await_resume() { return std::move(v); }
  };

  [[nodiscard]] ValueAwaiter read(int reg) {
    note(runtime::OpKind::kRead, reg);
    return {mem_->regs_[idx(reg)]};
  }
  [[nodiscard]] VersionedAwaiter versioned_read(int reg) {
    note(runtime::OpKind::kRead, reg);
    return {{mem_->regs_[idx(reg)], mem_->versions_[idx(reg)]}};
  }
  [[nodiscard]] VoidAwaiter write(int reg, V v) {
    note(runtime::OpKind::kWrite, reg);
    mem_->regs_[idx(reg)] = std::move(v);
    ++mem_->versions_[idx(reg)];
    return {};
  }
  [[nodiscard]] ValueAwaiter swap(int reg, V v) {
    note(runtime::OpKind::kSwap, reg);
    V old = std::exchange(mem_->regs_[idx(reg)], std::move(v));
    ++mem_->versions_[idx(reg)];
    return {std::move(old)};
  }
  [[nodiscard]] ValueAwaiter fetch_add(int reg, V addend)
    requires std::is_arithmetic_v<V>
  {
    note(runtime::OpKind::kFetchAdd, reg);
    V old = mem_->regs_[idx(reg)];
    mem_->regs_[idx(reg)] = static_cast<V>(old + addend);
    ++mem_->versions_[idx(reg)];
    return {old};
  }

  std::uint64_t stamp() { return ++mem_->stamps_; }
  [[nodiscard]] std::uint64_t steps_now() const { return mem_->clock_; }
  [[nodiscard]] std::uint64_t my_steps() const { return ops_; }
  void note_call_complete() { ++calls_; }
  [[nodiscard]] std::uint64_t calls_completed() const { return calls_; }

 private:
  static std::size_t idx(int reg) { return static_cast<std::size_t>(reg); }

  void note(runtime::OpKind kind, int reg) {
    STAMPED_ASSERT_MSG(reg >= 0 && reg < num_registers(),
                       "register " << reg << " out of range in dry-run");
    mem_->map_.record(pid_, kind, reg);
    ++ops_;
    ++mem_->clock_;
  }

  AnalysisMemory<V>* mem_;
  int pid_;
  std::uint64_t ops_ = 0;
  std::uint64_t calls_ = 0;
};

/// Runs one coroutine program to completion under AnalysisCtx. The awaiters
/// never suspend, so a single resume drives the whole body; a program that
/// suspends anyway (a custom awaiter) is a bug in the dry-run harness.
template <class V, class Fn>
void run_to_completion(AnalysisMemory<V>& mem, int pid, Fn&& program) {
  AnalysisCtx<V> ctx(&mem, pid);
  runtime::ProcessTask task = std::forward<Fn>(program)(ctx);
  task.handle().resume();
  STAMPED_ASSERT_MSG(task.done(), "program suspended under AnalysisCtx");
  if (task.exception() != nullptr) std::rethrow_exception(task.exception());
}

}  // namespace stamped::analysis
