// Observed register-access maps: the raw material of the footprint analysis.
//
// An AccessMap accumulates, per register, which pids read it, which pids
// wrote it and with which op kinds, over any number of dry-run executions.
// Two producers fill it: analysis::AnalysisCtx instruments typed programs
// directly (immediate-execution awaiters, no scheduler), and
// analysis::observe_footprint harvests the step-info log of type-erased
// systems driven through schedules. Both feed the same diff against the
// family's declared FootprintSpec (analysis::lint_footprints).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/isystem.hpp"
#include "util/assert.hpp"

namespace stamped::analysis {

/// Everything observed about one register across the merged dry-runs. Masks
/// are pid bitmasks (bit p set iff process p performed such an access), the
/// same width as the explorer's sleep sets, so n <= 64.
struct RegisterAccess {
  std::uint64_t writer_mask = 0;  ///< pids that modified the register
  std::uint64_t reader_mask = 0;  ///< pids that read it (incl. versioned)
  std::uint32_t op_kinds = 0;     ///< bitmask by runtime::OpKind (1 << kind)
  std::uint64_t writes = 0;       ///< total modifying accesses
  std::uint64_t reads = 0;        ///< total reading accesses

  [[nodiscard]] bool written() const { return writes != 0; }
};

/// Per-register observed access map of one or more executions.
class AccessMap {
 public:
  AccessMap() = default;
  AccessMap(int n, int m) : n_(n), regs_(static_cast<std::size_t>(m)) {
    STAMPED_ASSERT_MSG(n >= 1 && n <= 64,
                       "access maps are pid bitmasks: 1 <= n <= 64, got "
                           << n);
    STAMPED_ASSERT_MSG(m >= 1, "need at least one register, got " << m);
  }

  [[nodiscard]] int num_processes() const { return n_; }
  [[nodiscard]] int num_registers() const {
    return static_cast<int>(regs_.size());
  }

  [[nodiscard]] const RegisterAccess& reg(int r) const {
    STAMPED_ASSERT(r >= 0 && r < num_registers());
    return regs_[static_cast<std::size_t>(r)];
  }

  void record(int pid, runtime::OpKind kind, int r) {
    if (kind == runtime::OpKind::kNone) return;
    STAMPED_ASSERT(pid >= 0 && pid < n_);
    STAMPED_ASSERT(r >= 0 && r < num_registers());
    RegisterAccess& a = regs_[static_cast<std::size_t>(r)];
    a.op_kinds |= 1u << static_cast<unsigned>(kind);
    if (runtime::op_kind_writes(kind)) {
      a.writer_mask |= std::uint64_t{1} << pid;
      ++a.writes;
    }
    // Swap and fetch&add observe the old value, so they count as reads too;
    // a plain write does not.
    if (!runtime::op_kind_writes(kind) || kind == runtime::OpKind::kSwap ||
        kind == runtime::OpKind::kFetchAdd) {
      a.reader_mask |= std::uint64_t{1} << pid;
      ++a.reads;
    }
  }

  /// Folds another map over the same geometry into this one.
  void merge(const AccessMap& other) {
    STAMPED_ASSERT(other.n_ == n_ &&
                   other.num_registers() == num_registers());
    for (std::size_t r = 0; r < regs_.size(); ++r) {
      regs_[r].writer_mask |= other.regs_[r].writer_mask;
      regs_[r].reader_mask |= other.regs_[r].reader_mask;
      regs_[r].op_kinds |= other.regs_[r].op_kinds;
      regs_[r].writes += other.regs_[r].writes;
      regs_[r].reads += other.regs_[r].reads;
    }
  }

 private:
  int n_ = 0;
  std::vector<RegisterAccess> regs_;
};

/// "{0,3,5}" for a pid bitmask — the lint's message vocabulary.
inline std::string pid_mask_repr(std::uint64_t mask) {
  std::string out = "{";
  bool first = true;
  for (int p = 0; p < 64; ++p) {
    if ((mask >> p & 1u) == 0) continue;
    if (!first) out += ",";
    out += std::to_string(p);
    first = false;
  }
  return out + "}";
}

}  // namespace stamped::analysis
