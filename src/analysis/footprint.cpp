#include "analysis/footprint.hpp"

#include <bit>
#include <sstream>
#include <utility>

#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace stamped::analysis {

namespace {

/// Harvests one finished (or step-capped) run's step infos into the map and
/// its completion evidence into the observation.
void harvest(runtime::ISystem& sys, ObservedFootprint& out) {
  for (const runtime::StepInfo& s : sys.step_infos()) {
    out.map.record(s.pid, s.kind, s.reg);
  }
  if (!sys.all_finished()) return;
  ++out.complete_runs;
  for (int r = 0; r < sys.num_registers(); ++r) {
    if (!sys.register_written(r)) {
      out.unwritten_in_complete_run[static_cast<std::size_t>(r)] = true;
    }
  }
}

/// Sequential-solo schedule: processes run to completion one after another,
/// in `order` — the canonical SWMR witness (every declared writer actually
/// writes) and the run the sentinel rule leans on.
void run_sequential(runtime::ISystem& sys, bool reversed,
                    std::uint64_t max_steps) {
  const int n = sys.num_processes();
  std::uint64_t budget = max_steps;
  for (int i = 0; i < n && budget > 0; ++i) {
    const int p = reversed ? n - 1 - i : i;
    while (!sys.finished(p) && budget > 0) {
      sys.step(p);
      --budget;
    }
  }
}

}  // namespace

ObservedFootprint observe_footprint(const api::TimestampFamily& family,
                                    const api::ScenarioSpec& spec,
                                    const ObserveOptions& opts) {
  STAMPED_ASSERT_MSG(family.factory != nullptr,
                     "family '" << family.name << "' has no factory");
  STAMPED_ASSERT_MSG(family.supports(spec),
                     "family '" << family.name
                                << "' does not support this scenario");
  const runtime::SystemFactory make = family.factory(spec);

  ObservedFootprint out;
  {
    // One probe run fixes the geometry (n, m) for the merged map.
    std::unique_ptr<runtime::ISystem> probe = make();
    out.map = AccessMap(probe->num_processes(), probe->num_registers());
    out.unwritten_in_complete_run.assign(
        static_cast<std::size_t>(probe->num_registers()), false);
  }

  for (const bool reversed : {false, true}) {
    std::unique_ptr<runtime::ISystem> sys = make();
    run_sequential(*sys, reversed, opts.max_steps);
    runtime::check_no_failures(*sys);
    harvest(*sys, out);
  }
  {
    std::unique_ptr<runtime::ISystem> sys = make();
    runtime::run_round_robin(*sys, opts.max_steps);
    runtime::check_no_failures(*sys);
    harvest(*sys, out);
  }
  for (int i = 0; i < opts.random_schedules; ++i) {
    std::unique_ptr<runtime::ISystem> sys = make();
    util::Rng rng(opts.seed + static_cast<std::uint64_t>(i));
    runtime::run_random(*sys, rng, opts.max_steps);
    runtime::check_no_failures(*sys);
    harvest(*sys, out);
  }
  return out;
}

std::string LintReport::to_string() const {
  if (issues.empty()) return {};
  std::ostringstream os;
  os << "footprint lint: " << issues.size() << " issue(s) in family '"
     << family << "'";
  for (const LintIssue& i : issues) {
    os << "\n  ";
    if (i.reg >= 0) os << "reg " << i.reg << ": ";
    os << i.message;
  }
  return std::move(os).str();
}

LintReport lint_footprints(const api::TimestampFamily& family,
                           const api::ScenarioSpec& spec,
                           const ObserveOptions& opts) {
  LintReport report;
  report.family = family.name;
  const api::FootprintSpec& fp = family.footprint;
  if (!fp.declared()) {
    report.issues.push_back(
        {-1, "family declares no footprint (FootprintSpec::writer_mask "
             "unset); the ownership discipline cannot be checked"});
    return report;
  }

  report.observed = observe_footprint(family, spec, opts);
  const AccessMap& map = report.observed.map;
  const std::uint64_t live = spec.n >= 64 ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << spec.n) - 1;

  for (int r = 0; r < map.num_registers(); ++r) {
    const RegisterAccess& obs = map.reg(r);
    const std::uint64_t declared = fp.writer_mask(spec, r) & live;

    if (fp.ownership == api::Ownership::kSWMR &&
        std::popcount(declared) > 1) {
      report.issues.push_back(
          {r, "declared SWMR but writer mask " + pid_mask_repr(declared) +
                  " names several writers"});
    }
    if (const std::uint64_t rogue = obs.writer_mask & ~declared; rogue != 0) {
      report.issues.push_back(
          {r, "undeclared writer(s) " + pid_mask_repr(rogue) +
                  " observed; declared mask is " + pid_mask_repr(declared)});
    }
    if (fp.ownership == api::Ownership::kSWMR &&
        std::popcount(obs.writer_mask) > 1) {
      report.issues.push_back(
          {r, "multi-writer register in an SWMR family: observed writers " +
                  pid_mask_repr(obs.writer_mask)});
    }
    const bool unwritten =
        report.observed.unwritten_in_complete_run[static_cast<std::size_t>(
            r)];
    if (unwritten && fp.may_be_unwritten != nullptr &&
        !fp.may_be_unwritten(spec, r)) {
      report.issues.push_back(
          {r, "never written in a complete run but not declared a sentinel "
              "(FootprintSpec::may_be_unwritten is false)"});
    }
    if (declared == 0 && obs.written()) {
      report.issues.push_back(
          {r, "declared a hard sentinel (empty writer mask) but " +
                  std::to_string(obs.writes) + " write(s) observed from " +
                  pid_mask_repr(obs.writer_mask)});
    }
    if (const std::uint32_t bad = obs.op_kinds & ~fp.allowed_ops; bad != 0) {
      report.issues.push_back(
          {r, "op kind(s) outside the declared set (observed mask 0x" +
                  [bad] {
                    std::ostringstream os;
                    os << std::hex << bad;
                    return std::move(os).str();
                  }() +
                  ")"});
    }
  }
  if (report.observed.complete_runs == 0) {
    report.issues.push_back(
        {-1, "no schedule in the battery ran to completion (step budget too "
             "small?); the sentinel rule has no evidence"});
  }
  return report;
}

std::shared_ptr<const verify::WriteFootprints> write_footprints(
    const api::TimestampFamily& family, const api::ScenarioSpec& spec) {
  const api::FootprintSpec& fp = family.footprint;
  STAMPED_ASSERT_MSG(fp.declared(), "family '" << family.name
                                               << "' declares no footprint");
  const std::int64_t m = family.registers_allocated != nullptr
                             ? family.registers_allocated(spec)
                             : 0;
  STAMPED_ASSERT_MSG(m > 0, "family '" << family.name
                                       << "' reports no allocation bound");
  const std::uint64_t live = spec.n >= 64 ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << spec.n) - 1;
  auto out = std::make_shared<verify::WriteFootprints>();
  out->reg_writers.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    out->reg_writers.push_back(fp.writer_mask(spec, r) & live);
  }
  return out;
}

}  // namespace stamped::analysis
