// FCFS mutual exclusion from a timestamp object — the paper's motivating
// application family (Lamport's bakery, CACM 1974; FCFS fairness).
//
// This is a bakery-style lock whose ticket numbers come from the library's
// long-lived max-scan timestamp object instead of Lamport's ad-hoc
// "1 + max(number[1..n])" (which is itself a timestamp object in disguise —
// the point the paper's introduction makes).
//
// Register layout inside one System<int64> (all registers SWMR except the
// reads):
//   [0, n)    the timestamp object's registers (max-scan)
//   [n, 2n)   choosing[i] in {0,1}
//   [2n, 3n)  number[i]: the ticket (0 = none)
//   [3n, 4n)  in_cs[i] in {0,1}: occupancy flags for the mutual-exclusion
//             checker (written only by i; the observer sums them)
//
// acquire(i):
//   choosing[i] := 1                      (doorway begins)
//   t := getTS()                          (the timestamp object)
//   number[i] := t; choosing[i] := 0      (doorway ends)
//   for each j != i:
//     wait until choosing[j] = 0
//     wait until number[j] = 0 or (number[i], i) < (number[j], j)
// release(i): number[i] := 0
//
// Properties (tested in tests/test_fcfs_lock.cpp):
//   - mutual exclusion: at most one in_cs flag set in any configuration;
//   - FCFS: if p's doorway completes before q's doorway begins, p enters the
//     critical section first;
//   - progress under any fair scheduler.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/maxscan_longlived.hpp"
#include "runtime/coro.hpp"
#include "runtime/history.hpp"
#include "runtime/system.hpp"
#include "util/assert.hpp"

namespace stamped::apps {

/// Register-index arithmetic for the bakery layout.
struct BakeryLayout {
  int n = 0;

  [[nodiscard]] static int registers(int n) { return 4 * n; }
  [[nodiscard]] int ts_reg(int i) const { return i; }
  [[nodiscard]] int choosing_reg(int i) const { return n + i; }
  [[nodiscard]] int number_reg(int i) const { return 2 * n + i; }
  [[nodiscard]] int cs_reg(int i) const { return 3 * n + i; }
};

/// One completed lock acquisition, with the event stamps the FCFS checker
/// needs.
struct BakeryAcquisition {
  int pid = -1;
  int round = 0;
  std::int64_t ticket = 0;
  std::uint64_t doorway_begin = 0;
  std::uint64_t doorway_end = 0;
  std::uint64_t cs_enter = 0;
  std::uint64_t cs_exit = 0;
};

/// Thread-safe log of acquisitions.
class BakeryLog {
 public:
  void record(BakeryAcquisition a) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(a);
  }
  [[nodiscard]] std::vector<BakeryAcquisition> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<BakeryAcquisition> records_;
};

/// One acquire/critical-section/release cycle.
template <class Ctx>
runtime::SubTask<std::int64_t> bakery_cycle(
    Ctx& ctx, BakeryLayout layout, int pid, int round, BakeryLog* log,
    runtime::CallLog<std::int64_t>* ts_log) {
  BakeryAcquisition acq;
  acq.pid = pid;
  acq.round = round;

  // Doorway.
  acq.doorway_begin = ctx.stamp();
  co_await ctx.write(layout.choosing_reg(pid), std::int64_t{1});
  const std::int64_t ticket =
      co_await core::maxscan_getts(ctx, pid, layout.n, round, ts_log);
  acq.ticket = ticket;
  co_await ctx.write(layout.number_reg(pid), ticket);
  co_await ctx.write(layout.choosing_reg(pid), std::int64_t{0});
  acq.doorway_end = ctx.stamp();

  // Entry protocol.
  for (int j = 0; j < layout.n; ++j) {
    if (j == pid) continue;
    for (;;) {
      const std::int64_t choosing = co_await ctx.read(layout.choosing_reg(j));
      if (choosing == 0) break;
    }
    for (;;) {
      const std::int64_t other = co_await ctx.read(layout.number_reg(j));
      if (other == 0) break;
      // Priority order: (ticket, pid) lexicographic, smaller goes first.
      if (ticket < other || (ticket == other && pid < j)) break;
    }
  }

  // Critical section.
  acq.cs_enter = ctx.stamp();
  co_await ctx.write(layout.cs_reg(pid), std::int64_t{1});
  co_await ctx.write(layout.cs_reg(pid), std::int64_t{0});
  acq.cs_exit = ctx.stamp();

  // Release.
  co_await ctx.write(layout.number_reg(pid), std::int64_t{0});
  if (log != nullptr) log->record(acq);
  ctx.note_call_complete();
  co_return ticket;
}

/// Worker: `rounds` acquire/release cycles.
template <class Ctx>
runtime::ProcessTask bakery_worker_program(
    Ctx& ctx, BakeryLayout layout, int pid, int rounds, BakeryLog* log,
    runtime::CallLog<std::int64_t>* ts_log) {
  for (int r = 0; r < rounds; ++r) {
    co_await bakery_cycle(ctx, layout, pid, r, log, ts_log);
  }
}

/// Builds an n-process bakery-lock simulation, `rounds` cycles per process.
inline std::unique_ptr<runtime::System<std::int64_t>> make_bakery_system(
    int n, int rounds, BakeryLog* log,
    runtime::CallLog<std::int64_t>* ts_log = nullptr) {
  STAMPED_ASSERT(n >= 1 && rounds >= 1);
  using Sys = runtime::System<std::int64_t>;
  const BakeryLayout layout{n};
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([layout, p, rounds, log, ts_log](Sys::Ctx& ctx) {
      return bakery_worker_program(ctx, layout, p, rounds, log, ts_log);
    });
  }
  return std::make_unique<Sys>(BakeryLayout::registers(n), std::int64_t{0},
                               std::move(programs));
}

/// Mutual-exclusion observer: attach to the system; throws on the first
/// configuration with two set in_cs flags.
inline void attach_mutex_checker(runtime::System<std::int64_t>& sys, int n) {
  const BakeryLayout layout{n};
  sys.set_observer([layout](const runtime::System<std::int64_t>& s,
                            const runtime::TraceEntry<std::int64_t>&) {
    int occupants = 0;
    for (int i = 0; i < layout.n; ++i) {
      occupants += s.reg_value(layout.cs_reg(i)) != 0 ? 1 : 0;
    }
    STAMPED_ASSERT_MSG(occupants <= 1,
                       "mutual exclusion violated: " << occupants
                                                     << " in the CS");
  });
}

/// FCFS check: if a's doorway completed before b's doorway began, a must
/// enter the critical section first. Returns a description of the first
/// violation, or empty.
inline std::string check_fcfs(const std::vector<BakeryAcquisition>& log) {
  for (const auto& a : log) {
    for (const auto& b : log) {
      if (a.doorway_end < b.doorway_begin && b.cs_enter < a.cs_enter) {
        return "p" + std::to_string(a.pid) + " round " +
               std::to_string(a.round) + " finished its doorway first but p" +
               std::to_string(b.pid) + " round " + std::to_string(b.round) +
               " entered the CS earlier";
      }
    }
  }
  return {};
}

/// Critical sections must not overlap in stamp order (a second, log-based
/// mutual-exclusion check that also works for the threaded backend).
inline std::string check_cs_disjoint(
    const std::vector<BakeryAcquisition>& log) {
  for (const auto& a : log) {
    for (const auto& b : log) {
      if (&a == &b) continue;
      const bool disjoint = a.cs_exit < b.cs_enter || b.cs_exit < a.cs_enter;
      if (!disjoint) {
        return "critical sections of p" + std::to_string(a.pid) + " and p" +
               std::to_string(b.pid) + " overlap";
      }
    }
  }
  return {};
}

}  // namespace stamped::apps
