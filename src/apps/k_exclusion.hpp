// FIFO k-exclusion from a timestamp object — the generalization of mutual
// exclusion the paper's introduction cites (Fischer, Lynch, Burns & Borodin
// 1989; Afek et al. 1994): at most k processes may hold one of k identical
// resources, granted in first-come-first-served order.
//
// Same register layout idea as apps/fcfs_lock.hpp:
//   [0, n)    max-scan timestamp registers (tickets)
//   [n, 2n)   choosing[i]
//   [2n, 3n)  number[i] (0 = not contending)
//   [3n, 4n)  in_cs[i] (occupancy flags for the <= k checker)
//
// Entry rule: spin on whole-array rechecks until no process is mid-doorway
// and fewer than k contenders have a smaller (ticket, pid) tag. The classic
// bakery argument generalizes: on the admitting recheck every smaller-tag
// occupant was visible, so at most k-1 of them existed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/fcfs_lock.hpp"

namespace stamped::apps {

/// One acquire/use/release cycle of the k-exclusion object.
template <class Ctx>
runtime::SubTask<std::int64_t> kexclusion_cycle(
    Ctx& ctx, BakeryLayout layout, int pid, int round, int k, BakeryLog* log,
    runtime::CallLog<std::int64_t>* ts_log) {
  BakeryAcquisition acq;
  acq.pid = pid;
  acq.round = round;

  // Doorway (identical to the bakery lock).
  acq.doorway_begin = ctx.stamp();
  co_await ctx.write(layout.choosing_reg(pid), std::int64_t{1});
  const std::int64_t ticket =
      co_await core::maxscan_getts(ctx, pid, layout.n, round, ts_log);
  acq.ticket = ticket;
  co_await ctx.write(layout.number_reg(pid), ticket);
  co_await ctx.write(layout.choosing_reg(pid), std::int64_t{0});
  acq.doorway_end = ctx.stamp();

  // Entry: whole-array recheck until stable and fewer than k predecessors.
  for (;;) {
    bool stable = true;
    int preceding = 0;
    for (int j = 0; j < layout.n && stable; ++j) {
      if (j == pid) continue;
      const std::int64_t choosing = co_await ctx.read(layout.choosing_reg(j));
      if (choosing != 0) {
        stable = false;
        break;
      }
      const std::int64_t other = co_await ctx.read(layout.number_reg(j));
      if (other != 0 && (other < ticket || (other == ticket && j < pid))) {
        ++preceding;
      }
    }
    if (stable && preceding < k) break;
  }

  // Resource section.
  acq.cs_enter = ctx.stamp();
  co_await ctx.write(layout.cs_reg(pid), std::int64_t{1});
  co_await ctx.write(layout.cs_reg(pid), std::int64_t{0});
  acq.cs_exit = ctx.stamp();

  // Release.
  co_await ctx.write(layout.number_reg(pid), std::int64_t{0});
  if (log != nullptr) log->record(acq);
  ctx.note_call_complete();
  co_return ticket;
}

/// Worker: `rounds` acquire/release cycles of the k-exclusion object.
template <class Ctx>
runtime::ProcessTask kexclusion_worker_program(
    Ctx& ctx, BakeryLayout layout, int pid, int rounds, int k, BakeryLog* log,
    runtime::CallLog<std::int64_t>* ts_log) {
  for (int r = 0; r < rounds; ++r) {
    co_await kexclusion_cycle(ctx, layout, pid, r, k, log, ts_log);
  }
}

/// Builds an n-process k-exclusion simulation.
inline std::unique_ptr<runtime::System<std::int64_t>> make_kexclusion_system(
    int n, int k, int rounds, BakeryLog* log,
    runtime::CallLog<std::int64_t>* ts_log = nullptr) {
  STAMPED_ASSERT(n >= 1 && k >= 1 && rounds >= 1);
  using Sys = runtime::System<std::int64_t>;
  const BakeryLayout layout{n};
  std::vector<Sys::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    programs.push_back([layout, p, rounds, k, log, ts_log](Sys::Ctx& ctx) {
      return kexclusion_worker_program(ctx, layout, p, rounds, k, log,
                                       ts_log);
    });
  }
  return std::make_unique<Sys>(BakeryLayout::registers(n), std::int64_t{0},
                               std::move(programs));
}

/// Occupancy observer: at most k processes in the resource section at once.
inline void attach_kexclusion_checker(runtime::System<std::int64_t>& sys,
                                      int n, int k) {
  const BakeryLayout layout{n};
  sys.set_observer([layout, k](const runtime::System<std::int64_t>& s,
                               const runtime::TraceEntry<std::int64_t>&) {
    int occupants = 0;
    for (int i = 0; i < layout.n; ++i) {
      occupants += s.reg_value(layout.cs_reg(i)) != 0 ? 1 : 0;
    }
    STAMPED_ASSERT_MSG(occupants <= k, "k-exclusion violated: "
                                           << occupants << " > k=" << k);
  });
}

/// At no instant in stamp order may more than k resource sections be active
/// simultaneously (a sweep over enter/exit events; pairwise overlap with a
/// common section does NOT imply simultaneity).
inline std::string check_k_overlap(const std::vector<BakeryAcquisition>& log,
                                   int k) {
  std::vector<std::pair<std::uint64_t, int>> events;  // (stamp, +1/-1)
  events.reserve(log.size() * 2);
  for (const auto& a : log) {
    events.emplace_back(a.cs_enter, +1);
    events.emplace_back(a.cs_exit, -1);
  }
  std::sort(events.begin(), events.end());
  int active = 0;
  for (const auto& [stamp, delta] : events) {
    active += delta;
    if (active > k) {
      return "more than k=" + std::to_string(k) +
             " simultaneous sections (" + std::to_string(active) +
             ") at stamp " + std::to_string(stamp);
    }
  }
  return {};
}

}  // namespace stamped::apps
