// Happens-before race detector over recorded traces.
//
// The simulator serializes every shared-memory step, so an execution has no
// data race in the C++ sense — what CAN go wrong is an OWNERSHIP race: a
// write to a register outside the writer set the family declares, unordered
// (by happens-before) with a conflicting access of that register. The
// paper's SWMR space arguments assume such writes never happen; this
// detector checks each recorded execution against that assumption, the
// trace-level complement of the static footprint lint.
//
// Happens-before is built vector-clock style (Mattern / FastTrack lineage,
// see PAPERS.md) from the trace order the simulator records:
//  - program order: consecutive steps of one pid;
//  - reads-from order: a READING access of register r (read, and the read
//    half of swap/fetch&add) acquires the vector clock of r's last write —
//    observing a value synchronizes with the write that produced it. Plain
//    writes acquire nothing: overwriting blind is not synchronization, so
//    write/write and write-after-read pairs stay unordered unless a
//    program-order or reads-from chain connects them (successive RMWs on
//    one register, e.g., are totally ordered by their read halves).
// Two same-register accesses with at least one write are *conflicting*; a
// conflicting pair left unordered by the union above is a candidate race.
// A candidate is REPORTED only when at least one side is an undeclared
// writer — algorithm-internal write races of declared MWMR writer sets
// (fetch&add, Algorithm 4's frontier) are the families' business, ordered
// by register coherence above, and not ownership violations.
//
// With no declared footprint (writers == nullptr) every writer is
// undeclared-unknown and candidates are reported unconditionally: the
// detector degrades to a plain HB race check on the trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/isystem.hpp"
#include "verify/explorer.hpp"

namespace stamped::verify {

/// One flagged pair, in trace order (first < second).
struct RaceReport {
  int reg = -1;
  std::size_t first_step = 0;   ///< trace index of the earlier access
  std::size_t second_step = 0;  ///< trace index of the later access
  int first_pid = -1;
  int second_pid = -1;
  runtime::OpKind first_kind = runtime::OpKind::kNone;
  runtime::OpKind second_kind = runtime::OpKind::kNone;
  /// The pid(s) of the pair writing outside the declared mask.
  std::uint64_t undeclared_mask = 0;

  [[nodiscard]] std::string to_string() const;
};

struct RaceCheckResult {
  std::vector<RaceReport> races;
  std::uint64_t steps_analyzed = 0;

  [[nodiscard]] bool ok() const { return races.empty(); }
};

/// Analyzes one recorded trace. `n` / `m` give the geometry; `writers` is
/// the declared static write map (null = report every unordered conflicting
/// pair). Steps with kind kNone (crash markers etc.) are skipped.
[[nodiscard]] RaceCheckResult detect_races(
    const std::vector<runtime::StepInfo>& trace, int n, int m,
    const WriteFootprints* writers);

/// Convenience overload: analyzes the system's own recorded trace
/// (RecordingMode::kFull required).
[[nodiscard]] RaceCheckResult detect_races(runtime::ISystem& sys,
                                           const WriteFootprints* writers);

}  // namespace stamped::verify
