#include "verify/race_detector.hpp"

#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace stamped::verify {

namespace {

constexpr bool op_reads(runtime::OpKind k) {
  return k == runtime::OpKind::kRead || k == runtime::OpKind::kSwap ||
         k == runtime::OpKind::kFetchAdd;
}

/// Last access of one pid to one register, FastTrack-epoch style: q's own
/// clock component at the access. The access is HB-before a later event e
/// iff VC[e.pid][q] >= clock — and q's EARLIER accesses are program-ordered
/// before this one, so the last access per (reg, pid, read/write) is all
/// the detector must remember.
struct Epoch {
  std::uint64_t clock = 0;  ///< 0 = no such access yet
  std::size_t step = 0;
  runtime::OpKind kind = runtime::OpKind::kNone;
};

struct RegState {
  std::vector<std::uint64_t> last_write_clock;  ///< VC of the last write
  bool written = false;
  std::vector<Epoch> write;  ///< per pid
  std::vector<Epoch> read;   ///< per pid
};

}  // namespace

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "ownership race on reg " << reg << ": step " << first_step << " (pid "
     << first_pid << ", " << runtime::op_kind_name(first_kind) << ") vs step "
     << second_step << " (pid " << second_pid << ", "
     << runtime::op_kind_name(second_kind) << "), undeclared writer(s) mask 0x";
  os << std::hex << undeclared_mask;
  return std::move(os).str();
}

RaceCheckResult detect_races(const std::vector<runtime::StepInfo>& trace,
                             int n, int m, const WriteFootprints* writers) {
  STAMPED_ASSERT_MSG(n >= 1 && n <= 64,
                     "vector clocks are pid-indexed, 1 <= n <= 64, got " << n);
  STAMPED_ASSERT_MSG(m >= 1, "need at least one register");

  std::vector<std::vector<std::uint64_t>> vc(
      static_cast<std::size_t>(n),
      std::vector<std::uint64_t>(static_cast<std::size_t>(n), 0));
  std::vector<RegState> regs(static_cast<std::size_t>(m));
  for (RegState& rs : regs) {
    rs.last_write_clock.assign(static_cast<std::size_t>(n), 0);
    rs.write.assign(static_cast<std::size_t>(n), {});
    rs.read.assign(static_cast<std::size_t>(n), {});
  }

  RaceCheckResult result;

  // An access with at least one undeclared writer (or any conflicting pair
  // when no footprint is declared) gets reported.
  const auto report = [&](int reg, const Epoch& prev, int prev_pid,
                          std::size_t cur_step, int cur_pid,
                          runtime::OpKind cur_kind) {
    const std::uint64_t declared =
        writers != nullptr ? writers->writers_of(reg) : 0;
    std::uint64_t undeclared = 0;
    if (runtime::op_kind_writes(prev.kind) &&
        (declared >> prev_pid & 1u) == 0) {
      undeclared |= std::uint64_t{1} << prev_pid;
    }
    if (runtime::op_kind_writes(cur_kind) && (declared >> cur_pid & 1u) == 0) {
      undeclared |= std::uint64_t{1} << cur_pid;
    }
    if (writers != nullptr && undeclared == 0) return;
    RaceReport r;
    r.reg = reg;
    r.first_step = prev.step;
    r.second_step = cur_step;
    r.first_pid = prev_pid;
    r.second_pid = cur_pid;
    r.first_kind = prev.kind;
    r.second_kind = cur_kind;
    r.undeclared_mask = undeclared;
    result.races.push_back(std::move(r));
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const runtime::StepInfo& s = trace[i];
    if (s.kind == runtime::OpKind::kNone) continue;  // crash markers etc.
    STAMPED_ASSERT(s.pid >= 0 && s.pid < n);
    STAMPED_ASSERT_MSG(s.reg >= 0 && s.reg < m,
                       "trace touches reg " << s.reg << " outside geometry m="
                                            << m);
    const auto p = static_cast<std::size_t>(s.pid);
    const auto r = static_cast<std::size_t>(s.reg);
    RegState& rs = regs[r];
    std::vector<std::uint64_t>& my = vc[p];

    ++my[p];  // fresh epoch for this event (program order)
    ++result.steps_analyzed;

    // Reads-from: observing the register orders this event after its last
    // write. Applied before the conflict scan so write->read pairs come out
    // ordered; a plain write skips this, keeping blind overwrites unordered.
    if (op_reads(s.kind) && rs.written) {
      for (std::size_t q = 0; q < static_cast<std::size_t>(n); ++q) {
        if (rs.last_write_clock[q] > my[q]) my[q] = rs.last_write_clock[q];
      }
    }

    // Conflict scan against the last access per other pid.
    for (int q = 0; q < n; ++q) {
      if (q == s.pid) continue;
      const auto qi = static_cast<std::size_t>(q);
      const Epoch& w = rs.write[qi];
      if (w.clock != 0 && my[qi] < w.clock) {
        report(s.reg, w, q, i, s.pid, s.kind);
      }
      if (s.is_write()) {
        const Epoch& rd = rs.read[qi];
        if (rd.clock != 0 && my[qi] < rd.clock) {
          report(s.reg, rd, q, i, s.pid, s.kind);
        }
      }
    }

    // Publish this event into the register's history.
    if (op_reads(s.kind)) rs.read[p] = {my[p], i, s.kind};
    if (s.is_write()) {
      rs.write[p] = {my[p], i, s.kind};
      rs.last_write_clock = my;
      rs.written = true;
    }
  }
  return result;
}

RaceCheckResult detect_races(runtime::ISystem& sys,
                             const WriteFootprints* writers) {
  STAMPED_ASSERT_MSG(sys.recording_mode() == runtime::RecordingMode::kFull,
                     "race detection needs the full step-info trace");
  return detect_races(sys.step_infos(), sys.num_processes(),
                      sys.num_registers(), writers);
}

}  // namespace stamped::verify
