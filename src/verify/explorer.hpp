// Exhaustive execution explorer: model checking on the simulator.
//
// Because processes are deterministic coroutines and a configuration is
// reproducible from its schedule, the set of ALL executions of a small
// system is a tree of schedules. This module enumerates that tree by DFS and
// runs a caller-supplied check at every complete (maximal) execution —
// e.g. "the timestamp property holds in every interleaving of Algorithm 4
// with 2 processes", a statement no finite number of random schedules can
// certify.
//
// No partial-order reduction is applied; the budget caps the raw tree. The
// per-node sibling cost is one replay of the prefix (configurations cannot
// be copied, only reconstructed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace stamped::verify {

/// One disposable system instance with a validity check bound to it (the
/// check typically inspects a CallLog owned by the same closure).
struct ExplorationInstance {
  std::unique_ptr<runtime::ISystem> sys;
  std::function<std::optional<std::string>()> check;
};

/// Creates fresh instances; called once per explored branch.
using InstanceFactory = std::function<ExplorationInstance()>;

struct ExploreOptions {
  /// Stop after this many complete executions (0 = unlimited).
  std::uint64_t max_executions = 1u << 20;
  /// Guard against non-terminating programs: a schedule prefix reaching this
  /// length with unfinished processes is recorded as a violation and the
  /// exploration stops (a real runtime check — not an assertion, so it also
  /// fires in builds that disable assertions).
  std::uint64_t max_depth = 1u << 14;
};

struct ExploreResult {
  std::uint64_t executions = 0;       ///< complete executions checked
  std::uint64_t nodes = 0;            ///< interior scheduling decisions
  std::uint64_t max_depth_seen = 0;
  bool budget_exhausted = false;
  /// A schedule prefix hit ExploreOptions::max_depth with live processes
  /// (non-terminating program?); a violation describing it was recorded and
  /// the exploration was cut short.
  bool depth_exceeded = false;
  std::vector<std::string> violations;  ///< "<message> [schedule: ...]"

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Enumerates every maximal execution of the systems produced by `factory`
/// and applies the instance check at each; see file comment.
ExploreResult explore_all_executions(const InstanceFactory& factory,
                                     const ExploreOptions& opts = {});

}  // namespace stamped::verify
