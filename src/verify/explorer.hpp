// Exhaustive execution explorer: model checking on the simulator.
//
// Because processes are deterministic coroutines and a configuration is
// reproducible from its schedule, the set of ALL executions of a small
// system is a tree of schedules. This module enumerates that tree and runs a
// caller-supplied check at every complete (maximal) execution — e.g. "the
// timestamp property holds in every interleaving of Algorithm 4 with 2
// processes", a statement no finite number of random schedules can certify.
//
// The engine is a work-list DFS over frontier entries rather than a
// recursion: at each node the first candidate child is explored *in place*
// on the live instance (no replay), and the remaining siblings are parked on
// a frontier deque as `(schedule prefix, sleep set, remaining candidates)`.
// Whoever pops such an entry — the same worker backtracking, or a thief in
// the parallel mode — reconstructs the node's configuration by one replay of
// the prefix (configurations cannot be copied, only reconstructed), steps
// the next sibling, parks the rest again, and descends in place. With one
// worker this visits the exact same tree in the exact same order as the
// classic recursive DFS (and tolerates max_depth-deep trees without
// exhausting the C stack); with ExploreOptions::threads > 1 a fixed worker
// pool drains the shared deque LIFO, stolen prefixes replay on the thief,
// and the per-worker results merge into one deterministic ExploreResult —
// node/execution/prune counts are set-derived, so a completed parallel
// exploration reports exactly the serial counts, and violations are sorted
// to erase scheduling nondeterminism.
//
// With ExploreOptions::por the DFS applies sleep-set partial-order reduction
// (Godefroid style): after a branch explores transition t from a node, its
// sibling branches put t to sleep and skip any node where every live process
// is asleep — each pruned subtree contains only executions Mazurkiewicz-
// equivalent (reorderings of adjacent independent steps) to ones already
// explored. Two steps are *independent* iff they touch different registers,
// or the same register with neither writing (read-read independence), AND
// not both complete a method call. The call-completion clause covers the
// happens-before checks: response stamps, and the invocation stamps of every
// call after a process's first, are taken inside call-completing steps, so
// commuting steps of which at most one completes a call preserves those
// happens-before pairs, the recorded timestamps, and hence the check verdict
// of each execution. A sleeping process's pending op cannot change while it
// sleeps (any write to a register it is about to access is dependent and
// wakes it), which is the classic persistence argument that makes sleep sets
// miss no violation. Sleep sets are pid bitmasks (std::uint64_t, so n <= 64)
// with one packed op word per sleeping pid — membership tests, candidate
// filtering and copies are word operations, not vector scans.
//
// ExploreOptions::persistent layers a persistent-set heuristic on top: at
// each branching node the candidate set shrinks to the smallest closure of
// one candidate under pending-op register-footprint conflicts (same register
// with at least one write). Sleep sets prune equivalent *subtrees after the
// siblings branched*; the persistent set stops read-read-independent
// siblings from branching at all, so their replays never happen. The
// footprint closure is weaker than the sleep-set dependence in two ways: it
// looks only at the *pending* ops, not at what a deferred process may access
// later, and it cannot include the call-completion clause (whether a step
// completes a method call is only observable by executing it), so it may
// commute two call-completing steps and with them a happens-before pair.
// Unlike the sleep sets it is therefore a reduction heuristic rather than a
// theorem — crosscheck_por() remains the certification tool (it diffs
// full-vs-reduced violation sets per instance), and the conformance suite
// runs it per family.
//
// ExploreOptions::footprints sharpens the pending-op closure with the
// family's declared static write map (analysis::write_footprints): a
// deferred process joins the persistent set only if it MAY EVER write a
// register the set already has pending — membership is decided by the
// declared writer masks, not by the op the process happens to be poised at.
// For SWMR families the static map is the exact set of future writers of
// each register, which closes the heuristic's future-write gap on the write
// side (a process poised at a read now but about to write a pending
// register is pulled in). At each seed the engine takes whichever closure —
// static or pending-op — is smaller, so the footprint-driven tree never
// branches wider than the heuristic tree at any node. Read observability
// (who will later read a pending write) remains approximate, so
// crosscheck_por() stays the certification tool here too.
//
// Known scope limit (inherited from the exploration tree itself, not
// introduced by the reduction): each process's FIRST invocation stamp is
// taken when its coroutine starts — at the root for a live instance, after
// the prefix for a replayed entry — so hb pairs involving a first
// invocation depend on the tree's replay structure, which differs between
// the full and reduced trees (and between branches of the full tree). The
// reduction is therefore exactly violation-preserving for checks derived
// from register values and per-process observations (schedule-determined),
// and for hb-based checks on all pairs not involving a first-call
// invocation; for the remainder, crosscheck_por() is the certification tool
// — it runs both trees and diffs the violation sets.
//
// The budget caps the raw tree. The per-node sibling cost is one replay of
// the prefix; the in-place first child costs none.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace stamped::verify {

/// One disposable system instance with a validity check bound to it (the
/// check typically inspects a CallLog owned by the same closure).
struct ExplorationInstance {
  std::unique_ptr<runtime::ISystem> sys;
  std::function<std::optional<std::string>()> check;
};

/// Creates fresh instances; called once per explored branch. With
/// ExploreOptions::threads > 1 the factory (and the checks of the instances
/// it produces) is invoked concurrently from the worker pool and must be
/// thread-safe; instances themselves are never shared between workers.
using InstanceFactory = std::function<ExplorationInstance()>;

/// Static write map of the explored family: bit p of reg_writers[r] is set
/// iff process p may write register r in SOME execution of the scenario.
/// Produced by analysis::write_footprints from the family's declared
/// FootprintSpec; consumed by the persistent-set closure (see file comment).
/// Registers beyond reg_writers.size() are treated as writable by everyone
/// (no information, no reduction).
struct WriteFootprints {
  std::vector<std::uint64_t> reg_writers;

  [[nodiscard]] std::uint64_t writers_of(int reg) const {
    return reg >= 0 && reg < static_cast<int>(reg_writers.size())
               ? reg_writers[static_cast<std::size_t>(reg)]
               : ~std::uint64_t{0};
  }
};

struct ExploreOptions {
  /// Stop after this many complete executions (0 = unlimited). Enforced
  /// exactly in both serial and parallel mode (atomic budget), but which
  /// executions land inside a binding budget is scheduling-dependent when
  /// threads > 1.
  std::uint64_t max_executions = 1u << 20;
  /// Guard against non-terminating programs: a schedule prefix reaching this
  /// length with unfinished processes is recorded as a violation and the
  /// exploration stops (a real runtime check — not an assertion, so it also
  /// fires in builds that disable assertions).
  std::uint64_t max_depth = 1u << 14;
  /// Sleep-set + read-read-independence partial-order reduction (see file
  /// comment). Off by default: the full DFS remains the reference tree.
  bool por = false;
  /// Persistent-set reduction layered on the sleep sets (see file comment);
  /// requires `por`. Off by default — it is a footprint heuristic certified
  /// per instance by crosscheck_por, not a standalone soundness theorem.
  bool persistent = false;
  /// Worker threads for the work-stealing parallel DFS. 1 (default) runs the
  /// exact serial exploration on the calling thread; 0 = hardware
  /// concurrency. See the file comment for the determinism guarantees.
  int threads = 1;
  /// Declared static write map for the footprint-driven persistent-set
  /// closure (see file comment). Null = pending-op heuristic only. Ignored
  /// unless `persistent`.
  std::shared_ptr<const WriteFootprints> footprints;
  /// Harness switch: when set, api::Harness fills `footprints` from the
  /// family's declared FootprintSpec before exploring (run_scenario and
  /// crosscheck_por exhaustive paths). No effect on direct explorer calls.
  bool exact_footprints = false;
};

struct ExploreResult {
  std::uint64_t executions = 0;       ///< complete executions checked
  std::uint64_t nodes = 0;            ///< interior scheduling decisions
  std::uint64_t max_depth_seen = 0;
  /// Nodes where every live process was asleep: the roots of the subtrees
  /// the sleep sets pruned (always 0 without ExploreOptions::por).
  std::uint64_t sleep_pruned = 0;
  /// Candidate transitions the persistent sets deferred at branching nodes —
  /// siblings that never branched, hence never replayed (0 unless
  /// ExploreOptions::persistent).
  std::uint64_t persistent_deferred = 0;
  /// Worker threads the exploration actually used.
  int workers = 1;
  bool budget_exhausted = false;
  /// A schedule prefix hit ExploreOptions::max_depth with live processes
  /// (non-terminating program?); a violation describing it was recorded and
  /// the exploration was cut short.
  bool depth_exceeded = false;
  /// "<message> [schedule: ...]". Serial explorations report them in DFS
  /// order; parallel explorations sort them so the merged result is
  /// deterministic regardless of worker interleaving.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Enumerates every maximal execution of the systems produced by `factory`
/// and applies the instance check at each; see file comment.
ExploreResult explore_all_executions(const InstanceFactory& factory,
                                     const ExploreOptions& opts = {});

/// A violation message with its " [schedule: ...]" suffix stripped — the
/// canonical form under which the full and reduced trees are compared (the
/// full DFS reports one violation per violating execution; the reduced tree
/// reports one per equivalence class, reached through a different schedule).
[[nodiscard]] std::string strip_schedule_suffix(const std::string& violation);

/// Result of running the same factory through the full DFS and the
/// POR-reduced DFS and diffing their canonical violation sets.
struct PorCrossCheck {
  ExploreResult full;     ///< serial reference: por/persistent off, threads=1
  ExploreResult reduced;  ///< opts with por = true (persistent/threads kept)
  /// Canonical violations found by exactly one of the two trees. Both empty
  /// iff the reduction provably lost (and invented) nothing on this instance.
  std::vector<std::string> only_full;
  std::vector<std::string> only_reduced;

  [[nodiscard]] bool agree() const {
    return only_full.empty() && only_reduced.empty();
  }
};

/// Cross-check mode: explores the factory twice — once as the serial full
/// reference (por, persistent and threads all forced off) and once reduced
/// (por forced on; the caller's persistent/threads honored) — with the same
/// budget, and compares the violation sets modulo schedule suffix. Used by
/// the tests that prove the reduced and/or parallel tree finds the same
/// violations on seeded-buggy instances while visiting strictly fewer nodes.
PorCrossCheck crosscheck_por(const InstanceFactory& factory,
                             ExploreOptions opts = {});

}  // namespace stamped::verify
