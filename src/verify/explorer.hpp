// Exhaustive execution explorer: model checking on the simulator.
//
// Because processes are deterministic coroutines and a configuration is
// reproducible from its schedule, the set of ALL executions of a small
// system is a tree of schedules. This module enumerates that tree by DFS and
// runs a caller-supplied check at every complete (maximal) execution —
// e.g. "the timestamp property holds in every interleaving of Algorithm 4
// with 2 processes", a statement no finite number of random schedules can
// certify.
//
// With ExploreOptions::por the DFS applies sleep-set partial-order reduction
// (Godefr style): after a branch explores transition t from a node, its
// sibling branches put t to sleep and skip any node where every live process
// is asleep — each pruned subtree contains only executions Mazurkiewicz-
// equivalent (reorderings of adjacent independent steps) to ones already
// explored. Two steps are *independent* iff they touch different registers,
// or the same register with neither writing (read-read independence), AND
// not both complete a method call. The call-completion clause covers the
// happens-before checks: response stamps, and the invocation stamps of every
// call after a process's first, are taken inside call-completing steps, so
// commuting steps of which at most one completes a call preserves those
// happens-before pairs, the recorded timestamps, and hence the check verdict
// of each execution. A sleeping process's pending op cannot change while it
// sleeps (any write to a register it is about to access is dependent and
// wakes it), which is the classic persistence argument that makes sleep sets
// miss no violation.
//
// Known scope limit (inherited from the exploration tree itself, not
// introduced by the reduction): each process's FIRST invocation stamp is
// taken when its coroutine starts — at the root for a live instance, after
// the prefix for a replayed sibling — so hb pairs involving a first
// invocation depend on the tree's replay structure, which differs between
// the full and reduced trees (and between branches of the full tree). The
// reduction is therefore exactly violation-preserving for checks derived
// from register values and per-process observations (schedule-determined),
// and for hb-based checks on all pairs not involving a first-call
// invocation; for the remainder, crosscheck_por() is the certification tool
// — it runs both trees and diffs the violation sets.
//
// The budget caps the raw tree. The per-node sibling cost is one replay of
// the prefix (configurations cannot be copied, only reconstructed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace stamped::verify {

/// One disposable system instance with a validity check bound to it (the
/// check typically inspects a CallLog owned by the same closure).
struct ExplorationInstance {
  std::unique_ptr<runtime::ISystem> sys;
  std::function<std::optional<std::string>()> check;
};

/// Creates fresh instances; called once per explored branch.
using InstanceFactory = std::function<ExplorationInstance()>;

struct ExploreOptions {
  /// Stop after this many complete executions (0 = unlimited).
  std::uint64_t max_executions = 1u << 20;
  /// Guard against non-terminating programs: a schedule prefix reaching this
  /// length with unfinished processes is recorded as a violation and the
  /// exploration stops (a real runtime check — not an assertion, so it also
  /// fires in builds that disable assertions).
  std::uint64_t max_depth = 1u << 14;
  /// Sleep-set + read-read-independence partial-order reduction (see file
  /// comment). Off by default: the full DFS remains the reference tree.
  bool por = false;
};

struct ExploreResult {
  std::uint64_t executions = 0;       ///< complete executions checked
  std::uint64_t nodes = 0;            ///< interior scheduling decisions
  std::uint64_t max_depth_seen = 0;
  /// Nodes where every live process was asleep: the roots of the subtrees
  /// the sleep sets pruned (always 0 without ExploreOptions::por).
  std::uint64_t sleep_pruned = 0;
  bool budget_exhausted = false;
  /// A schedule prefix hit ExploreOptions::max_depth with live processes
  /// (non-terminating program?); a violation describing it was recorded and
  /// the exploration was cut short.
  bool depth_exceeded = false;
  std::vector<std::string> violations;  ///< "<message> [schedule: ...]"

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Enumerates every maximal execution of the systems produced by `factory`
/// and applies the instance check at each; see file comment.
ExploreResult explore_all_executions(const InstanceFactory& factory,
                                     const ExploreOptions& opts = {});

/// A violation message with its " [schedule: ...]" suffix stripped — the
/// canonical form under which the full and reduced trees are compared (the
/// full DFS reports one violation per violating execution; the reduced tree
/// reports one per equivalence class, reached through a different schedule).
[[nodiscard]] std::string strip_schedule_suffix(const std::string& violation);

/// Result of running the same factory through the full DFS and the
/// POR-reduced DFS and diffing their canonical violation sets.
struct PorCrossCheck {
  ExploreResult full;     ///< opts with por = false
  ExploreResult reduced;  ///< opts with por = true
  /// Canonical violations found by exactly one of the two trees. Both empty
  /// iff the reduction provably lost (and invented) nothing on this instance.
  std::vector<std::string> only_full;
  std::vector<std::string> only_reduced;

  [[nodiscard]] bool agree() const {
    return only_full.empty() && only_reduced.empty();
  }
};

/// Cross-check mode: explores the factory twice (full, then POR) with the
/// same budget and compares the violation sets modulo schedule suffix. Used
/// by the tests that prove the reduced tree finds the same violations on
/// seeded-buggy instances while visiting strictly fewer nodes.
PorCrossCheck crosscheck_por(const InstanceFactory& factory,
                             ExploreOptions opts = {});

}  // namespace stamped::verify
