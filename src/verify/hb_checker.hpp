// The timestamp correctness property, checked on recorded histories.
//
// Paper, Section 2: if two getTS() instances g1 and g2 return t1 and t2, and
// g1 happens before g2, then compare(t1, t2) returns true and compare(t2, t1)
// returns false. This is the *only* requirement of the weak timestamp object;
// concurrent calls may return arbitrary (even equal) timestamps.
//
// The checker takes the CallLog recorded by the programs and verifies the
// property over all ordered pairs, plus basic sanity of compare itself
// (irreflexivity and asymmetry on the returned timestamps).
//
// Bounded-universe objects (core/bounded_longlived.hpp) satisfy the property
// only for pairs within their recycling window; the *_filtered variants take
// a pair predicate selecting the ordered pairs that carry an obligation.
// Irreflexivity and asymmetry are universe-wide and stay unconditional.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "runtime/history.hpp"
#include "runtime/value.hpp"

namespace stamped::verify {

/// Result of a history check: empty vector means the property holds.
struct HbReport {
  std::vector<std::string> violations;
  std::size_t ordered_pairs_checked = 0;
  std::size_t concurrent_pairs = 0;
  /// Ordered pairs the pair filter released from their obligation (always 0
  /// for the unfiltered checkers).
  std::size_t filtered_pairs = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "ordered_pairs=" << ordered_pairs_checked
       << " concurrent_pairs=" << concurrent_pairs
       << " filtered_pairs=" << filtered_pairs
       << " violations=" << violations.size();
    for (const auto& v : violations) os << "\n  " << v;
    return os.str();
  }
};

namespace detail {

/// "getTS(p0.2)@[3,9)=<ts>" — call coordinates plus the returned timestamp
/// (timestamps render via runtime::value_repr: to_string for arithmetic
/// universes, .repr() otherwise).
template <class Ts>
std::string describe_call(const runtime::CallRecord<Ts>& r) {
  std::ostringstream os;
  os << "getTS(p" << r.pid << "." << r.call_index << ")@[" << r.invoked_at
     << ',' << r.responded_at << ")=" << runtime::value_repr(r.ts);
  return os.str();
}

}  // namespace detail

/// Checks the timestamp property on `records` with comparator `cmp`
/// (cmp(a, b) is the object's compare(a, b)); an ordered pair (a, b) carries
/// an obligation only when `pair_filter(a, b)` is true. Quadratic in the
/// number of calls; intended for test-sized histories.
template <class Ts, class Cmp, class PairFilter>
HbReport check_timestamp_property_filtered(
    const std::vector<runtime::CallRecord<Ts>>& records, Cmp cmp,
    PairFilter pair_filter) {
  HbReport report;
  for (std::size_t i = 0; i < records.size(); ++i) {
    // compare must be irreflexive on every returned timestamp: t < t never.
    if (cmp(records[i].ts, records[i].ts)) {
      report.violations.push_back("compare(t,t) true for " +
                                  detail::describe_call(records[i]));
    }
    for (std::size_t k = 0; k < records.size(); ++k) {
      if (i == k) continue;
      const auto& a = records[i];
      const auto& b = records[k];
      if (a.happens_before(b)) {
        if (!pair_filter(a, b)) {
          ++report.filtered_pairs;
          continue;
        }
        ++report.ordered_pairs_checked;
        if (!cmp(a.ts, b.ts)) {
          report.violations.push_back("ordered pair but !compare(t1,t2): " +
                                      detail::describe_call(a) + " -> " +
                                      detail::describe_call(b));
        }
        if (cmp(b.ts, a.ts)) {
          report.violations.push_back("ordered pair but compare(t2,t1): " +
                                      detail::describe_call(a) + " -> " +
                                      detail::describe_call(b));
        }
      } else if (i < k && !b.happens_before(a)) {
        ++report.concurrent_pairs;
        // No ordering requirement, but compare must not claim both
        // directions simultaneously (it is a strict order on values).
        if (cmp(a.ts, b.ts) && cmp(b.ts, a.ts)) {
          report.violations.push_back("compare true both ways: " +
                                      detail::describe_call(a) + " || " +
                                      detail::describe_call(b));
        }
      }
    }
  }
  return report;
}

/// The unconditional property: every ordered pair carries an obligation.
template <class Ts, class Cmp>
HbReport check_timestamp_property(
    const std::vector<runtime::CallRecord<Ts>>& records, Cmp cmp) {
  return check_timestamp_property_filtered(
      records, cmp,
      [](const runtime::CallRecord<Ts>&, const runtime::CallRecord<Ts>&) {
        return true;
      });
}

/// Additionally checks that consecutive calls by the same process received
/// increasing timestamps (they are ordered by happens-before, so this is a
/// corollary of the main property; separated for sharper failure messages).
/// Collects ALL violations; each message carries both offending timestamps.
/// `pair_filter` releases pairs from their obligation as above.
///
/// Same-pid pairs are ordered by happens-before, not call_index: a restarted
/// process (crash/restart adversary) begins a fresh program whose call_index
/// restarts at 0, yet its post-restart calls still happen after its
/// pre-crash ones — the event stamps, unlike the per-incarnation indices,
/// survive the crash. For crash-free histories the two orders coincide
/// (call k responds before call k+1 invokes).
template <class Ts, class Cmp, class PairFilter>
HbReport check_per_process_monotonicity_filtered(
    const std::vector<runtime::CallRecord<Ts>>& records, Cmp cmp,
    PairFilter pair_filter) {
  HbReport report;
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t k = 0; k < records.size(); ++k) {
      const auto& a = records[i];
      const auto& b = records[k];
      if (a.pid != b.pid || i == k || !a.happens_before(b)) continue;
      if (!pair_filter(a, b)) {
        ++report.filtered_pairs;
        continue;
      }
      ++report.ordered_pairs_checked;
      if (!cmp(a.ts, b.ts)) {
        std::ostringstream os;
        os << "process p" << a.pid << " calls " << a.call_index << " and "
           << b.call_index << " not increasing: !compare("
           << runtime::value_repr(a.ts) << ", " << runtime::value_repr(b.ts)
           << ") — " << detail::describe_call(a) << " -> "
           << detail::describe_call(b);
        report.violations.push_back(os.str());
      }
    }
  }
  return report;
}

/// Unconditional per-process monotonicity.
template <class Ts, class Cmp>
HbReport check_per_process_monotonicity(
    const std::vector<runtime::CallRecord<Ts>>& records, Cmp cmp) {
  return check_per_process_monotonicity_filtered(
      records, cmp,
      [](const runtime::CallRecord<Ts>&, const runtime::CallRecord<Ts>&) {
        return true;
      });
}

}  // namespace stamped::verify
