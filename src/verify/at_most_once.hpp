// At-most-once service: no (pid, call_index) is ever answered twice.
//
// The crash-tolerant flat combiner (src/shard/) allows combining passes of
// different lease generations to interleave: a deposed-but-alive combiner
// may finish its pass after a successor already served the same requests.
// The per-request claim (FcSlot::done CAS) is supposed to make exactly one
// pass win each request — this checker validates that claim's observable
// consequence on the recorded history: every completed call appears exactly
// once. A double-publish (two passes both recording a response for the same
// call) is precisely the bug class the claim protocol exists to rule out,
// and it is invisible to the ordering checkers when the duplicate labels
// happen to be consistent.
//
// What it does NOT guarantee: that the single recorded response is correct
// (the timestamp property and monotonicity checkers own that), or that
// every published request was served at all (run completion owns liveness —
// a wedged run never reaches the checkers). After a restart the SAME
// (pid, call_index) legitimately runs again, so the harness applies this
// checker only to runs without restarts.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "verify/hb_checker.hpp"

namespace stamped::verify {

/// Flags every (pid, call_index) that appears more than once in `records`.
/// Works over any record type exposing `pid` and `call_index` (both
/// runtime::CallRecord<Ts> and api::GenericCallRecord qualify). Reported
/// counters: ordered_pairs_checked counts the distinct (pid, call_index)
/// identities seen; concurrent_pairs and filtered_pairs stay 0.
template <class Record>
HbReport check_at_most_once_service(const std::vector<Record>& records) {
  HbReport report;
  std::unordered_map<std::uint64_t, int> seen;
  seen.reserve(records.size());
  for (const Record& r : records) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.pid)) << 32) |
        static_cast<std::uint32_t>(r.call_index);
    const int count = ++seen[key];
    if (count == 2) {
      report.violations.push_back(
          "call served more than once: pid " + std::to_string(r.pid) +
          " call " + std::to_string(r.call_index));
    }
  }
  report.ordered_pairs_checked = seen.size();
  return report;
}

}  // namespace stamped::verify
