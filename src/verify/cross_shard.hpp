// Cross-shard monotonicity: per-client order must survive shard hops.
//
// The sharded service (src/shard/) composes per-shard labels with a global
// epoch. The composed-history timestamp property already holds each
// happens-before pair to compare() — but a mis-composition that collapses
// epochs (the classic bug: forwarding the local label and dropping the epoch
// from the combined value) can slip past the PER-SHARD checks entirely,
// because each shard's local history is still perfectly valid. The damage
// only shows where a client's consecutive calls land on different shards and
// the composed labels stop ordering. This checker isolates exactly those
// pairs: same client, different shards, happens-before — compare must say
// strictly earlier and never the reverse.
//
// What it does NOT guarantee: anything about different clients (that is the
// composed timestamp property's job), or anything within one shard (the
// per-shard property and monotonicity checks own those pairs).
#pragma once

#include <vector>

#include "runtime/history.hpp"
#include "verify/hb_checker.hpp"

namespace stamped::verify {

/// Checks every same-client happens-before pair whose calls were served by
/// different shards (`shard_of(record)` names the serving shard). Reported
/// counters: ordered_pairs_checked counts the cross-shard pairs that carried
/// an obligation; concurrent_pairs stays 0 (same-client calls are sequential
/// by construction). Quadratic; test-sized histories.
template <class Ts, class Cmp, class ShardOf>
HbReport check_cross_shard_monotonicity(
    const std::vector<runtime::CallRecord<Ts>>& records, Cmp cmp,
    ShardOf shard_of) {
  HbReport report;
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t k = 0; k < records.size(); ++k) {
      if (i == k) continue;
      const auto& a = records[i];
      const auto& b = records[k];
      if (a.pid != b.pid || !a.happens_before(b)) continue;
      if (shard_of(a) == shard_of(b)) continue;
      ++report.ordered_pairs_checked;
      if (!cmp(a.ts, b.ts)) {
        report.violations.push_back(
            "cross-shard hop not monotone (!compare(t1,t2)): " +
            detail::describe_call(a) + " -> " + detail::describe_call(b));
      }
      if (cmp(b.ts, a.ts)) {
        report.violations.push_back(
            "cross-shard hop reversed (compare(t2,t1)): " +
            detail::describe_call(a) + " -> " + detail::describe_call(b));
      }
    }
  }
  return report;
}

}  // namespace stamped::verify
