#include "verify/explorer.hpp"

#include "runtime/history.hpp"

namespace stamped::verify {

namespace {

class Explorer {
 public:
  Explorer(const InstanceFactory& factory, const ExploreOptions& opts,
           ExploreResult& result)
      : factory_(factory), opts_(opts), result_(result) {}

  void run() {
    ExplorationInstance root = factory_();
    runtime::Schedule prefix;
    dfs(std::move(root), prefix);
  }

 private:
  bool budget_left() const {
    return opts_.max_executions == 0 ||
           result_.executions < opts_.max_executions;
  }

  /// True when the whole exploration must halt (as opposed to one branch).
  bool stopped() {
    if (result_.depth_exceeded) return true;
    if (!budget_left()) {
      result_.budget_exhausted = true;
      return true;
    }
    return false;
  }

  /// `instance.sys` is at the configuration reached by `prefix`.
  void dfs(ExplorationInstance instance, runtime::Schedule& prefix) {
    if (stopped()) return;
    if (prefix.size() > result_.max_depth_seen) {
      result_.max_depth_seen = prefix.size();
    }

    std::vector<int> candidates;
    for (int p = 0; p < instance.sys->num_processes(); ++p) {
      if (!instance.sys->finished(p)) candidates.push_back(p);
    }

    // Depth guard (real runtime check, not an assertion): a prefix this long
    // with live processes means the programs likely never terminate. Record
    // one violation and stop the whole exploration via stopped().
    if (!candidates.empty() && prefix.size() >= opts_.max_depth) {
      result_.depth_exceeded = true;
      result_.violations.push_back(
          "max_depth " + std::to_string(opts_.max_depth) +
          " reached with unfinished processes — non-terminating program? "
          "[schedule: " + runtime::schedule_to_string(prefix, 256) + "]");
      return;
    }

    if (candidates.empty()) {
      ++result_.executions;
      if (auto violation = instance.check()) {
        result_.violations.push_back(
            *violation + " [schedule: " +
            runtime::schedule_to_string(prefix, 256) + "]");
      }
      return;
    }

    ++result_.nodes;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (stopped()) return;
      ExplorationInstance child;
      if (i + 1 == candidates.size()) {
        // Last sibling may consume the live instance.
        child = std::move(instance);
      } else {
        // Earlier siblings reconstruct the prefix on a fresh instance.
        child = factory_();
        runtime::run_script(*child.sys, prefix);
      }
      const int pid = candidates[i];
      child.sys->step(pid);
      prefix.push_back(pid);
      dfs(std::move(child), prefix);
      prefix.pop_back();
    }
  }

  const InstanceFactory& factory_;
  const ExploreOptions& opts_;
  ExploreResult& result_;
};

}  // namespace

ExploreResult explore_all_executions(const InstanceFactory& factory,
                                     const ExploreOptions& opts) {
  ExploreResult result;
  Explorer explorer(factory, opts, result);
  explorer.run();
  return result;
}

}  // namespace stamped::verify
