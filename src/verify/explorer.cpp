#include "verify/explorer.hpp"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>

#include "runtime/history.hpp"

namespace stamped::verify {

namespace {

/// One transition that an earlier sibling branch already explored from some
/// ancestor node, now asleep: stepping this pid from here would only reach
/// executions equivalent to already-explored ones, unless a dependent
/// transition wakes it first. The recorded fields stay valid while the entry
/// sleeps (the process is not stepped, and any write to `reg` is dependent
/// and removes the entry), so they are captured once, when the sibling
/// branch executed the step.
struct SleepEntry {
  int pid = -1;
  runtime::OpKind kind = runtime::OpKind::kNone;
  int reg = -1;
  /// Whether executing the step completed a method call (observed in the
  /// sibling branch; deterministic, and stable while the entry sleeps).
  bool completes_call = false;
};

/// Dependence relation of the reduction (see the header's file comment):
/// same register with at least one write, or both steps complete a call
/// (call-boundary stamps make such steps observable to the happens-before
/// checkers, so they must not be commuted).
bool dependent(const SleepEntry& a, const SleepEntry& b) {
  if (a.completes_call && b.completes_call) return true;
  return a.reg == b.reg &&
         (runtime::op_kind_writes(a.kind) || runtime::op_kind_writes(b.kind));
}

class Explorer {
 public:
  Explorer(const InstanceFactory& factory, const ExploreOptions& opts,
           ExploreResult& result)
      : factory_(factory), opts_(opts), result_(result) {}

  void run() {
    ExplorationInstance root = factory_();
    runtime::Schedule prefix;
    dfs(std::move(root), prefix, {});
  }

 private:
  bool budget_left() const {
    return opts_.max_executions == 0 ||
           result_.executions < opts_.max_executions;
  }

  /// True when the whole exploration must halt (as opposed to one branch).
  bool stopped() {
    if (result_.depth_exceeded) return true;
    if (!budget_left()) {
      result_.budget_exhausted = true;
      return true;
    }
    return false;
  }

  /// `instance.sys` is at the configuration reached by `prefix`. `sleep`
  /// holds the transitions put to sleep by ancestors' earlier siblings
  /// (always empty without opts_.por).
  void dfs(ExplorationInstance instance, runtime::Schedule& prefix,
           std::vector<SleepEntry> sleep) {
    if (stopped()) return;
    if (prefix.size() > result_.max_depth_seen) {
      result_.max_depth_seen = prefix.size();
    }

    std::vector<int> live;
    for (int p = 0; p < instance.sys->num_processes(); ++p) {
      if (!instance.sys->finished(p)) live.push_back(p);
    }

    // Depth guard (real runtime check, not an assertion): a prefix this long
    // with live processes means the programs likely never terminate. Record
    // one violation and stop the whole exploration via stopped().
    if (!live.empty() && prefix.size() >= opts_.max_depth) {
      result_.depth_exceeded = true;
      result_.violations.push_back(
          "max_depth " + std::to_string(opts_.max_depth) +
          " reached with unfinished processes — non-terminating program? "
          "[live pids: " + runtime::schedule_to_string(live, 256) +
          "] [schedule: " + runtime::schedule_to_string(prefix, 256) + "]");
      return;
    }

    if (live.empty()) {
      ++result_.executions;
      if (auto violation = instance.check()) {
        result_.violations.push_back(
            *violation + " [schedule: " +
            runtime::schedule_to_string(prefix, 256) + "]");
      }
      return;
    }

    ++result_.nodes;

    // Candidates: live processes that are not asleep here. An empty set with
    // live processes is the sleep-set prune — every maximal execution below
    // is equivalent to one already explored from an earlier sibling.
    std::vector<int> candidates;
    if (opts_.por && !sleep.empty()) {
      for (int p : live) {
        const bool asleep = std::any_of(
            sleep.begin(), sleep.end(),
            [p](const SleepEntry& z) { return z.pid == p; });
        if (!asleep) candidates.push_back(p);
      }
      if (candidates.empty()) {
        ++result_.sleep_pruned;
        return;
      }
    } else {
      candidates = live;
    }

    // `z` grows as siblings are explored: inherited sleepers plus every
    // transition already taken from this node.
    std::vector<SleepEntry> z = std::move(sleep);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (stopped()) return;
      ExplorationInstance child;
      if (i + 1 == candidates.size()) {
        // Last sibling may consume the live instance.
        child = std::move(instance);
      } else {
        // Earlier siblings reconstruct the prefix on a fresh instance.
        child = factory_();
        runtime::run_script(*child.sys, prefix);
      }
      const int pid = candidates[i];
      const runtime::PendingOp op = child.sys->pending(pid);
      const std::uint64_t calls_before = child.sys->calls_completed(pid);
      child.sys->step(pid);
      const SleepEntry taken{pid, op.kind, op.reg,
                             child.sys->calls_completed(pid) > calls_before};

      std::vector<SleepEntry> child_sleep;
      if (opts_.por) {
        // Sleepers stay asleep below the child only while independent of
        // the transition just taken; dependent ones wake up.
        for (const SleepEntry& entry : z) {
          if (!dependent(entry, taken)) child_sleep.push_back(entry);
        }
      }

      prefix.push_back(pid);
      dfs(std::move(child), prefix, std::move(child_sleep));
      prefix.pop_back();
      if (opts_.por) z.push_back(taken);
    }
  }

  const InstanceFactory& factory_;
  const ExploreOptions& opts_;
  ExploreResult& result_;
};

}  // namespace

ExploreResult explore_all_executions(const InstanceFactory& factory,
                                     const ExploreOptions& opts) {
  ExploreResult result;
  Explorer explorer(factory, opts, result);
  explorer.run();
  return result;
}

std::string strip_schedule_suffix(const std::string& violation) {
  const std::size_t pos = violation.rfind(" [schedule:");
  return pos == std::string::npos ? violation : violation.substr(0, pos);
}

PorCrossCheck crosscheck_por(const InstanceFactory& factory,
                             ExploreOptions opts) {
  PorCrossCheck cc;
  opts.por = false;
  cc.full = explore_all_executions(factory, opts);
  opts.por = true;
  cc.reduced = explore_all_executions(factory, opts);

  std::set<std::string> full_set;
  std::set<std::string> reduced_set;
  for (const auto& v : cc.full.violations) {
    full_set.insert(strip_schedule_suffix(v));
  }
  for (const auto& v : cc.reduced.violations) {
    reduced_set.insert(strip_schedule_suffix(v));
  }
  std::set_difference(full_set.begin(), full_set.end(), reduced_set.begin(),
                      reduced_set.end(), std::back_inserter(cc.only_full));
  std::set_difference(reduced_set.begin(), reduced_set.end(), full_set.begin(),
                      full_set.end(), std::back_inserter(cc.only_reduced));
  return cc;
}

}  // namespace stamped::verify
