#include "verify/explorer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <iterator>
#include <limits>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "runtime/history.hpp"

namespace stamped::verify {

namespace {

/// Sleep sets (and the live/awake candidate math) are pid bitmasks, so the
/// explorer handles at most 64 processes — far beyond any tree that fits an
/// execution budget. The mask type is static-asserted to carry one bit per
/// supported pid; the per-run process count is checked at runtime by
/// ISystem::unfinished_mask.
constexpr int kMaxProcs = 64;
static_assert(std::numeric_limits<std::uint64_t>::digits >= kMaxProcs,
              "sleep-set masks are std::uint64_t: one bit per pid");

constexpr std::uint64_t bit(int pid) {
  return std::uint64_t{1} << pid;
}

// A sleeping transition packs into one word: the register footprint in the
// low 24 bits, the op kind above it, and whether executing the step completed
// a method call (observed in the sibling branch that executed it;
// deterministic, and stable while the entry sleeps — the process is not
// stepped, and any write to its register is dependent and wakes it).
constexpr std::uint32_t kSleepRegMask = (1u << 24) - 1;
constexpr int kSleepKindShift = 24;
constexpr std::uint32_t kSleepCompletesBit = 1u << 27;
// The kind field is 3 bits wide (24-26) and sits flush against the
// completes-call bit; a future OpKind value >= 8 would silently bleed into
// it and corrupt the dependence relation, so pin the layout at compile time.
static_assert(static_cast<unsigned>(runtime::OpKind::kFetchAdd) <= 0x7u,
              "OpKind no longer fits the 3-bit kind field of a packed "
              "sleep op — widen the layout");

std::uint32_t pack_sleep_op(const runtime::PendingOp& op, bool completes_call) {
  STAMPED_ASSERT_MSG(op.reg >= 0 &&
                         static_cast<std::uint32_t>(op.reg) <= kSleepRegMask,
                     "register index " << op.reg
                                       << " does not fit a packed sleep op");
  return static_cast<std::uint32_t>(op.reg) |
         (static_cast<std::uint32_t>(op.kind) << kSleepKindShift) |
         (completes_call ? kSleepCompletesBit : 0u);
}

runtime::OpKind sleep_op_kind(std::uint32_t op) {
  return static_cast<runtime::OpKind>((op >> kSleepKindShift) & 0x7u);
}

/// Dependence relation of the reduction (see the header's file comment):
/// same register with at least one write, or both steps complete a call
/// (call-boundary stamps make such steps observable to the happens-before
/// checkers, so they must not be commuted).
bool sleep_ops_dependent(std::uint32_t a, std::uint32_t b) {
  if ((a & b & kSleepCompletesBit) != 0) return true;
  if ((a & kSleepRegMask) != (b & kSleepRegMask)) return false;
  return runtime::op_kind_writes(sleep_op_kind(a)) ||
         runtime::op_kind_writes(sleep_op_kind(b));
}

/// The transitions put to sleep at one node: a pid bitmask plus one packed op
/// word per sleeping pid. Copies are two fixed-size memcpys (no allocation) —
/// the per-child sleep-set copy used to be a std::vector of structs on the
/// explorer's hottest path.
struct SleepSet {
  std::uint64_t mask = 0;
  std::array<std::uint32_t, kMaxProcs> ops{};

  void add(int pid, std::uint32_t op) {
    mask |= bit(pid);
    ops[static_cast<std::size_t>(pid)] = op;
  }

  /// Wakes every sleeping transition dependent on `taken` (executing a
  /// dependent step invalidates the equivalence argument that justified the
  /// sleep). Word-iteration over set bits.
  void wake_dependent(std::uint32_t taken) {
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const int p = std::countr_zero(m);
      if (sleep_ops_dependent(ops[static_cast<std::size_t>(p)], taken)) {
        mask &= ~bit(p);
      }
    }
  }
};

/// Pending-op footprint conflict: the dependence relation restricted to what
/// is knowable before either step executes (register + kind; whether a step
/// completes a call is only observable by executing it). This is the closure
/// relation of the persistent-set heuristic.
bool footprint_conflict(const runtime::PendingOp& a,
                        const runtime::PendingOp& b) {
  return a.reg == b.reg && (a.is_write() || b.is_write());
}

/// One parked unit of work: the configuration reached by `prefix` (to be
/// reconstructed by one replay), the node's sleep list `z` including every
/// sibling transition taken so far, and the node's remaining unexplored
/// candidates. An empty `rest` marks the root entry (expand C0). Stealing an
/// entry moves exactly this triple to another worker.
struct FrontierEntry {
  runtime::Schedule prefix;
  SleepSet z;
  std::vector<int> rest;
};

class Explorer {
 public:
  Explorer(const InstanceFactory& factory, const ExploreOptions& opts)
      : factory_(factory), opts_(opts) {
    STAMPED_ASSERT_MSG(!opts_.persistent || opts_.por,
                       "ExploreOptions::persistent requires por");
    STAMPED_ASSERT_MSG(opts_.threads >= 0,
                       "ExploreOptions::threads must be >= 0");
  }

  ExploreResult run() {
    int threads = opts_.threads;
    if (threads == 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
    }
    parallel_ = threads > 1;

    if (!parallel_) {
      stack_.push_back(FrontierEntry{});
      while (!stack_.empty()) {
        if (should_stop()) break;
        FrontierEntry e = std::move(stack_.back());
        stack_.pop_back();
        process_entry(0, std::move(e));
      }
    } else {
      workers_.resize(static_cast<std::size_t>(threads));
      num_workers_ = threads;
      donate_threshold_ = static_cast<std::size_t>(threads);
      deque_.push_back(FrontierEntry{});
      shared_size_.store(1, std::memory_order_relaxed);
      {
        std::vector<std::jthread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int w = 0; w < threads; ++w) {
          pool.emplace_back([this, w] { worker_loop(w); });
        }
      }
      if (first_error_) std::rethrow_exception(first_error_);
    }

    ExploreResult result;
    result.executions = executions_.load(std::memory_order_relaxed);
    result.nodes = nodes_.load(std::memory_order_relaxed);
    result.max_depth_seen = max_depth_seen_.load(std::memory_order_relaxed);
    result.sleep_pruned = sleep_pruned_.load(std::memory_order_relaxed);
    result.persistent_deferred =
        persistent_deferred_.load(std::memory_order_relaxed);
    result.workers = threads;
    result.budget_exhausted =
        budget_exhausted_.load(std::memory_order_relaxed);
    result.depth_exceeded = depth_exceeded_.load(std::memory_order_relaxed);
    result.violations = std::move(violations_);
    // A lone worker reports violations in DFS order (legacy behavior);
    // merged parallel results sort them so the outcome is independent of the
    // worker interleaving.
    if (parallel_) {
      std::sort(result.violations.begin(), result.violations.end());
    }
    return result;
  }

 private:
  // ---- stop/budget machinery ---------------------------------------------

  void request_stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (parallel_) {
      // Lock-then-notify so a worker between predicate check and wait cannot
      // miss the wakeup.
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

  /// True when the whole exploration must halt. Seeing a full budget with
  /// work still pending is what sets budget_exhausted (a tree that completes
  /// exactly at its budget is not "exhausted").
  bool should_stop() {
    if (stop_.load(std::memory_order_relaxed)) return true;
    if (opts_.max_executions != 0 &&
        executions_.load(std::memory_order_relaxed) >= opts_.max_executions) {
      budget_exhausted_.store(true, std::memory_order_relaxed);
      request_stop();
      return true;
    }
    return false;
  }

  /// Claims one execution against the budget; exact in both modes (the
  /// increment that would exceed the budget is undone, so the final count
  /// never overshoots).
  bool claim_execution() {
    if (opts_.max_executions == 0) {
      executions_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const std::uint64_t before =
        executions_.fetch_add(1, std::memory_order_relaxed);
    if (before >= opts_.max_executions) {
      executions_.fetch_sub(1, std::memory_order_relaxed);
      budget_exhausted_.store(true, std::memory_order_relaxed);
      request_stop();
      return false;
    }
    return true;
  }

  void note_depth(std::size_t depth) {
    const auto d = static_cast<std::uint64_t>(depth);
    std::uint64_t cur = max_depth_seen_.load(std::memory_order_relaxed);
    while (d > cur && !max_depth_seen_.compare_exchange_weak(
                          cur, d, std::memory_order_relaxed)) {
    }
  }

  void record_violation(std::string message) {
    std::lock_guard<std::mutex> lock(violations_mu_);
    violations_.push_back(std::move(message));
  }

  // ---- the work list ------------------------------------------------------

  /// Parks a sibling entry. Serial mode uses the plain LIFO stack (exact
  /// recursive-DFS order). In parallel mode the entry lands on the pushing
  /// worker's PRIVATE stack — zero synchronization on the hot path — and the
  /// worker donates its OLDEST entries (shallowest prefixes, hence the
  /// biggest stealable subtrees) to the shared deque only while that deque
  /// is starving, i.e. some thief may be idle.
  void push_entry(int wid, FrontierEntry e) {
    if (!parallel_) {
      stack_.push_back(std::move(e));
      return;
    }
    auto& local = workers_[static_cast<std::size_t>(wid)].local;
    local.push_back(std::move(e));
    if (shared_size_.load(std::memory_order_relaxed) < donate_threshold_ &&
        local.size() > 1) {
      donate(local);
    }
  }

  void donate(std::deque<FrontierEntry>& local) {
    std::lock_guard<std::mutex> lock(mu_);
    while (deque_.size() < donate_threshold_ && local.size() > 1) {
      deque_.push_back(std::move(local.front()));
      local.pop_front();
    }
    shared_size_.store(deque_.size(), std::memory_order_relaxed);
    cv_.notify_all();
  }

  void worker_loop(int wid) {
    auto& local = workers_[static_cast<std::size_t>(wid)].local;
    for (;;) {
      FrontierEntry e;
      if (!local.empty()) {
        // Own work first, newest entry first: depth-first descent with no
        // locking. Replays stay short because the newest entry is the
        // deepest.
        e = std::move(local.back());
        local.pop_back();
      } else {
        // Starving: steal from the shared deque, or sleep until a peer
        // donates. The exploration is complete when every worker is idle
        // with an empty shared deque (no entry can be in flight then).
        std::unique_lock<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_relaxed)) return;
        if (deque_.empty()) {
          ++idle_workers_;
          if (idle_workers_ == num_workers_) {
            cv_.notify_all();
            return;
          }
          cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) || !deque_.empty() ||
                   idle_workers_ == num_workers_;
          });
          if (stop_.load(std::memory_order_relaxed) ||
              (deque_.empty() && idle_workers_ == num_workers_)) {
            return;
          }
          --idle_workers_;
          if (deque_.empty()) continue;  // raced with another thief; retry
        }
        // Steal the OLDEST donation: donors push their shallowest prefixes
        // (the biggest subtrees) to the back, so the front holds the oldest
        // — and largest — stealable work, amortizing the thief's replay.
        e = std::move(deque_.front());
        deque_.pop_front();
        shared_size_.store(deque_.size(), std::memory_order_relaxed);
      }
      if (should_stop()) return;
      try {
        process_entry(wid, std::move(e));
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        request_stop();
        return;
      }
    }
  }

  /// Reconstructs the entry's configuration by one replay of the prefix,
  /// then resumes its node's sibling loop (or expands C0 for the root).
  void process_entry(int wid, FrontierEntry e) {
    ExplorationInstance inst = factory_();
    if (!e.prefix.empty()) runtime::run_script(*inst.sys, e.prefix);
    chain(wid, std::move(inst), std::move(e.prefix), e.z, std::move(e.rest));
  }

  // ---- the DFS chain ------------------------------------------------------

  /// Drives one instance down the tree in place: at each node the first
  /// candidate is stepped on the live instance (no replay) and the remaining
  /// siblings are parked as a frontier entry. With one worker the LIFO stack
  /// makes this exactly the classic recursive DFS, sibling order and all.
  ///
  /// `candidates` nonempty means the chain resumes a parked sibling loop:
  /// the node was already expanded (counted, depth-checked, candidate set
  /// fixed) by whoever explored its first sibling, and `sleep` is the node's
  /// z including every sibling transition taken so far.
  /// Chain-local counter accumulator: one flush of the shared atomics per
  /// chain instead of one fetch_add per node, so parallel workers do not
  /// ping-pong the counter cache lines (a chain descends to exactly one leaf
  /// or prune, so `executions` needs no batching — the budget claim is the
  /// single per-chain atomic that must stay global).
  struct ChainCounters {
    Explorer* owner;
    std::uint64_t nodes = 0;
    std::uint64_t sleep_pruned = 0;
    std::uint64_t persistent_deferred = 0;
    std::uint64_t max_depth = 0;

    explicit ChainCounters(Explorer* e) : owner(e) {}
    ChainCounters(const ChainCounters&) = delete;
    ChainCounters& operator=(const ChainCounters&) = delete;
    ~ChainCounters() {
      owner->nodes_.fetch_add(nodes, std::memory_order_relaxed);
      owner->sleep_pruned_.fetch_add(sleep_pruned, std::memory_order_relaxed);
      owner->persistent_deferred_.fetch_add(persistent_deferred,
                                            std::memory_order_relaxed);
      owner->note_depth(max_depth);
    }
  };

  void chain(int wid, ExplorationInstance inst, runtime::Schedule prefix,
             SleepSet sleep, std::vector<int> candidates) {
    bool resumed = !candidates.empty();
    std::vector<runtime::PendingOp> pending_buf;
    ChainCounters counters(this);
    for (;;) {
      if (should_stop()) return;

      if (!resumed) {
        if (prefix.size() > counters.max_depth) {
          counters.max_depth = prefix.size();
        }
        const std::uint64_t live = inst.sys->unfinished_mask();
        if (live == 0) {
          leaf(inst, prefix);
          return;
        }
        // Depth guard (real runtime check, not an assertion): a prefix this
        // long with live processes means the programs likely never
        // terminate. Record one violation and stop the whole exploration.
        if (prefix.size() >= opts_.max_depth) {
          depth_violation(wid, live, prefix);
          return;
        }
        ++counters.nodes;

        // Candidates: live processes that are not asleep here. Zero awake
        // processes with live ones is the sleep-set prune — every maximal
        // execution below is equivalent to one already explored from an
        // earlier sibling.
        std::uint64_t awake = live;
        if (opts_.por) {
          awake &= ~sleep.mask;
          if (awake == 0) {
            ++counters.sleep_pruned;
            return;
          }
        }
        candidates.clear();
        for (std::uint64_t m = awake; m != 0; m &= m - 1) {
          candidates.push_back(std::countr_zero(m));
        }
        if (opts_.persistent && candidates.size() > 1) {
          counters.persistent_deferred +=
              shrink_to_persistent(*inst.sys, pending_buf, candidates);
        }
      }
      resumed = false;

      const int pid = candidates.front();
      const runtime::PendingOp op = inst.sys->pending(pid);
      const std::uint64_t calls_before = inst.sys->calls_completed(pid);
      inst.sys->step(pid);
      const std::uint32_t taken = pack_sleep_op(
          op, inst.sys->calls_completed(pid) > calls_before);

      if (candidates.size() > 1) {
        // Park the remaining siblings: whoever pops (or steals) the entry
        // replays the prefix once and continues this node's sibling loop
        // with z grown by the transition just taken.
        FrontierEntry e;
        e.prefix = prefix;
        e.z = sleep;
        if (opts_.por) e.z.add(pid, taken);
        e.rest.assign(candidates.begin() + 1, candidates.end());
        push_entry(wid, std::move(e));
      }

      // Sleepers stay asleep below the child only while independent of the
      // transition just taken; dependent ones wake up.
      if (opts_.por) sleep.wake_dependent(taken);
      prefix.push_back(pid);
      // Next iteration expands the child on the same live instance.
    }
  }

  void leaf(ExplorationInstance& inst, const runtime::Schedule& prefix) {
    if (!claim_execution()) return;
    if (auto violation = inst.check()) {
      record_violation(*violation + " [schedule: " +
                       runtime::schedule_to_string(prefix, 256) + "]");
    }
  }

  void depth_violation(int wid, std::uint64_t live,
                       const runtime::Schedule& prefix) {
    std::vector<int> live_pids;
    for (std::uint64_t m = live; m != 0; m &= m - 1) {
      live_pids.push_back(std::countr_zero(m));
    }
    record_violation(
        "max_depth " + std::to_string(opts_.max_depth) +
        " reached with unfinished processes — non-terminating program? "
        "[worker " + std::to_string(wid) + ", prefix " +
        std::to_string(prefix.size()) +
        "] [live pids: " + runtime::schedule_to_string(live_pids, 256) +
        "] [schedule: " + runtime::schedule_to_string(prefix, 256) + "]");
    depth_exceeded_.store(true, std::memory_order_relaxed);
    request_stop();
  }

  /// Fixed-point closure of {seed} under pending-op footprint conflicts
  /// (same register, at least one write) — the heuristic relation.
  static std::uint64_t close_pending(
      const std::vector<runtime::PendingOp>& pending_buf,
      const std::vector<int>& candidates, int seed) {
    std::uint64_t in = bit(seed);
    bool grew = true;
    while (grew) {
      grew = false;
      for (const int q : candidates) {
        if ((in & bit(q)) != 0) continue;
        for (const int p : candidates) {
          if ((in & bit(p)) == 0) continue;
          if (footprint_conflict(pending_buf[static_cast<std::size_t>(q)],
                                 pending_buf[static_cast<std::size_t>(p)])) {
            in |= bit(q);
            grew = true;
            break;
          }
        }
      }
    }
    return in;
  }

  /// Fixed-point closure of {seed} under the declared static write map:
  /// q joins while it MAY EVER write a register some member is pending on
  /// (ExploreOptions::footprints; see the header's file comment). Future
  /// writers are chased exactly; pending readers of a member's write are
  /// not pulled in, which is where this closure undercuts the pending-op
  /// one at write-pending nodes of SWMR families.
  static std::uint64_t close_static(
      const std::vector<runtime::PendingOp>& pending_buf,
      const std::vector<int>& candidates, int seed,
      const WriteFootprints& fp) {
    std::uint64_t in = bit(seed);
    bool grew = true;
    while (grew) {
      grew = false;
      for (const int q : candidates) {
        if ((in & bit(q)) != 0) continue;
        for (const int p : candidates) {
          if ((in & bit(p)) == 0) continue;
          const int reg = pending_buf[static_cast<std::size_t>(p)].reg;
          if (reg >= 0 && (fp.writers_of(reg) & bit(q)) != 0) {
            in |= bit(q);
            grew = true;
            break;
          }
        }
      }
    }
    return in;
  }

  /// Persistent-set reduction: shrinks the candidate set to the smallest
  /// per-seed closure — the pending-op heuristic, or with
  /// ExploreOptions::footprints the smaller of it and the static write-map
  /// closure — and returns how many candidates were deferred. Taking the
  /// per-seed minimum makes the footprint-driven node never branch wider
  /// than the heuristic node.
  /// Candidates outside the closure never branch (and never replay) at this
  /// node; they are deferred, not slept — their turn comes deeper in the
  /// chosen subtree. Deterministic: seeds are tried in ascending pid order
  /// and the first smallest closure wins.
  std::uint64_t shrink_to_persistent(
      runtime::ISystem& sys, std::vector<runtime::PendingOp>& pending_buf,
      std::vector<int>& candidates) {
    sys.pending_all(pending_buf);
    const WriteFootprints* fp = opts_.footprints.get();
    std::uint64_t best = 0;
    int best_count = std::numeric_limits<int>::max();
    for (const int seed : candidates) {
      std::uint64_t in = close_pending(pending_buf, candidates, seed);
      if (fp != nullptr) {
        const std::uint64_t sin =
            close_static(pending_buf, candidates, seed, *fp);
        if (std::popcount(sin) < std::popcount(in)) in = sin;
      }
      const int count = std::popcount(in);
      if (count < best_count) {
        best = in;
        best_count = count;
        if (best_count == 1) break;
      }
    }
    if (best_count >= static_cast<int>(candidates.size())) return 0;
    const std::uint64_t deferred =
        candidates.size() - static_cast<std::size_t>(best_count);
    std::erase_if(candidates,
                  [best](int pid) { return (best & bit(pid)) == 0; });
    return deferred;
  }

  const InstanceFactory& factory_;
  const ExploreOptions& opts_;
  bool parallel_ = false;

  // Serial work list (LIFO — exact recursive-DFS order).
  std::vector<FrontierEntry> stack_;

  // Parallel mode: per-worker private stacks plus the shared deque fed by
  // donation (see push_entry). `shared_size_` mirrors deque_.size() so the
  // hot path can check for starvation without taking the lock.
  struct WorkerState {
    std::deque<FrontierEntry> local;
  };
  std::vector<WorkerState> workers_;
  int num_workers_ = 1;
  std::size_t donate_threshold_ = 1;
  std::atomic<std::size_t> shared_size_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<FrontierEntry> deque_;
  int idle_workers_ = 0;
  std::exception_ptr first_error_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> budget_exhausted_{false};
  std::atomic<bool> depth_exceeded_{false};
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> nodes_{0};
  std::atomic<std::uint64_t> sleep_pruned_{0};
  std::atomic<std::uint64_t> persistent_deferred_{0};
  std::atomic<std::uint64_t> max_depth_seen_{0};

  std::mutex violations_mu_;
  std::vector<std::string> violations_;
};

}  // namespace

ExploreResult explore_all_executions(const InstanceFactory& factory,
                                     const ExploreOptions& opts) {
  Explorer explorer(factory, opts);
  return explorer.run();
}

std::string strip_schedule_suffix(const std::string& violation) {
  const std::size_t pos = violation.rfind(" [schedule:");
  return pos == std::string::npos ? violation : violation.substr(0, pos);
}

PorCrossCheck crosscheck_por(const InstanceFactory& factory,
                             ExploreOptions opts) {
  PorCrossCheck cc;
  ExploreOptions full = opts;
  full.por = false;
  full.persistent = false;
  full.threads = 1;
  cc.full = explore_all_executions(factory, full);
  opts.por = true;
  cc.reduced = explore_all_executions(factory, opts);

  std::set<std::string> full_set;
  std::set<std::string> reduced_set;
  for (const auto& v : cc.full.violations) {
    full_set.insert(strip_schedule_suffix(v));
  }
  for (const auto& v : cc.reduced.violations) {
    reduced_set.insert(strip_schedule_suffix(v));
  }
  std::set_difference(full_set.begin(), full_set.end(), reduced_set.begin(),
                      reduced_set.end(), std::back_inserter(cc.only_full));
  std::set_difference(reduced_set.begin(), reduced_set.end(), full_set.begin(),
                      full_set.end(), std::back_inserter(cc.only_reduced));
  return cc;
}

}  // namespace stamped::verify
