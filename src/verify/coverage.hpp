// Interleaving-coverage signatures for the schedule fuzzer.
//
// A "signature" abstracts one context switch of an execution: an adjacent
// step pair (a, b) with a.pid != b.pid, keyed by what the two steps did —
// (op kind, register) of each side, plus whether the switch handed the
// register over (same register) or jumped (different registers). Executions
// that differ only in which pids performed a switch, or in where inside a
// solo run it happened, collapse to the same signature set; executions that
// interleave different operations produce new signatures. The map therefore
// measures *interleaving diversity*, the thing a schedule fuzzer should
// maximize: racing a write under a collect is a different signature from
// racing it under another write, while re-running the same race with
// relabeled pids is not progress.
//
// Fed from ISystem::step_infos() (the type-erased step log that the covering
// adversaries already use), so it works for every family with no per-family
// plumbing. Deterministic: the signature of a step pair is a pure function
// of the StepInfos.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "runtime/isystem.hpp"

namespace stamped::verify {

/// Set of op-pair interleaving signatures accumulated over executions.
class CoverageMap {
 public:
  /// Packs one context switch: 3 op-kind bits and 20 register bits per side,
  /// plus a same-register flag. Registers beyond 2^20-1 alias (harmless: the
  /// map under-counts diversity, never miscounts an execution as new twice).
  [[nodiscard]] static std::uint64_t signature(const runtime::StepInfo& a,
                                               const runtime::StepInfo& b) {
    const auto pack = [](const runtime::StepInfo& s) -> std::uint64_t {
      const auto reg = static_cast<std::uint64_t>(s.reg) & 0xfffff;
      return (static_cast<std::uint64_t>(s.kind) << 20) | reg;
    };
    const std::uint64_t same_reg = a.reg == b.reg ? 1 : 0;
    return (pack(a) << 24) | (pack(b) << 1) | same_reg;
  }

  /// Feeds one complete execution's step log; returns how many of its
  /// signatures no earlier execution had visited.
  std::size_t add_execution(const std::vector<runtime::StepInfo>& steps) {
    std::size_t fresh = 0;
    for (std::size_t i = 1; i < steps.size(); ++i) {
      if (steps[i - 1].pid == steps[i].pid) continue;
      if (seen_.insert(signature(steps[i - 1], steps[i])).second) ++fresh;
    }
    return fresh;
  }

  /// Distinct signatures visited so far.
  [[nodiscard]] std::size_t size() const { return seen_.size(); }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace stamped::verify
