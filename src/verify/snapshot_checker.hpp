// Linearizability check for snapshot scans against the simulator's ground
// truth.
//
// The simulator records every write in the trace, so the exact component-value
// vector at every instant is known. A scan is linearizable iff its returned
// view equals the register state at some step within the scan's interval
// [start_step, end_step].
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/system.hpp"
#include "snapshot/wait_free_snapshot.hpp"

namespace stamped::verify {

/// Reconstructs the component-value history of a snapshot system and checks
/// that every scan in `log` matches the memory state at some point inside its
/// interval. Returns std::nullopt on success or a description of the first
/// non-linearizable scan.
inline std::optional<std::string> check_scans_linearizable(
    const runtime::System<snapshot::SnapCell>& sys,
    const std::vector<snapshot::ScanRecord>& scans) {
  const int n = sys.num_registers();
  // states[t] = component values after t steps; states has trace.size()+1
  // entries (t = 0 is the initial all-zero state).
  std::vector<std::vector<std::int64_t>> states;
  states.reserve(sys.trace().size() + 1);
  std::vector<std::int64_t> cur(static_cast<std::size_t>(n), 0);
  states.push_back(cur);
  for (const auto& e : sys.trace()) {
    if (e.kind == runtime::OpKind::kWrite ||
        e.kind == runtime::OpKind::kSwap) {
      cur[static_cast<std::size_t>(e.reg)] = e.written.value;
    }
    states.push_back(cur);
  }

  for (const auto& scan : scans) {
    STAMPED_ASSERT(scan.start_step <= scan.end_step);
    STAMPED_ASSERT(scan.end_step < states.size());
    bool matched = false;
    for (std::uint64_t t = scan.start_step; t <= scan.end_step && !matched;
         ++t) {
      matched = states[t] == scan.view;
    }
    if (!matched) {
      std::ostringstream os;
      os << "scan by p" << scan.pid << " over [" << scan.start_step << ','
         << scan.end_step << "] returned a view matching no state in its "
         << "interval (embedded=" << scan.used_embedded << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace stamped::verify
