#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "util/bounds.hpp"

namespace stamped::verify {

using core::TsRecord;
using runtime::OpKind;

void SqrtInvariantChecker::attach(Sys& sys) {
  last_ids_per_register_.assign(
      static_cast<std::size_t>(sys.num_registers()), {});
  sys.set_observer([this](const Sys& s,
                          const runtime::TraceEntry<TsRecord>& e) {
    on_step(s, e);
  });
}

void SqrtInvariantChecker::check_registers(const Sys& sys) const {
  const int m = sys.num_registers();
  // ⊥-prefix property: find the frontier, then everything beyond must be ⊥.
  int frontier = 0;
  while (frontier < m && !sys.reg_value(frontier).is_bottom) ++frontier;
  for (int i = frontier; i < m; ++i) {
    STAMPED_ASSERT_MSG(sys.reg_value(i).is_bottom,
                       "non-⊥ register " << i << " beyond frontier "
                                         << frontier);
  }
  for (int i = 0; i < frontier; ++i) {
    const TsRecord& rec = sys.reg_value(i);
    const auto len = static_cast<int>(rec.seq.size());
    STAMPED_ASSERT_MSG(len == 1 || len == i + 1,
                       "register " << i << " holds seq of length " << len
                                   << " (must be 1 or " << i + 1 << ")");
    STAMPED_ASSERT_MSG(rec.rnd >= 1, "register " << i << " has rnd < 1");
    if (len == i + 1 && len > 1) {
      STAMPED_ASSERT_MSG(rec.rnd == i + 1,
                         "phase-starter record in register "
                             << i << " has rnd " << rec.rnd << " != " << i + 1);
    }
  }
}

void SqrtInvariantChecker::on_step(const Sys& sys,
                                   const runtime::TraceEntry<TsRecord>& e) {
  ++steps_checked_;
  if (e.kind == OpKind::kWrite || e.kind == OpKind::kSwap) {
    STAMPED_ASSERT_MSG(e.reg != sys.num_registers() - 1,
                       "sentinel register written by p" << e.pid);
    auto& seen = last_ids_per_register_[static_cast<std::size_t>(e.reg)];
    const core::TsId last = e.written.last();
    STAMPED_ASSERT_MSG(std::find(seen.begin(), seen.end(), last) == seen.end(),
                       "repeated last(seq) " << last.repr() << " written to "
                                             << e.reg
                                             << " (Claim 6.1(b) violated)");
    seen.push_back(last);
  }
  check_registers(sys);
}

std::string PhaseAnalysis::to_string() const {
  std::ostringstream os;
  os << "M=" << total_calls << " Phi=" << phases_started << " (bound "
     << phase_bound << ") invalidations=" << invalidation_writes << " (bound "
     << invalidation_bound << ") writes=" << total_writes
     << " max_reg_written=" << max_register_written
     << " claim6.8=" << (claim_6_8_ok ? "ok" : "VIOLATED")
     << " monotone=" << (phase_starts_monotone ? "ok" : "VIOLATED");
  return os.str();
}

PhaseAnalysis analyze_phases(const runtime::System<core::TsRecord>& sys,
                             const core::SqrtStats& stats,
                             std::int64_t total_calls) {
  PhaseAnalysis out;
  out.total_calls = total_calls;
  out.phase_bound = util::bounds::phase_bound(total_calls);
  out.invalidation_bound = util::bounds::invalidation_bound(total_calls);

  // Phase f (1-based) starts at the earliest scan linearization whose
  // scanner had myrnd == f-1.
  std::map<int, std::uint64_t> start_by_phase;
  for (const auto& scan : stats.scans()) {
    const int phase = scan.myrnd + 1;
    auto [it, inserted] = start_by_phase.emplace(phase, scan.linearize_step);
    if (!inserted) it->second = std::min(it->second, scan.linearize_step);
  }
  // Phases must be contiguous (1..Phi) with strictly increasing starts.
  int expected = 1;
  std::uint64_t prev_start = 0;
  for (const auto& [phase, start] : start_by_phase) {
    if (phase != expected) out.phase_starts_monotone = false;
    if (phase > 1 && start <= prev_start) out.phase_starts_monotone = false;
    prev_start = start;
    ++expected;
    out.phase_start_step.push_back(start);
  }
  out.phases_started = static_cast<int>(start_by_phase.size());

  // Classify every write by phase; the first write to a register within a
  // phase is an invalidation write.
  std::set<std::pair<int, int>> seen_phase_reg;  // (phase, reg)
  for (const auto& e : sys.trace()) {
    if (e.kind != OpKind::kWrite && e.kind != OpKind::kSwap) continue;
    ++out.total_writes;
    out.max_register_written = std::max(out.max_register_written, e.reg);
    // phase containing step e.index: largest f with start(f) <= e.index.
    int phase = 0;
    for (int f = static_cast<int>(out.phase_start_step.size()); f >= 1; --f) {
      if (out.phase_start_step[static_cast<std::size_t>(f - 1)] <= e.index) {
        phase = f;
        break;
      }
    }
    if (phase == 0) {
      // No write may precede the first phase (the first write in any
      // execution is the phase-1 starter's, after its scan).
      out.claim_6_8_ok = false;
      continue;
    }
    // Claim 6.8: during phase f only (1-based) registers 1..f are written,
    // i.e. 0-based reg < f.
    if (e.reg >= phase) out.claim_6_8_ok = false;
    if (seen_phase_reg.emplace(phase, e.reg).second) {
      ++out.invalidation_writes;
    }
  }
  return out;
}

}  // namespace stamped::verify
