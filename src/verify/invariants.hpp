// Executable invariants of Algorithm 4 (paper Section 6.1-6.3) and the phase
// / invalidation-write analysis behind its space bound (Lemma 6.5).
//
// Register-state invariants (checked after every simulator step):
//  - ⊥-prefix: for some k, registers 0..k-1 are non-⊥ and k..m-1 are ⊥
//    (Claim 6.1 (a)+(d));
//  - sequence length: a non-⊥ record in (0-based) register i has seq length
//    1 or i+1 (paper: "length either 1 or j");
//  - full-length records in register i carry rnd == i+1 (phase-starter
//    writes, line 15);
//  - write distinctness: no two writes to the same register ever store the
//    same last(seq) (Claim 6.1 (b)) — this is what makes the double-collect
//    scan ABA-free;
//  - the last register (sentinel) is never written (Lemma 6.14).
//
// Phase analysis (from a finished execution + SqrtStats):
//  - phase f >= 1 starts at the first scan linearization whose scanner had
//    myrnd == f-1 (Section 6.3);
//  - only registers R[1..f] (1-based) are written during phase f (Claim 6.8);
//  - an *invalidation write* is the first write to a register in a phase;
//    a completed phase f contains exactly f of them (Claim 6.10);
//  - totals: Phi < 2*sqrt(M) and invalidation writes <= 2M (Claim 6.13),
//    which give the ceil(2*sqrt(M)) space bound (Lemma 6.5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sqrt_oneshot.hpp"
#include "core/timestamp.hpp"
#include "runtime/system.hpp"

namespace stamped::verify {

/// Stateful checker for the register invariants of Algorithm 4. Install via
/// attach() — it validates the register file after every step and throws
/// stamped::invariant_error on the first violation.
class SqrtInvariantChecker {
 public:
  using Sys = runtime::System<core::TsRecord>;

  /// Installs this checker as the system observer. The checker must outlive
  /// the system's execution.
  void attach(Sys& sys);

  /// Validates the full register file of `sys` (also callable directly).
  void check_registers(const Sys& sys) const;

  /// Number of steps observed.
  [[nodiscard]] std::uint64_t steps_checked() const { return steps_checked_; }

 private:
  void on_step(const Sys& sys, const runtime::TraceEntry<core::TsRecord>& e);

  // last(seq) values previously written per register (Claim 6.1 (b)).
  std::vector<std::vector<core::TsId>> last_ids_per_register_;
  std::uint64_t steps_checked_ = 0;
};

/// Result of the phase / invalidation-write analysis of one execution.
struct PhaseAnalysis {
  std::int64_t total_calls = 0;       ///< M
  int phases_started = 0;             ///< Phi
  double phase_bound = 0;             ///< 2*sqrt(M), must satisfy Phi < bound
  std::int64_t invalidation_writes = 0;
  std::int64_t invalidation_bound = 0;  ///< 2M
  std::int64_t total_writes = 0;
  int max_register_written = -1;  ///< 0-based; < ceil(2*sqrt(M)) - 1
  bool claim_6_8_ok = true;   ///< writes in phase f only to registers < f
  bool phase_starts_monotone = true;
  std::vector<std::uint64_t> phase_start_step;  ///< index f-1 -> step

  [[nodiscard]] bool bounds_ok() const {
    return phases_started < phase_bound &&
           invalidation_writes <= invalidation_bound && claim_6_8_ok &&
           phase_starts_monotone;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Computes the phase analysis of a finished execution. `stats` must have
/// been attached to every getTS call of the run; `total_calls` is M.
PhaseAnalysis analyze_phases(const runtime::System<core::TsRecord>& sys,
                             const core::SqrtStats& stats,
                             std::int64_t total_calls);

}  // namespace stamped::verify
