// Real-thread register backend.
//
// AtomicMemory<V> is an array of atomic multi-writer multi-reader registers
// backed by std::atomic. The same coroutine algorithms that run on the
// simulator run here unchanged: DirectCtx's awaiters complete immediately
// (await_ready() == true), so a getTS coroutine executes synchronously on
// the calling thread with every register access compiled down to an atomic
// load/store.
//
// Storage (CP.100 note: this is the library's only lock-free code):
//  - trivially-copyable V of at most 8 bytes: a plain std::atomic<V>;
//  - anything else (e.g. core::TsRecord): an atomic pointer to an immutable
//    heap node. Writers allocate a node, exchange it in, and push the old
//    node onto a Treiber retirement stack that is reclaimed only on
//    destruction, so readers can dereference without hazard tracking.
//    Memory use grows with the number of writes, which is bounded in every
//    benchmark and test (Algorithm 4 performs at most m writes per call).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/value.hpp"
#include "util/assert.hpp"

namespace stamped::atomicmem {

namespace detail {

template <class V>
inline constexpr bool kInlineAtomic =
    std::is_trivially_copyable_v<V> && sizeof(V) <= 8;

/// Cell for small trivially copyable values. Plain loads stay single atomic
/// ops (wait-free); writes additionally maintain a seqlock-style version
/// counter so load_versioned() can return a consistent {value, version} pair
/// for the version-clock scan. The counter holds 2*version while idle and an
/// odd value while a write is in flight; writers serialize on it with a CAS
/// (uncontended in the SWMR register layouts every algorithm here uses, a
/// short spin under MWMR write races — writes are then lock-based, which is
/// an honest cost of versioning an 8-byte cell without DWCAS).
template <class V, bool Inline = kInlineAtomic<V>>
class AtomicCell {
 public:
  explicit AtomicCell(const V& initial) : value_(initial) {}

  // seq_cst throughout: the paper's model is *atomic* (linearizable)
  // registers, and clients like the bakery lock rely on store-load ordering
  // that acquire/release does not provide.
  [[nodiscard]] V load() const {
    return value_.load(std::memory_order_seq_cst);
  }

  /// Consistent snapshot of value and write-version: retries while a write
  /// is in flight or raced the value load.
  [[nodiscard]] runtime::Versioned<V> load_versioned() const {
    for (;;) {
      const std::uint64_t before = seq_.load(std::memory_order_seq_cst);
      if ((before & 1u) != 0) continue;  // write in flight
      V v = value_.load(std::memory_order_seq_cst);
      if (seq_.load(std::memory_order_seq_cst) == before) {
        return {std::move(v), before >> 1};
      }
    }
  }

  void store(V v) {
    const std::uint64_t s = writer_enter();
    value_.store(v, std::memory_order_seq_cst);
    writer_exit(s);
  }
  [[nodiscard]] V exchange(V v) {
    const std::uint64_t s = writer_enter();
    V old = value_.exchange(v, std::memory_order_seq_cst);
    writer_exit(s);
    return old;
  }
  [[nodiscard]] V fetch_add(V addend)
    requires std::is_arithmetic_v<V>
  {
    const std::uint64_t s = writer_enter();
    V old = value_.fetch_add(addend, std::memory_order_seq_cst);
    writer_exit(s);
    return old;
  }

 private:
  /// Bumps the seqlock counter to odd; returns the even value it left.
  std::uint64_t writer_enter() {
    std::uint64_t s = seq_.load(std::memory_order_relaxed);
    for (;;) {
      if ((s & 1u) != 0) {
        s = seq_.load(std::memory_order_relaxed);
        continue;
      }
      if (seq_.compare_exchange_weak(s, s + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
        return s;
      }
    }
  }
  void writer_exit(std::uint64_t entered) {
    seq_.store(entered + 2, std::memory_order_seq_cst);
  }

  std::atomic<V> value_;
  std::atomic<std::uint64_t> seq_{0};
};

/// Pointer-swap cell for arbitrary (copyable) values. Old nodes are retired
/// to a Treiber stack and freed on destruction. Versioning is free here:
/// every write installs a fresh immutable node carrying a unique version, so
/// load_versioned() is one pointer load, and equal versions across two loads
/// imply the same node — hence no intervening write (nodes are never
/// re-installed).
template <class V>
class AtomicCell<V, false> {
 public:
  explicit AtomicCell(const V& initial)
      : current_(new Node{initial, 0, nullptr}) {}

  AtomicCell(const AtomicCell&) = delete;
  AtomicCell& operator=(const AtomicCell&) = delete;

  ~AtomicCell() {
    delete current_.load(std::memory_order_relaxed);
    Node* node = retired_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  [[nodiscard]] V load() const {
    return current_.load(std::memory_order_seq_cst)->value;
  }

  [[nodiscard]] runtime::Versioned<V> load_versioned() const {
    const Node* node = current_.load(std::memory_order_seq_cst);
    return {node->value, node->version};
  }

  void store(V v) { retire(swap_in(std::move(v))); }

  [[nodiscard]] V exchange(V v) {
    Node* old = swap_in(std::move(v));
    V result = old->value;
    retire(old);
    return result;
  }

 private:
  struct Node {
    V value;
    std::uint64_t version;
    Node* next;
  };

  Node* swap_in(V v) {
    // Versions are unique per node (fetch_add), which is all load_versioned
    // needs; they need not be installation-ordered under concurrent writers.
    Node* fresh = new Node{
        std::move(v), versions_.fetch_add(1, std::memory_order_seq_cst) + 1,
        nullptr};
    return current_.exchange(fresh, std::memory_order_seq_cst);
  }

  void retire(Node* node) {
    Node* head = retired_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!retired_.compare_exchange_weak(head, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  std::atomic<Node*> current_;
  std::atomic<Node*> retired_{nullptr};
  std::atomic<std::uint64_t> versions_{0};
};

}  // namespace detail

/// An array of atomic MWMR registers for real-thread executions.
template <class V>
class AtomicMemory {
 public:
  AtomicMemory(int num_registers, const V& initial) {
    STAMPED_ASSERT(num_registers > 0);
    cells_.reserve(static_cast<std::size_t>(num_registers));
    for (int i = 0; i < num_registers; ++i) {
      cells_.push_back(std::make_unique<detail::AtomicCell<V>>(initial));
    }
  }

  [[nodiscard]] int num_registers() const {
    return static_cast<int>(cells_.size());
  }

  [[nodiscard]] V read(int reg) const { return cell(reg).load(); }
  [[nodiscard]] runtime::Versioned<V> versioned_read(int reg) const {
    return cell(reg).load_versioned();
  }
  void write(int reg, V v) { cell(reg).store(std::move(v)); }
  [[nodiscard]] V swap(int reg, V v) {
    return cell(reg).exchange(std::move(v));
  }
  [[nodiscard]] V fetch_add(int reg, V addend)
    requires std::is_arithmetic_v<V>
  {
    return cell(reg).fetch_add(addend);
  }

 private:
  detail::AtomicCell<V>& cell(int reg) {
    STAMPED_ASSERT(reg >= 0 && reg < num_registers());
    return *cells_[static_cast<std::size_t>(reg)];
  }
  const detail::AtomicCell<V>& cell(int reg) const {
    STAMPED_ASSERT(reg >= 0 && reg < num_registers());
    return *cells_[static_cast<std::size_t>(reg)];
  }

  std::vector<std::unique_ptr<detail::AtomicCell<V>>> cells_;
};

/// Memory context for real threads: same interface as runtime::SimCtx, but
/// every awaiter is immediately ready, so coroutines never suspend.
template <class V>
class DirectCtx {
 public:
  using Value = V;

  DirectCtx(AtomicMemory<V>* mem, int pid, std::atomic<std::uint64_t>* clock)
      : mem_(mem), pid_(pid), clock_(clock) {}

  [[nodiscard]] int pid() const { return pid_; }
  [[nodiscard]] int num_registers() const { return mem_->num_registers(); }

  struct ValueAwaiter {
    V v;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    V await_resume() { return std::move(v); }
  };
  struct VoidAwaiter {
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };

  struct VersionedAwaiter {
    runtime::Versioned<V> v;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    runtime::Versioned<V> await_resume() { return std::move(v); }
  };

  [[nodiscard]] ValueAwaiter read(int reg) {
    bump();
    return {mem_->read(reg)};
  }
  [[nodiscard]] VersionedAwaiter versioned_read(int reg) {
    bump();
    return {mem_->versioned_read(reg)};
  }
  [[nodiscard]] VoidAwaiter write(int reg, V v) {
    bump();
    mem_->write(reg, std::move(v));
    return {};
  }
  [[nodiscard]] ValueAwaiter swap(int reg, V v) {
    bump();
    return {mem_->swap(reg, std::move(v))};
  }
  [[nodiscard]] ValueAwaiter fetch_add(int reg, V addend)
    requires std::is_arithmetic_v<V>
  {
    bump();
    return {mem_->fetch_add(reg, addend)};
  }

  std::uint64_t stamp() {
    return clock_->fetch_add(1, std::memory_order_seq_cst) + 1;
  }
  [[nodiscard]] std::uint64_t steps_now() const {
    return clock_->load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t my_steps() const { return ops_; }
  void note_call_complete() { ++calls_; }
  [[nodiscard]] std::uint64_t calls_completed() const { return calls_; }

 private:
  void bump() {
    ++ops_;
    clock_->fetch_add(1, std::memory_order_seq_cst);
  }

  AtomicMemory<V>* mem_;
  int pid_;
  std::atomic<std::uint64_t>* clock_;
  std::uint64_t ops_ = 0;
  std::uint64_t calls_ = 0;
};

/// Runs one program per thread against a shared AtomicMemory. Each thread
/// constructs its coroutine and resumes it once; with DirectCtx the coroutine
/// runs to completion synchronously. Propagates the first program exception.
template <class V>
class ThreadedHarness {
 public:
  using Program = std::function<runtime::ProcessTask(DirectCtx<V>&)>;

  ThreadedHarness(int num_registers, const V& initial)
      : mem_(num_registers, initial) {}

  [[nodiscard]] AtomicMemory<V>& memory() { return mem_; }
  [[nodiscard]] std::uint64_t clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  /// Runs all programs concurrently (programs[i] gets pid i); returns after
  /// every thread joined. Throws the first captured exception, if any.
  void run(const std::vector<Program>& programs) {
    const int n = static_cast<int>(programs.size());
    std::vector<std::unique_ptr<DirectCtx<V>>> ctxs;
    ctxs.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      ctxs.push_back(std::make_unique<DirectCtx<V>>(&mem_, p, &clock_));
    }
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(n));
      for (int p = 0; p < n; ++p) {
        threads.emplace_back([&, p] {
          try {
            runtime::ProcessTask task =
                programs[static_cast<std::size_t>(p)](*ctxs[static_cast<std::size_t>(p)]);
            task.handle().resume();
            STAMPED_ASSERT_MSG(task.done(),
                               "program suspended under DirectCtx");
            if (task.exception()) {
              errors[static_cast<std::size_t>(p)] = task.exception();
            }
          } catch (...) {
            errors[static_cast<std::size_t>(p)] = std::current_exception();
          }
        });
      }
    }
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  }

 private:
  AtomicMemory<V> mem_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace stamped::atomicmem
