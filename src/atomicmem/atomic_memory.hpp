// Real-thread register backend.
//
// AtomicMemory<V> is an array of atomic multi-writer multi-reader registers
// backed by std::atomic. The same coroutine algorithms that run on the
// simulator run here unchanged: DirectCtx's awaiters complete immediately
// (await_ready() == true), so a getTS coroutine executes synchronously on
// the calling thread with every register access compiled down to an atomic
// load/store.
//
// Storage (CP.100 note: this is the library's only lock-free code):
//  - trivially-copyable V of at most 8 bytes: a plain std::atomic<V>;
//  - anything else (e.g. core::TsRecord): an atomic pointer to an immutable
//    heap node. Writers allocate a node, exchange it in, and push the old
//    node onto a Treiber retirement stack.
//
// Reclamation. Retired nodes used to be freed only at destruction, so long
// native runs grew memory with write count. They are now reclaimed by a
// global epoch domain (detail::EpochDomain): readers pin the current epoch
// around every dereferencing access, retirees are stamped with the epoch at
// unlink time, and writers trim the stacks once kTrimThreshold retirees are
// outstanding — freeing exactly the nodes stamped before every pinned
// epoch. quiesce() (the native backend calls it after joining its workers)
// frees everything unconditionally. retired_nodes() / arena_bytes() expose
// the accounting.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "runtime/coro.hpp"
#include "runtime/value.hpp"
#include "util/assert.hpp"

namespace stamped::atomicmem {

namespace detail {

template <class V>
inline constexpr bool kInlineAtomic =
    std::is_trivially_copyable_v<V> && sizeof(V) <= 8;

/// Process-wide epoch domain for node-cell reclamation, shared by every
/// AtomicMemory instance (epochs are per-thread facts, not per-memory ones).
/// A thread pins the current global epoch in its own cache-line-padded slot
/// for the duration of one dereferencing access; trimmers free a retired
/// node only when its retirement epoch precedes every pinned epoch.
///
/// Safety argument (all epoch traffic is seq_cst, so one total order): a
/// reader that still holds node N announced its pin BEFORE loading N from
/// the cell, which is before the write that unlinked N, which is before N's
/// retirement push. A trimmer drains the retirement stack FIRST and scans
/// the pin slots after, so draining N places the scan after the reader's
/// announcement in the total order — the scan must observe that pin (or a
/// later one by the same thread), and min_pinned() <= pin epoch <= N's
/// retirement epoch keeps N alive. The unpin store / pin-scan load pair on
/// the slot also gives TSan the happens-before edge from the reader's last
/// dereference to the eventual free.
class EpochDomain {
 public:
  /// Upper bound on threads concurrently touching node-cell memories. Slots
  /// are leased per thread and released at thread exit, so this bounds live
  /// threads, not lifetime thread count.
  static constexpr int kMaxSlots = 256;
  /// min_pinned() result when no thread is pinned: every retiree is free.
  static constexpr std::uint64_t kNoPins = ~std::uint64_t{0};

  [[nodiscard]] static EpochDomain& instance() {
    // Leaked deliberately: thread_local leases of detached or late-exiting
    // threads may release their slot after static destruction has begun.
    static EpochDomain* const domain = new EpochDomain();
    return *domain;
  }

  /// RAII pin: announces the current global epoch in the calling thread's
  /// slot. Re-entrant (nested pins keep the outermost announcement).
  class Pin {
   public:
    // Bodies follow Lease's definition below (it is only declared here).
    inline Pin();
    inline ~Pin();
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    struct Lease;
    friend class EpochDomain;

    [[nodiscard]] static inline Lease& thread_lease();

    Lease& lease_;
  };

  /// Epoch stamped onto a node at retirement.
  [[nodiscard]] std::uint64_t retire_epoch() const {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Minimum epoch announced by any pinned thread (kNoPins when idle).
  /// Trimmers MUST drain retirement stacks before calling this — see the
  /// class comment's ordering argument.
  [[nodiscard]] std::uint64_t min_pinned() const {
    std::uint64_t min = kNoPins;
    for (const Slot& s : slots_) {
      const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min) min = e;
    }
    return min;
  }

  /// Advances the global epoch once every pinned thread has observed the
  /// current one, so retirees of successive trim rounds age out: a node
  /// stamped in round k becomes reclaimable when all pins reach round k+1.
  void try_advance() {
    std::uint64_t g = global_.load(std::memory_order_seq_cst);
    for (const Slot& s : slots_) {
      const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < g) return;
    }
    global_.compare_exchange_strong(g, g + 1, std::memory_order_seq_cst);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  ///< announced epoch; 0 = idle
    std::atomic<bool> claimed{false};
  };

  EpochDomain() = default;

  std::atomic<std::uint64_t> global_{1};
  std::array<Slot, kMaxSlots> slots_{};
};

struct EpochDomain::Pin::Lease {
  Slot* slot = nullptr;
  int depth = 0;

  Lease() {
    for (Slot& s : instance().slots_) {
      bool expected = false;
      if (s.claimed.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        slot = &s;
        return;
      }
    }
    STAMPED_ASSERT_MSG(false, "more than " << kMaxSlots
                                           << " threads concurrently pinned "
                                              "in the epoch domain");
  }
  ~Lease() {
    if (slot != nullptr) {
      slot->epoch.store(0, std::memory_order_seq_cst);
      slot->claimed.store(false, std::memory_order_release);
    }
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
};

inline EpochDomain::Pin::Lease& EpochDomain::Pin::thread_lease() {
  thread_local Lease lease;
  return lease;
}

inline EpochDomain::Pin::Pin() : lease_(thread_lease()) {
  if (lease_.depth++ == 0) {
    lease_.slot->epoch.store(instance().global_.load(std::memory_order_seq_cst),
                             std::memory_order_seq_cst);
  }
}

inline EpochDomain::Pin::~Pin() {
  if (--lease_.depth == 0) {
    lease_.slot->epoch.store(0, std::memory_order_seq_cst);
  }
}

/// Shared allocation/retirement accounting of one AtomicMemory's node cells
/// (retired_nodes() / arena_bytes() read these; trivially zero for inline
/// cells, which never allocate).
struct ReclaimCounters {
  std::atomic<std::uint64_t> allocated{0};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> reclaimed{0};
};

/// Cell for small trivially copyable values. Plain loads stay single atomic
/// ops (wait-free); writes additionally maintain a seqlock-style version
/// counter so load_versioned() can return a consistent {value, version} pair
/// for the version-clock scan. The counter holds 2*version while idle and an
/// odd value while a write is in flight; writers serialize on it with a CAS
/// (uncontended in the SWMR register layouts every algorithm here uses, a
/// short spin under MWMR write races — writes are then lock-based, which is
/// an honest cost of versioning an 8-byte cell without DWCAS).
template <class V, bool Inline = kInlineAtomic<V>>
class AtomicCell {
 public:
  explicit AtomicCell(const V& initial) : value_(initial) {}

  // seq_cst throughout: the paper's model is *atomic* (linearizable)
  // registers, and clients like the bakery lock rely on store-load ordering
  // that acquire/release does not provide.
  [[nodiscard]] V load() const {
    return value_.load(std::memory_order_seq_cst);
  }

  /// Consistent snapshot of value and write-version: retries while a write
  /// is in flight or raced the value load.
  [[nodiscard]] runtime::Versioned<V> load_versioned() const {
    for (;;) {
      const std::uint64_t before = seq_.load(std::memory_order_seq_cst);
      if ((before & 1u) != 0) continue;  // write in flight
      V v = value_.load(std::memory_order_seq_cst);
      if (seq_.load(std::memory_order_seq_cst) == before) {
        return {std::move(v), before >> 1};
      }
    }
  }

  void store(V v) {
    const std::uint64_t s = writer_enter();
    value_.store(v, std::memory_order_seq_cst);
    writer_exit(s);
  }
  [[nodiscard]] V exchange(V v) {
    const std::uint64_t s = writer_enter();
    V old = value_.exchange(v, std::memory_order_seq_cst);
    writer_exit(s);
    return old;
  }
  [[nodiscard]] V fetch_add(V addend)
    requires std::is_arithmetic_v<V>
  {
    const std::uint64_t s = writer_enter();
    V old = value_.fetch_add(addend, std::memory_order_seq_cst);
    writer_exit(s);
    return old;
  }

 private:
  /// Bumps the seqlock counter to odd; returns the even value it left.
  std::uint64_t writer_enter() {
    std::uint64_t s = seq_.load(std::memory_order_relaxed);
    for (;;) {
      if ((s & 1u) != 0) {
        s = seq_.load(std::memory_order_relaxed);
        continue;
      }
      if (seq_.compare_exchange_weak(s, s + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
        return s;
      }
    }
  }
  void writer_exit(std::uint64_t entered) {
    seq_.store(entered + 2, std::memory_order_seq_cst);
  }

  std::atomic<V> value_;
  std::atomic<std::uint64_t> seq_{0};
};

/// Pointer-swap cell for arbitrary (copyable) values. Old nodes are retired
/// to a Treiber stack and reclaimed by epoch (see EpochDomain): callers pin
/// around dereferencing accesses; the owning AtomicMemory drains and frees.
/// Versioning is free here: every write installs a fresh immutable node
/// carrying a unique version, so load_versioned() is one pointer load, and
/// equal versions across two loads imply the same node — hence no
/// intervening write (nodes are never re-installed).
template <class V>
class AtomicCell<V, false> {
 public:
  struct Node {
    V value;
    std::uint64_t version;
    std::uint64_t epoch;  ///< EpochDomain epoch at retirement (0 while live)
    Node* next;
  };

  AtomicCell(const V& initial, ReclaimCounters* counters)
      : current_(new Node{initial, 0, 0, nullptr}), counters_(counters) {
    counters_->allocated.fetch_add(1, std::memory_order_relaxed);
  }

  AtomicCell(const AtomicCell&) = delete;
  AtomicCell& operator=(const AtomicCell&) = delete;

  ~AtomicCell() {
    reclaim(drain_retired(), EpochDomain::kNoPins);
    delete current_.load(std::memory_order_relaxed);
    counters_->reclaimed.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] V load() const {
    return current_.load(std::memory_order_seq_cst)->value;
  }

  [[nodiscard]] runtime::Versioned<V> load_versioned() const {
    const Node* node = current_.load(std::memory_order_seq_cst);
    return {node->value, node->version};
  }

  void store(V v) { retire(swap_in(std::move(v))); }

  [[nodiscard]] V exchange(V v) {
    Node* old = swap_in(std::move(v));
    V result = old->value;
    retire(old);
    return result;
  }

  /// Pops the whole retirement stack; each trimmer owns what it pops, so
  /// concurrent trims never double-free.
  [[nodiscard]] Node* drain_retired() {
    return retired_.exchange(nullptr, std::memory_order_seq_cst);
  }

  /// Frees every drained node stamped before `min_pinned_epoch`; survivors
  /// are spliced back onto the stack for a later trim round.
  void reclaim(Node* head, std::uint64_t min_pinned_epoch) {
    Node* survivors = nullptr;
    Node* survivors_tail = nullptr;
    std::uint64_t freed = 0;
    while (head != nullptr) {
      Node* next = head->next;
      if (head->epoch < min_pinned_epoch) {
        delete head;
        ++freed;
      } else {
        head->next = survivors;
        if (survivors == nullptr) survivors_tail = head;
        survivors = head;
      }
      head = next;
    }
    if (freed > 0) {
      counters_->reclaimed.fetch_add(freed, std::memory_order_relaxed);
    }
    if (survivors != nullptr) {
      Node* cur = retired_.load(std::memory_order_relaxed);
      do {
        survivors_tail->next = cur;
      } while (!retired_.compare_exchange_weak(cur, survivors,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
    }
  }

 private:
  Node* swap_in(V v) {
    // Versions are unique per node (fetch_add), which is all load_versioned
    // needs; they need not be installation-ordered under concurrent writers.
    Node* fresh = new Node{
        std::move(v), versions_.fetch_add(1, std::memory_order_seq_cst) + 1,
        0, nullptr};
    counters_->allocated.fetch_add(1, std::memory_order_relaxed);
    return current_.exchange(fresh, std::memory_order_seq_cst);
  }

  void retire(Node* node) {
    node->epoch = EpochDomain::instance().retire_epoch();
    Node* head = retired_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!retired_.compare_exchange_weak(head, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    counters_->retired.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<Node*> current_;
  std::atomic<Node*> retired_{nullptr};
  std::atomic<std::uint64_t> versions_{0};
  ReclaimCounters* counters_;
};

}  // namespace detail

/// An array of atomic MWMR registers for real-thread executions.
template <class V>
class AtomicMemory {
 public:
  /// Outstanding retired nodes that trigger a writer-driven trim. The
  /// epoch-counted trim keeps retirement bounded near this (two trim rounds
  /// in the worst case — retirees of the current epoch survive one round).
  static constexpr std::uint64_t kTrimThreshold = 512;

  AtomicMemory(int num_registers, const V& initial) {
    STAMPED_ASSERT(num_registers > 0);
    cells_.reserve(static_cast<std::size_t>(num_registers));
    for (int i = 0; i < num_registers; ++i) {
      if constexpr (detail::kInlineAtomic<V>) {
        cells_.push_back(std::make_unique<detail::AtomicCell<V>>(initial));
      } else {
        cells_.push_back(
            std::make_unique<detail::AtomicCell<V>>(initial, &counters_));
      }
    }
  }

  [[nodiscard]] int num_registers() const {
    return static_cast<int>(cells_.size());
  }

  // Only the dereferencing accesses pin: loads follow the current-node
  // pointer of node cells, so the node must outlive the copy-out. Writers
  // touch no shared node (store allocates; swap dereferences only the node
  // it unlinked itself, which nobody else can retire).
  [[nodiscard]] V read(int reg) const {
    if constexpr (detail::kInlineAtomic<V>) {
      return cell(reg).load();
    } else {
      detail::EpochDomain::Pin pin;
      return cell(reg).load();
    }
  }
  [[nodiscard]] runtime::Versioned<V> versioned_read(int reg) const {
    if constexpr (detail::kInlineAtomic<V>) {
      return cell(reg).load_versioned();
    } else {
      detail::EpochDomain::Pin pin;
      return cell(reg).load_versioned();
    }
  }
  void write(int reg, V v) {
    cell(reg).store(std::move(v));
    maybe_trim();
  }
  [[nodiscard]] V swap(int reg, V v) {
    V old = cell(reg).exchange(std::move(v));
    maybe_trim();
    return old;
  }
  [[nodiscard]] V fetch_add(int reg, V addend)
    requires std::is_arithmetic_v<V>
  {
    return cell(reg).fetch_add(addend);
  }

  /// Retired nodes not yet reclaimed (0 for inline-cell memories).
  [[nodiscard]] std::uint64_t retired_nodes() const {
    if constexpr (detail::kInlineAtomic<V>) {
      return 0;
    } else {
      return counters_.retired.load(std::memory_order_relaxed) -
             counters_.reclaimed.load(std::memory_order_relaxed);
    }
  }

  /// Heap bytes held by node cells — current nodes plus the unreclaimed
  /// retirement backlog (0 for inline-cell memories, which allocate nothing).
  [[nodiscard]] std::uint64_t arena_bytes() const {
    if constexpr (detail::kInlineAtomic<V>) {
      return 0;
    } else {
      const std::uint64_t live =
          counters_.allocated.load(std::memory_order_relaxed) -
          counters_.reclaimed.load(std::memory_order_relaxed);
      return live * sizeof(typename detail::AtomicCell<V>::Node);
    }
  }

  /// Quiesce point: frees every retired node unconditionally. The caller
  /// certifies no thread is concurrently accessing this memory — the native
  /// backend calls this after joining its workers.
  void quiesce() {
    if constexpr (!detail::kInlineAtomic<V>) {
      for (auto& c : cells_) {
        c->reclaim(c->drain_retired(), detail::EpochDomain::kNoPins);
      }
    }
  }

 private:
  void maybe_trim() {
    if constexpr (!detail::kInlineAtomic<V>) {
      const std::uint64_t outstanding =
          counters_.retired.load(std::memory_order_relaxed) -
          counters_.reclaimed.load(std::memory_order_relaxed);
      if (outstanding >= kTrimThreshold) trim_retired();
    }
  }

  /// Epoch-counted trim. Drain-before-scan is the safety hinge: a node
  /// drained here was retired — hence unlinked — before the pin scan ran, so
  /// any reader still dereferencing it announced its pin before the unlink
  /// and min_pinned() observes that pin (see EpochDomain).
  void trim_retired() {
    if constexpr (!detail::kInlineAtomic<V>) {
      auto& dom = detail::EpochDomain::instance();
      dom.try_advance();
      std::vector<typename detail::AtomicCell<V>::Node*> drained;
      drained.reserve(cells_.size());
      for (auto& c : cells_) drained.push_back(c->drain_retired());
      const std::uint64_t min = dom.min_pinned();
      for (std::size_t i = 0; i < cells_.size(); ++i) {
        cells_[i]->reclaim(drained[i], min);
      }
    }
  }

  detail::AtomicCell<V>& cell(int reg) {
    STAMPED_ASSERT(reg >= 0 && reg < num_registers());
    return *cells_[static_cast<std::size_t>(reg)];
  }
  const detail::AtomicCell<V>& cell(int reg) const {
    STAMPED_ASSERT(reg >= 0 && reg < num_registers());
    return *cells_[static_cast<std::size_t>(reg)];
  }

  // counters_ precedes cells_: cell destructors update the counters, so the
  // counters must be destroyed after the cells.
  detail::ReclaimCounters counters_;
  std::vector<std::unique_ptr<detail::AtomicCell<V>>> cells_;
};

/// Memory context for real threads: same interface as runtime::SimCtx, but
/// every awaiter is immediately ready, so coroutines never suspend.
template <class V>
class DirectCtx {
 public:
  using Value = V;

  DirectCtx(AtomicMemory<V>* mem, int pid, std::atomic<std::uint64_t>* clock)
      : mem_(mem), pid_(pid), clock_(clock) {}

  [[nodiscard]] int pid() const { return pid_; }
  [[nodiscard]] int num_registers() const { return mem_->num_registers(); }

  struct ValueAwaiter {
    V v;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    V await_resume() { return std::move(v); }
  };
  struct VoidAwaiter {
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };

  struct VersionedAwaiter {
    runtime::Versioned<V> v;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    runtime::Versioned<V> await_resume() { return std::move(v); }
  };

  [[nodiscard]] ValueAwaiter read(int reg) {
    bump();
    return {mem_->read(reg)};
  }
  [[nodiscard]] VersionedAwaiter versioned_read(int reg) {
    bump();
    return {mem_->versioned_read(reg)};
  }
  [[nodiscard]] VoidAwaiter write(int reg, V v) {
    bump();
    mem_->write(reg, std::move(v));
    return {};
  }
  [[nodiscard]] ValueAwaiter swap(int reg, V v) {
    bump();
    return {mem_->swap(reg, std::move(v))};
  }
  [[nodiscard]] ValueAwaiter fetch_add(int reg, V addend)
    requires std::is_arithmetic_v<V>
  {
    bump();
    return {mem_->fetch_add(reg, addend)};
  }

  std::uint64_t stamp() {
    return clock_->fetch_add(1, std::memory_order_seq_cst) + 1;
  }
  [[nodiscard]] std::uint64_t steps_now() const {
    return clock_->load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t my_steps() const { return ops_; }
  void note_call_complete() { ++calls_; }
  [[nodiscard]] std::uint64_t calls_completed() const { return calls_; }

  /// Stall-injection seam for fault tests: called after every register op
  /// with (pid, op count). The pointed-to function must outlive the run; a
  /// hook that blocks models this thread being preempted mid-protocol.
  void set_op_hook(const std::function<void(int, std::uint64_t)>* hook) {
    hook_ = hook;
  }

 private:
  void bump() {
    ++ops_;
    clock_->fetch_add(1, std::memory_order_seq_cst);
    if (hook_ != nullptr && *hook_) (*hook_)(pid_, ops_);
  }

  AtomicMemory<V>* mem_;
  int pid_;
  std::atomic<std::uint64_t>* clock_;
  const std::function<void(int, std::uint64_t)>* hook_ = nullptr;
  std::uint64_t ops_ = 0;
  std::uint64_t calls_ = 0;
};

}  // namespace stamped::atomicmem
