// T4 — Algorithm 4 internals: phases and invalidation writes (Section 6.3).
//
// Paper claims reproduced here:
//   Lemma 6.5 / Claim 6.13: an execution with M getTS calls has Phi < 2*sqrt(M)
//   phases and at most 2M invalidation writes; only registers R[1..f] are
//   written in phase f (Claim 6.8).
//
// Ablation (DESIGN.md #1): the "always overwrite invalid registers" repair
// is correct but performs more writes; the table quantifies the write and
// space inflation that the paper's line-10 guard avoids.
#include "bench_common.hpp"

#include "core/growing_oneshot.hpp"
#include "util/bounds.hpp"
#include "util/table.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace stamped;

struct RunOutcome {
  int phases = 0;
  std::int64_t invalidations = 0;
  std::int64_t writes = 0;
  int regs_written = 0;
  bool bounds_ok = true;
};

enum class Workload { kSequential, kStagger4, kStallers, kRandom };

RunOutcome measure(int n, std::uint64_t seed, core::SqrtVariant variant,
                   Workload workload = Workload::kSequential) {
  core::SqrtStats stats;
  // Use the generous growing pool so the ablated variant cannot trip the
  // space assertion; the paper variant never needs the extra room.
  auto sys = core::make_sqrt_oneshot_system(
      n, nullptr, &stats, core::growing_pool_registers(n), variant);
  util::Rng rng(seed);
  switch (workload) {
    case Workload::kSequential:
      bench::run_staggered(*sys, 1, rng);
      break;
    case Workload::kStagger4:
      bench::run_staggered(*sys, 4, rng);
      break;
    case Workload::kStallers:
      bench::run_with_stallers(*sys, rng);
      break;
    case Workload::kRandom:
      runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
      break;
  }
  runtime::check_no_failures(*sys);
  auto analysis = verify::analyze_phases(*sys, stats, n);
  RunOutcome out;
  out.phases = analysis.phases_started;
  out.invalidations = analysis.invalidation_writes;
  out.writes = analysis.total_writes;
  out.regs_written = sys->registers_written();
  out.bounds_ok = variant == core::SqrtVariant::kPaper
                      ? analysis.bounds_ok()
                      : true;  // the ablation intentionally exceeds nothing we assert
  return out;
}

void print_phase_table() {
  util::Table table(
      "T4a: phases & invalidation writes vs M (max over workloads: "
      "sequential, groups-of-4, stallers, random; 5 seeds each)",
      {"M", "Phi", "bound 2*sqrt(M)", "invalidations", "bound 2M", "writes",
       "regs_written", "alloc 2*ceil(sqrt M)", "ok"});
  for (int m_calls : {4, 16, 64, 256, 1024}) {
    RunOutcome worst;
    bool ok = true;
    for (Workload w : {Workload::kSequential, Workload::kStagger4,
                       Workload::kStallers, Workload::kRandom}) {
      for (std::uint64_t seed : bench::standard_seeds()) {
        auto out = measure(m_calls, seed, core::SqrtVariant::kPaper, w);
        worst.phases = std::max(worst.phases, out.phases);
        worst.invalidations = std::max(worst.invalidations, out.invalidations);
        worst.writes = std::max(worst.writes, out.writes);
        worst.regs_written = std::max(worst.regs_written, out.regs_written);
        ok = ok && out.bounds_ok;
      }
    }
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(m_calls)),
         util::Table::fmt(static_cast<std::int64_t>(worst.phases)),
         util::Table::fmt(util::bounds::phase_bound(m_calls)),
         util::Table::fmt(worst.invalidations),
         util::Table::fmt(util::bounds::invalidation_bound(m_calls)),
         util::Table::fmt(worst.writes),
         util::Table::fmt(static_cast<std::int64_t>(worst.regs_written)),
         util::Table::fmt(util::bounds::oneshot_upper_sqrt(m_calls)),
         ok ? "yes" : "NO"});
  }
  bench::emit(table);
}

void print_ablation_table() {
  util::Table table(
      "T4b: ablation — paper's guarded overwrite (line 10) vs always "
      "overwrite (groups-of-4 arrival, max over 5 seeds)",
      {"M", "writes_paper", "writes_always", "regs_paper", "regs_always"});
  for (int m_calls : {16, 64, 256, 1024}) {
    std::int64_t wp = 0, wa = 0;
    int rp = 0, ra = 0;
    for (std::uint64_t seed : bench::standard_seeds()) {
      auto paper = measure(m_calls, seed, core::SqrtVariant::kPaper,
                           Workload::kStagger4);
      auto always = measure(m_calls, seed, core::SqrtVariant::kAlwaysOverwrite,
                            Workload::kStagger4);
      wp = std::max(wp, paper.writes);
      wa = std::max(wa, always.writes);
      rp = std::max(rp, paper.regs_written);
      ra = std::max(ra, always.regs_written);
    }
    table.add_row({util::Table::fmt(static_cast<std::int64_t>(m_calls)),
                   util::Table::fmt(wp), util::Table::fmt(wa),
                   util::Table::fmt(static_cast<std::int64_t>(rp)),
                   util::Table::fmt(static_cast<std::int64_t>(ra))});
  }
  bench::emit(table);
}

void BM_PhaseAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto out = measure(n, 1, core::SqrtVariant::kPaper);
    benchmark::DoNotOptimize(out.phases);
  }
}
BENCHMARK(BM_PhaseAnalysis)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_phase_table();
  print_ablation_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
