// Shared helpers for the table/figure benchmarks (see DESIGN.md §4 and
// EXPERIMENTS.md). Each bench binary prints its paper-style table(s) first,
// then runs its google-benchmark timing section.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/harness.hpp"
#include "core/simple_oneshot.hpp"
#include "core/sqrt_oneshot.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace stamped::bench {

/// Distinct registers written by a full random-schedule run of the system
/// built by `factory`, maximized over `seeds`.
inline int max_registers_written_random(const runtime::SystemFactory& factory,
                                        const std::vector<std::uint64_t>& seeds) {
  int worst = 0;
  for (std::uint64_t seed : seeds) {
    auto sys = factory();
    util::Rng rng(seed);
    runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
    runtime::check_no_failures(*sys);
    worst = std::max(worst, sys->registers_written());
  }
  return worst;
}

/// Distinct registers written by a fully sequential run (process 0 completes,
/// then process 1, ...).
inline int registers_written_sequential(const runtime::SystemFactory& factory) {
  auto sys = factory();
  for (int p = 0; p < sys->num_processes(); ++p) {
    runtime::run_solo_until_calls_complete(*sys, p, 1, std::uint64_t{1} << 32);
  }
  runtime::check_no_failures(*sys);
  return sys->registers_written();
}

/// Standard seed set used across space benchmarks.
inline std::vector<std::uint64_t> standard_seeds() {
  return {101, 202, 303, 404, 505};
}

/// Staggered arrival: processes arrive in groups of `group`; each group runs
/// to completion under a random schedule before the next group starts. This
/// is the workload that actually drives Algorithm 4 through many phases —
/// under a fully random schedule almost every call lands in phase 1 (it
/// observes the phase-1 record and returns without writing), while fully
/// sequential arrival maximizes the phase count.
///
/// Delegates to api::staggered() so there is exactly ONE implementation of
/// this schedule: t4 (via this shim) and t2 (via the generic driver) consume
/// the same RNG sequence, keeping their baseline tables comparable.
inline void run_staggered(runtime::ISystem& sys, int group, util::Rng& rng) {
  api::staggered(group).drive(sys, rng, std::uint64_t{1} << 32);
}

/// Staller workload: the first half of the processes run up to (but not
/// including) their first write and stall there; the second half runs to
/// completion; then the stalled writers are released. Exercises Algorithm
/// 4's stale-write paths (lines 10-12).
inline void run_with_stallers(runtime::ISystem& sys, util::Rng& rng) {
  const int n = sys.num_processes();
  const std::unordered_set<int> nothing;
  for (int p = 0; p < n / 2; ++p) {
    runtime::run_solo_until_poised_outside(sys, p, nothing,
                                           std::uint64_t{1} << 24);
  }
  std::vector<int> live;
  auto drain = [&](int lo, int hi) {
    for (;;) {
      live.clear();
      for (int p = lo; p < hi; ++p) {
        if (!sys.finished(p)) live.push_back(p);
      }
      if (live.empty()) break;
      sys.step(live[static_cast<std::size_t>(rng.next_below(live.size()))]);
    }
  };
  drain(n / 2, n);
  drain(0, n / 2);
}

/// Slug for a table title: "T2a: one-shot space" -> "T2a_one_shot_space".
inline std::string title_slug(const std::string& title) {
  std::string slug;
  for (char ch : title) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      slug.push_back(ch);
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// True when the benchmark was invoked with --table-only: print the paper
/// tables (and write their BENCH_*.json twins) but skip the Google Benchmark
/// timing section. CI uses this to regenerate the deterministic space tables
/// cheaply and diff them against bench/baselines/ (tools/bench_diff.py).
inline bool table_only(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--table-only") return true;
  }
  return false;
}

/// Prints the table, flushes (bench output is consumed by tee), and writes
/// the machine-readable BENCH_<slug>.json twin into the working directory.
inline void emit(const util::Table& table) {
  std::cout << table.render() << std::endl;
  const std::string path = "BENCH_" + title_slug(table.title()) + ".json";
  std::ofstream json(path);
  json << table.render_json() << '\n';
  json.flush();
  if (!json) {
    std::cerr << "warning: could not write " << path << '\n';
  }
}

}  // namespace stamped::bench
