// T3 — The headline result: the space gap between long-lived and one-shot
// timestamp objects.
//
// Long-lived needs Theta(n) registers (Theorem 1.1 tight against the cited
// n-1 algorithm); one-shot needs only Theta(sqrt(n)) (Theorems 1.2 + 1.3).
// The gap ratio therefore grows as Theta(sqrt(n)).
#include "bench_common.hpp"

#include "core/maxscan_longlived.hpp"
#include "util/bounds.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

void print_table() {
  util::Table table(
      "T3: long-lived vs one-shot space gap (ratio ~ sqrt(n)/2)",
      {"n", "longlived_lower", "longlived_used", "oneshot_lower",
       "oneshot_used", "gap_ratio", "sqrt(n)/2"});
  for (int n : {16, 64, 256, 1024, 4096}) {
    const std::int64_t ll_used = util::bounds::longlived_upper_maxscan(n);
    const std::int64_t os_used = util::bounds::oneshot_upper_sqrt(n);
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(n)),
         util::Table::fmt(util::bounds::longlived_lower(n)),
         util::Table::fmt(ll_used),
         util::Table::fmt(util::bounds::oneshot_lower(n)),
         util::Table::fmt(os_used),
         util::Table::fmt(static_cast<double>(ll_used) /
                          static_cast<double>(os_used)),
         util::Table::fmt(std::sqrt(static_cast<double>(n)) / 2.0)});
  }
  bench::emit(table);
}

void print_measured_table() {
  // Same gap with *measured* register usage from simulator runs.
  util::Table table(
      "T3b: measured gap (registers actually written, worst workload)",
      {"n", "longlived_written", "oneshot_written", "ratio"});
  for (int n : {16, 64, 128, 256}) {
    auto ll = core::make_maxscan_system(n, 1, nullptr);
    util::Rng rng(static_cast<std::uint64_t>(n) + 7);
    runtime::run_random(*ll, rng, std::uint64_t{1} << 32);
    const int ll_written = ll->registers_written();
    // Sequential arrival is Algorithm 4's space worst case (random
    // interleavings collapse almost all calls into phase 1).
    const int os_written =
        bench::registers_written_sequential(core::sqrt_oneshot_factory(n));
    table.add_row({util::Table::fmt(static_cast<std::int64_t>(n)),
                   util::Table::fmt(static_cast<std::int64_t>(ll_written)),
                   util::Table::fmt(static_cast<std::int64_t>(os_written)),
                   util::Table::fmt(static_cast<double>(ll_written) /
                                    static_cast<double>(os_written))});
  }
  bench::emit(table);
}

void BM_GapMeasurement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const int os = bench::max_registers_written_random(
        core::sqrt_oneshot_factory(n), {1});
    benchmark::DoNotOptimize(os);
  }
}
BENCHMARK(BM_GapMeasurement)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_measured_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
