// T7 — Bounded vs unbounded timestamp space (Haldar–Vitányi-style bounded
// object vs the paper's max-scan and Algorithm 4).
//
// The source paper's objects all need unboundedly wide registers (integers
// that grow forever, id-sequences). The bounded object trades register
// *width* for a conditional guarantee: n registers of
// ceil(log2 K) + ceil(log2 (K+1)) bits, where K = 2C+1 covers executions of
// C calls per process (core/bounded_longlived.hpp).
//
// Expected shape:
//   T7a — register *count* matches max-scan (n for both; the bounded object
//         writes all n), but total bits grow as n*log(C) instead of 64n.
//   T7b — against Algorithm 4 (M = n*C calls): Algorithm 4 wins on register
//         count (2*sqrt(M) << n for large n) but its registers hold
//         unbounded id-sequences; the bounded object wins on width.
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include "core/bounded_longlived.hpp"
#include "core/maxscan_longlived.hpp"
#include "util/bounds.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

constexpr int kCallsPerProcess = 4;

void print_bits_table() {
  const api::TimestampFamily& bounded = api::family("bounded");
  const int calls = kCallsPerProcess;
  const std::int32_t k = core::bounded_modulus_for(calls);
  // The wraps column runs the same workload with K = 3 < 2C+1: components
  // exhaust the label pool and recycle (the windowed-guarantee regime).
  const std::int32_t k_small = 3;
  util::Table table(
      "T7a: bounded vs max-scan long-lived space (C=" +
          std::to_string(calls) + " calls/process, K=2C+1=" +
          std::to_string(k) + ")",
      {"n", "maxscan_regs", "maxscan_bits_total", "bounded_regs", "K",
       "bounded_bits_reg", "bounded_bits_total", "bounded_written",
       "wraps_K3"});
  for (int n : {4, 8, 16, 32, 64, 128}) {
    api::ScenarioSpec spec;
    spec.n = n;
    spec.calls_per_process = calls;
    spec.universe_bound = k;
    const int written = bench::worst_registers_written(
        bounded, spec, api::seeded_random(), bench::standard_seeds());

    api::ScenarioSpec recycled = spec;
    recycled.universe_bound = k_small;
    const std::int64_t wraps =
        bench::worst_metric(bounded, recycled, api::seeded_random(),
                            bench::standard_seeds(), "wraps");
    const int bits_reg = core::bounded_bits_per_register(k);
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(n)),
         util::Table::fmt(util::bounds::longlived_upper_maxscan(n)),
         util::Table::fmt(static_cast<std::int64_t>(64) * n),
         util::Table::fmt(static_cast<std::int64_t>(n)),
         util::Table::fmt(static_cast<std::int64_t>(k)),
         util::Table::fmt(static_cast<std::int64_t>(bits_reg)),
         util::Table::fmt(static_cast<std::int64_t>(bits_reg) * n),
         util::Table::fmt(static_cast<std::int64_t>(written)),
         util::Table::fmt(static_cast<std::int64_t>(wraps))});
  }
  bench::emit(table);
}

void print_vs_sqrt_table() {
  const api::TimestampFamily& alg4 = api::family("sqrt-oneshot");
  const api::TimestampFamily& bounded = api::family("bounded");
  const int calls = kCallsPerProcess;
  const std::int32_t k = core::bounded_modulus_for(calls);
  util::Table table(
      "T7b: bounded (n regs, narrow) vs Algorithm 4 (2*ceil(sqrt M) regs, "
      "unbounded width), M = n*C",
      {"n", "M", "alg4_alloc", "alg4_written_rand", "bounded_regs",
       "bounded_written", "bounded_bits_reg"});
  for (int n : {4, 8, 16, 32, 64, 128}) {
    const std::int64_t m_calls = static_cast<std::int64_t>(n) * calls;
    api::ScenarioSpec spec;
    spec.n = n;
    spec.calls_per_process = calls;
    const int alg4_written = bench::worst_registers_written(
        alg4, spec, api::seeded_random(), bench::standard_seeds());
    api::ScenarioSpec bounded_spec = spec;
    bounded_spec.universe_bound = k;
    const int bounded_written = bench::worst_registers_written(
        bounded, bounded_spec, api::seeded_random(), bench::standard_seeds());
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(n)),
         util::Table::fmt(m_calls),
         util::Table::fmt(util::bounds::oneshot_upper_sqrt(m_calls)),
         util::Table::fmt(static_cast<std::int64_t>(alg4_written)),
         util::Table::fmt(static_cast<std::int64_t>(n)),
         util::Table::fmt(static_cast<std::int64_t>(bounded_written)),
         util::Table::fmt(
             static_cast<std::int64_t>(core::bounded_bits_per_register(k)))});
  }
  bench::emit(table);
}

void BM_BoundedGetTsSim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Huge call budget so the system never finishes during timing; modulus
  // fixed small (K = 9) — the hot path cost is the double-collect scan.
  auto sys = core::make_bounded_system(n, 1 << 20, 9, nullptr);
  int p = 0;
  for (auto _ : state) {
    runtime::run_solo_until_calls_complete(*sys, p, 1, 1 << 20);
    p = (p + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedGetTsSim)->Arg(8)->Arg(64)->Arg(256);

void BM_BoundedFullRunRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sys = core::make_bounded_system(n, kCallsPerProcess, 0, nullptr);
    util::Rng rng(1);
    runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
    benchmark::DoNotOptimize(sys->registers_written());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoundedFullRunRandom)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_bits_table();
  print_vs_sqrt_table();
  if (stamped::bench::table_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
