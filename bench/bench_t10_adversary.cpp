// T10 — Adversarial scenario engine: crash-sweep survival and coverage-guided
// fuzzing vs seeded-random, with blessed baselines so the adversary work is
// tracked, not anecdotal.
//
//   T10a — crash/restart sweep across every registry family: a fixed crash
//          plan under a fixed seed, reporting crash events fired, restarts,
//          processes left down, and the wait-freedom verdict. Everything is
//          deterministic (the crash driver draws from the one seeded rng) and
//          exact-diffed. The GATE: survivors finished and zero checker
//          violations on every row — a crash adversary that strands a
//          survivor or breaks the timestamp property fails --table-only.
//   T10b — coverage-guided fuzzer vs seeded-random at EQUAL execution
//          budget: distinct op-pair interleaving signatures reached on the
//          reference models. Both columns are deterministic and
//          exact-diffed. The GATE: the fuzzer reaches strictly more
//          signatures than random on the reference row (the last row) — the
//          claim that guidance buys breadth, enforced per commit.
//
// Baselines live in bench/baselines/t10/ and are diffed by the release-perf
// and fuzz-smoke CI jobs:
//   bench_t10_adversary --table-only
//   tools/bench_diff.py --baseline-dir bench/baselines/t10 --measured-dir .
#include "bench_common.hpp"

#include <cstdint>
#include <string>

#include "api/registry.hpp"
#include "util/table.hpp"
#include "verify/coverage.hpp"

namespace {

using namespace stamped;

// ---- T10a ------------------------------------------------------------------

/// Prints T10a; returns true when every family survived its crash sweep with
/// a clean checker verdict.
bool print_t10a() {
  util::Table table(
      "T10a: crash/restart sweep (crashes=3, restart for long-lived, seed=71)",
      {"family", "n", "calls", "crashes", "restarts", "down", "calls_done",
       "survived", "violations"});
  bool all_survived = true;
  const api::Harness harness;
  for (const auto& fam : api::registry()) {
    api::ScenarioSpec spec;
    spec.n = 8;
    spec.calls_per_process = fam.max_calls_per_process == 0 ? 3 : 1;
    spec.seed = 71;
    runtime::CrashPlan plan;
    plan.crashes = 3;
    plan.restart = fam.lifetime == api::Lifetime::kLongLived;
    if (plan.restart && fam.name == "bounded") {
      // Restart re-runs the victim's whole program, so a process can perform
      // up to (crashes+1)*calls_per_process calls — more than the auto
      // modulus K = 2*calls+1 was sized for. Size the universe for the
      // inflated count to keep the UNCONDITIONAL obligation in force (see
      // docs/runtime.md, adversary semantics).
      spec.universe_bound =
          2 * (plan.crashes + 1) * spec.calls_per_process + 1;
    }
    const auto report =
        harness.run_scenario(fam, spec, api::crash_restart(plan));
    const bool survived = report.survivors_finished && report.ok();
    all_survived = all_survived && survived;
    table.add_row(
        {fam.name, util::Table::fmt(static_cast<std::int64_t>(spec.n)),
         util::Table::fmt(static_cast<std::int64_t>(spec.calls_per_process)),
         util::Table::fmt(static_cast<std::int64_t>(report.crashes)),
         util::Table::fmt(static_cast<std::int64_t>(report.restarts)),
         util::Table::fmt(static_cast<std::int64_t>(report.crashed_down)),
         util::Table::fmt(static_cast<std::int64_t>(report.calls)),
         survived ? "yes" : "NO",
         util::Table::fmt(static_cast<std::int64_t>(report.violations.size()))});
  }
  bench::emit(table);
  return all_survived;
}

// ---- T10b ------------------------------------------------------------------

struct FuzzModel {
  const char* family;
  int n;
  int calls;
  std::uint64_t budget;

  [[nodiscard]] std::string label() const {
    return std::string(family) + " n=" + std::to_string(n) +
           " c=" + std::to_string(calls);
  }
};

/// Signatures reached by `budget` independent seeded-random executions — the
/// unguided baseline the fuzzer must beat. Draws from one rng stream, like
/// the fuzzer's random tails, so the comparison is stream-for-stream fair.
std::uint64_t random_signatures(const api::TimestampFamily& fam,
                                const api::ScenarioSpec& spec,
                                std::uint64_t budget) {
  verify::CoverageMap cov;
  util::Rng rng(spec.seed);
  for (std::uint64_t e = 0; e < budget; ++e) {
    auto inst = fam.make(spec);
    runtime::run_random(inst->system(), rng, std::uint64_t{1} << 32);
    runtime::check_no_failures(inst->system());
    cov.add_execution(inst->system().step_infos());
  }
  return cov.size();
}

// The last row is the reference for the strictly-greater gate: the largest
// signature space, where guidance has the most room to matter.
constexpr FuzzModel kT10bModels[] = {
    {"maxscan", 4, 2, 32},
    {"bounded", 4, 3, 32},
    {"sqrt-oneshot", 12, 1, 8},
    {"sqrt-oneshot", 16, 1, 12},
};

/// Prints T10b; returns whether the fuzzer reached strictly more signatures
/// than random on the reference (last) row.
bool print_t10b() {
  util::Table table(
      "T10b: coverage-guided fuzzer vs seeded-random signatures at equal "
      "budget",
      {"model", "budget", "fuzzer_sigs", "random_sigs", "advantage_pct"});
  bool reference_strictly_greater = false;
  const api::Harness harness;
  for (const FuzzModel& m : kT10bModels) {
    const auto& fam = api::family(m.family);
    api::ScenarioSpec spec;
    spec.n = m.n;
    spec.calls_per_process = m.calls;
    spec.seed = 71;
    // Checkers off: T10b measures coverage breadth; the conformance suite
    // owns the verdicts.
    const auto report = harness.run_scenario(
        fam, spec, api::coverage_fuzzer(/*seed=*/9, m.budget),
        api::Checkers::none());
    const std::uint64_t random_sigs = random_signatures(fam, spec, m.budget);
    reference_strictly_greater =
        report.coverage_signatures > random_sigs;  // last row = reference
    const double advantage =
        random_sigs > 0
            ? 100.0 *
                  (static_cast<double>(report.coverage_signatures) -
                   static_cast<double>(random_sigs)) /
                  static_cast<double>(random_sigs)
            : 0.0;
    table.add_row(
        {m.label(), util::Table::fmt(static_cast<std::int64_t>(m.budget)),
         util::Table::fmt(
             static_cast<std::int64_t>(report.coverage_signatures)),
         util::Table::fmt(static_cast<std::int64_t>(random_sigs)),
         util::Table::fmt(advantage, 1)});
  }
  bench::emit(table);
  return reference_strictly_greater;
}

// ---- timing section --------------------------------------------------------

void BM_CrashRestartSweep(benchmark::State& state) {
  const auto& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = 3;
  spec.seed = 71;
  runtime::CrashPlan plan;
  plan.crashes = 3;
  plan.restart = true;
  const api::Harness harness;
  for (auto _ : state) {
    const auto report =
        harness.run_scenario(fam, spec, api::crash_restart(plan));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(report.calls));
  }
}
BENCHMARK(BM_CrashRestartSweep)->Unit(benchmark::kMicrosecond);

void BM_CoverageFuzzerBudget32(benchmark::State& state) {
  const auto& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 3;
  spec.calls_per_process = 2;
  spec.seed = 71;
  const api::Harness harness;
  for (auto _ : state) {
    const auto report = harness.run_scenario(
        fam, spec, api::coverage_fuzzer(9, 32), api::Checkers::none());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(report.executions));
  }
}
BENCHMARK(BM_CoverageFuzzerBudget32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool survived = print_t10a();
  const bool fuzzer_ahead = print_t10b();
  std::cout << "T10 survival gate: every family survived its crash sweep "
            << "with a clean verdict: " << (survived ? "PASS" : "FAIL")
            << "\n";
  std::cout << "T10 coverage gate: fuzzer strictly ahead of seeded-random on "
            << "the reference model ("
            << kT10bModels[std::size(kT10bModels) - 1].label()
            << "): " << (fuzzer_ahead ? "PASS" : "FAIL") << "\n\n";

  // Both tables are fully deterministic, so the baseline diff is exact; this
  // exit code is what stands between an adversary regression and a green
  // build in --table-only (CI) mode.
  if (stamped::bench::table_only(argc, argv)) {
    return (survived && fuzzer_ahead) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
