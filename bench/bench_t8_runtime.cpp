// T8 — Runtime hot-path benchmark: recording modes, version-clock scans and
// the POR explorer, with a blessed baseline so perf work is tracked, not
// anecdotal.
//
// The ROADMAP's perf item says the max-scan hot path is collect-dominated
// and that the seed did no optimization work. This bench pins the three
// optimizations of the hot-path refactor to numbers:
//
//   T8a — RecordingMode::kCountsOnly vs kFull on the T5 workload (max-scan,
//         8 processes x 2000 getTS calls, round-robin): per-step string
//         building, trace retention and observer dispatch are the dominant
//         cost of the kFull simulator loop; the counts-only mode must run
//         >= 5x more steps/sec. The step/call/byte counters are
//         deterministic and exact-diffed; the throughput columns carry a CI
//         tolerance (timing noise is not a regression).
//   T8b — sleep-set POR vs full DFS on the n=2 conformance model checks:
//         node and execution counts of both trees (deterministic, exact).
//         The POR tree must visit strictly fewer nodes; the conformance
//         suite separately proves it reports the identical violation set.
//
// The Google Benchmark timing section measures the same three hot paths in
// isolation, including the version-clock scan against the value-comparing
// scan on wide TsRecord registers (the O(n*K) vs O(n) comparison gap).
//
// Baselines live in bench/baselines/t8/ (NOT bench/baselines/: the main
// baseline dir is diffed by a CI step that does not run this bench). CI
// regenerates them in a Release build via:
//   bench_t8_runtime --table-only
//   tools/bench_diff.py --baseline-dir bench/baselines/t8 --measured-dir .
//       --tolerance Msteps_per_s=1e18 --tolerance speedup=1e18
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include <chrono>
#include <memory>
#include <optional>

#include "atomicmem/atomic_memory.hpp"
#include "core/maxscan_longlived.hpp"
#include "core/timestamp.hpp"
#include "snapshot/double_collect.hpp"
#include "snapshot/versioned_collect.hpp"
#include "util/table.hpp"
#include "verify/explorer.hpp"

namespace {

using namespace stamped;

constexpr int kT5Procs = 8;
constexpr int kT5Calls = 2000;

std::unique_ptr<runtime::System<std::int64_t>> t5_system(
    runtime::RecordingMode mode) {
  auto sys = core::make_maxscan_system(kT5Procs, kT5Calls, nullptr);
  sys->set_recording_mode(mode);
  return sys;
}

struct ModeRun {
  std::uint64_t steps = 0;
  std::uint64_t calls = 0;
  std::uint64_t trace_entries = 0;
  std::uint64_t view_bytes = 0;
  double steps_per_sec = 0.0;
};

ModeRun run_mode(runtime::RecordingMode mode, int reps) {
  using Clock = std::chrono::steady_clock;
  ModeRun out;
  for (int r = 0; r < reps; ++r) {
    auto sys = t5_system(mode);
    const auto start = Clock::now();
    runtime::run_round_robin(*sys, std::uint64_t{1} << 32);
    const double secs = std::chrono::duration_cast<
                            std::chrono::duration<double>>(Clock::now() -
                                                           start)
                            .count();
    out.steps = sys->steps_taken();
    out.calls = sys->calls_completed_total();
    out.trace_entries = sys->trace().size();
    out.view_bytes = 0;
    for (int p = 0; p < sys->num_processes(); ++p) {
      out.view_bytes += sys->process_view(p).size();
    }
    if (secs > 0) {
      out.steps_per_sec = std::max(
          out.steps_per_sec, static_cast<double>(out.steps) / secs);
    }
  }
  return out;
}

double print_t8a() {
  const ModeRun full = run_mode(runtime::RecordingMode::kFull, 3);
  const ModeRun counts = run_mode(runtime::RecordingMode::kCountsOnly, 3);
  util::Table table(
      "T8a: recording modes, max-scan 8x2000 calls round-robin (T5 workload)",
      {"mode", "steps", "calls", "trace_entries", "view_bytes", "Msteps_per_s",
       "speedup"});
  const auto row = [](const char* name, const ModeRun& m, double speedup) {
    return std::vector<std::string>{
        name,
        util::Table::fmt(static_cast<std::int64_t>(m.steps)),
        util::Table::fmt(static_cast<std::int64_t>(m.calls)),
        util::Table::fmt(static_cast<std::int64_t>(m.trace_entries)),
        util::Table::fmt(static_cast<std::int64_t>(m.view_bytes)),
        util::Table::fmt(m.steps_per_sec / 1e6, 1),
        util::Table::fmt(speedup, 2)};
  };
  const double speedup =
      full.steps_per_sec > 0 ? counts.steps_per_sec / full.steps_per_sec : 0;
  table.add_row(row("kFull", full, 1.0));
  table.add_row(row("kCountsOnly", counts, speedup));
  bench::emit(table);
  return speedup;
}

void print_t8b() {
  struct Model {
    const char* family;
    int n;
    int calls;
  };
  constexpr Model kModels[] = {
      {"maxscan", 2, 1},        {"maxscan", 2, 2}, {"simple-oneshot", 2, 1},
      {"simple-oneshot", 3, 1}, {"bounded", 2, 1}, {"sqrt-oneshot", 2, 1},
  };
  util::Table table("T8b: POR explorer vs full DFS (small model checks)",
                    {"model", "full_nodes", "full_execs", "por_nodes",
                     "por_execs", "pruned", "nodes_saved_pct"});
  for (const Model& m : kModels) {
    api::ScenarioSpec spec;
    spec.n = m.n;
    spec.calls_per_process = m.calls;
    const runtime::SystemFactory sys_factory =
        api::family(m.family).factory(spec);
    const verify::InstanceFactory factory = [&sys_factory]() {
      verify::ExplorationInstance inst;
      inst.sys = sys_factory();
      inst.check = []() -> std::optional<std::string> { return std::nullopt; };
      return inst;
    };
    verify::ExploreOptions opts;
    const auto full = verify::explore_all_executions(factory, opts);
    opts.por = true;
    const auto reduced = verify::explore_all_executions(factory, opts);
    const double saved =
        full.nodes > 0
            ? 100.0 * static_cast<double>(full.nodes - reduced.nodes) /
                  static_cast<double>(full.nodes)
            : 0.0;
    table.add_row({std::string(m.family) + " n=" + std::to_string(m.n) +
                       " c=" + std::to_string(m.calls),
                   util::Table::fmt(static_cast<std::int64_t>(full.nodes)),
                   util::Table::fmt(static_cast<std::int64_t>(full.executions)),
                   util::Table::fmt(static_cast<std::int64_t>(reduced.nodes)),
                   util::Table::fmt(
                       static_cast<std::int64_t>(reduced.executions)),
                   util::Table::fmt(
                       static_cast<std::int64_t>(reduced.sleep_pruned)),
                   util::Table::fmt(saved, 1)});
  }
  bench::emit(table);
}

// ---- timing section --------------------------------------------------------

void BM_SimStepsFull(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = t5_system(runtime::RecordingMode::kFull);
    runtime::run_round_robin(*sys, std::uint64_t{1} << 32);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sys->steps_taken()));
  }
}
BENCHMARK(BM_SimStepsFull)->Unit(benchmark::kMillisecond);

void BM_SimStepsCountsOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = t5_system(runtime::RecordingMode::kCountsOnly);
    runtime::run_round_robin(*sys, std::uint64_t{1} << 32);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sys->steps_taken()));
  }
}
BENCHMARK(BM_SimStepsCountsOnly)->Unit(benchmark::kMillisecond);

// Scan cost on wide registers: m registers each holding a TsRecord whose
// id-sequence is m long (the Algorithm 4 worst case near the last phase).
// The value scan compares O(m) sequences of length O(m) per double collect;
// the version scan compares m integers. DirectCtx completes synchronously,
// so one resumed ProcessTask is one scan.
constexpr int kScanRegs = 32;

atomicmem::AtomicMemory<core::TsRecord>& scan_memory() {
  static auto* mem = [] {
    auto* m = new atomicmem::AtomicMemory<core::TsRecord>(
        kScanRegs, core::TsRecord::bottom());
    std::vector<core::TsId> seq;
    for (int r = 0; r < kScanRegs; ++r) {
      seq.push_back(core::TsId{r % 4, r});
      m->write(r, core::TsRecord::make(seq, r + 1));
    }
    return m;
  }();
  return *mem;
}

runtime::ProcessTask value_scan_program(
    atomicmem::DirectCtx<core::TsRecord>& ctx, std::uint64_t* collects) {
  auto scan = co_await snapshot::double_collect_scan(ctx, kScanRegs);
  *collects += scan.collects;
}

runtime::ProcessTask versioned_scan_program(
    atomicmem::DirectCtx<core::TsRecord>& ctx, std::uint64_t* collects) {
  auto scan = co_await snapshot::versioned_double_collect_scan(ctx, kScanRegs);
  *collects += scan.collects;
}

template <class Program>
void run_scan_bench(benchmark::State& state, Program program) {
  auto& mem = scan_memory();
  std::atomic<std::uint64_t> clock{0};
  atomicmem::DirectCtx<core::TsRecord> ctx(&mem, 0, &clock);
  std::uint64_t collects = 0;
  for (auto _ : state) {
    runtime::ProcessTask task = program(ctx, &collects);
    task.handle().resume();
    STAMPED_ASSERT(task.done());
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(collects);
}

void BM_ValueScan(benchmark::State& state) {
  run_scan_bench(state, [](auto& ctx, std::uint64_t* c) {
    return value_scan_program(ctx, c);
  });
}
BENCHMARK(BM_ValueScan);

void BM_VersionedScan(benchmark::State& state) {
  run_scan_bench(state, [](auto& ctx, std::uint64_t* c) {
    return versioned_scan_program(ctx, c);
  });
}
BENCHMARK(BM_VersionedScan);

void explorer_bench(benchmark::State& state, bool por) {
  api::ScenarioSpec spec;
  spec.n = 3;
  const runtime::SystemFactory sys_factory =
      api::family("simple-oneshot").factory(spec);
  const verify::InstanceFactory factory = [&sys_factory]() {
    verify::ExplorationInstance inst;
    inst.sys = sys_factory();
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };
  verify::ExploreOptions opts;
  opts.por = por;
  for (auto _ : state) {
    const auto result = verify::explore_all_executions(factory, opts);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.executions));
  }
}

void BM_ExplorerFullDfs(benchmark::State& state) {
  explorer_bench(state, false);
}
BENCHMARK(BM_ExplorerFullDfs)->Unit(benchmark::kMillisecond);

void BM_ExplorerPor(benchmark::State& state) { explorer_bench(state, true); }
BENCHMARK(BM_ExplorerPor)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const double speedup = print_t8a();
  print_t8b();
  std::cout << "T8 speedup check: kCountsOnly is " << util::Table::fmt(speedup, 2)
            << "x kFull steps/sec — target >= 5x: "
            << (speedup >= 5.0 ? "PASS" : "MISSED")
            << ", CI hard floor >= 4x: " << (speedup >= 4.0 ? "PASS" : "FAIL")
            << "\n\n";
  // In table-only (CI) mode the speedup is a real gate: the baseline diff
  // deliberately puts huge tolerances on the throughput columns (timing
  // noise must not fail a counter diff), so this exit code is the only thing
  // standing between a recording-mode perf regression and a green build.
  // The hard floor sits at 4x, below the 5x target, so a co-tenant CPU burst
  // on a shared CI runner (measured locally at ~6.2x) cannot flake the
  // build, while a genuine regression toward parity still fails it.
  if (stamped::bench::table_only(argc, argv)) return speedup >= 4.0 ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
