// T1 — Long-lived timestamp space (Theorem 1.1 + the Theta(n) upper bound).
//
// Paper claims reproduced here:
//   lower bound:  n/6 - 1 registers (Theorem 1.1)
//   upper bound:  n - 1 (Ellen-Fatourou-Ruppert, cited) / n (our max-scan)
//   construction: a (3, floor(n/2))-configuration covering >= floor(n/6)
//                 registers is reachable (Section 3)
//
// Expected shape: all columns grow linearly in n; the measured covered count
// sits between the lower-bound line and the register allocation.
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include "adversary/longlived_builder.hpp"
#include "core/maxscan_longlived.hpp"
#include "util/bounds.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

void print_table() {
  const api::TimestampFamily& maxscan = api::family("maxscan");
  util::Table table(
      "T1: long-lived space vs n (lower n/6-1 | EFR n-1 | max-scan used | "
      "(3,k)-covered)",
      {"n", "lower(n/6-1)", "EFR(n-1)", "maxscan_regs", "regs_written",
       "covered_3k", "k=floor(n/2)"});
  for (int n : {6, 12, 24, 48, 96, 192, 384, 768}) {
    // Measured registers written by a full run (every process, 2 calls each).
    api::ScenarioSpec spec;
    spec.n = n;
    spec.calls_per_process = 2;
    spec.seed = static_cast<std::uint64_t>(n);
    const int written =
        bench::registers_written(maxscan, spec, api::seeded_random());

    // The Section 3 construction (covered registers in a (3,k)-config).
    api::ScenarioSpec adv_spec;
    adv_spec.n = n;
    adv_spec.calls_per_process = 8;
    adversary::LongLivedBuilderOptions opts;
    opts.recurrence_rounds = 4;
    auto built = adversary::build_longlived_covering(
        maxscan.factory(adv_spec), n, n / 2, opts);

    table.add_row({util::Table::fmt(static_cast<std::int64_t>(n)),
                   util::Table::fmt(util::bounds::longlived_lower(n)),
                   util::Table::fmt(util::bounds::longlived_upper_efr(n)),
                   util::Table::fmt(
                       util::bounds::longlived_upper_maxscan(n)),
                   util::Table::fmt(static_cast<std::int64_t>(written)),
                   util::Table::fmt(
                       static_cast<std::int64_t>(built.registers_covered)),
                   util::Table::fmt(static_cast<std::int64_t>(n / 2))});
  }
  bench::emit(table);
}

void BM_MaxScanGetTsSim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sys = core::make_maxscan_system(n, 1 << 20, nullptr);
  int p = 0;
  for (auto _ : state) {
    runtime::run_solo_until_calls_complete(*sys, p, 1, 1 << 20);
    p = (p + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxScanGetTsSim)->Arg(8)->Arg(64)->Arg(256);

void BM_LongLivedBuilder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    adversary::LongLivedBuilderOptions opts;
    opts.recurrence_rounds = 4;
    auto result = adversary::build_longlived_covering(
        core::maxscan_factory(n, 8), n, n / 2, opts);
    benchmark::DoNotOptimize(result.registers_covered);
  }
}
BENCHMARK(BM_LongLivedBuilder)->Arg(24)->Arg(96);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  if (stamped::bench::table_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
