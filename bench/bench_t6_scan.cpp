// T6 — The scan substrate (Afek et al.), as used by Algorithm 4's line 13.
//
// Two scans are compared:
//   double-collect (obstruction-free in general; wait-free inside Algorithm 4
//   because writes are bounded — Lemma 6.14)
//   wait-free snapshot scan (helping via embedded views; bounded collects
//   regardless of write rates)
//
// Expected shape: double-collect retries grow with writer contention; the
// wait-free scan's collect count is capped (a writer observed moving twice
// donates its view), at the cost of larger registers.
#include "bench_common.hpp"

#include "snapshot/double_collect.hpp"
#include "snapshot/wait_free_snapshot.hpp"
#include "util/table.hpp"
#include "verify/snapshot_checker.hpp"

namespace {

using namespace stamped;
using snapshot::SnapCell;
using SnapSys = runtime::System<SnapCell>;

struct ScanCost {
  double avg_collects = 0;
  double embedded_fraction = 0;
  std::uint64_t scans = 0;
};

/// Runs the snapshot system with `writers` updating processes plus one
/// scanning process, interleaved randomly; reports scan costs.
ScanCost measure_waitfree(int writers, int rounds, std::uint64_t seed) {
  snapshot::ScanLog log;
  auto sys = snapshot::make_snapshot_system(writers + 1, rounds, &log);
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
  runtime::check_no_failures(*sys);
  auto verdict = verify::check_scans_linearizable(*sys, log.snapshot());
  STAMPED_ASSERT_MSG(!verdict.has_value(), *verdict);
  ScanCost cost;
  const auto scans = log.snapshot();
  cost.scans = scans.size();
  std::uint64_t embedded = 0;
  std::uint64_t total_reads = 0;
  for (const auto& s : scans) {
    embedded += s.used_embedded ? 1 : 0;
    total_reads += s.end_step - s.start_step;
  }
  if (!scans.empty()) {
    cost.embedded_fraction =
        static_cast<double>(embedded) / static_cast<double>(scans.size());
    // Steps inside scan intervals include other processes' steps; an
    // approximate per-scan cost indicator.
    cost.avg_collects = static_cast<double>(total_reads) /
                        static_cast<double>(scans.size()) /
                        static_cast<double>(writers + 1);
  }
  return cost;
}

/// Average collects of Algorithm 4's double-collect scan under contention,
/// measured from SqrtStats.
double measure_double_collect(int n, std::uint64_t seed) {
  core::SqrtStats stats;
  auto sys = core::make_sqrt_oneshot_system(n, nullptr, &stats);
  util::Rng rng(seed);
  runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
  runtime::check_no_failures(*sys);
  const auto scans = stats.scans();
  if (scans.empty()) return 0;
  std::uint64_t total = 0;
  for (const auto& s : scans) total += s.collects;
  return static_cast<double>(total) / static_cast<double>(scans.size());
}

void print_table() {
  util::Table t6a(
      "T6a: Algorithm 4 double-collect scan — avg collects vs contention",
      {"n (callers)", "avg_collects", "min possible"});
  for (int n : {4, 16, 64, 256}) {
    double avg = 0;
    for (std::uint64_t seed : bench::standard_seeds()) {
      avg = std::max(avg, measure_double_collect(n, seed));
    }
    t6a.add_row({util::Table::fmt(static_cast<std::int64_t>(n)),
                 util::Table::fmt(avg), "2"});
  }
  bench::emit(t6a);

  util::Table t6b(
      "T6b: wait-free snapshot scan — cost and helping rate vs writers",
      {"writers", "scans", "rel_interval(steps/proc)", "embedded_frac"});
  for (int writers : {1, 2, 4, 8, 16}) {
    auto cost = measure_waitfree(writers, 4, 99);
    t6b.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(writers)),
         util::Table::fmt(static_cast<std::int64_t>(cost.scans)),
         util::Table::fmt(cost.avg_collects),
         util::Table::fmt(cost.embedded_fraction)});
  }
  bench::emit(t6b);
}

void BM_DoubleCollectSolo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sys = core::make_sqrt_oneshot_system(n, nullptr);
    runtime::run_solo_until_calls_complete(*sys, 0, 1, 1 << 20);
    benchmark::DoNotOptimize(sys->steps_taken());
  }
}
BENCHMARK(BM_DoubleCollectSolo)->Arg(16)->Arg(64);

void BM_WaitFreeSnapshotRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sys = snapshot::make_snapshot_system(n, 1, nullptr);
    util::Rng rng(7);
    runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
    benchmark::DoNotOptimize(sys->steps_taken());
  }
}
BENCHMARK(BM_WaitFreeSnapshotRound)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
