// T12 — Native multicore backend: self-consistency and scaling.
//
// The native backend runs every registry family's coroutine programs on real
// OS threads over AtomicMemory and records the history through the lock-free
// per-thread arenas (src/native/). Two tables:
//
//   T12a (gated, exact): per-family self-consistency of one checked native
//        run — the property checkers pass on the recorded history, the
//        per-thread call counts sum to the scenario's total, and quiesce
//        leaves no retired node behind. Every column is an integer count and
//        must reproduce exactly; the binary also exits non-zero if any row
//        fails, so CI gates on correctness without touching wall clock.
//
//   T12b (informational): getTS calls/sec of each family as the worker pool
//        grows 1 -> 8 threads, beside a simulated round-robin reference
//        column (the T5 comparison the issue asks for). Timing columns are
//        machine-dependent; CI diffs them with an effectively-infinite
//        tolerance — only the table shape is pinned.
//
// Thread rows are fixed at {1, 2, 4, 8} rather than hardware_concurrency so
// the blessed baseline table has the same shape on every machine; requests
// beyond the core count are honored (the OS time-slices).
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include "api/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

/// Per-family workload for the scaling table: long-lived families amortize
/// one instance over many calls; one-shot families run batches of fresh
/// single-use instances (construction and thread spawn included).
struct NativeWorkload {
  const char* family;
  int calls_per_process;
  int batches;  // > 1 only for one-shot families (calls_per_process == 1)
};

constexpr NativeWorkload kScalingWorkloads[] = {
    {"maxscan", 2000, 1},       {"simple-oneshot", 1, 200},
    {"sqrt-oneshot", 1, 200},   {"growing-oneshot", 1, 200},
    {"fetchadd", 20000, 1},     {"bounded", 1000, 1},
};

bool print_t12a() {
  util::Table table(
      "T12a: native backend self-consistency (n=8, 4 threads)",
      {"family", "threads", "calls", "ok", "thread_sum_ok", "retired"});
  bool all_ok = true;
  for (const api::TimestampFamily& fam : api::registry()) {
    api::ScenarioSpec spec;
    spec.n = 8;
    spec.calls_per_process = fam.max_calls_per_process == 1 ? 1 : 8;
    spec.backend = api::Backend::kNative;
    spec.native_threads = 4;
    const auto rep =
        api::Harness{}.run_scenario(fam, spec, api::native_os());
    std::uint64_t thread_sum = 0;
    for (const std::uint64_t c : rep.native_thread_calls) thread_sum += c;
    const bool ok = rep.ok() && rep.all_finished;
    const bool sum_ok = thread_sum == rep.calls;
    all_ok = all_ok && ok && sum_ok && rep.retired_nodes == 0;
    table.add_row({fam.name,
                   util::Table::fmt(static_cast<std::int64_t>(
                       rep.native_threads)),
                   util::Table::fmt(static_cast<std::int64_t>(rep.calls)),
                   util::Table::fmt(static_cast<std::int64_t>(ok ? 1 : 0)),
                   util::Table::fmt(static_cast<std::int64_t>(sum_ok ? 1 : 0)),
                   util::Table::fmt(
                       static_cast<std::int64_t>(rep.retired_nodes))});
  }
  bench::emit(table);
  return all_ok;
}

/// Simulated round-robin reference: getTS calls/sec of the maxscan family
/// through the simulator at the same scenario size (thread-count agnostic —
/// the simulator is single-threaded by construction).
double sim_reference_calls_per_sec() {
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 8;
  spec.calls_per_process = 2000;
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto rep = api::Harness{}.run_scenario(fam, spec, api::round_robin(),
                                               api::Checkers::none());
  const double secs = std::chrono::duration_cast<
                          std::chrono::duration<double>>(Clock::now() - start)
                          .count();
  return secs > 0 ? static_cast<double>(rep.calls) / secs : 0.0;
}

bool print_t12b() {
  std::vector<std::string> headers{"threads"};
  for (const NativeWorkload& w : kScalingWorkloads) headers.emplace_back(w.family);
  headers.emplace_back("maxscan_sim");
  // Exact integer columns beside the tolerance-diffed timings: total getTS
  // calls executed across the row's workloads and the sum of the per-thread
  // call splits. Both are deterministic given the workload table, so CI
  // diffs them exactly — a correctness gate inside a timing table.
  headers.emplace_back("calls_total");
  headers.emplace_back("thread_sum");
  util::Table table("T12b: native getTS calls/sec scaling (n=8)",
                    std::move(headers));
  const double sim_ref = sim_reference_calls_per_sec();
  bool counts_ok = true;
  for (int t : {1, 2, 4, 8}) {
    std::vector<std::string> row{
        util::Table::fmt(static_cast<std::int64_t>(t))};
    std::int64_t calls_total = 0;
    std::int64_t thread_sum = 0;
    for (const NativeWorkload& w : kScalingWorkloads) {
      const api::TimestampFamily& fam = api::family(w.family);
      api::ScenarioSpec spec;
      spec.n = 8;
      spec.calls_per_process = w.calls_per_process;
      const bench::ThroughputSample sample =
          bench::threaded_throughput_sample(fam, spec, w.batches, t);
      calls_total += sample.calls;
      thread_sum += sample.thread_sum;
      row.push_back(util::Table::fmt(sample.calls_per_sec, 0));
    }
    row.push_back(util::Table::fmt(sim_ref, 0));
    row.push_back(util::Table::fmt(calls_total));
    row.push_back(util::Table::fmt(thread_sum));
    counts_ok = counts_ok && calls_total == thread_sum;
    table.add_row(std::move(row));
  }
  bench::emit(table);
  std::cout << "note: timing columns are informational (CI pins the table "
               "shape, not the numbers); the maxscan_sim column is the "
               "single-threaded simulator reference and does not vary with "
               "the thread row. calls_total/thread_sum are exact counts and "
               "CI diffs them exactly.\n\n";
  return counts_ok;
}

void BM_NativeMaxScanRun(benchmark::State& state) {
  const api::TimestampFamily& fam = api::family("maxscan");
  api::ScenarioSpec spec;
  spec.n = 4;
  spec.calls_per_process = 64;
  for (auto _ : state) {
    auto inst = fam.make_native(spec);
    const auto stats = inst->run_native(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(stats.ops);
  }
  state.SetItemsProcessed(state.iterations() * spec.total_calls());
}
BENCHMARK(BM_NativeMaxScanRun)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  const bool ok = print_t12a();
  const bool counts_ok = print_t12b();
  if (!ok) {
    std::cerr << "T12a self-consistency FAILED\n";
    return 1;
  }
  if (!counts_ok) {
    std::cerr << "T12b call-count columns FAILED (calls_total != thread_sum)\n";
    return 1;
  }
  if (stamped::bench::table_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
