// The registry-parametrized space/throughput driver shared by the table
// benchmarks. Every bench used to hand-wire make_X_system + scheduler per
// family; these helpers run any api::TimestampFamily under any
// api::ScheduleSource and report the space/throughput quantities the paper's
// tables tabulate. History checking is disabled here (the conformance test
// suite owns correctness); the benches only measure.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "api/harness.hpp"
#include "api/registry.hpp"

namespace stamped::bench {

/// One scenario run, checks off. Spec seeds come from the caller so tables
/// stay deterministic.
inline api::ScenarioReport run_measured(const api::TimestampFamily& family,
                                        const api::ScenarioSpec& spec,
                                        const api::ScheduleSource& source) {
  return api::Harness{}.run_scenario(family, spec, source,
                                     api::Checkers::none());
}

/// Distinct registers written by one run of `family` under `source`.
inline int registers_written(const api::TimestampFamily& family,
                             const api::ScenarioSpec& spec,
                             const api::ScheduleSource& source) {
  return run_measured(family, spec, source).registers_written;
}

/// Worst-case registers written across `seeds` (the space benches report the
/// adversarially worst seed).
inline int worst_registers_written(const api::TimestampFamily& family,
                                   api::ScenarioSpec spec,
                                   const api::ScheduleSource& source,
                                   const std::vector<std::uint64_t>& seeds) {
  int worst = 0;
  for (const std::uint64_t seed : seeds) {
    spec.seed = seed;
    const int written = registers_written(family, spec, source);
    if (written > worst) worst = written;
  }
  return worst;
}

/// Worst-case value of a named family metric (e.g. the bounded family's
/// "wraps") across `seeds`.
inline std::int64_t worst_metric(const api::TimestampFamily& family,
                                 api::ScenarioSpec spec,
                                 const api::ScheduleSource& source,
                                 const std::vector<std::uint64_t>& seeds,
                                 const std::string& key) {
  std::int64_t worst = 0;
  for (const std::uint64_t seed : seeds) {
    spec.seed = seed;
    const auto report = run_measured(family, spec, source);
    for (const auto& [name, value] : report.metrics) {
      if (name == key && value > worst) worst = value;
    }
  }
  return worst;
}

/// One threaded_throughput measurement with its exact call accounting kept
/// alongside the machine-dependent rate. `calls` and `thread_sum` are
/// integer counts straight from RunStats — deterministic given the spec, so
/// benches can print them as exact-diffable correctness columns next to the
/// tolerance-diffed timing columns.
struct ThroughputSample {
  double calls_per_sec = 0.0;
  std::int64_t calls = 0;       ///< completed getTS calls across batches
  std::int64_t thread_sum = 0;  ///< sum of the per-thread call splits
};

/// Real-thread throughput of `family` (getTS calls per second): times
/// `batches` consecutive native executions via make_native + run_native.
/// For one-shot families each batch is a fresh single-use instance
/// (construction, recorder, and thread spawn included, as a user would pay
/// them); long-lived families amortize one instance over calls_per_process
/// calls. `threads <= 0` runs one OS thread per process.
inline ThroughputSample threaded_throughput_sample(
    const api::TimestampFamily& family, const api::ScenarioSpec& spec,
    int batches, int threads = 0) {
  using Clock = std::chrono::steady_clock;
  ThroughputSample sample;
  const auto start = Clock::now();
  for (int b = 0; b < batches; ++b) {
    auto inst = family.make_native(spec);
    const api::NativeRunStats stats = inst->run_native(threads);
    sample.calls += static_cast<std::int64_t>(stats.calls);
    for (const std::uint64_t c : stats.per_thread_calls) {
      sample.thread_sum += static_cast<std::int64_t>(c);
    }
  }
  const double secs = std::chrono::duration_cast<
                          std::chrono::duration<double>>(Clock::now() - start)
                          .count();
  const double ops = static_cast<double>(spec.total_calls()) * batches;
  sample.calls_per_sec = secs > 0 ? ops / secs : 0.0;
  return sample;
}

/// Rate-only view of threaded_throughput_sample.
inline double threaded_throughput(const api::TimestampFamily& family,
                                  const api::ScenarioSpec& spec, int batches,
                                  int threads = 0) {
  return threaded_throughput_sample(family, spec, batches, threads)
      .calls_per_sec;
}

}  // namespace stamped::bench
