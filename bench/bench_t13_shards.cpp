// T13 — Sharded timestamp service: composition correctness and the
// flat-combining payoff.
//
// The sharded service (src/shard/) routes clients across independent family
// instances and amortizes concurrent getTS calls per shard through a
// flat-combining batcher. Two tables:
//
//   T13a (gated, exact): simulated round-robin run of every registry family
//        at shards in {1, 2, 4} with per-call rehash routing, full checkers
//        on (composed property, per-shard property, cross-shard
//        monotonicity). Every column is a deterministic integer — the
//        simulator schedules, so combiner pass counts and batch sizes
//        reproduce exactly — and the binary exits non-zero if any row's
//        checks fail.
//
//   T13b (gate + informational): closed-loop native traffic grid over
//        clients x shards for the maxscan family — batched vs unbatched
//        calls/sec, their ratio, and the batch-size distribution. Timing and
//        load-dependent columns (anything the OS schedules) are diffed with
//        an effectively-infinite tolerance; the exact columns are the call
//        counts and the cross_ok verdict of a small fully-checked run per
//        row. The reference row (32 clients, 4 shards = 8 clients/shard) is
//        gated: batched throughput must be >= unbatched when real cores are
//        available (>= 4 cores: ratio >= 1.0; 2-3 cores: >= 0.7; single
//        core: skipped — combining cannot beat a serialized machine), and a
//        batch of size > 1 must actually form (>= 2 cores).
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include <thread>

#include "api/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

bool print_t13a() {
  util::Table table(
      "T13a: sharded service self-check (sim round-robin, n=8, rehash)",
      {"family", "shards", "calls", "regs", "sim_passes", "sim_combined",
       "sim_max_batch", "cross_pairs", "ok"});
  bool all_ok = true;
  for (const api::TimestampFamily& fam : api::registry()) {
    for (int s : {1, 2, 4}) {
      api::ScenarioSpec spec;
      spec.n = 8;
      spec.calls_per_process = fam.max_calls_per_process == 1 ? 1 : 4;
      spec.shard.shards = s;
      spec.shard.batched = true;
      // Per-call rehash routing makes consecutive calls of one client hop
      // shards, so the cross-shard checker has real obligations to hold
      // (one-shot families make one call and legitimately report 0 pairs).
      spec.shard.rehash_calls = true;
      const api::ScenarioReport rep =
          api::Harness{}.run_scenario(fam, spec, api::round_robin());
      const bool ok = rep.ok() && rep.all_finished;
      all_ok = all_ok && ok;
      table.add_row(
          {fam.name, util::Table::fmt(static_cast<std::int64_t>(s)),
           util::Table::fmt(static_cast<std::int64_t>(rep.calls)),
           util::Table::fmt(rep.registers_allocated),
           util::Table::fmt(static_cast<std::int64_t>(rep.combiner_passes)),
           util::Table::fmt(static_cast<std::int64_t>(rep.combined_calls)),
           util::Table::fmt(static_cast<std::int64_t>(rep.max_batch)),
           util::Table::fmt(static_cast<std::int64_t>(rep.cross_shard_pairs)),
           util::Table::fmt(static_cast<std::int64_t>(ok ? 1 : 0))});
    }
  }
  bench::emit(table);
  return all_ok;
}

/// One native timing run of the maxscan family through the sharded service.
api::ScenarioReport run_native_shards(int clients, int shards, int calls,
                                      bool batched) {
  api::ScenarioSpec spec;
  spec.n = clients;
  spec.calls_per_process = calls;
  spec.backend = api::Backend::kNative;
  spec.native_threads = 0;  // hardware concurrency
  spec.shard.shards = shards;
  spec.shard.batched = batched;
  return api::Harness{}.run_scenario(api::family("maxscan"), spec,
                                     api::native_os(), api::Checkers::none());
}

/// Small fully-checked native run at the same geometry (fewer calls — the
/// checkers are quadratic), rehash routing on so calls hop shards.
bool checked_cross_ok(int clients, int shards) {
  api::ScenarioSpec spec;
  spec.n = clients;
  spec.calls_per_process = 8;
  spec.backend = api::Backend::kNative;
  spec.native_threads = 0;
  spec.shard.shards = shards;
  spec.shard.batched = true;
  spec.shard.rehash_calls = true;
  const api::ScenarioReport rep = api::Harness{}.run_scenario(
      api::family("maxscan"), spec, api::native_os());
  return rep.ok() && rep.all_finished;
}

struct T13bOutcome {
  bool cross_ok_all = true;
  double reference_ratio = 0.0;
  std::uint64_t reference_max_batch = 0;
};

T13bOutcome print_t13b() {
  constexpr int kCalls = 64;
  constexpr int kRefClients = 32;
  constexpr int kRefShards = 4;
  util::Table table(
      "T13b: sharded maxscan closed-loop traffic (native, calls/client=64)",
      {"clients", "shards", "calls", "unbatched_cps", "batched_cps", "ratio",
       "nat_passes", "nat_avg_batch", "nat_max_batch", "cross_ok"});
  T13bOutcome out;
  for (int clients : {8, 32}) {
    for (int shards : {1, 2, 4}) {
      const api::ScenarioReport unbatched =
          run_native_shards(clients, shards, kCalls, false);
      const api::ScenarioReport batched =
          run_native_shards(clients, shards, kCalls, true);
      const double cps_u = static_cast<double>(unbatched.calls) /
                           unbatched.native_elapsed_seconds;
      const double cps_b = static_cast<double>(batched.calls) /
                           batched.native_elapsed_seconds;
      const double ratio = cps_u > 0 ? cps_b / cps_u : 0.0;
      const bool cross_ok = checked_cross_ok(clients, shards);
      out.cross_ok_all = out.cross_ok_all && cross_ok;
      if (clients == kRefClients && shards == kRefShards) {
        out.reference_ratio = ratio;
        out.reference_max_batch = batched.max_batch;
      }
      table.add_row(
          {util::Table::fmt(static_cast<std::int64_t>(clients)),
           util::Table::fmt(static_cast<std::int64_t>(shards)),
           util::Table::fmt(static_cast<std::int64_t>(batched.calls)),
           util::Table::fmt(cps_u, 0), util::Table::fmt(cps_b, 0),
           util::Table::fmt(ratio, 2),
           util::Table::fmt(static_cast<std::int64_t>(batched.combiner_passes)),
           util::Table::fmt(batched.avg_batch, 2),
           util::Table::fmt(static_cast<std::int64_t>(batched.max_batch)),
           util::Table::fmt(static_cast<std::int64_t>(cross_ok ? 1 : 0))});
    }
  }
  bench::emit(table);
  std::cout << "note: *_cps, ratio, and the nat_* combiner columns are "
               "OS-load-dependent (CI diffs them with infinite tolerance); "
               "calls and cross_ok are exact.\n\n";
  return out;
}

void BM_ShardedMaxscanBatched(benchmark::State& state) {
  for (auto _ : state) {
    const auto rep = run_native_shards(16, static_cast<int>(state.range(0)),
                                       64, true);
    benchmark::DoNotOptimize(rep.calls);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_ShardedMaxscanBatched)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  const bool t13a_ok = print_t13a();
  const T13bOutcome t13b = print_t13b();
  const unsigned cores = std::thread::hardware_concurrency();

  // Gate thresholds by available parallelism (see file comment): combining
  // pays by trading cross-thread cache traffic for one combiner's sequential
  // pass, which needs real concurrency to show up on the clock.
  const double required = cores >= 4 ? 1.0 : (cores >= 2 ? 0.7 : 0.0);
  const bool ratio_ok = t13b.reference_ratio >= required;
  const bool batch_ok = t13b.reference_max_batch > 1;
  std::cout << "T13a self-check gate: every family x shard row checked "
            << "clean: " << (t13a_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "T13b cross-shard gate: cross-shard monotonicity clean on "
            << "every row: " << (t13b.cross_ok_all ? "PASS" : "FAIL") << "\n";
  std::cout << "T13b throughput gate: batched/unbatched = "
            << util::Table::fmt(t13b.reference_ratio, 2)
            << " on the reference row (32 clients, 4 shards, " << cores
            << " cores, floor " << util::Table::fmt(required, 1) << "): "
            << (required == 0.0 ? "SKIPPED (single core)"
                                : (ratio_ok ? "PASS" : "FAIL"))
            << "\n";
  std::cout << "T13b batching gate: max batch "
            << t13b.reference_max_batch << " on the reference row: "
            << (cores >= 2 ? (batch_ok ? "PASS" : "FAIL")
                           : "SKIPPED (single core)")
            << "\n\n";

  // In table-only (CI) mode these gates are the perf contract: the baseline
  // diff puts infinite tolerance on every load-dependent column, so this
  // exit code is what stands between a combining regression and a green
  // build. Correctness gates (T13a, cross_ok) hold on any machine; the
  // throughput and batching gates need real cores.
  if (stamped::bench::table_only(argc, argv)) {
    const bool perf_ok =
        (required == 0.0) || (ratio_ok && (cores < 2 || batch_ok));
    return (t13a_ok && t13b.cross_ok_all && perf_ok) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
