// T9 — Parallel explorer benchmark: work-stealing DFS and persistent-set
// POR, with a blessed baseline so the explorer's perf work is tracked, not
// anecdotal.
//
// The exhaustive explorer is the only tool that *certifies* the timestamp
// property over all interleavings, and it dominates the conformance suite.
// This bench pins the two explorer optimizations to numbers:
//
//   T9a — work-stealing parallel DFS (threads=4) vs serial on the reference
//         full-tree model checks. The node and execution counts are
//         set-derived and deterministic (exact-diffed; the bench also
//         verifies parallel == serial counts and fails the gate on any
//         mismatch). The timing and speedup columns carry a CI tolerance —
//         wall-clock noise is not a regression. The speedup GATE lives in
//         this binary: in --table-only mode it exits nonzero if the 4-thread
//         speedup on the reference row (the largest model, bounded n=2 c=2)
//         drops below 2x. The gate needs real cores: it enforces 2x only
//         when hardware_concurrency >= 4, degrades to 1.2x on 2-3 cores, and
//         reports SKIPPED on a single-core machine (4 threads on 1 core
//         cannot beat serial; measuring that would gate the machine, not the
//         code).
//   T9b — persistent-set POR layered on the sleep sets vs sleep sets alone,
//         on the reduced model checks (fully deterministic, exact-diffed).
//         The layered tree must explore NO MORE nodes than sleep-only on
//         every row — also enforced by the exit code — and the conformance
//         suite separately proves the violation sets are identical.
//
// Baselines live in bench/baselines/t9/ and are diffed by the release-perf
// CI job:
//   bench_t9_explorer --table-only
//   tools/bench_diff.py --baseline-dir bench/baselines/t9 --measured-dir .
//       --tolerance serial_s=1e18 --tolerance t4_s=1e18 --tolerance speedup=1e18
#include "bench_common.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "api/registry.hpp"
#include "util/table.hpp"
#include "verify/explorer.hpp"

namespace {

using namespace stamped;

struct Model {
  const char* family;
  int n;
  int calls;

  [[nodiscard]] std::string label() const {
    return std::string(family) + " n=" + std::to_string(n) +
           " c=" + std::to_string(calls);
  }
};

verify::InstanceFactory model_factory(const runtime::SystemFactory& sys) {
  return [&sys]() {
    verify::ExplorationInstance inst;
    inst.sys = sys();
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };
}

struct TimedRun {
  verify::ExploreResult result;
  double seconds = 0.0;
};

TimedRun run_model(const Model& m, const verify::ExploreOptions& opts) {
  api::ScenarioSpec spec;
  spec.n = m.n;
  spec.calls_per_process = m.calls;
  const runtime::SystemFactory sys_factory =
      api::family(m.family).factory(spec);
  const verify::InstanceFactory factory = model_factory(sys_factory);
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = verify::explore_all_executions(factory, opts);
  run.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

// The reference model checks for the speedup measurement: full DFS (the
// certification workload — no reduction), whole tree. The last row is the
// reference for the gate: the largest tree, where the parallel engine has
// real work to distribute.
constexpr Model kT9aModels[] = {
    {"simple-oneshot", 3, 1},
    {"sqrt-oneshot", 2, 1},
    {"maxscan", 2, 3},
    {"bounded", 2, 2},
};

/// Prints T9a; returns the reference-row speedup and whether every parallel
/// run reproduced the serial counters (the correctness tripwire — gated
/// independently of the speedup floor, so it fails --table-only even on
/// machines where the speedup gate is skipped).
struct T9aOutcome {
  double reference_speedup = 0.0;
  bool counts_ok = true;
};

T9aOutcome print_t9a() {
  util::Table table(
      "T9a: work-stealing explorer (threads=4) vs serial full DFS",
      {"model", "nodes", "execs", "serial_s", "t4_s", "speedup"});
  double reference_speedup = 0.0;
  bool counts_ok = true;
  for (const Model& m : kT9aModels) {
    verify::ExploreOptions opts;
    opts.max_executions = 0;  // whole tree
    const TimedRun serial = run_model(m, opts);
    opts.threads = 4;
    const TimedRun parallel = run_model(m, opts);
    if (parallel.result.nodes != serial.result.nodes ||
        parallel.result.executions != serial.result.executions ||
        !parallel.result.ok() || !serial.result.ok()) {
      counts_ok = false;
    }
    const double speedup =
        parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
    reference_speedup = speedup;  // last row = reference
    table.add_row(
        {m.label(),
         util::Table::fmt(static_cast<std::int64_t>(serial.result.nodes)),
         util::Table::fmt(
             static_cast<std::int64_t>(serial.result.executions)),
         util::Table::fmt(serial.seconds, 3),
         util::Table::fmt(parallel.seconds, 3),
         util::Table::fmt(speedup, 2)});
  }
  bench::emit(table);
  return {reference_speedup, counts_ok};
}

// Persistent-set rows: the T8b reduced model checks plus the two larger
// trees. Reduced explorations are small, so the whole table is cheap and
// fully deterministic.
constexpr Model kT9bModels[] = {
    {"maxscan", 2, 1},        {"maxscan", 2, 2},
    {"maxscan", 2, 3},        {"simple-oneshot", 2, 1},
    {"simple-oneshot", 3, 1}, {"bounded", 2, 1},
    {"bounded", 2, 2},        {"sqrt-oneshot", 2, 1},
};

/// Prints T9b; returns false if any row's layered tree explored more nodes
/// than sleep sets alone (the monotonicity the acceptance criteria demand).
bool print_t9b() {
  util::Table table(
      "T9b: persistent-set POR layered on sleep sets vs sleep sets alone",
      {"model", "sleep_nodes", "sleep_execs", "pers_nodes", "pers_execs",
       "deferred", "nodes_saved_pct"});
  bool monotone = true;
  for (const Model& m : kT9bModels) {
    verify::ExploreOptions opts;
    opts.max_executions = 0;
    opts.por = true;
    const TimedRun sleep_only = run_model(m, opts);
    opts.persistent = true;
    const TimedRun layered = run_model(m, opts);
    if (layered.result.nodes > sleep_only.result.nodes) monotone = false;
    const double saved =
        sleep_only.result.nodes > 0
            ? 100.0 *
                  static_cast<double>(sleep_only.result.nodes -
                                      layered.result.nodes) /
                  static_cast<double>(sleep_only.result.nodes)
            : 0.0;
    table.add_row(
        {m.label(),
         util::Table::fmt(
             static_cast<std::int64_t>(sleep_only.result.nodes)),
         util::Table::fmt(
             static_cast<std::int64_t>(sleep_only.result.executions)),
         util::Table::fmt(static_cast<std::int64_t>(layered.result.nodes)),
         util::Table::fmt(
             static_cast<std::int64_t>(layered.result.executions)),
         util::Table::fmt(static_cast<std::int64_t>(
             layered.result.persistent_deferred)),
         util::Table::fmt(saved, 1)});
  }
  bench::emit(table);
  return monotone;
}

// ---- timing section --------------------------------------------------------

void explorer_threads_bench(benchmark::State& state, int threads, bool por,
                            bool persistent) {
  const Model m{"maxscan", 2, 3};
  verify::ExploreOptions opts;
  opts.max_executions = 0;
  opts.threads = threads;
  opts.por = por;
  opts.persistent = persistent;
  for (auto _ : state) {
    const TimedRun run = run_model(m, opts);
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(run.result.executions));
  }
}

void BM_ExplorerSerialFull(benchmark::State& state) {
  explorer_threads_bench(state, 1, false, false);
}
BENCHMARK(BM_ExplorerSerialFull)->Unit(benchmark::kMillisecond);

void BM_ExplorerThreads4Full(benchmark::State& state) {
  explorer_threads_bench(state, 4, false, false);
}
BENCHMARK(BM_ExplorerThreads4Full)->Unit(benchmark::kMillisecond);

void BM_ExplorerSleepSets(benchmark::State& state) {
  explorer_threads_bench(state, 1, true, false);
}
BENCHMARK(BM_ExplorerSleepSets)->Unit(benchmark::kMillisecond);

void BM_ExplorerPersistentSets(benchmark::State& state) {
  explorer_threads_bench(state, 1, true, true);
}
BENCHMARK(BM_ExplorerPersistentSets)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const T9aOutcome t9a = print_t9a();
  const bool persistent_monotone = print_t9b();
  const unsigned cores = std::thread::hardware_concurrency();

  // Gate thresholds by available parallelism (see file comment).
  const double required =
      cores >= 4 ? 2.0 : (cores >= 2 ? 1.2 : 0.0);
  const bool speedup_ok = t9a.reference_speedup >= required;
  std::cout << "T9 parallel-counts gate: threads=4 reproduced the serial "
            << "node/execution counts on every row: "
            << (t9a.counts_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "T9 speedup gate: threads=4 is "
            << util::Table::fmt(t9a.reference_speedup, 2)
            << "x serial on the reference "
            << "model check (" << kT9aModels[std::size(kT9aModels) - 1].label()
            << ", " << cores << " cores, floor "
            << util::Table::fmt(required, 1) << "x): "
            << (required == 0.0 ? "SKIPPED (single core)"
                                : (speedup_ok ? "PASS" : "FAIL"))
            << "\n";
  std::cout << "T9 persistent-set gate: layered tree explores no more nodes "
            << "than sleep sets alone on every row: "
            << (persistent_monotone ? "PASS" : "FAIL") << "\n\n";

  // In table-only (CI) mode all three gates are real: the baseline diff puts
  // huge tolerances on the timing columns (wall-clock noise must not fail a
  // counter diff), so this exit code is what stands between an explorer
  // regression and a green build. The counts gate fails independently of the
  // speedup floor, so a parallel/serial divergence is caught even on
  // machines where the speedup gate is skipped.
  if (stamped::bench::table_only(argc, argv)) {
    return (t9a.counts_ok && speedup_ok && persistent_monotone) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
