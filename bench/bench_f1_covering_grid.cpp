// F1 — Figure 1: the covering grid of the Section 4 construction.
//
// "Configuration C1 must have a column j that reaches to the diagonal. Hence
// there are j registers each covered with m-j processes."
//
// This benchmark runs the executable construction against both one-shot
// algorithms and renders the ordered-signature grid at the initial
// (j1, m-j1)-full configuration and at the final configuration, exactly as in
// the paper's figure: columns are registers sorted by cover count, the
// stepped diagonal starts at height l-1.
#include "bench_common.hpp"

#include "adversary/oneshot_builder.hpp"
#include "util/grid.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

void render_for(const char* name, const runtime::SystemFactory& factory,
                int n) {
  auto result = adversary::build_oneshot_covering(factory, n);
  std::cout << "== F1: covering grid, " << name << ", n=" << n
            << " (m=" << result.m << ") ==\n";
  if (!result.steps.empty()) {
    const auto& first = result.steps.front();
    std::cout << "-- after the initial step (j1=" << first.j_after
              << ", (j, m-j)-full) --\n"
              << util::render_covering_grid(first.ordered_sig, result.m,
                                            first.j_after - 1)
              << util::summarize_signature(first.ordered_sig) << "\n";
  }
  std::cout << "-- final configuration (j_last=" << result.j_last
            << ", l_last=" << result.l_last << ", stop=" << result.stop_reason
            << ") --\n"
            << util::render_covering_grid(result.final_ordered_sig,
                                          result.l_last, result.j_last - 1)
            << util::summarize_signature(result.final_ordered_sig) << "\n"
            << result.summary() << "\n\n";
}

void print_grids() {
  for (int n : {24, 50}) {
    render_for("Algorithm 4", core::sqrt_oneshot_factory(n), n);
    render_for("simple (Section 5)", core::simple_oneshot_factory(n), n);
  }
}

void BM_OneShotBuilder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result =
        adversary::build_oneshot_covering(core::sqrt_oneshot_factory(n), n);
    benchmark::DoNotOptimize(result.j_last);
  }
}
BENCHMARK(BM_OneShotBuilder)->Arg(24)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  print_grids();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
