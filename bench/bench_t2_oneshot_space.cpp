// T2 — One-shot timestamp space (Theorems 1.2 + 1.3, Section 5).
//
// Paper claims reproduced here:
//   lower bound:  sqrt(2n) - log2(n) - O(1) registers (Theorem 1.2)
//   simple alg:   ceil(n/2) registers, all written (Section 5)
//   Algorithm 4:  allocates ceil(2*sqrt(n)); never writes the sentinel; the
//                 number of registers actually written stays below the
//                 allocation under sequential, random, and adversarial
//                 schedules (Theorem 1.3 / Lemma 6.5)
//
// Expected shape: simple grows linearly, Algorithm 4 as Theta(sqrt(n)); the
// crossover where Algorithm 4 beats simple is around n = 16; the lower-bound
// curve stays below Algorithm 4's usage-plus-constant.
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include "adversary/oneshot_builder.hpp"
#include "util/bounds.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

void print_space_table() {
  const api::TimestampFamily& alg4 = api::family("sqrt-oneshot");
  util::Table table(
      "T2a: one-shot space vs n (lower | simple ceil(n/2) | Alg4 alloc "
      "2*ceil(sqrt n) | Alg4 written seq/random)",
      {"n", "lower", "simple", "alg4_alloc", "alg4_seq", "alg4_stag4",
       "alg4_rand"});
  for (int n : {4, 8, 16, 32, 64, 128, 256, 512}) {
    api::ScenarioSpec spec;
    spec.n = n;
    const int seq = bench::registers_written(alg4, spec, api::sequential());
    const int stag = bench::worst_registers_written(
        alg4, spec, api::staggered(4), bench::standard_seeds());
    const int rnd = bench::worst_registers_written(
        alg4, spec, api::seeded_random(), bench::standard_seeds());
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(n)),
         util::Table::fmt(util::bounds::oneshot_lower(n)),
         util::Table::fmt(util::bounds::oneshot_upper_simple(n)),
         util::Table::fmt(util::bounds::oneshot_upper_sqrt(n)),
         util::Table::fmt(static_cast<std::int64_t>(seq)),
         util::Table::fmt(static_cast<std::int64_t>(stag)),
         util::Table::fmt(static_cast<std::int64_t>(rnd))});
  }
  bench::emit(table);
}

void print_adversarial_table() {
  util::Table table(
      "T2b: adversarial (Section 4 construction) — registers covered/written "
      "when the covering adversary drives the implementation",
      {"n", "m=floor(sqrt 2n)", "alg", "j_last", "covered", "written",
       "stop"});
  for (int n : {16, 32, 48, 64}) {
    for (const char* alg : {"alg4", "simple"}) {
      const api::TimestampFamily& fam = api::family(
          std::string(alg) == "alg4" ? "sqrt-oneshot" : "simple-oneshot");
      api::ScenarioSpec spec;
      spec.n = n;
      auto result = adversary::build_oneshot_covering(fam.factory(spec), n);
      table.add_row(
          {util::Table::fmt(static_cast<std::int64_t>(n)),
           util::Table::fmt(static_cast<std::int64_t>(result.m)), alg,
           util::Table::fmt(static_cast<std::int64_t>(result.j_last)),
           util::Table::fmt(
               static_cast<std::int64_t>(result.registers_covered)),
           util::Table::fmt(
               static_cast<std::int64_t>(result.registers_written)),
           result.stop_reason});
    }
  }
  bench::emit(table);
}

void BM_SimpleOneShotFullRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sys = core::make_simple_oneshot_system(n, nullptr);
    util::Rng rng(1);
    runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
    benchmark::DoNotOptimize(sys->registers_written());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimpleOneShotFullRun)->Arg(16)->Arg(64)->Arg(256);

void BM_SqrtOneShotFullRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sys = core::make_sqrt_oneshot_system(n, nullptr);
    util::Rng rng(1);
    runtime::run_random(*sys, rng, std::uint64_t{1} << 32);
    benchmark::DoNotOptimize(sys->registers_written());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqrtOneShotFullRun)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_space_table();
  print_adversarial_table();
  if (stamped::bench::table_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
