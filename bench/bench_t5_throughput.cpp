// T5 — Wait-free getTS throughput under real hardware concurrency.
//
// Lemma 6.14 (and Lemma 5.1) make the algorithms wait-free; this harness
// measures what that costs on real atomics. The table is generated from
// api::registry(): every family that provides make_native() is timed
// through the same generic driver (bench/generic_driver.hpp), so adding a
// family to the registry adds it to this table.
//
// Workload shapes:
//   (batch)  — one-shot objects are single-use: T threads each take one
//              timestamp from a fresh object, repeated for 2000/T batches;
//              object construction and thread spawn are part of the cost.
//   (M)      — Algorithm 4's bounded-M generalization: persistent threads on
//              one object, calls_per_thread getTS calls each.
//   plain    — long-lived objects: persistent threads on one object.
//
// Every column runs through the same DirectCtx harness (the native
// backend), so the comparison is apples-to-apples: each shared-memory op
// also ticks the
// shared event clock that the history machinery uses. In particular the
// fetchadd column measures the baseline *family* under that harness, not
// the bare primitive — the bare-atomic cost is BM_FetchAddGetTs in the
// timing section below.
//
// Expected shape: fetch&add >> max-scan > bounded > simple > Algorithm 4 per
// call (record registers pay pointer-swap + allocation costs); no run ever
// stalls.
//
// Note (PR 4): every AtomicMemory write now also maintains the cell's
// version clock for versioned_read (inline cells: one uncontended CAS plus
// two seq_cst counter ops bracketing the store, which serializes racing
// writers to the same cell — writes to inline cells are no longer strictly
// wait-free under MWMR write contention; node cells: one fetch_add,
// still lock-free). That shaves a constant off every column here — an
// accepted cost of the version-clock scan; these timing columns are
// informational, not baseline-gated. The bare-primitive fetch&add number
// (BM_FetchAddGetTs below) uses core::FetchAddTimestamp's own std::atomic
// and is unaffected.
#include "bench_common.hpp"
#include "generic_driver.hpp"

#include <atomic>

#include "atomicmem/atomic_memory.hpp"
#include "core/fetchadd_baseline.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;
using atomicmem::AtomicMemory;

/// One column of the throughput table: a registry family plus its workload
/// shape. calls == 1 selects batch mode (2000/T single-use batches); larger
/// values run persistent threads on one object.
struct Workload {
  const char* family;
  const char* label;
  int calls_per_thread;
};

constexpr Workload kWorkloads[] = {
    {"simple-oneshot", "simple(batch)", 1},
    {"sqrt-oneshot", "alg4(batch)", 1},
    {"growing-oneshot", "growing(batch)", 1},
    {"sqrt-oneshot", "alg4(M=4000/thr)", 4000},
    {"maxscan", "maxscan", 50000},
    {"bounded", "bounded", 10000},
    {"fetchadd", "fetchadd", 200000},
};

void print_table() {
  std::vector<std::string> headers{"threads"};
  for (const Workload& w : kWorkloads) headers.emplace_back(w.label);
  util::Table table("T5: getTS throughput (ops/sec), real threads",
                    std::move(headers));
  for (int t : {1, 2, 4, 8}) {
    std::vector<std::string> row{util::Table::fmt(static_cast<std::int64_t>(t))};
    for (const Workload& w : kWorkloads) {
      const api::TimestampFamily& fam = api::family(w.family);
      STAMPED_ASSERT_MSG(fam.make_native != nullptr,
                         "family '" << fam.name << "' has no native form");
      api::ScenarioSpec spec;
      spec.n = t;
      spec.calls_per_process = w.calls_per_thread;
      const int batches = w.calls_per_thread == 1 ? 2000 / t : 1;
      row.push_back(
          util::Table::fmt(bench::threaded_throughput(fam, spec, batches), 0));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table);
  std::cout << "note: (batch) columns include per-batch object construction "
               "and thread spawn (one-shot objects are single-use); the "
               "other columns use persistent threads on one object — the "
               "per-call cost.\n\n";
}

void BM_FetchAddGetTs(benchmark::State& state) {
  static core::FetchAddTimestamp ts;
  for (auto _ : state) benchmark::DoNotOptimize(ts.getts());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchAddGetTs)->Threads(1)->Threads(2)->Threads(4);

void BM_MaxScanGetTsThreaded(benchmark::State& state) {
  static AtomicMemory<std::int64_t> mem(16, 0);
  const int pid = state.thread_index() % 16;
  std::int64_t mx = 0;
  for (auto _ : state) {
    mx = 0;
    for (int i = 0; i < 16; ++i) mx = std::max(mx, mem.read(i));
    mem.write(pid, mx + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxScanGetTsThreaded)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  if (stamped::bench::table_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
