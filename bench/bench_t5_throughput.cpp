// T5 — Wait-free getTS throughput under real hardware concurrency.
//
// Lemma 6.14 (and Lemma 5.1) make the algorithms wait-free; this harness
// measures what that costs on real atomics, comparing:
//   simple (Section 5)  — one-shot, ceil(n/2) int registers
//   Algorithm 4         — one-shot, 2*ceil(sqrt(n)) record registers
//   max-scan            — long-lived, n int registers
//   fetch&add           — non-register baseline (outside the paper's model)
//
// Expected shape: fetch&add >> max-scan > simple > Algorithm 4 per call (the
// record registers pay pointer-swap + allocation costs); all remain wait-free
// (no run ever stalls).
#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "atomicmem/atomic_memory.hpp"
#include "core/fetchadd_baseline.hpp"
#include "core/maxscan_longlived.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;
using atomicmem::AtomicMemory;
using atomicmem::DirectCtx;
using Clock = std::chrono::steady_clock;

double ops_per_sec(std::uint64_t ops, Clock::duration d) {
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
  return secs > 0 ? static_cast<double>(ops) / secs : 0.0;
}

/// One-shot rounds: T threads repeatedly run complete n=T one-shot batches;
/// each batch uses a fresh object. Reports getTS calls per second.
template <class MakeBatch>
double oneshot_throughput(int threads, int batches, MakeBatch&& run_batch) {
  const auto start = Clock::now();
  for (int b = 0; b < batches; ++b) run_batch(threads);
  return ops_per_sec(static_cast<std::uint64_t>(threads) *
                         static_cast<std::uint64_t>(batches),
                     Clock::now() - start);
}

double simple_batch_throughput(int threads, int batches) {
  return oneshot_throughput(threads, batches, [](int t) {
    AtomicMemory<std::int64_t> mem(core::simple_oneshot_registers(t), 0);
    std::atomic<std::uint64_t> clock{0};
    std::vector<std::jthread> workers;
    for (int p = 0; p < t; ++p) {
      workers.emplace_back([&, p] {
        DirectCtx<std::int64_t> ctx(&mem, p, &clock);
        auto task = core::simple_getts_program(ctx, p, t, nullptr);
        task.handle().resume();
      });
    }
  });
}

double sqrt_batch_throughput(int threads, int batches) {
  return oneshot_throughput(threads, batches, [](int t) {
    const int m = core::sqrt_oneshot_registers(t);
    AtomicMemory<core::TsRecord> mem(m, core::TsRecord::bottom());
    std::atomic<std::uint64_t> clock{0};
    std::vector<std::jthread> workers;
    for (int p = 0; p < t; ++p) {
      workers.emplace_back([&, p] {
        DirectCtx<core::TsRecord> ctx(&mem, p, &clock);
        auto task = core::sqrt_getts_program(ctx, core::TsId{p, 0}, m,
                                             nullptr, nullptr);
        task.handle().resume();
      });
    }
  });
}

/// Persistent threads on one bounded-M Algorithm 4 object: each of T threads
/// performs `calls_per_thread` getTS calls (M = T * calls). Measures the
/// per-call cost without thread spawn or object construction.
double sqrt_bounded_throughput(int threads, int calls_per_thread) {
  const std::int64_t total =
      static_cast<std::int64_t>(threads) * calls_per_thread;
  const int m = core::sqrt_oneshot_registers(total);
  AtomicMemory<core::TsRecord> mem(m, core::TsRecord::bottom());
  std::atomic<std::uint64_t> clock{0};
  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    for (int p = 0; p < threads; ++p) {
      workers.emplace_back([&, p] {
        DirectCtx<core::TsRecord> ctx(&mem, p, &clock);
        auto task = core::sqrt_calls_program(ctx, p, calls_per_thread, m,
                                             nullptr, nullptr);
        task.handle().resume();
      });
    }
  }
  return ops_per_sec(static_cast<std::uint64_t>(total), Clock::now() - start);
}

double maxscan_throughput(int threads, int calls_per_thread) {
  AtomicMemory<std::int64_t> mem(threads, 0);
  std::atomic<std::uint64_t> clock{0};
  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    for (int p = 0; p < threads; ++p) {
      workers.emplace_back([&, p] {
        DirectCtx<std::int64_t> ctx(&mem, p, &clock);
        auto task =
            core::maxscan_program(ctx, p, threads, calls_per_thread, nullptr);
        task.handle().resume();
      });
    }
  }
  return ops_per_sec(static_cast<std::uint64_t>(threads) *
                         static_cast<std::uint64_t>(calls_per_thread),
                     Clock::now() - start);
}

double fetchadd_throughput(int threads, int calls_per_thread) {
  core::FetchAddTimestamp ts;
  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    for (int p = 0; p < threads; ++p) {
      workers.emplace_back([&] {
        for (int k = 0; k < calls_per_thread; ++k) {
          benchmark::DoNotOptimize(ts.getts());
        }
      });
    }
  }
  return ops_per_sec(static_cast<std::uint64_t>(threads) *
                         static_cast<std::uint64_t>(calls_per_thread),
                     Clock::now() - start);
}

void print_table() {
  util::Table table(
      "T5: getTS throughput (ops/sec), real threads",
      {"threads", "simple(batch)", "alg4(batch)", "alg4(bounded-M)",
       "maxscan", "fetchadd"});
  for (int t : {1, 2, 4, 8}) {
    const double simple = simple_batch_throughput(t, 2000 / t);
    const double alg4 = sqrt_batch_throughput(t, 2000 / t);
    const double alg4_bounded = sqrt_bounded_throughput(t, 4000);
    const double maxscan = maxscan_throughput(t, 50000);
    const double fa = fetchadd_throughput(t, 200000);
    table.add_row({util::Table::fmt(static_cast<std::int64_t>(t)),
                   util::Table::fmt(simple, 0), util::Table::fmt(alg4, 0),
                   util::Table::fmt(alg4_bounded, 0),
                   util::Table::fmt(maxscan, 0), util::Table::fmt(fa, 0)});
  }
  bench::emit(table);
  std::cout << "note: the (batch) columns include per-batch object "
               "construction and thread spawn (one-shot objects are "
               "single-use); (bounded-M) uses persistent threads on one "
               "bounded-M object — the per-call cost.\n\n";
}

void BM_FetchAddGetTs(benchmark::State& state) {
  static core::FetchAddTimestamp ts;
  for (auto _ : state) benchmark::DoNotOptimize(ts.getts());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchAddGetTs)->Threads(1)->Threads(2)->Threads(4);

void BM_MaxScanGetTsThreaded(benchmark::State& state) {
  static AtomicMemory<std::int64_t> mem(16, 0);
  static std::atomic<std::uint64_t> clock{0};
  const int pid = state.thread_index() % 16;
  std::int64_t mx = 0;
  for (auto _ : state) {
    mx = 0;
    for (int i = 0; i < 16; ++i) mx = std::max(mx, mem.read(i));
    mem.write(pid, mx + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxScanGetTsThreaded)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
