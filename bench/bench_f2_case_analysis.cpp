// F2 — Figure 2: the Case 1 / Case 2 analysis of the Section 4 construction.
//
// "After the block-write, processes are run until some new column j' reaches
// the diagonal... Case 1: columns 1..j still have height at least l-j'.
// Case 2: the diagonal is reached at column j+1 after two block writes. This
// can only happen if at least half of the unshaded space became shaded."
//
// Consequence (Theorem 1.2's accounting): Case 2 occurs at most log2(n)
// times, so l decays by at most log2(n) and j_last >= m - log n - 2.
#include "bench_common.hpp"

#include <cmath>

#include "adversary/oneshot_builder.hpp"
#include "util/table.hpp"

namespace {

using namespace stamped;

void print_rounds(const char* name, const runtime::SystemFactory& factory,
                  int n) {
  auto result = adversary::build_oneshot_covering(factory, n);
  util::Table table(
      std::string("F2: per-round case analysis, ") + name + ", n=" +
          std::to_string(n) + " (m=" + std::to_string(result.m) + ")",
      {"round", "case", "nu", "j", "l", "idle", "sched_len"});
  for (const auto& step : result.steps) {
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(step.round)),
         step.round == 0 ? "init" : util::Table::fmt(static_cast<std::int64_t>(
                                        step.case_kind)),
         util::Table::fmt(static_cast<std::int64_t>(step.nu)),
         util::Table::fmt(static_cast<std::int64_t>(step.j_after)),
         util::Table::fmt(static_cast<std::int64_t>(step.l_after)),
         util::Table::fmt(static_cast<std::int64_t>(step.idle_after)),
         util::Table::fmt(static_cast<std::int64_t>(step.schedule_length))});
  }
  bench::emit(table);
  std::cout << "case2_count=" << result.case2_count
            << "  log2(n)=" << std::log2(static_cast<double>(n))
            << "  (paper: case2 <= log2 n)\n"
            << "j_last=" << result.j_last << "  m-log2(n)-2="
            << result.m - std::log2(static_cast<double>(n)) - 2
            << "  (paper: j_last >= m - log n - 2 when stopping at l-j<=2)\n\n";
}

void print_case_summary() {
  util::Table table("F2b: Case 2 occurrences vs the log2(n) budget",
                    {"n", "alg", "case2", "log2(n)", "j_last",
                     "m-log2(n)-2", "stop"});
  for (int n : {16, 32, 48, 64, 80}) {
    for (const char* alg : {"alg4", "simple"}) {
      const auto factory = std::string(alg) == "alg4"
                               ? core::sqrt_oneshot_factory(n)
                               : core::simple_oneshot_factory(n);
      auto result = adversary::build_oneshot_covering(factory, n);
      table.add_row(
          {util::Table::fmt(static_cast<std::int64_t>(n)), alg,
           util::Table::fmt(static_cast<std::int64_t>(result.case2_count)),
           util::Table::fmt(std::log2(static_cast<double>(n))),
           util::Table::fmt(static_cast<std::int64_t>(result.j_last)),
           util::Table::fmt(result.m - std::log2(static_cast<double>(n)) - 2),
           result.stop_reason});
    }
  }
  bench::emit(table);
}

void BM_BuilderRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = adversary::build_oneshot_covering(
        core::simple_oneshot_factory(n), n);
    benchmark::DoNotOptimize(result.case2_count);
  }
}
BENCHMARK(BM_BuilderRound)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_rounds("Algorithm 4", core::sqrt_oneshot_factory(50), 50);
  print_rounds("simple (Section 5)", core::simple_oneshot_factory(50), 50);
  print_case_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
