// T14 — Wedge recovery: the combiner-lease protocol under the fault
// adversary, and what a steal costs.
//
//   T14a (gated, exact): the pinned-seed sim differential as a table. For
//        every family x shards {1, 2, 4}, the crash adversary kills two
//        victims early (often while one HOLDS a shard's combiner lease)
//        and the run must end with survivors finished and every history
//        layer clean. A maxscan control row repeats the schedule with
//        allow_steal off and must WEDGE (survivors unfinished, the whole
//        step budget burned) — the differential that proves the lease, not
//        luck, is what heals the other rows. All columns are deterministic
//        simulator integers and diff exactly.
//
//   T14b (gate + informational): native steal latency. A stall hook parks
//        the first thread observed mid-pass while holding the shard lease
//        (deterministic stand-in for OS preemption); waiting clients expire
//        the steal budget and take the lease. Reported per budget config:
//        wall microseconds from park to observed steal, plus steal/expiry/
//        claim-loss counts. Latency and counter columns are OS-scheduled
//        (infinite diff tolerance); calls and the at-most-once verdict are
//        exact. Gate (>= 2 cores): every row completes all calls, steals at
//        least once, and checks at-most-once clean.
#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "api/registry.hpp"
#include "runtime/scheduler.hpp"
#include "shard/engines.hpp"
#include "shard/sharded_service.hpp"
#include "util/table.hpp"
#include "verify/at_most_once.hpp"

namespace {

using namespace stamped;

constexpr std::uint64_t kSimBudget = std::uint64_t{1} << 18;

runtime::CrashPlan combiner_killer() {
  runtime::CrashPlan plan;
  plan.crashes = 2;
  plan.restart = false;
  plan.max_victim_steps = 10;
  return plan;
}

api::ScenarioSpec sim_spec(const api::TimestampFamily& fam, int shards,
                           bool allow_steal) {
  api::ScenarioSpec spec;
  spec.n = 6;
  spec.calls_per_process = fam.max_calls_per_process == 1 ? 1 : 3;
  spec.seed = 11;  // same pinned seed as tests/test_shard_faults.cpp
  spec.universe_bound = 64;  // bounded family: window covers every call
  spec.shard.shards = shards;
  spec.shard.steal_budget = 12;
  spec.shard.allow_steal = allow_steal;
  return spec;
}

bool print_t14a() {
  util::Table table(
      "T14a: crash the combiner, survivors must finish (sim, seed 11)",
      {"family", "shards", "steal", "crashes", "steals", "expiries",
       "claim_losses", "steps", "survivors", "ok"});
  bool all_ok = true;
  const auto add = [&table](const std::string& name,
                            const api::ScenarioReport& rep, bool steal,
                            int shards) {
    table.add_row(
        {name, util::Table::fmt(static_cast<std::int64_t>(shards)),
         util::Table::fmt(static_cast<std::int64_t>(steal ? 1 : 0)),
         util::Table::fmt(static_cast<std::int64_t>(rep.crashes)),
         util::Table::fmt(static_cast<std::int64_t>(rep.lease_steals)),
         util::Table::fmt(static_cast<std::int64_t>(rep.lease_expiries)),
         util::Table::fmt(static_cast<std::int64_t>(rep.claim_losses)),
         util::Table::fmt(static_cast<std::int64_t>(rep.steps)),
         util::Table::fmt(
             static_cast<std::int64_t>(rep.survivors_finished ? 1 : 0)),
         util::Table::fmt(static_cast<std::int64_t>(rep.ok() ? 1 : 0))});
  };
  for (const api::TimestampFamily& fam : api::registry()) {
    for (int shards : {1, 2, 4}) {
      const api::ScenarioReport rep =
          api::Harness{kSimBudget}.run_scenario(
              fam, sim_spec(fam, shards, true),
              api::crash_restart(combiner_killer()));
      all_ok = all_ok && rep.ok() && rep.survivors_finished;
      add(fam.name, rep, true, shards);
    }
  }
  // The control arm: same schedule, stealing off — must wedge. The gate
  // INVERTS for this row; a no-steal run that somehow finished would mean
  // the lease rows above prove nothing.
  const api::ScenarioReport wedged = api::Harness{kSimBudget}.run_scenario(
      api::family("maxscan"), sim_spec(api::family("maxscan"), 2, false),
      api::crash_restart(combiner_killer()));
  const bool wedge_ok =
      !wedged.survivors_finished && wedged.steps == kSimBudget;
  all_ok = all_ok && wedge_ok;
  add("maxscan[nosteal]", wedged, false, 2);
  bench::emit(table);
  return all_ok;
}

struct T14bRow {
  bool completed = false;
  bool once_ok = false;
  std::uint64_t steals = 0;
  std::uint64_t expiries = 0;
  std::uint64_t claim_losses = 0;
  double steal_latency_us = 0.0;
};

/// One native stall run: park the first observed lease holder mid-pass
/// until the lease word changes (stolen) or a generous yield bound passes,
/// timing park-to-steal. Mirrors tests/test_shard_faults.cpp.
T14bRow run_native_stall(int spin_budget, int steal_budget) {
  constexpr int kClients = 4;
  constexpr int kCalls = 6;
  api::ScenarioSpec spec;
  spec.n = kClients;
  spec.calls_per_process = kCalls;
  spec.backend = api::Backend::kNative;
  spec.native_threads = kClients;
  spec.shard.shards = 1;
  spec.shard.spin_budget = spin_budget;
  spec.shard.steal_budget = steal_budget;
  auto inst = shard::make_sharded<shard::MaxscanEngine>(spec);
  std::atomic<bool> parked{false};
  std::atomic<std::int64_t> latency_ns{0};
  shard::ShardedInstance* raw = inst.get();
  inst->set_native_op_hook([raw, &parked, &latency_ns](int pid,
                                                       std::uint64_t) {
    if (raw->lease_owner(0) != pid) return;
    bool expected = false;
    if (!parked.compare_exchange_strong(expected, true)) return;
    const std::uint64_t held = raw->lease_word(0);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 2000000 && raw->lease_word(0) == held; ++i) {
      std::this_thread::yield();
    }
    if (raw->lease_word(0) != held) {
      latency_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count());
    }
  });
  const api::NativeRunStats stats = inst->run_native(kClients);
  T14bRow row;
  row.completed = stats.calls ==
                  static_cast<std::uint64_t>(kClients) * kCalls;
  const shard::ShardRunStats st = inst->shard_stats();
  row.steals = st.lease_steals;
  row.expiries = st.lease_expiries;
  row.claim_losses = st.claim_losses;
  row.steal_latency_us =
      static_cast<double>(latency_ns.load()) / 1000.0;
  row.once_ok =
      verify::check_at_most_once_service(inst->composed_calls().records)
          .ok() &&
      inst->cross_shard_monotonicity().ok();
  return row;
}

bool print_t14b() {
  util::Table table(
      "T14b: native steal latency (maxscan, 4 clients, parked combiner)",
      {"spin_budget", "steal_budget", "calls_done", "steals", "expiries",
       "claim_losses", "steal_latency_us", "once_ok"});
  bool all_ok = true;
  const unsigned cores = std::thread::hardware_concurrency();
  for (const int spin : {0, 64}) {
    for (const int budget : {8, 64, 512}) {
      const T14bRow row = run_native_stall(spin, budget);
      const bool row_ok = row.completed && row.once_ok &&
                          (cores < 2 || row.steals >= 1);
      all_ok = all_ok && row_ok;
      table.add_row(
          {util::Table::fmt(static_cast<std::int64_t>(spin)),
           util::Table::fmt(static_cast<std::int64_t>(budget)),
           util::Table::fmt(static_cast<std::int64_t>(row.completed ? 1 : 0)),
           util::Table::fmt(static_cast<std::int64_t>(row.steals)),
           util::Table::fmt(static_cast<std::int64_t>(row.expiries)),
           util::Table::fmt(static_cast<std::int64_t>(row.claim_losses)),
           util::Table::fmt(row.steal_latency_us, 1),
           util::Table::fmt(static_cast<std::int64_t>(row.once_ok ? 1 : 0))});
    }
  }
  bench::emit(table);
  std::cout << "note: steals/expiries/claim_losses/steal_latency_us are "
               "OS-scheduled (CI diffs them with infinite tolerance); "
               "calls_done and once_ok are exact.\n\n";
  return all_ok;
}

void BM_NativeStealRecovery(benchmark::State& state) {
  for (auto _ : state) {
    const T14bRow row =
        run_native_stall(64, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(row.steals);
  }
  state.SetItemsProcessed(state.iterations() * 4 * 6);
}
BENCHMARK(BM_NativeStealRecovery)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  const bool t14a_ok = print_t14a();
  const bool t14b_ok = print_t14b();
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "T14a wedge-recovery gate: every lease row survives + checks "
               "clean AND the no-steal control wedges: "
            << (t14a_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "T14b steal gate (" << cores
            << " cores): every budget config completes, steals"
            << (cores >= 2 ? "" : " [steal count not required: single core]")
            << ", and checks at-most-once clean: "
            << (t14b_ok ? "PASS" : "FAIL") << "\n\n";

  // Table-only (CI) mode: T14a is exact on any machine; T14b's gate already
  // core-guards the steal requirement, so the exit code is the contract.
  if (stamped::bench::table_only(argc, argv)) {
    return (t14a_ok && t14b_ok) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
