// T11 — Footprint-driven persistent sets: exact static write maps vs the
// pending-op heuristic, with a blessed baseline and a certification gate.
//
// ExploreOptions::footprints feeds each family's DECLARED static write map
// (analysis::write_footprints, linted against observed executions by the
// conformance suite) into the persistent-set closure. At every branching
// node the engine takes the smaller of the static closure and the pending-op
// closure, so the footprint-driven tree can never branch wider — the T11
// gate enforces the global consequence (exact nodes <= heuristic nodes on
// every row) plus the semantic half of the bargain: a full-vs-reduced
// crosscheck_por per row must certify the identical violation set.
//
// The interesting rows are the SWMR families (maxscan, bounded): their
// static maps pin each register to one writer, so read-poised processes
// whose registers are not pending stop being pulled into write closures.
// MWMR families (fetchadd's single counter, Algorithm 4's frontier) declare
// everyone a writer — the static closure degenerates to the full candidate
// set, the min falls back to the heuristic, and the rows come out equal:
// the gate proves "never worse", the SWMR rows show the win.
//
// Baselines live in bench/baselines/t11/ and are diffed by the release-perf
// CI job:
//   bench_t11_footprints --table-only
//   tools/bench_diff.py --baseline-dir bench/baselines/t11 --measured-dir .
#include "bench_common.hpp"

#include <optional>
#include <string>

#include "analysis/footprint.hpp"
#include "api/registry.hpp"
#include "util/table.hpp"
#include "verify/explorer.hpp"

namespace {

using namespace stamped;

struct Model {
  const char* family;
  int n;
  int calls;

  [[nodiscard]] std::string label() const {
    return std::string(family) + " n=" + std::to_string(n) +
           " c=" + std::to_string(calls);
  }
};

// Every registry family appears; SWMR rows carry the reduction, MWMR rows
// pin the fallback-to-heuristic equality.
constexpr Model kT11Models[] = {
    {"maxscan", 2, 1},        {"maxscan", 2, 2},
    {"maxscan", 3, 1},        {"bounded", 2, 1},
    {"bounded", 2, 2},        {"simple-oneshot", 2, 1},
    {"simple-oneshot", 3, 1}, {"sqrt-oneshot", 2, 1},
    {"growing-oneshot", 2, 1}, {"fetchadd", 2, 2},
};

struct RowRuns {
  verify::ExploreResult heuristic;
  verify::ExploreResult exact;
  bool crosscheck_agrees = false;
};

RowRuns run_row(const Model& m) {
  api::ScenarioSpec spec;
  spec.n = m.n;
  spec.calls_per_process = m.calls;
  const api::TimestampFamily& fam = api::family(m.family);
  const runtime::SystemFactory sys_factory = fam.factory(spec);
  const verify::InstanceFactory factory = [&sys_factory]() {
    verify::ExplorationInstance inst;
    inst.sys = sys_factory();
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };

  verify::ExploreOptions opts;
  opts.max_executions = 0;
  opts.por = true;
  opts.persistent = true;
  RowRuns runs;
  runs.heuristic = verify::explore_all_executions(factory, opts);
  opts.footprints = analysis::write_footprints(fam, spec);
  runs.exact = verify::explore_all_executions(factory, opts);
  runs.crosscheck_agrees = verify::crosscheck_por(factory, opts).agree();
  return runs;
}

// ---- timing section --------------------------------------------------------

void footprint_bench(benchmark::State& state, bool exact) {
  const Model m{"maxscan", 3, 1};
  api::ScenarioSpec spec;
  spec.n = m.n;
  spec.calls_per_process = m.calls;
  const api::TimestampFamily& fam = api::family(m.family);
  const runtime::SystemFactory sys_factory = fam.factory(spec);
  const verify::InstanceFactory factory = [&sys_factory]() {
    verify::ExplorationInstance inst;
    inst.sys = sys_factory();
    inst.check = []() -> std::optional<std::string> { return std::nullopt; };
    return inst;
  };
  verify::ExploreOptions opts;
  opts.max_executions = 0;
  opts.por = true;
  opts.persistent = true;
  if (exact) opts.footprints = analysis::write_footprints(fam, spec);
  for (auto _ : state) {
    const auto result = verify::explore_all_executions(factory, opts);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.executions));
  }
}

void BM_PersistentHeuristic(benchmark::State& state) {
  footprint_bench(state, false);
}
BENCHMARK(BM_PersistentHeuristic)->Unit(benchmark::kMillisecond);

void BM_PersistentExactFootprints(benchmark::State& state) {
  footprint_bench(state, true);
}
BENCHMARK(BM_PersistentExactFootprints)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::Table table(
      "T11: footprint-driven persistent sets (static write map) vs "
      "pending-op heuristic",
      {"model", "heur_nodes", "heur_execs", "exact_nodes", "exact_execs",
       "exact_deferred", "nodes_saved_pct", "crosscheck"});
  bool never_wider = true;
  bool all_certified = true;
  bool violations_match = true;
  for (const Model& m : kT11Models) {
    const RowRuns runs = run_row(m);
    if (runs.exact.nodes > runs.heuristic.nodes) never_wider = false;
    if (!runs.crosscheck_agrees) all_certified = false;
    if (runs.exact.violations != runs.heuristic.violations) {
      violations_match = false;
    }
    const double saved =
        runs.heuristic.nodes > 0
            ? 100.0 *
                  static_cast<double>(runs.heuristic.nodes -
                                      runs.exact.nodes) /
                  static_cast<double>(runs.heuristic.nodes)
            : 0.0;
    table.add_row(
        {m.label(),
         util::Table::fmt(static_cast<std::int64_t>(runs.heuristic.nodes)),
         util::Table::fmt(
             static_cast<std::int64_t>(runs.heuristic.executions)),
         util::Table::fmt(static_cast<std::int64_t>(runs.exact.nodes)),
         util::Table::fmt(static_cast<std::int64_t>(runs.exact.executions)),
         util::Table::fmt(
             static_cast<std::int64_t>(runs.exact.persistent_deferred)),
         util::Table::fmt(saved, 1),
         runs.crosscheck_agrees ? "agree" : "DIVERGED"});
  }
  stamped::bench::emit(table);

  std::cout << "T11 monotonicity gate: footprint-driven tree explores no "
            << "more nodes than the heuristic tree on every row: "
            << (never_wider ? "PASS" : "FAIL") << "\n";
  std::cout << "T11 violation gate: identical violation sets on every row: "
            << (violations_match ? "PASS" : "FAIL") << "\n";
  std::cout << "T11 certification gate: crosscheck_por full-vs-reduced "
            << "agrees on every row: " << (all_certified ? "PASS" : "FAIL")
            << "\n\n";

  // All three gates are exact counter/set comparisons — no timing columns,
  // so the baseline diff runs with zero tolerance and this exit code guards
  // the whole bargain: never a wider tree, never a different verdict.
  if (stamped::bench::table_only(argc, argv)) {
    return (never_wider && violations_match && all_certified) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
