#!/usr/bin/env python3
"""Diff measured BENCH_*.json tables against the blessed baselines.

The space benches (bench_t1_longlived_space, bench_t2_oneshot_space,
bench_t7_bounded) are deterministic: their tables are produced by seeded
schedules, so any drift in measured register counts, covered sets, or bit
accounting is a real behavior change. CI regenerates the tables with
`<bench> --table-only` and runs this script against bench/baselines/.

Comparison rules, per cell:
  - integer cells must match exactly (register counts, wraps, bits);
  - non-integer numeric cells (analytic bounds like sqrt(2n) - log2 n) are
    compared with a small absolute tolerance, so a libm ULP difference that
    moves the second printed decimal does not fail the build;
  - columns named by --tolerance COL=VAL are noisy by declaration: their
    numeric cells (integer or float) compare with absolute tolerance VAL;
  - everything else is compared as a string.

Usage:
  tools/bench_diff.py --baseline-dir bench/baselines --measured-dir .
  tools/bench_diff.py --baseline-dir bench/baselines --measured-dir . \
      --tolerance alg4_rand=2 --tolerance covered_3k=1
  tools/bench_diff.py --baseline-dir bench/baselines --measured-dir . --update

Exit status: 0 when every baseline table has a matching measured twin, 1 on
any mismatch or missing file.
"""

import argparse
import json
import pathlib
import sys

FLOAT_TOLERANCE = 0.02


def classify(cell: str):
    """Returns ('int', v), ('float', v) or ('str', cell)."""
    try:
        return "int", int(cell)
    except ValueError:
        pass
    try:
        return "float", float(cell)
    except ValueError:
        return "str", cell


def parse_tolerance(arg: str):
    """Parses one --tolerance argument of the form COLUMN=VALUE."""
    column, sep, value = arg.rpartition("=")
    if not sep or not column:
        raise argparse.ArgumentTypeError(
            f"expected COLUMN=VALUE, got {arg!r}"
        )
    try:
        return column, float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"tolerance value in {arg!r} is not a number"
        ) from exc


def cells_equal(expected: str, measured: str, tolerance=None) -> bool:
    kind_e, val_e = classify(expected)
    kind_m, val_m = classify(measured)
    if tolerance is not None and kind_e != "str" and kind_m != "str":
        return abs(float(val_e) - float(val_m)) <= tolerance
    if kind_e != kind_m:
        return False
    if kind_e == "int":
        return val_e == val_m
    if kind_e == "float":
        return abs(val_e - val_m) <= FLOAT_TOLERANCE
    return val_e == val_m


def diff_table(name: str, baseline: dict, measured: dict,
               tolerances=None) -> list:
    tolerances = tolerances or {}
    problems = []
    if baseline.get("headers") != measured.get("headers"):
        problems.append(
            f"{name}: headers differ\n  baseline: {baseline.get('headers')}"
            f"\n  measured: {measured.get('headers')}"
        )
        return problems
    rows_b = baseline.get("rows", [])
    rows_m = measured.get("rows", [])
    if len(rows_b) != len(rows_m):
        problems.append(
            f"{name}: row count {len(rows_m)} != baseline {len(rows_b)}"
        )
        return problems
    headers = baseline.get("headers", [])
    for r, (row_b, row_m) in enumerate(zip(rows_b, rows_m)):
        if len(row_b) != len(row_m):
            problems.append(
                f"{name}: row {r} has {len(row_m)} cells, "
                f"baseline has {len(row_b)}"
            )
            continue
        for c, (cell_b, cell_m) in enumerate(zip(row_b, row_m)):
            col = headers[c] if c < len(headers) else f"col{c}"
            if not cells_equal(cell_b, cell_m, tolerances.get(col)):
                problems.append(
                    f"{name}: row {r} [{col}]: measured {cell_m!r} "
                    f"!= baseline {cell_b!r}"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True, type=pathlib.Path)
    parser.add_argument("--measured-dir", default=".", type=pathlib.Path)
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy measured tables over the baselines instead of diffing",
    )
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        type=parse_tolerance,
        metavar="COLUMN=VALUE",
        help="absolute tolerance for numeric cells of a noisy column "
        "(repeatable)",
    )
    args = parser.parse_args()
    tolerances = dict(args.tolerance)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}")
        return 1

    problems = []
    for baseline_path in baselines:
        measured_path = args.measured_dir / baseline_path.name
        if not measured_path.exists():
            problems.append(
                f"{baseline_path.name}: missing measured table "
                f"(expected {measured_path}) — did the bench run?"
            )
            continue
        if args.update:
            baseline_path.write_text(measured_path.read_text())
            print(f"updated {baseline_path}")
            continue
        baseline = json.loads(baseline_path.read_text())
        measured = json.loads(measured_path.read_text())
        table_problems = diff_table(baseline_path.name, baseline, measured,
                                    tolerances)
        if table_problems:
            problems.extend(table_problems)
        else:
            rows = len(baseline.get("rows", []))
            print(f"ok: {baseline_path.name} ({rows} rows)")

    if problems:
        print(f"\n{len(problems)} problem(s):")
        for p in problems:
            print(f"  {p}")
        print(
            "\nIf the drift is intentional, re-bless with:\n"
            "  tools/bench_diff.py --baseline-dir bench/baselines "
            "--measured-dir <dir> --update"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
