#!/usr/bin/env python3
"""Self-test for tools/bench_diff.py: known-good vs perturbed JSON tables.

Builds a baseline/measured directory pair in a temp dir and checks the
diff's exit status and reporting across the comparison rules: exact integer
match, float tolerance, --tolerance overrides for noisy columns, header and
row-count mismatches, and missing measured files. Wired into ctest as
`bench_diff_selftest`.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

TOOL = pathlib.Path(__file__).resolve().parent / "bench_diff.py"

GOOD_TABLE = {
    "title": "T9: selftest table",
    "headers": ["n", "lower", "written", "ops_sec"],
    "rows": [
        ["4", "1.17", "3", "1000"],
        ["8", "2.00", "5", "2000"],
    ],
}

failures = []


def check(label, ok):
    status = "ok" if ok else "FAIL"
    print(f"{status}: {label}")
    if not ok:
        failures.append(label)


def run_diff(baseline_dir, measured_dir, *extra):
    return subprocess.run(
        [sys.executable, str(TOOL), "--baseline-dir", str(baseline_dir),
         "--measured-dir", str(measured_dir), *extra],
        capture_output=True, text=True,
    )


def write_table(directory, table):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_T9_selftest.json").write_text(json.dumps(table))


def perturbed(column, value):
    table = json.loads(json.dumps(GOOD_TABLE))
    col = table["headers"].index(column)
    table["rows"][0][col] = value
    return table


def main():
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        baseline = tmp / "baseline"
        write_table(baseline, GOOD_TABLE)

        # Identical tables pass.
        measured = tmp / "identical"
        write_table(measured, GOOD_TABLE)
        check("identical tables pass", run_diff(baseline, measured).returncode == 0)

        # A drifted integer cell fails (exact comparison).
        measured = tmp / "int_drift"
        write_table(measured, perturbed("written", "4"))
        result = run_diff(baseline, measured)
        check("integer drift fails", result.returncode == 1)
        check("integer drift names the column", "[written]" in result.stdout)

        # The same drift passes with a --tolerance covering it...
        check(
            "--tolerance absorbs declared noise",
            run_diff(baseline, measured, "--tolerance", "written=1").returncode == 0,
        )
        # ...but not with a tolerance smaller than the drift, and not when the
        # tolerance names a different column.
        check(
            "too-small --tolerance still fails",
            run_diff(baseline, measured, "--tolerance", "written=0.5").returncode == 1,
        )
        check(
            "--tolerance is per-column",
            run_diff(baseline, measured, "--tolerance", "ops_sec=9").returncode == 1,
        )

        # Float cells absorb sub-tolerance jitter without any flag (libm ULP).
        measured = tmp / "float_jitter"
        write_table(measured, perturbed("lower", "1.18"))
        check("float jitter within default tolerance passes",
              run_diff(baseline, measured).returncode == 0)
        measured = tmp / "float_drift"
        write_table(measured, perturbed("lower", "1.40"))
        check("float drift beyond default tolerance fails",
              run_diff(baseline, measured).returncode == 1)

        # A non-numeric cell in a tolerated column still fails.
        measured = tmp / "str_cell"
        write_table(measured, perturbed("written", "oops"))
        check(
            "non-numeric cell fails even with --tolerance",
            run_diff(baseline, measured, "--tolerance", "written=9").returncode == 1,
        )

        # Structural mismatches fail regardless of tolerances.
        measured = tmp / "row_count"
        table = json.loads(json.dumps(GOOD_TABLE))
        table["rows"].pop()
        write_table(measured, table)
        check("row-count mismatch fails", run_diff(baseline, measured).returncode == 1)

        measured = tmp / "headers"
        table = json.loads(json.dumps(GOOD_TABLE))
        table["headers"][-1] = "renamed"
        write_table(measured, table)
        check("header mismatch fails", run_diff(baseline, measured).returncode == 1)

        # A missing measured table fails.
        missing = tmp / "missing"
        missing.mkdir()
        check("missing measured table fails",
              run_diff(baseline, missing).returncode == 1)

        # A malformed --tolerance argument is rejected up front.
        result = run_diff(baseline, baseline, "--tolerance", "written")
        check("malformed --tolerance rejected", result.returncode == 2)

    if failures:
        print(f"\n{len(failures)} selftest failure(s)")
        return 1
    print("\nbench_diff selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
